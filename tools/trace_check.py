#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by ppa_cli.

The exporter (src/obs/trace_export.cc) emits the JSON-object form
({"traceEvents": [...]}) with duration spans (B/E pairs), counter
tracks (C), and thread-name metadata (M). This checker enforces the
properties Perfetto and chrome://tracing rely on, so a regression in
the exporter fails CI before it ships a trace the viewers mangle:

  * the document parses and has a traceEvents array;
  * timestamps are monotonically non-decreasing in file order
    (the exporter sorts by (ts, emission order));
  * per (pid, tid) track, B/E events nest properly and match by name;
  * at least one counter track exists and every C event carries a
    numeric args.value;
  * every non-metadata event carries ts/pid/tid.

Usage: trace_check.py TRACE.json [TRACE2.json ...]
Exits nonzero with a diagnostic per violated property.
"""

import json
import sys


def fail(path, msg):
    print(f"trace_check: {path}: {msg}", file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot parse: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "no traceEvents array")

    errors = 0
    last_ts = None
    stacks = {}  # (pid, tid) -> [names of open B spans]
    counters = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        name = ev.get("name", "?")
        if ph == "M":
            # Metadata events carry no timestamp; nothing to order.
            continue
        if ph not in ("B", "E", "C"):
            errors += fail(path, f"event {i}: unexpected phase '{ph}'")
            continue
        for key in ("ts", "pid", "tid"):
            if key not in ev:
                errors += fail(path, f"event {i} ({name}): missing {key}")
        ts = ev.get("ts", 0)
        if last_ts is not None and ts < last_ts:
            errors += fail(
                path,
                f"event {i} ({name}): ts {ts} < previous {last_ts} "
                "(not monotonic)",
            )
        last_ts = ts

        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(name)
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                errors += fail(
                    path, f"event {i} ({name}): E with no open B on {track}"
                )
            elif stack[-1] != name:
                errors += fail(
                    path,
                    f"event {i}: E '{name}' closes B '{stack[-1]}' "
                    f"on {track}",
                )
                stack.pop()
            else:
                stack.pop()
        elif ph == "C":
            counters += 1
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors += fail(
                    path,
                    f"event {i} ({name}): counter args.value is "
                    f"{value!r}, not a number",
                )

    for track, stack in stacks.items():
        if stack:
            errors += fail(
                path, f"unclosed span(s) {stack} on track {track}"
            )
    if counters == 0:
        errors += fail(path, "no counter (C) events — counter tracks missing")

    if errors == 0:
        spans = sum(1 for e in events if e.get("ph") == "B")
        print(
            f"trace_check: {path}: OK — {len(events)} events, "
            f"{spans} spans, {counters} counter samples"
        )
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = 0
    for path in argv[1:]:
        errors += check_file(path)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
