#!/usr/bin/env python3
"""Aggregate litmus conformance JSON into a per-variant table.

Consumes one or more ``litmus_*.json`` documents produced by
``ppa_cli litmus run|explore --json`` (schemaVersion 1) and renders a
per-variant conformance summary: tests run, crash points explored,
violations, strict-model divergences, vacuous coverage goals, and an
overall verdict. The verdict logic mirrors the CLI's:

* a variant FAILS on any violation, any corpus error, or (exhaustive
  strict runs only) any vacuous required outcome;
* ``--expect-divergence VARIANT`` additionally fails when the named
  variant reported zero strict-model divergences — the aggregated
  proof that the checker discriminates between persistency contracts
  would be missing.

Stdlib only; no third-party packages. Usage:

    python3 tools/litmus_report.py results/litmus_*.json \
        [--expect-divergence memory-mode]

Exit status 0 when every verdict passes, 1 with a report otherwise.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"litmus_report: cannot read {path}: {exc}")
    if doc.get("schemaVersion") != 1:
        sys.exit(
            f"litmus_report: {path}: unsupported schemaVersion "
            f"{doc.get('schemaVersion')!r}"
        )
    for key in ("variant", "flavor", "mode", "tests"):
        if key not in doc:
            sys.exit(f"litmus_report: {path}: missing key {key!r}")
    return doc


def summarize(doc):
    tests = doc["tests"]
    row = {
        "variant": doc["variant"],
        "flavor": doc["flavor"],
        "mode": doc["mode"],
        "tests": len(tests),
        "crashes": sum(t.get("crashPoints", 0) for t in tests),
        "violations": sum(t.get("violations", 0) for t in tests),
        "strict_div": sum(t.get("strictDivergences", 0) for t in tests),
        "vacuous": sum(t.get("vacuous", 0) for t in tests),
        "corpus_errors": sum(1 for t in tests if t.get("corpusError")),
        "failed_tests": [t["name"] for t in tests if not t.get("pass")],
    }
    row["pass"] = not row["failed_tests"] and row["corpus_errors"] == 0
    return row


def render(rows):
    headers = [
        "variant", "flavor", "mode", "tests", "crashes",
        "violations", "strict-div", "vacuous", "verdict",
    ]
    cells = [
        [
            r["variant"], r["flavor"], r["mode"], str(r["tests"]),
            str(r["crashes"]), str(r["violations"]),
            str(r["strict_div"]), str(r["vacuous"]),
            "pass" if r["pass"] else "FAIL",
        ]
        for r in rows
    ]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
        "|-" + "-|-".join("-" * w for w in widths) + "-|",
    ]
    for row in cells:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="litmus_*.json documents")
    ap.add_argument(
        "--expect-divergence",
        metavar="VARIANT",
        action="append",
        default=[],
        help="fail unless VARIANT reported >0 strict-model divergences",
    )
    args = ap.parse_args()

    rows = [summarize(load(path)) for path in args.files]
    print(render(rows))

    problems = []
    for row in rows:
        for name in row["failed_tests"]:
            problems.append(f"{row['variant']}: test {name} failed")
    seen = {row["variant"]: row for row in rows}
    for variant in args.expect_divergence:
        if variant not in seen:
            problems.append(f"no results for variant {variant}")
        elif seen[variant]["strict_div"] == 0:
            problems.append(
                f"{variant}: expected strict-model divergences, saw none"
            )

    for p in problems:
        print(f"litmus_report: {p}", file=sys.stderr)
    if problems:
        return 1
    total = sum(r["crashes"] for r in rows)
    print(
        f"litmus_report: OK — {len(rows)} variant(s), "
        f"{total} crash points, all conformance verdicts pass"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
