#!/usr/bin/env python3
"""Render serve-study JSON into a per-variant comparison table.

Consumes one or more documents produced by ``ppa_cli serve --json``
(schemaVersion 1, kind "serve") and prints, per durability variant:
completed requests, achieved vs offered throughput, tail latency
(p50/p95/p99/p99.9/p99.99), and the failure study's recovery-time,
data-loss-window, and lost-request medians/maxima.

Sanity checks (any failure exits 1 with a diagnostic):

* every variant completed its configured request count;
* latency percentiles are monotone (p50 <= p95 <= ... <= max);
* durable + lost == completed at every injected failure point;
* the per-point loss windows never exceed the crash cycle.

Stdlib only; no third-party packages. Usage:

    python3 tools/serve_report.py results/serve_*.json

Exit status 0 when every document is consistent, 1 otherwise.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"serve_report: cannot read {path}: {exc}")
    if doc.get("schemaVersion") != 1:
        sys.exit(
            f"serve_report: {path}: unsupported schemaVersion "
            f"{doc.get('schemaVersion')!r}"
        )
    if doc.get("kind") != "serve" or "serve" not in doc:
        sys.exit(f"serve_report: {path}: not a serve document")
    for key in ("config", "variants"):
        if key not in doc["serve"]:
            sys.exit(f"serve_report: {path}: missing serve.{key}")
    return doc


def check_variant(path, variant, problems):
    tag = f"{path}: {variant['variant']}"
    s = variant["stats"]["serve"]
    if s["completed"] != s["requests"]:
        problems.append(
            f"{tag}: completed {s['completed']} of {s['requests']} requests"
        )
    lat = s["latency"]
    quantiles = [lat[k] for k in ("p50", "p95", "p99", "p999", "p9999")]
    quantiles.append(lat["max"])
    if quantiles != sorted(quantiles):
        problems.append(f"{tag}: latency percentiles not monotone {quantiles}")
    for point in s["failures"]["points"]:
        if (
            point["durableRequests"] + point["lostRequests"]
            != point["completedRequests"]
        ):
            problems.append(
                f"{tag}: cycle {point['cycle']}: durable "
                f"{point['durableRequests']} + lost {point['lostRequests']} "
                f"!= completed {point['completedRequests']}"
            )
        if point["lossWindow"] > point["cycle"]:
            problems.append(
                f"{tag}: cycle {point['cycle']}: loss window "
                f"{point['lossWindow']} exceeds the crash cycle"
            )


def rows_for(doc, path, problems):
    rows = []
    for variant in doc["serve"]["variants"]:
        check_variant(path, variant, problems)
        s = variant["stats"]["serve"]
        fails = s["failures"]
        lat = s["latency"]
        rows.append(
            [
                variant["variant"],
                s["workload"] if "workload" in s
                else doc["serve"]["config"]["workload"],
                str(s["completed"]),
                f"{s['achievedPerKcycle']:.2f}",
                f"{s['offeredPerKcycle']:.2f}",
                str(lat["p50"]),
                str(lat["p95"]),
                str(lat["p99"]),
                str(lat["p999"]),
                str(lat["p9999"]),
                str(fails["recovery"]["p50"]),
                str(fails["lossWindow"]["max"]),
                str(fails["lostRequests"]["max"]),
            ]
        )
    return rows


HEADERS = [
    "variant", "workload", "completed", "ach/kcyc", "off/kcyc",
    "p50", "p95", "p99", "p99.9", "p99.99",
    "recovery p50", "loss max", "lost max",
]


def render(rows):
    widths = [
        max(len(h), *(len(row[i]) for row in rows)) if rows else len(h)
        for i, h in enumerate(HEADERS)
    ]
    lines = [
        "| " + " | ".join(h.ljust(w) for h, w in zip(HEADERS, widths)) + " |",
        "|-" + "-|-".join("-" * w for w in widths) + "-|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="serve_*.json documents")
    args = ap.parse_args()

    problems = []
    rows = []
    points = 0
    for path in args.files:
        doc = load(path)
        rows.extend(rows_for(doc, path, problems))
        for variant in doc["serve"]["variants"]:
            points += len(variant["stats"]["serve"]["failures"]["points"])
    print(render(rows))

    for p in problems:
        print(f"serve_report: {p}", file=sys.stderr)
    if problems:
        return 1
    print(
        f"serve_report: OK — {len(rows)} variant row(s), "
        f"{points} injected failure point(s), all checks pass"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
