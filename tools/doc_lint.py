#!/usr/bin/env python3
"""Documentation lint for the PPA repo (CI: the docs job).

Two checks, both designed to fail loudly when code and docs drift:

1. Flag coverage: every long option (``--foo``) and every subcommand
   that ``ppa_cli --help`` advertises must be mentioned in at least
   one markdown document. New CLI surface therefore cannot land
   without a sentence of documentation.

2. Link integrity: every intra-repo markdown link
   (``[text](relative/path)``) in the repo's markdown files must
   resolve to an existing file. External links (http/https/mailto)
   and pure anchors (``#section``) are skipped; an anchor suffix on a
   file link is stripped before the existence check.

Stdlib only; no third-party packages. Usage:

    python3 tools/doc_lint.py --cli build/tools/ppa_cli [--repo DIR]

Exit status 0 when clean, 1 with a per-problem report otherwise.
"""

import argparse
import pathlib
import re
import subprocess
import sys

# Documents that count as flag documentation. Deliberately explicit
# (not a glob) so scratch markdown can't satisfy the check.
DOC_FILES = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/CHECKING.md",
    "docs/FUZZING.md",
    "docs/INTERNALS.md",
    "docs/METRICS.md",
    "docs/PERF.md",
    "docs/SERVING.md",
    "docs/TELEMETRY.md",
    "docs/TRACING.md",
]

# Markdown scanned for link integrity: every tracked .md file.
SKIP_LINK_DIRS = {".git", "build", "results"}

FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")
SUBCOMMAND_RE = re.compile(r"^subcommand: ([a-z]+)", re.MULTILINE)
# [text](target) — excludes images' extra ! only in that the link
# check treats them identically, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def cli_surface(cli):
    """(flags, subcommands) advertised by `ppa_cli --help`."""
    help_text = subprocess.run(
        [cli, "--help"], capture_output=True, text=True, check=False
    ).stdout
    if not help_text:
        sys.exit(f"doc_lint: no --help output from {cli}")
    return sorted(set(FLAG_RE.findall(help_text))), sorted(
        set(SUBCOMMAND_RE.findall(help_text))
    )


def check_flags(repo, cli):
    flags, subcommands = cli_surface(cli)
    corpus = ""
    for rel in DOC_FILES:
        path = repo / rel
        if path.is_file():
            corpus += path.read_text(encoding="utf-8")
    problems = []
    for flag in flags:
        if flag not in corpus:
            problems.append(
                f"flag {flag} (ppa_cli --help) is documented nowhere in "
                + ", ".join(DOC_FILES)
            )
    for sub in subcommands:
        if not re.search(rf"\b{sub}\b", corpus):
            problems.append(f"subcommand '{sub}' is documented nowhere")
    return problems, len(flags), len(subcommands)


def markdown_files(repo):
    for path in sorted(repo.rglob("*.md")):
        rel = path.relative_to(repo)
        if rel.parts[0] in SKIP_LINK_DIRS:
            continue
        yield path


def check_links(repo):
    problems = []
    checked = 0
    for path in markdown_files(repo):
        text = path.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            clean = target.split("#", 1)[0]
            if not clean:
                continue
            resolved = (path.parent / clean).resolve()
            if not resolved.exists():
                rel = path.relative_to(repo)
                problems.append(f"{rel}: broken link -> {target}")
    return problems, checked


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cli", required=True, help="path to the ppa_cli binary")
    ap.add_argument(
        "--repo",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repo root (default: parent of tools/)",
    )
    args = ap.parse_args()
    repo = pathlib.Path(args.repo).resolve()

    flag_problems, nflags, nsubs = check_flags(repo, args.cli)
    link_problems, nlinks = check_links(repo)

    for p in flag_problems + link_problems:
        print(f"doc_lint: {p}", file=sys.stderr)
    if flag_problems or link_problems:
        return 1
    print(
        f"doc_lint: OK — {nflags} flags and {nsubs} subcommands all "
        f"documented, {nlinks} intra-repo links resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
