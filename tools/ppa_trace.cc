/**
 * @file
 * ppa_trace — record and replay committed-path traces.
 *
 * Record a workload or kernel's committed path once, then sweep
 * configurations against the identical input:
 *
 *   ppa_trace record --app gcc --insts 100000 --out gcc.ppatrace
 *   ppa_trace record --kernel tpcc --ops 2000 --out tpcc.ppatrace
 *   ppa_trace replay --in gcc.ppatrace --variant ppa
 *   ppa_trace info --in gcc.ppatrace
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "isa/trace_io.hh"
#include "sim/experiment.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

void
usage()
{
    std::printf(
        "usage:\n"
        "  ppa_trace record --app NAME  --insts N --out FILE "
        "[--seed S]\n"
        "  ppa_trace record --kernel K --ops N   --out FILE\n"
        "     kernels: counter hash tree swap tatp tpcc kv stencil "
        "lookup log matmul\n"
        "  ppa_trace replay --in FILE [--variant V]\n"
        "  ppa_trace info   --in FILE\n");
}

Program
kernelByName(const std::string &name, std::uint64_t ops)
{
    if (name == "counter")
        return kernels::counterLoop(ops);
    if (name == "hash")
        return kernels::hashTableUpdate(ops);
    if (name == "tree")
        return kernels::searchTreeWalk(ops);
    if (name == "swap")
        return kernels::arraySwap(ops);
    if (name == "tatp")
        return kernels::tatpUpdate(ops);
    if (name == "tpcc")
        return kernels::tpccNewOrder(ops);
    if (name == "kv")
        return kernels::kvStore(ops, 20);
    if (name == "stencil")
        return kernels::stencil(ops);
    if (name == "lookup")
        return kernels::tableLookup(ops);
    if (name == "log")
        return kernels::persistentLog(ops);
    if (name == "matmul")
        return kernels::matrixMultiply(std::max<std::uint64_t>(2, ops));
    std::fprintf(stderr, "unknown kernel '%s'\n", name.c_str());
    std::exit(1);
}

int
cmdRecord(const std::map<std::string, std::string> &opts)
{
    auto out = opts.find("--out");
    if (out == opts.end()) {
        usage();
        return 1;
    }

    std::vector<DynInst> stream;
    if (auto app = opts.find("--app"); app != opts.end()) {
        std::uint64_t insts = 100'000;
        if (auto n = opts.find("--insts"); n != opts.end())
            insts = std::strtoull(n->second.c_str(), nullptr, 10);
        std::uint64_t seed = 42;
        if (auto s = opts.find("--seed"); s != opts.end())
            seed = std::strtoull(s->second.c_str(), nullptr, 10);
        StreamGenerator gen(profileByName(app->second), 0, seed, insts);
        DynInst d;
        while (gen.next(d))
            stream.push_back(d);
    } else if (auto k = opts.find("--kernel"); k != opts.end()) {
        std::uint64_t ops = 1000;
        if (auto n = opts.find("--ops"); n != opts.end())
            ops = std::strtoull(n->second.c_str(), nullptr, 10);
        Program prog = kernelByName(k->second, ops);
        ProgramExecutor ex(prog);
        ex.totalLength();
        stream = ex.generated();
        std::printf("note: kernel traces do not carry initial memory; "
                    "replay measures timing only\n");
    } else {
        usage();
        return 1;
    }

    writeTrace(out->second, stream);
    std::printf("wrote %zu instructions to %s\n", stream.size(),
                out->second.c_str());
    return 0;
}

int
cmdReplay(const std::map<std::string, std::string> &opts)
{
    auto in = opts.find("--in");
    if (in == opts.end()) {
        usage();
        return 1;
    }
    std::string variant = "ppa";
    if (auto v = opts.find("--variant"); v != opts.end())
        variant = v->second;

    SystemVariant sys_variant = SystemVariant::Ppa;
    if (variant == "memory-mode")
        sys_variant = SystemVariant::MemoryMode;
    else if (variant == "dram-only")
        sys_variant = SystemVariant::DramOnly;
    else if (variant == "eadr-bbb")
        sys_variant = SystemVariant::EadrBbb;
    else if (variant != "ppa") {
        std::fprintf(stderr, "replay supports memory-mode | ppa | "
                             "dram-only | eadr-bbb\n");
        return 1;
    }

    ExperimentKnobs knobs;
    SystemConfig sc = makeSystemConfig(sys_variant, knobs, 1);
    System system(sc);
    TraceFileSource source(in->second);
    system.bindSource(0, &source);
    system.run(/*max cycles*/ 0);

    std::printf("replayed %llu instructions in %llu cycles "
                "(IPC %.2f) on %s\n",
                static_cast<unsigned long long>(
                    system.core(0).committedInsts()),
                static_cast<unsigned long long>(system.cycle()),
                static_cast<double>(system.core(0).committedInsts()) /
                    static_cast<double>(system.cycle()),
                variantName(sys_variant));
    return 0;
}

int
cmdInfo(const std::map<std::string, std::string> &opts)
{
    auto in = opts.find("--in");
    if (in == opts.end()) {
        usage();
        return 1;
    }
    auto stream = readTrace(in->second);
    std::uint64_t loads = 0, stores = 0, branches = 0, syncs = 0;
    for (const auto &d : stream) {
        if (d.isLoad() && !d.isStore())
            ++loads;
        if (d.isStore() && !d.isSync())
            ++stores;
        if (d.isBranch())
            ++branches;
        if (d.isSync())
            ++syncs;
    }
    std::printf("%s: %zu instructions\n", in->second.c_str(),
                stream.size());
    if (!stream.empty()) {
        double n = static_cast<double>(stream.size());
        std::printf("  loads    %8llu (%.1f%%)\n",
                    (unsigned long long)loads, 100.0 * loads / n);
        std::printf("  stores   %8llu (%.1f%%)\n",
                    (unsigned long long)stores, 100.0 * stores / n);
        std::printf("  branches %8llu (%.1f%%)\n",
                    (unsigned long long)branches, 100.0 * branches / n);
        std::printf("  syncs    %8llu (%.2f%%)\n",
                    (unsigned long long)syncs, 100.0 * syncs / n);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    std::map<std::string, std::string> opts;
    for (int i = 2; i + 1 < argc; i += 2)
        opts[argv[i]] = argv[i + 1];

    if (cmd == "record")
        return cmdRecord(opts);
    if (cmd == "replay")
        return cmdReplay(opts);
    if (cmd == "info")
        return cmdInfo(opts);
    usage();
    return 1;
}
