/**
 * @file
 * ppa_cli — command-line driver for the simulator.
 *
 * Run any of the 41 modeled applications on any system variant and
 * print a full statistics report, optionally side by side with the
 * memory-mode baseline:
 *
 *   ppa_cli --list
 *   ppa_cli --app gcc --variant ppa --insts 50000 --compare
 *   ppa_cli --app rb --variant ppa --wpq 8 --bw 1.0
 *   ppa_cli --app water-sp --variant capri --threads 16
 *
 * The sweep subcommand runs a whole figure's simulation grid across
 * hardware threads and writes the schema-versioned JSON document
 * (docs/METRICS.md) that figure plotting consumes:
 *
 *   ppa_cli sweep --list
 *   ppa_cli sweep fig11
 *   ppa_cli sweep fig18 --jobs 8 --insts 30000 --out /tmp/res --csv
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "check/litmus.hh"
#include "common/table.hh"
#include "fuzz/campaign.hh"
#include "fuzz/shrink.hh"
#include "obs/telemetry.hh"
#include "obs/trace_export.hh"
#include "serve/serve.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/segment.hh"
#include "sim/figures.hh"
#include "sim/report.hh"
#include "trace/capture.hh"
#include "trace/reader.hh"

#ifndef PPA_SOURCE_DIR
#define PPA_SOURCE_DIR "."
#endif

using namespace ppa;

namespace
{

void
usageRun()
{
    std::printf(
        "subcommand: run — simulate one application (the default "
        "when no\n"
        "subcommand is named)\n"
        "  ppa_cli [run] --app NAME [options]\n"
        "  --list              list the modeled applications\n"
        "  --app NAME          application to run (required unless "
        "--list)\n"
        "  --variant V         memory-mode | ppa | capri | "
        "replaycache | eadr-bbb | dram-only (default: ppa)\n"
        "  --insts N           committed instructions per core "
        "(default 50000)\n"
        "  --threads N         thread/core count (default: profile)\n"
        "  --csq N             CSQ entries (default 40)\n"
        "  --int-prf N         integer PRF entries (default 180)\n"
        "  --fp-prf N          FP PRF entries (default 168)\n"
        "  --wpq N             WPQ entries per controller (default "
        "16)\n"
        "  --bw G              NVM write bandwidth GB/s (default "
        "2.3)\n"
        "  --l3                add an L3 between L2 and DRAM cache\n"
        "  --seed N            workload seed (default 42)\n"
        "  --compare           also run the memory-mode baseline and "
        "report the slowdown\n"
        "  --audit             attach the persistence-invariant "
        "auditors (ppa variant)\n"
        "  --fail-at-cycle N   inject a power failure at cycle N and "
        "recover through the\n"
        "                      serialized checkpoint (repeatable; ppa "
        "variant)\n"
        "  --trace DIR         replay a recorded trace instead of the "
        "generator; threads,\n"
        "                      insts, seed and app come from the "
        "manifest\n"
        "  --time-parallel K   split this one run into K instruction "
        "segments and simulate\n"
        "                      them concurrently (docs/PERF.md; not "
        "replaycache)\n"
        "  --warmup-insts N    per-segment warmup prefix in "
        "instructions, discarded while\n"
        "                      microarchitectural state re-converges "
        "(default 2000)\n"
        "  --sampled N         SimPoint-style sampling: simulate only "
        "every Nth segment and\n"
        "                      extrapolate, reporting a confidence "
        "estimate (default 1)\n"
        "  --tp-workers N      host threads for segment execution "
        "(0 = hardware); results\n"
        "                      are identical for any value\n"
        "  --tp-fail S:C       inject a power failure in segment S "
        "once its measured window\n"
        "                      has run C cycles (C=0 = exactly at the "
        "segment join;\n"
        "                      repeatable; ppa variant)\n"
        "  --error-bound       also run the unsegmented serial "
        "reference and report the\n"
        "                      per-stat warmup-truncation delta "
        "(requires --time-parallel)\n"
        "  --json FILE         also write the run's RunStats JSON to "
        "FILE\n"
        "  --telemetry         attach the in-run telemetry collector "
        "(docs/TELEMETRY.md):\n"
        "                      sampled counter series, region/power "
        "timelines, and\n"
        "                      stall attribution land in "
        "stats.telemetry\n"
        "  --telemetry-sample N  counter-series sampling period in "
        "cycles (default 256;\n"
        "                      implies --telemetry)\n"
        "  --telemetry-trace FILE  write a Chrome trace-event JSON of "
        "the run, loadable\n"
        "                      in Perfetto / chrome://tracing (implies "
        "--telemetry)\n");
}

void
usageProfile()
{
    std::printf(
        "subcommand: profile — run with telemetry and print where the "
        "cycles went\n"
        "  ppa_cli profile APP [options]\n"
        "  --variant V         system variant (default: ppa)\n"
        "  --insts N           committed instructions per core "
        "(default 50000)\n"
        "  --threads N         thread/core count (default: profile)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --telemetry-sample N  counter-series sampling period in "
        "cycles (default 256)\n"
        "  --telemetry-trace FILE  also write the Chrome trace-event "
        "JSON\n"
        "  --json FILE         also write the run's RunStats JSON "
        "(with stats.telemetry)\n");
}

void
usageTrace()
{
    std::printf(
        "subcommand: trace — record/inspect committed-stream traces\n"
        "  ppa_cli trace record --app NAME --out DIR [--insts N] "
        "[--seed N] [--threads N]\n"
        "                       [--shard-insts N] [--block-insts N]\n"
        "  ppa_cli trace info DIR      print the manifest and shard "
        "table\n"
        "  ppa_cli trace cat DIR [--thread T] [--limit N] [--start I]  "
        "dump records as text\n"
        "  ppa_cli trace verify DIR    check manifest, CRCs, and "
        "decode every block\n");
}

void
usageSweep()
{
    std::printf(
        "subcommand: sweep — run one figure's full grid in parallel\n"
        "  ppa_cli sweep FIGURE [options]\n"
        "  ppa_cli sweep --list    list the available figure sweeps\n"
        "  --jobs N            driver worker threads (default: "
        "hardware)\n"
        "  --insts N           committed instructions per core "
        "(default: figure's own)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --out DIR           output directory (default: "
        "$PPA_RESULTS_DIR or results)\n"
        "  --csv               also write FIGURE.csv next to the "
        "JSON\n"
        "  --audit             run every ppa-variant job with the "
        "invariant auditors attached\n"
        "  --telemetry         run every job with telemetry attached "
        "and write one Chrome\n"
        "                      trace per job under "
        "FIGURE_telemetry/\n");
}

void
usageBench()
{
    std::printf(
        "subcommand: bench — host-throughput benchmark (simulated "
        "KIPS)\n"
        "  ppa_cli bench [options]\n"
        "  --jobs N            driver worker threads (default: "
        "hardware)\n"
        "  --insts N           committed instructions per core "
        "(default 60000)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --reps N            repeat the grid N times, keep each "
        "job's best wall time (default 1)\n"
        "  --out DIR           output directory for "
        "BENCH_throughput.json (default: $PPA_RESULTS_DIR or "
        "results)\n"
        "  --baseline FILE     compare aggregate KIPS against a prior "
        "BENCH_throughput.json\n"
        "                      (relative paths resolve against the "
        "CWD, then the repo root)\n"
        "  --threshold PCT     fail when aggregate KIPS regresses "
        "more than PCT%% vs the baseline (default 15)\n"
        "  --trace DIR         run the grid trace-driven: record (or "
        "reuse) one trace per\n"
        "                      app under DIR and replay instead of "
        "generating\n"
        "  --time-parallel K   also time one long single-app run "
        "serial vs split into K\n"
        "                      segments, reusing seeked sources across "
        "reps; records\n"
        "                      tpSerialKips/tpKips/tpSpeedup in the "
        "JSON extras and gates\n"
        "                      tpSpeedup against the baseline when it "
        "records one\n"
        "  --telemetry         also time one gcc/ppa run with and "
        "without telemetry,\n"
        "                      record telemetryOverheadPct in the JSON "
        "extras, and fail\n"
        "                      when the overhead exceeds 5%%\n");
}

void
usageLitmus()
{
    std::printf(
        "subcommand: litmus — persistency-model conformance checks "
        "(docs/CHECKING.md)\n"
        "  ppa_cli litmus list                    show the litmus "
        "corpus\n"
        "  ppa_cli litmus run [TEST...] [options]     exhaustive "
        "crash-point enumeration\n"
        "  ppa_cli litmus explore [TEST...] [options] auditor-biased "
        "randomized crashes\n"
        "  --all               run the whole corpus\n"
        "  --variant V         system variant to crash-observe "
        "(default: ppa; memory-mode\n"
        "                      and replaycache are judged against "
        "their own model flavors)\n"
        "  --schedules N       explore: crash points to sample per "
        "test (default 64)\n"
        "  --seed N            explore: crash-schedule RNG seed "
        "(default 1)\n"
        "  --json FILE         write the conformance verdicts as JSON "
        "(tools/litmus_report.py\n"
        "                      aggregates results/litmus_*.json)\n"
        "  --expect-divergence fail unless at least one observed "
        "outcome diverges from the\n"
        "                      strict PPA model (baseline "
        "discrimination proof)\n");
}

void
usageFuzz()
{
    std::printf(
        "subcommand: fuzz — crash-consistency fuzzing campaign "
        "(docs/FUZZING.md)\n"
        "  ppa_cli fuzz run [options]   generate programs, crash them, "
        "judge, shrink\n"
        "  ppa_cli fuzz repro FILE      re-judge a minimal reproducer "
        "file\n"
        "  --variant V         variant to crash-observe (default: "
        "ppa)\n"
        "  --programs N        generated programs per campaign "
        "(default 200)\n"
        "  --schedules N       biased crash points per program "
        "(default 16)\n"
        "  --seed N            campaign seed; results are bitwise "
        "reproducible from it (default 1)\n"
        "  --max-findings N    offending programs to record, replay, "
        "and shrink (default 4)\n"
        "  --corpus-out DIR    write minimal reproducers here as "
        ".litmus files\n"
        "  --trace-out DIR     record findings as traces here and "
        "confirm them by replay\n"
        "  --json FILE         write the campaign verdict as JSON "
        "(tools/fuzz_report.py aggregates)\n"
        "  --expect-divergence fail unless the campaign found at "
        "least one strict-forbidden state\n"
        "  --check-minimal     repro: also verify the reproducer is "
        "1-minimal\n");
}

void
usageServe()
{
    std::printf(
        "subcommand: serve — open-loop transaction-serving study "
        "(docs/SERVING.md)\n"
        "  ppa_cli serve [options]    drive Zipfian request streams "
        "against each\n"
        "                             durability variant and compare "
        "tail latency,\n"
        "                             throughput, recovery time, and "
        "data loss\n"
        "  --workload W        tatp | tpcc | kv (default tatp)\n"
        "  --variant V         serve variant: ppa, undo-redo-log, "
        "delay-free;\n"
        "                      repeatable (default: all three)\n"
        "  --ops N             total requests across all threads "
        "(default 1000000)\n"
        "  --threads N         server cores / request streams "
        "(default 2)\n"
        "  --keys N            per-thread key-space size; a power of "
        "two <= 65536\n"
        "                      (default 4096)\n"
        "  --skew S            Zipfian theta, non-negative; 0 = "
        "uniform (default 0.99)\n"
        "  --read-pct N        kv workload GET percentage, 0..100 "
        "(default 50)\n"
        "  --arrival A         arrival process: poisson | bursty "
        "(default poisson)\n"
        "  --mean-gap N        mean inter-arrival gap per stream in "
        "cycles (default 256)\n"
        "  --burst-factor F    bursty: on-phase rate multiplier "
        "(default 4)\n"
        "  --burst-period N    bursty: square-wave period in cycles "
        "(default 65536)\n"
        "  --on-fraction F     bursty: fraction of each period in the "
        "on phase,\n"
        "                      in (0, 1) (default 0.25)\n"
        "  --failures N        injected power-failure points per "
        "variant (default 8)\n"
        "  --seed N            root seed; the whole study is bitwise "
        "reproducible\n"
        "                      from it (default 42)\n"
        "  --workers N         host threads for failure branches; any "
        "value yields\n"
        "                      identical output (default: hardware "
        "parallelism)\n"
        "  --json FILE         write the study as JSON "
        "(tools/serve_report.py renders it)\n"
        "  --telemetry         collect in-run telemetry and request "
        "spans per variant\n"
        "  --telemetry-trace FILE  write the first variant's Chrome "
        "trace (needs --telemetry)\n");
}

void
usage()
{
    std::printf(
        "usage: ppa_cli [SUBCOMMAND] [options]\n"
        "subcommands: run (default), sweep, bench, trace, profile, "
        "litmus, fuzz, serve\n"
        "flags are grouped by the subcommand they belong to:\n"
        "\n");
    usageRun();
    std::printf("\n");
    usageProfile();
    std::printf("\n");
    usageTrace();
    std::printf("\n");
    usageSweep();
    std::printf("\n");
    usageBench();
    std::printf("\n");
    usageLitmus();
    std::printf("\n");
    usageFuzz();
    std::printf("\n");
    usageServe();
}

SystemVariant
parseVariant(const std::string &name)
{
    SystemVariant v;
    if (!variantFromToken(name, v)) {
        std::fprintf(stderr, "unknown variant '%s'\n", name.c_str());
        std::exit(1);
    }
    return v;
}

/**
 * Strict decimal parse for flag values: the whole token must be
 * digits and fit 64 bits. strtoull's permissiveness (empty strings,
 * trailing garbage, silent wraparound) would turn a typo into a
 * quietly misconfigured run.
 */
std::uint64_t
parseCount(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (*text == '\0' || *end != '\0' || errno == ERANGE ||
        *text == '-' || *text == '+') {
        std::fprintf(stderr,
                     "%s wants an unsigned integer, got '%s' (see "
                     "ppa_cli --help)\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

/** Strict parse of a non-negative real flag value; same philosophy as
 *  parseCount (reject empty, trailing garbage, range errors, and
 *  negative or NaN values). */
double
parseNonNegDouble(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (*text == '\0' || *end != '\0' || errno == ERANGE ||
        !(v >= 0.0)) {
        std::fprintf(stderr,
                     "%s wants a non-negative number, got '%s' (see "
                     "ppa_cli --help)\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

/** Like parseCount, but zero is rejected too (a vacuous campaign or
 *  schedule count silently tests nothing). */
std::uint64_t
parsePositiveCount(const char *flag, const char *text)
{
    std::uint64_t v = parseCount(flag, text);
    if (v == 0) {
        std::fprintf(stderr,
                     "%s must be positive, got '%s' (see ppa_cli "
                     "--help)\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

int
sweepMain(int argc, char **argv)
{
    std::string figure;
    unsigned jobs = 0;
    std::uint64_t insts = 0;
    std::uint64_t seed = 42;
    std::string outDir = metrics::resultsDir();
    bool csv = false;
    bool audit = false;
    bool telemetry = false;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            TextTable t({"figure", "jobs", "description"});
            for (const auto &name : figureNames()) {
                FigureSweep fs = figureSweep(name);
                t.addRow({fs.name, std::to_string(fs.jobs.size()),
                          fs.description});
            }
            std::printf("%s", t.render().c_str());
            return 0;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg == "--telemetry") {
            telemetry = true;
        } else if (arg == "--help" || arg == "-h") {
            usageSweep();
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && figure.empty()) {
            figure = arg;
        } else {
            std::fprintf(stderr, "unknown sweep option '%s'\n",
                         arg.c_str());
            usageSweep();
            return 1;
        }
    }

    if (figure.empty()) {
        std::fprintf(stderr,
                     "sweep: figure name required (see sweep --list)\n");
        return 1;
    }
    if (!figureExists(figure)) {
        std::fprintf(stderr,
                     "sweep: unknown figure '%s' (see sweep --list)\n",
                     figure.c_str());
        return 1;
    }

    FigureSweep fs = figureSweep(figure, insts, seed);
    if (audit) {
        for (SweepJob &job : fs.jobs)
            job.knobs.audit = true;
    }
    if (telemetry) {
        for (SweepJob &job : fs.jobs)
            job.knobs.telemetry = true;
    }
    ExperimentDriver driver(jobs);
    std::fprintf(stderr, "sweep %s: %zu jobs on %u threads — %s\n",
                 fs.name.c_str(), fs.jobs.size(), driver.workers(),
                 fs.description.c_str());
    auto results = driver.run(
        fs.jobs,
        [](const JobResult &r, std::size_t done, std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] %s/%s (%.2fs)\n", done,
                         total, r.job.profile.name.c_str(),
                         variantToken(r.job.variant), r.wallSeconds);
        });

    if (audit) {
        std::uint64_t events = 0;
        std::uint64_t violations = 0;
        for (const JobResult &r : results) {
            events += r.stats.auditEvents;
            violations += r.stats.auditViolations;
            for (const std::string &m : r.stats.auditMessages)
                std::fprintf(stderr, "  audit: %s\n", m.c_str());
        }
        std::printf("audit: %llu events, %llu violations\n",
                    static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(violations));
        if (violations)
            return 1;
    }

    if (telemetry) {
        // One Chrome trace per job. Figures re-run the same
        // (workload, variant) pair under different knobs, so the job
        // index keeps the filenames unique.
        std::string traceDir = outDir + "/" + fs.name + "_telemetry";
        std::error_code ec;
        std::filesystem::create_directories(traceDir, ec);
        for (std::size_t j = 0; j < results.size(); ++j) {
            const JobResult &r = results[j];
            std::string path = traceDir + "/" + std::to_string(j) +
                               "_" + r.job.profile.name + "_" +
                               variantToken(r.job.variant) +
                               ".trace.json";
            if (!obs::writeChromeTrace(r.stats.telemetry, path)) {
                std::fprintf(stderr, "sweep: cannot write %s\n",
                             path.c_str());
                return 1;
            }
        }
        std::printf("wrote %zu telemetry trace(s) under %s\n",
                    results.size(), traceDir.c_str());
    }

    std::string jsonPath = outDir + "/" + fs.name + ".json";
    if (!metrics::writeFile(jsonPath,
                            metrics::sweepToJson(fs.name, results)))
        return 1;
    std::printf("wrote %s (%zu jobs)\n", jsonPath.c_str(),
                results.size());
    if (csv) {
        std::string csvPath = outDir + "/" + fs.name + ".csv";
        if (!metrics::writeFile(csvPath, metrics::sweepToCsv(results)))
            return 1;
        std::printf("wrote %s\n", csvPath.c_str());
    }
    return 0;
}

int
traceRecordMain(int argc, char **argv)
{
    std::string app;
    std::string out;
    trace::CaptureSpec spec;
    spec.instsPerThread = 50'000;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--app") {
            app = next();
        } else if (arg == "--out") {
            out = next();
        } else if (arg == "--insts") {
            spec.instsPerThread = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            spec.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threads") {
            spec.threads =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--shard-insts") {
            spec.shardInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--block-insts") {
            spec.blockInsts =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        } else {
            std::fprintf(stderr, "unknown trace record option '%s'\n",
                         arg.c_str());
            return 1;
        }
    }
    if (app.empty() || out.empty()) {
        std::fprintf(stderr,
                     "trace record: --app and --out are required\n");
        return 1;
    }

    const WorkloadProfile &profile = profileByName(app);
    trace::TraceSummary s = trace::recordWorkloadTrace(out, profile, spec);
    std::printf("recorded %s: %llu insts in %u shard(s), crc %08x\n",
                out.c_str(),
                static_cast<unsigned long long>(s.totalInsts),
                s.shardCount, s.combinedCrc);
    return 0;
}

int
traceInfoMain(const std::string &dir)
{
    trace::TraceSet set = trace::TraceSet::openOrDie(dir);
    const trace::TraceMeta &meta = set.metadata();
    TextTable t({"field", "value"});
    t.addRow({"app", meta.app});
    t.addRow({"seed", std::to_string(meta.seed)});
    t.addRow({"threads", std::to_string(meta.threads)});
    t.addRow({"insts / thread", std::to_string(meta.instsPerThread)});
    t.addRow({"shard insts", std::to_string(meta.shardInsts)});
    t.addRow({"block insts", std::to_string(meta.blockInsts)});
    t.addRow({"shards", std::to_string(set.allShards().size())});
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", set.combinedCrc());
    t.addRow({"combined crc32", crc});
    std::printf("%s", t.render().c_str());

    TextTable shards({"file", "thread", "first index", "insts", "crc32"});
    for (const trace::ShardInfo &s : set.allShards()) {
        std::snprintf(crc, sizeof(crc), "%08x", s.crc32);
        shards.addRow({s.file, std::to_string(s.thread),
                       std::to_string(s.firstIndex),
                       std::to_string(s.count), crc});
    }
    std::printf("%s", shards.render().c_str());
    return 0;
}

int
traceCatMain(const std::string &dir, int argc, char **argv)
{
    unsigned thread = 0;
    std::uint64_t limit = 32;
    std::uint64_t start = 0;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--thread") {
            thread =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--limit") {
            limit = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--start") {
            start = std::strtoull(next(), nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown trace cat option '%s'\n",
                         arg.c_str());
            return 1;
        }
    }

    trace::TraceSet set = trace::TraceSet::openOrDie(dir);
    if (thread >= set.metadata().threads) {
        std::fprintf(stderr, "trace cat: thread %u out of range (%u)\n",
                     thread, set.metadata().threads);
        return 1;
    }
    trace::TraceReplaySource src(set, thread);
    if (start > 0)
        src.seekTo(start);
    TextTable t({"index", "pc", "op", "dst", "srcs", "imm", "memAddr",
                 "taken"});
    DynInst inst;
    for (std::uint64_t n = 0; n < limit && src.next(inst); ++n) {
        char pc[24], mem[24];
        std::snprintf(pc, sizeof(pc), "0x%llx",
                      static_cast<unsigned long long>(inst.pc));
        std::snprintf(mem, sizeof(mem), "0x%llx",
                      static_cast<unsigned long long>(inst.memAddr));
        std::string dst = "-";
        if (inst.dst.valid()) {
            dst = (inst.dst.cls == RegClass::Fp ? "f" : "r") +
                  std::to_string(inst.dst.idx);
        }
        std::string srcs;
        for (int s = 0; s < inst.numSrcs(); ++s) {
            srcs += (s ? "," : "");
            srcs += (inst.srcs[s].cls == RegClass::Fp ? "f" : "r") +
                    std::to_string(inst.srcs[s].idx);
        }
        t.addRow({std::to_string(inst.index), pc,
                  std::string(opName(inst.op)), dst,
                  srcs.empty() ? std::string("-") : srcs,
                  std::to_string(inst.imm),
                  inst.memAddr ? std::string(mem) : std::string("-"),
                  inst.taken ? std::string("T") : std::string("-")});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
traceVerifyMain(const std::string &dir)
{
    trace::VerifyResult r = trace::verifyTrace(dir);
    for (const std::string &e : r.errors)
        std::fprintf(stderr, "trace verify: %s: %s\n", dir.c_str(),
                     e.c_str());
    if (!r.ok) {
        std::fprintf(stderr, "trace verify: %s: FAILED (%zu error(s))\n",
                     dir.c_str(), r.errors.size());
        return 1;
    }
    std::printf("trace verify: %s: OK — %llu insts, %u shard(s), "
                "crc %08x\n",
                dir.c_str(),
                static_cast<unsigned long long>(r.totalInsts),
                r.shardCount, r.combinedCrc);
    return 0;
}

int
traceMain(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr,
                     "trace: subcommand required "
                     "(record | info | cat | verify)\n");
        return 1;
    }
    std::string cmd = argv[0];
    if (cmd == "record")
        return traceRecordMain(argc - 1, argv + 1);
    if (cmd == "--help" || cmd == "-h") {
        usageTrace();
        return 0;
    }
    // The remaining subcommands all take the trace directory first.
    if (argc < 2) {
        std::fprintf(stderr, "trace %s: trace directory required\n",
                     cmd.c_str());
        return 1;
    }
    std::string dir = argv[1];
    if (cmd == "info")
        return traceInfoMain(dir);
    if (cmd == "cat")
        return traceCatMain(dir, argc - 2, argv + 2);
    if (cmd == "verify")
        return traceVerifyMain(dir);
    std::fprintf(stderr, "unknown trace subcommand '%s'\n", cmd.c_str());
    return 1;
}

/**
 * Resolve the bench --baseline path: absolute paths and paths that
 * exist relative to the CWD are taken as-is; other relative paths
 * resolve against the repo root, so `ppa_cli bench --baseline
 * bench/throughput_baseline.json` works from any directory.
 */
std::string
resolveBaselinePath(const std::string &path)
{
    std::filesystem::path p(path);
    if (p.is_absolute() || std::filesystem::exists(p))
        return path;
    return std::string(PPA_SOURCE_DIR) + "/" + path;
}

/** Aggregate simulated kilo-instructions per host-second across a
 *  result set: total committed work over total per-job wall time. */
double
aggregateKips(const std::vector<JobResult> &results)
{
    double insts = 0.0;
    double wall = 0.0;
    for (const JobResult &r : results) {
        insts += static_cast<double>(r.stats.committedInsts);
        wall += r.wallSeconds;
    }
    return wall > 0.0 ? insts / wall / 1e3 : 0.0;
}

int
benchMain(int argc, char **argv)
{
    unsigned jobs = 0;
    std::uint64_t insts = 0;
    std::uint64_t seed = 42;
    unsigned reps = 1;
    unsigned timeParallel = 0;
    bool telemetry = false;
    std::string outDir = metrics::resultsDir();
    std::string baselinePath;
    std::string traceRoot;
    double thresholdPct = 15.0;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--reps") {
            reps = std::max(
                1u, static_cast<unsigned>(
                        std::strtoul(next(), nullptr, 10)));
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--trace") {
            traceRoot = next();
        } else if (arg == "--time-parallel") {
            timeParallel = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--telemetry") {
            telemetry = true;
        } else if (arg == "--threshold") {
            thresholdPct = std::strtod(next(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usageBench();
            return 0;
        } else {
            std::fprintf(stderr, "unknown bench option '%s'\n",
                         arg.c_str());
            usageBench();
            return 1;
        }
    }

    // Fail fast on a bad baseline path: a typo must not cost a full
    // bench run before it is reported.
    std::string resolvedBaseline;
    if (!baselinePath.empty()) {
        resolvedBaseline = resolveBaselinePath(baselinePath);
        if (!std::filesystem::exists(resolvedBaseline)) {
            std::fprintf(stderr,
                         "bench: baseline file '%s' not found (tried "
                         "'%s'; relative paths resolve against the "
                         "CWD, then the repo root)\n",
                         baselinePath.c_str(),
                         resolvedBaseline.c_str());
            return 1;
        }
    }

    FigureSweep fs = throughputSweep(insts, seed);
    if (!traceRoot.empty()) {
        // Trace-driven bench: one recording per app feeds all its
        // variant jobs; matching traces from an earlier run are
        // reused, so only the first run pays the capture cost.
        for (SweepJob &job : fs.jobs) {
            trace::CaptureSpec spec;
            spec.seed = job.knobs.seed;
            spec.threads = job.knobs.threads;
            spec.instsPerThread = job.knobs.instsPerCore;
            std::string dir = traceRoot + "/" + job.profile.name;
            trace::ensureWorkloadTrace(dir, job.profile, spec);
            job.knobs.traceDir = dir;
        }
        std::fprintf(stderr, "bench: trace-driven from %s\n",
                     traceRoot.c_str());
    }
    ExperimentDriver driver(jobs);
    std::fprintf(stderr,
                 "bench: %zu jobs x %u rep(s) on %u threads — %s\n",
                 fs.jobs.size(), reps, driver.workers(),
                 fs.description.c_str());

    // Repetitions re-run the identical grid; each job keeps its best
    // (minimum) wall time, which is the standard defense against
    // scheduling noise on a shared host. Simulation results are
    // deterministic, so only the timing differs between reps.
    std::vector<JobResult> results;
    for (unsigned rep = 0; rep < reps; ++rep) {
        auto repResults = driver.run(fs.jobs, {});
        if (rep == 0) {
            results = std::move(repResults);
            continue;
        }
        for (std::size_t j = 0; j < results.size(); ++j)
            results[j].wallSeconds = std::min(
                results[j].wallSeconds, repResults[j].wallSeconds);
    }

    TextTable t({"workload", "variant", "insts", "wall ms", "KIPS"});
    double logSum = 0.0;
    for (const JobResult &r : results) {
        double kips =
            r.wallSeconds > 0.0
                ? static_cast<double>(r.stats.committedInsts) /
                      r.wallSeconds / 1e3
                : 0.0;
        logSum += std::log(std::max(kips, 1e-9));
        t.addRow({r.job.profile.name, variantToken(r.job.variant),
                  std::to_string(r.stats.committedInsts),
                  TextTable::num(r.wallSeconds * 1e3, 2),
                  TextTable::num(kips, 1)});
    }
    std::printf("%s", t.render().c_str());

    double agg = aggregateKips(results);
    double geomean =
        results.empty()
            ? 0.0
            : std::exp(logSum / static_cast<double>(results.size()));
    std::printf("aggregate: %.1f KIPS   per-job geomean: %.1f KIPS\n",
                agg, geomean);

    // Single-app time-parallel series: one long run, serial vs split
    // into K segments. The speedup is a within-host ratio, so it is
    // comparable across machines in a way raw KIPS is not — that is
    // what the baseline gate checks below.
    double tpSerialKips = 0.0;
    double tpKips = 0.0;
    double tpSpeedup = 0.0;
    if (timeParallel >= 2) {
        const WorkloadProfile &profile = profileByName("gcc");
        ExperimentKnobs serialKnobs;
        serialKnobs.seed = seed;
        // The long run is 4x the grid's per-job budget: segment
        // overlap only pays off once per-segment work dominates
        // per-segment system construction and warmup.
        serialKnobs.instsPerCore = insts ? insts * 4 : 240'000;
        ExperimentKnobs segKnobs = serialKnobs;
        segKnobs.timeParallel = timeParallel;
        std::fprintf(stderr,
                     "bench: time-parallel series — gcc/ppa, %llu "
                     "insts, %u segment(s)\n",
                     static_cast<unsigned long long>(
                         serialKnobs.instsPerCore),
                     timeParallel);
        SegmentSourceCache cache;
        double serialBest = 0.0;
        double tpBest = 0.0;
        RunStats serialStats;
        RunStats tpStats;
        for (unsigned rep = 0; rep < reps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            serialStats =
                runWorkload(profile, SystemVariant::Ppa, serialKnobs);
            auto t1 = std::chrono::steady_clock::now();
            tpStats = runWorkloadTimeParallel(
                profile, SystemVariant::Ppa, segKnobs, &cache);
            auto t2 = std::chrono::steady_clock::now();
            double serialWall =
                std::chrono::duration<double>(t1 - t0).count();
            double tpWall =
                std::chrono::duration<double>(t2 - t1).count();
            if (rep == 0 || serialWall < serialBest)
                serialBest = serialWall;
            if (rep == 0 || tpWall < tpBest)
                tpBest = tpWall;
        }
        tpSerialKips =
            serialBest > 0.0
                ? static_cast<double>(serialStats.committedInsts) /
                      serialBest / 1e3
                : 0.0;
        tpKips = tpBest > 0.0
                     ? static_cast<double>(tpStats.committedInsts) /
                           tpBest / 1e3
                     : 0.0;
        tpSpeedup = tpBest > 0.0 ? serialBest / tpBest : 0.0;
        std::printf("time-parallel: serial %.1f KIPS, %u segments "
                    "%.1f KIPS — %.2fx speedup\n",
                    tpSerialKips, timeParallel, tpKips, tpSpeedup);
        std::printf("time-parallel: %llu insts re-generated by source "
                    "seeks across %u rep(s) (cache reuse)\n",
                    static_cast<unsigned long long>(
                        cache.generatorReplayedInsts()),
                    reps);
    }

    // Telemetry overhead series: one gcc/ppa run timed with the
    // collector off and on. The docs/TELEMETRY.md overhead contract
    // says the *enabled* collector costs < 5%; the null path is
    // covered by the ordinary aggregate-KIPS gate above because every
    // grid job runs with telemetry off.
    double telemetryOverheadPct = 0.0;
    if (telemetry) {
        const WorkloadProfile &profile = profileByName("gcc");
        ExperimentKnobs offKnobs;
        offKnobs.seed = seed;
        offKnobs.instsPerCore = insts ? insts : 60'000;
        ExperimentKnobs onKnobs = offKnobs;
        onKnobs.telemetry = true;
        std::fprintf(stderr,
                     "bench: telemetry overhead series — gcc/ppa, "
                     "%llu insts\n",
                     static_cast<unsigned long long>(
                         offKnobs.instsPerCore));
        double offBest = 0.0;
        double onBest = 0.0;
        for (unsigned rep = 0; rep < reps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            runWorkload(profile, SystemVariant::Ppa, offKnobs);
            auto t1 = std::chrono::steady_clock::now();
            runWorkload(profile, SystemVariant::Ppa, onKnobs);
            auto t2 = std::chrono::steady_clock::now();
            double offWall =
                std::chrono::duration<double>(t1 - t0).count();
            double onWall =
                std::chrono::duration<double>(t2 - t1).count();
            if (rep == 0 || offWall < offBest)
                offBest = offWall;
            if (rep == 0 || onWall < onBest)
                onBest = onWall;
        }
        telemetryOverheadPct =
            offBest > 0.0 ? (onBest / offBest - 1.0) * 100.0 : 0.0;
        std::printf("telemetry: off %.2f ms, on %.2f ms — %.1f%% "
                    "overhead\n",
                    offBest * 1e3, onBest * 1e3, telemetryOverheadPct);
    }

    std::vector<std::pair<std::string, double>> extra = {
        {"aggregateKips", agg},
        {"geomeanKips", geomean},
        {"reps", static_cast<double>(reps)},
        {"workers", static_cast<double>(driver.workers())}};
    if (telemetry)
        extra.emplace_back("telemetryOverheadPct", telemetryOverheadPct);
    if (timeParallel >= 2) {
        extra.emplace_back("tpSegments",
                           static_cast<double>(timeParallel));
        extra.emplace_back("tpSerialKips", tpSerialKips);
        extra.emplace_back("tpKips", tpKips);
        extra.emplace_back("tpSpeedup", tpSpeedup);
    }
    std::string jsonPath = outDir + "/BENCH_throughput.json";
    if (!metrics::writeFile(jsonPath,
                            metrics::sweepToJson(fs.name, results,
                                                 extra)))
        return 1;
    std::printf("wrote %s (%zu jobs)\n", jsonPath.c_str(),
                results.size());

    // Absolute telemetry-overhead gate (no baseline needed: the
    // contract is a fixed 5% bound, not a regression ratio).
    if (telemetry && telemetryOverheadPct > 5.0) {
        std::fprintf(stderr,
                     "bench: FAIL — telemetry overhead %.1f%% exceeds "
                     "the 5%% contract\n",
                     telemetryOverheadPct);
        return 1;
    }

    if (baselinePath.empty())
        return 0;

    // Regression gate: recompute the baseline aggregate from its job
    // list (rather than trusting its "extra" block) so hand-edited or
    // older documents still compare apples to apples.
    const std::string &resolved = resolvedBaseline;
    std::string text;
    if (!metrics::readFile(resolved, text))
        return 1;
    metrics::JsonValue doc;
    std::string err;
    if (!metrics::JsonValue::parse(text, doc, err)) {
        std::fprintf(stderr, "bench: cannot parse baseline %s: %s\n",
                     resolved.c_str(), err.c_str());
        return 1;
    }
    double baseInsts = 0.0;
    double baseWall = 0.0;
    const auto &baseJobs = doc.field("jobs");
    for (std::size_t j = 0; j < baseJobs.size(); ++j) {
        const auto &job = baseJobs.at(j);
        baseInsts += static_cast<double>(
            job.field("stats").field("committedInsts").asUint64());
        baseWall += job.field("wallSeconds").asDouble();
    }
    double baseAgg = baseWall > 0.0 ? baseInsts / baseWall / 1e3 : 0.0;
    if (baseAgg <= 0.0) {
        std::fprintf(stderr, "bench: baseline %s has no timed jobs\n",
                     resolved.c_str());
        return 1;
    }
    double ratio = agg / baseAgg;
    std::printf("baseline: %.1f KIPS (%s) — current/baseline %.2fx\n",
                baseAgg, resolved.c_str(), ratio);
    if (ratio < 1.0 - thresholdPct / 100.0) {
        std::fprintf(stderr,
                     "bench: FAIL — aggregate KIPS regressed %.1f%% "
                     "(threshold %.1f%%)\n",
                     (1.0 - ratio) * 100.0, thresholdPct);
        return 1;
    }
    // Time-parallel speedup gate: a within-host ratio, so it survives
    // machine changes that shift raw KIPS. Only enforced when both
    // this run and the baseline measured it.
    if (tpSpeedup > 0.0 && doc.hasField("extra") &&
        doc.field("extra").hasField("tpSpeedup")) {
        double baseSpeedup =
            doc.field("extra").field("tpSpeedup").asDouble();
        if (baseSpeedup > 0.0) {
            double spRatio = tpSpeedup / baseSpeedup;
            std::printf("baseline tpSpeedup: %.2fx — "
                        "current/baseline %.2fx\n",
                        baseSpeedup, spRatio);
            if (spRatio < 1.0 - thresholdPct / 100.0) {
                std::fprintf(stderr,
                             "bench: FAIL — time-parallel speedup "
                             "regressed %.1f%% (threshold %.1f%%)\n",
                             (1.0 - spRatio) * 100.0, thresholdPct);
                return 1;
            }
        }
    }
    std::printf("bench: OK (within %.1f%% of baseline)\n",
                thresholdPct);
    return 0;
}

void
printStats(const RunStats &rs)
{
    TextTable t({"metric", "value"});
    t.addRow({"workload", rs.workload});
    t.addRow({"variant", variantName(rs.variant)});
    t.addRow({"threads", std::to_string(rs.threads)});
    t.addRow({"measured cycles", std::to_string(rs.cycles)});
    t.addRow({"total cycles (with warmup)",
              std::to_string(rs.totalCycles)});
    t.addRow({"committed instructions",
              std::to_string(rs.committedInsts)});
    t.addRow({"committed stores", std::to_string(rs.committedStores)});
    t.addRow({"system IPC", TextTable::num(rs.ipc, 2)});
    t.addRow({"L2 miss ratio", TextTable::percent(rs.l2MissRatio)});
    t.addRow({"NVM reads", std::to_string(rs.nvmReads)});
    t.addRow({"NVM writes", std::to_string(rs.nvmWrites)});
    t.addRow({"NVM bytes written", std::to_string(rs.nvmBytesWritten)});
    if (rs.regionCount) {
        t.addRow({"regions", std::to_string(rs.regionCount)});
        t.addRow({"stores / region",
                  TextTable::num(rs.avgRegionStores, 1)});
        t.addRow({"others / region",
                  TextTable::num(rs.avgRegionOthers, 1)});
        t.addRow({"boundary stall cycles",
                  std::to_string(rs.boundaryStallCycles)});
        t.addRow({"boundary stall ratio",
                  TextTable::percent(rs.boundaryStallRatio(), 2)});
        t.addRow({"persist ops", std::to_string(rs.persistOps)});
        t.addRow({"coalesced stores",
                  std::to_string(rs.coalescedStores)});
    }
    t.addRow({"rename no-free-reg stall",
              TextTable::percent(rs.renameStallRatio(), 2)});
    if (rs.auditEvents) {
        t.addRow({"audit events", std::to_string(rs.auditEvents)});
        t.addRow({"audit violations",
                  std::to_string(rs.auditViolations)});
    }
    if (!rs.traceDir.empty()) {
        char crc[16];
        std::snprintf(crc, sizeof(crc), "%08x", rs.traceCrc);
        t.addRow({"trace dir", rs.traceDir});
        t.addRow({"trace shards", std::to_string(rs.traceShards)});
        t.addRow({"trace insts", std::to_string(rs.traceInsts)});
        t.addRow({"trace crc32", crc});
    }
    if (rs.tpSegments) {
        t.addRow({"tp segments (simulated/total)",
                  std::to_string(rs.tpSimulatedSegments) + "/" +
                      std::to_string(rs.tpSegments)});
        t.addRow({"tp warmup insts / segment",
                  std::to_string(rs.tpWarmupInsts)});
        t.addRow({"tp warmup cycles (overlap work)",
                  std::to_string(rs.tpWarmupCycles)});
        if (rs.tpSampleStride > 1) {
            t.addRow({"tp sample stride",
                      std::to_string(rs.tpSampleStride)});
            t.addRow({"tp CPI rel stderr",
                      TextTable::percent(rs.tpCpiRelStderr, 2)});
        }
    }
    if (rs.powerFailures) {
        t.addRow({"power failures injected",
                  std::to_string(rs.powerFailures)});
        t.addRow({"replay audits", std::to_string(rs.replayAudits)});
        t.addRow({"replay addrs checked",
                  std::to_string(rs.replayAddrsChecked)});
        t.addRow({"replay mismatches",
                  std::to_string(rs.replayMismatches)});
    }
    if (rs.telemetry.enabled) {
        t.addRow({"telemetry covered cycles / core",
                  std::to_string(rs.telemetry.coveredCycles)});
        t.addRow({"telemetry series",
                  std::to_string(rs.telemetry.series.size())});
        t.addRow({"telemetry region events",
                  std::to_string(rs.telemetry.regionEvents.size())});
    }
    std::printf("%s", t.render().c_str());
    for (const std::string &m : rs.auditMessages)
        std::fprintf(stderr, "audit: %s\n", m.c_str());
}

/**
 * Print the stall-attribution and counter-series tables for a
 * telemetry-enabled run — the body of `ppa_cli profile`. Returns
 * false when the attribution partition does not cover the run's
 * cycles (a contract violation the CI smoke job would catch).
 */
bool
printTelemetryProfile(const RunStats &rs)
{
    const obs::TelemetryResult &t = rs.telemetry;

    TextTable stall({"cycle class", "cycles", "share"});
    std::uint64_t attributed = 0;
    for (unsigned c = 0; c < obs::kCycleClassCount; ++c)
        attributed += t.classCycles(static_cast<obs::CycleClass>(c));
    for (unsigned c = 0; c < obs::kCycleClassCount; ++c) {
        auto cls = static_cast<obs::CycleClass>(c);
        std::uint64_t cyc = t.classCycles(cls);
        stall.addRow({obs::cycleClassLabel(cls), std::to_string(cyc),
                      TextTable::percent(
                          attributed ? static_cast<double>(cyc) /
                                           static_cast<double>(attributed)
                                     : 0.0,
                          2)});
    }
    stall.addRow({"total", std::to_string(attributed), "100.00%"});
    std::printf("\nstall attribution (%zu core(s), %llu covered "
                "cycles each):\n%s",
                t.stallCycles.size(),
                static_cast<unsigned long long>(t.coveredCycles),
                stall.render().c_str());

    TextTable series({"series", "core", "samples", "mean", "p95",
                      "max bucket", "total"});
    for (const obs::TelemetrySeries &s : t.series) {
        series.addRow({s.name,
                       s.core < 0 ? std::string("sys")
                                  : std::to_string(s.core),
                       std::to_string(s.samples()),
                       TextTable::num(s.mean(), 2),
                       TextTable::num(s.percentile(0.95), 2),
                       TextTable::num(s.maxBucketMean(), 2),
                       std::to_string(s.total())});
    }
    std::printf("\ncounter series (sample period %llu cycles):\n%s",
                static_cast<unsigned long long>(t.sampleCycles),
                series.render().c_str());

    if (!t.regionEvents.empty() || t.droppedRegionEvents) {
        std::uint64_t drainCycles = 0;
        for (const obs::TelemetryRegionEvent &e : t.regionEvents)
            drainCycles += e.end - e.drainStart;
        std::printf("\nregions: %zu recorded (%llu dropped past cap), "
                    "%llu drain cycles in recorded spans\n",
                    t.regionEvents.size(),
                    static_cast<unsigned long long>(
                        t.droppedRegionEvents),
                    static_cast<unsigned long long>(drainCycles));
    }
    if (!t.powerEvents.empty())
        std::printf("power events: %zu span(s)\n",
                    t.powerEvents.size());

    // The acceptance check: every core's attribution rows partition
    // its covered cycles, and the covered window is the whole run.
    bool ok = true;
    for (std::size_t core = 0; core < t.stallCycles.size(); ++core) {
        std::uint64_t sum = 0;
        for (std::uint64_t v : t.stallCycles[core])
            sum += v;
        if (sum != t.coveredCycles)
            ok = false;
    }
    std::printf("attribution check: %llu cycles/core attributed, "
                "%llu covered, run total %llu — %s\n",
                static_cast<unsigned long long>(
                    t.stallCycles.empty()
                        ? 0
                        : attributed / t.stallCycles.size()),
                static_cast<unsigned long long>(t.coveredCycles),
                static_cast<unsigned long long>(rs.totalCycles),
                ok ? "OK" : "MISMATCH");
    return ok;
}

int
profileMain(int argc, char **argv)
{
    std::string app;
    std::string variant_name = "ppa";
    std::string tracePath;
    std::string jsonPath;
    ExperimentKnobs knobs;
    knobs.instsPerCore = 50'000;
    knobs.telemetry = true;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--variant") {
            variant_name = next();
        } else if (arg == "--insts") {
            knobs.instsPerCore = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threads") {
            knobs.threads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--seed") {
            knobs.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--telemetry-sample") {
            knobs.telemetrySampleCycles =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--telemetry-trace") {
            tracePath = next();
        } else if (arg == "--json") {
            jsonPath = next();
        } else if (arg == "--help" || arg == "-h") {
            usageProfile();
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && app.empty()) {
            app = arg;
        } else {
            std::fprintf(stderr, "unknown profile option '%s'\n",
                         arg.c_str());
            usageProfile();
            return 1;
        }
    }
    if (app.empty()) {
        std::fprintf(stderr, "profile: application name required\n");
        usageProfile();
        return 1;
    }

    const WorkloadProfile &profile = profileByName(app);
    SystemVariant variant = parseVariant(variant_name);
    RunStats rs = runWorkload(profile, variant, knobs);

    TextTable head({"metric", "value"});
    head.addRow({"workload", rs.workload});
    head.addRow({"variant", variantName(rs.variant)});
    head.addRow({"threads", std::to_string(rs.threads)});
    head.addRow({"total cycles", std::to_string(rs.totalCycles)});
    head.addRow({"committed instructions",
                 std::to_string(rs.committedInsts)});
    head.addRow({"system IPC", TextTable::num(rs.ipc, 2)});
    std::printf("%s", head.render().c_str());

    bool ok = printTelemetryProfile(rs);

    if (!tracePath.empty()) {
        if (!obs::writeChromeTrace(rs.telemetry, tracePath)) {
            std::fprintf(stderr, "profile: cannot write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("wrote %s (load in https://ui.perfetto.dev or "
                    "chrome://tracing)\n",
                    tracePath.c_str());
    }
    if (!jsonPath.empty()) {
        if (!metrics::writeFile(jsonPath,
                                metrics::runStatsToJson(rs) + "\n"))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return ok ? 0 : 1;
}

int
litmusMain(int argc, char **argv)
{
    using check::ExploreMode;
    using check::LitmusOptions;
    using check::LitmusResult;
    using check::LitmusTest;

    if (argc < 1) {
        usageLitmus();
        return 1;
    }
    std::string verb = argv[0];
    if (verb == "--help" || verb == "-h") {
        usageLitmus();
        return 0;
    }

    if (verb == "list") {
        TextTable t({"test", "threads", "stores", "observed", "prefix",
                     "description"});
        for (const LitmusTest &test : check::litmusCorpus()) {
            std::vector<const Program *> progs;
            for (const Program &p : test.threads)
                progs.push_back(&p);
            check::PersistModel model(progs);
            t.addRow({test.name,
                      std::to_string(test.threads.size()),
                      std::to_string(model.totalStores()),
                      std::to_string(test.observed.size()),
                      test.prefixCoverage ? "yes" : "no",
                      test.description});
        }
        std::printf("%s", t.render().c_str());
        return 0;
    }
    if (verb != "run" && verb != "explore") {
        std::fprintf(stderr, "unknown litmus subcommand '%s'\n",
                     verb.c_str());
        usageLitmus();
        return 1;
    }

    LitmusOptions opts;
    opts.mode = verb == "run" ? ExploreMode::Exhaustive
                              : ExploreMode::Randomized;
    bool all = false;
    bool expectDivergence = false;
    std::string jsonPath;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--all") {
            all = true;
        } else if (arg == "--variant") {
            opts.variant = parseVariant(next());
        } else if (arg == "--schedules") {
            opts.schedules = static_cast<unsigned>(
                parsePositiveCount("--schedules", next()));
        } else if (arg == "--seed") {
            opts.seed = parseCount("--seed", next());
        } else if (arg == "--json") {
            jsonPath = next();
        } else if (arg == "--expect-divergence") {
            expectDivergence = true;
        } else if (arg == "--help" || arg == "-h") {
            usageLitmus();
            return 0;
        } else if (!arg.empty() && arg[0] != '-') {
            names.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown litmus option '%s'\n",
                         arg.c_str());
            usageLitmus();
            return 1;
        }
    }

    std::vector<const LitmusTest *> tests;
    if (all) {
        for (const LitmusTest &t : check::litmusCorpus())
            tests.push_back(&t);
    } else {
        for (const std::string &name : names) {
            const LitmusTest *t = check::findLitmusTest(name);
            if (!t) {
                std::fprintf(stderr,
                             "unknown litmus test '%s' (see "
                             "ppa_cli litmus list)\n",
                             name.c_str());
                return 1;
            }
            tests.push_back(t);
        }
    }
    if (tests.empty()) {
        std::fprintf(stderr,
                     "litmus %s: name tests or pass --all\n",
                     verb.c_str());
        return 1;
    }

    std::string why;
    if (!check::variantSupportsLitmus(opts.variant, &why)) {
        std::fprintf(stderr, "litmus: variant '%s' unsupported: %s\n",
                     variantToken(opts.variant), why.c_str());
        return 1;
    }

    std::printf("litmus %s: %zu test(s), variant %s (flavor %s)%s\n",
                verb.c_str(), tests.size(),
                variantToken(opts.variant),
                check::flavorName(
                    check::flavorForVariant(opts.variant)),
                opts.mode == ExploreMode::Randomized
                    ? (", " + std::to_string(opts.schedules) +
                       " crash points/test, seed " +
                       std::to_string(opts.seed))
                          .c_str()
                    : "");

    std::vector<LitmusResult> results;
    std::uint64_t divergences = 0;
    bool allPass = true;
    for (const LitmusTest *t : tests) {
        results.push_back(check::runLitmusTest(*t, opts));
        divergences += results.back().strictDivergences;
        allPass = allPass && results.back().pass();
    }

    TextTable t({"test", "crashes", "violations", "strict-div",
                 "vacuous", "required", "distinct", "verdict"});
    for (const LitmusResult &r : results) {
        t.addRow({r.test, std::to_string(r.crashPoints),
                  std::to_string(r.violations),
                  std::to_string(r.strictDivergences),
                  std::to_string(r.vacuous),
                  std::to_string(r.requiredSeen) + "/" +
                      std::to_string(r.requiredTotal),
                  std::to_string(r.distinctOutcomes),
                  r.corpusError ? "CORPUS-ERROR"
                                : (r.pass() ? "pass" : "FAIL")});
    }
    std::printf("%s", t.render().c_str());
    for (const LitmusResult &r : results) {
        for (const auto &s : r.samples)
            std::printf("%s: cycle %llu: %s\n", r.test.c_str(),
                        static_cast<unsigned long long>(s.cycle),
                        s.detail.c_str());
        for (const auto &n : r.notes)
            std::printf("%s: %s\n", r.test.c_str(), n.c_str());
    }

    if (!jsonPath.empty()) {
        if (!metrics::writeFile(jsonPath,
                                check::litmusResultsJson(results, opts)))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    if (expectDivergence && divergences == 0) {
        std::printf("FAIL: expected at least one strict-model "
                    "divergence, observed none\n");
        return 1;
    }
    std::printf("%s\n", allPass ? "litmus: all conformance checks pass"
                                : "litmus: FAILURES above");
    return allPass ? 0 : 1;
}

int
fuzzReproMain(int argc, char **argv)
{
    std::string file;
    bool checkMinimal = false;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--check-minimal")
            checkMinimal = true;
        else if (arg == "--help" || arg == "-h") {
            usageFuzz();
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && file.empty())
            file = arg;
        else {
            std::fprintf(stderr, "unknown fuzz repro option '%s'\n",
                         arg.c_str());
            usageFuzz();
            return 1;
        }
    }
    if (file.empty()) {
        std::fprintf(stderr, "fuzz repro: name a reproducer file\n");
        usageFuzz();
        return 1;
    }

    std::string text;
    if (!metrics::readFile(file, text))
        return 1;
    fuzz::Violation v;
    std::string error;
    if (!fuzz::parseReproducerText(text, v, error)) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(), error.c_str());
        return 1;
    }

    fuzz::ShrinkLimits limits;
    std::uint64_t judged = 0;
    fuzz::Violation found;
    if (!fuzz::findEarliestViolation(v.spec, v.variant, v.flavor,
                                     limits, judged, found)) {
        std::printf("%s: FAIL — no crash cycle violates %s on %s "
                    "anymore (%llu crash sims)\n",
                    file.c_str(), check::flavorName(v.flavor),
                    variantToken(v.variant),
                    static_cast<unsigned long long>(judged));
        return 1;
    }
    std::printf("%s: violation confirmed on %s under %s at cycle %llu"
                " (recorded %llu)\n",
                file.c_str(), variantToken(v.variant),
                check::flavorName(v.flavor),
                static_cast<unsigned long long>(found.cycle),
                static_cast<unsigned long long>(v.cycle));
    if (checkMinimal) {
        if (!fuzz::isOneMinimal(found, limits, judged)) {
            std::printf("%s: FAIL — a 1-step reduction still "
                        "violates; reproducer is not minimal\n",
                        file.c_str());
            return 1;
        }
        std::printf("%s: 1-minimal (every further reduction passes; "
                    "%llu crash sims)\n",
                    file.c_str(),
                    static_cast<unsigned long long>(judged));
    }
    return 0;
}

int
fuzzMain(int argc, char **argv)
{
    if (argc < 1) {
        usageFuzz();
        return 1;
    }
    std::string verb = argv[0];
    if (verb == "--help" || verb == "-h") {
        usageFuzz();
        return 0;
    }
    if (verb == "repro")
        return fuzzReproMain(argc - 1, argv + 1);
    if (verb != "run") {
        std::fprintf(stderr, "unknown fuzz subcommand '%s'\n",
                     verb.c_str());
        usageFuzz();
        return 1;
    }

    fuzz::CampaignOptions opts;
    opts.programs = 200;
    opts.schedules = 16;
    opts.seed = 1;
    bool expectDivergence = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--variant") {
            opts.variant = parseVariant(next());
        } else if (arg == "--programs") {
            opts.programs = parsePositiveCount("--programs", next());
        } else if (arg == "--schedules") {
            opts.schedules = static_cast<unsigned>(
                parsePositiveCount("--schedules", next()));
        } else if (arg == "--seed") {
            opts.seed = parseCount("--seed", next());
        } else if (arg == "--max-findings") {
            opts.maxFindings = static_cast<unsigned>(
                parseCount("--max-findings", next()));
        } else if (arg == "--corpus-out") {
            opts.corpusDir = next();
        } else if (arg == "--trace-out") {
            opts.traceDir = next();
        } else if (arg == "--json") {
            jsonPath = next();
        } else if (arg == "--expect-divergence") {
            expectDivergence = true;
        } else if (arg == "--help" || arg == "-h") {
            usageFuzz();
            return 0;
        } else {
            std::fprintf(stderr, "unknown fuzz option '%s'\n",
                         arg.c_str());
            usageFuzz();
            return 1;
        }
    }

    std::string why;
    if (!check::variantSupportsLitmus(opts.variant, &why)) {
        std::fprintf(stderr, "fuzz: variant '%s' unsupported: %s\n",
                     variantToken(opts.variant), why.c_str());
        return 1;
    }

    std::printf("fuzz run: %llu program(s) x %u crash point(s), "
                "variant %s (flavor %s), seed %llu\n",
                static_cast<unsigned long long>(opts.programs),
                opts.schedules, variantToken(opts.variant),
                check::flavorName(check::flavorForVariant(opts.variant)),
                static_cast<unsigned long long>(opts.seed));

    fuzz::CampaignResult res = fuzz::runCampaign(opts);

    TextTable t({"programs", "crashes", "violations", "strict-div",
                 "skipped", "findings", "verdict"});
    t.addRow({std::to_string(res.programs),
              std::to_string(res.crashPoints),
              std::to_string(res.violations),
              std::to_string(res.strictDivergences),
              std::to_string(res.skipped),
              std::to_string(res.findings.size()),
              res.pass() ? "pass" : "FAIL"});
    std::printf("%s", t.render().c_str());
    for (const fuzz::CampaignFinding &f : res.findings) {
        std::printf("%s: %s; shrunk %u->%u threads, %llu->%llu "
                    "actions, cycle %llu (%u steps)%s%s\n",
                    f.program.c_str(), f.detail.c_str(),
                    f.threadsBefore, f.threadsAfter,
                    static_cast<unsigned long long>(f.actionsBefore),
                    static_cast<unsigned long long>(f.actionsAfter),
                    static_cast<unsigned long long>(f.shrunkCycle),
                    f.shrinkSteps,
                    f.replayAttempted
                        ? (f.replayConfirmed ? "; replay confirmed"
                                             : "; REPLAY DIVERGED")
                        : "",
                    f.reproducerFile.empty()
                        ? ""
                        : ("; wrote " + f.reproducerFile).c_str());
    }
    for (const std::string &n : res.notes)
        std::printf("note: %s\n", n.c_str());

    if (!jsonPath.empty()) {
        if (!metrics::writeFile(jsonPath, fuzz::campaignJson(res, opts)))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    bool ok = res.pass();
    for (const fuzz::CampaignFinding &f : res.findings)
        if (f.replayAttempted && !f.replayConfirmed)
            ok = false;
    if (expectDivergence && res.strictDivergences == 0) {
        std::printf("FAIL: expected at least one strict-forbidden "
                    "state, observed none\n");
        ok = false;
    }
    std::printf("%s\n", ok ? "fuzz: campaign verdict pass"
                           : "fuzz: FAILURES above");
    return ok ? 0 : 1;
}

int
serveMain(int argc, char **argv)
{
    serve::ServeConfig cfg;
    std::vector<serve::ServeVariant> variants;
    std::string jsonPath;
    std::string tracePath;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            const char *tok = next();
            if (!serve::serveWorkloadFromToken(tok, cfg.workload)) {
                std::fprintf(stderr,
                             "unknown serve workload '%s' (tatp, "
                             "tpcc, kv)\n",
                             tok);
                return 1;
            }
        } else if (arg == "--variant") {
            const char *tok = next();
            serve::ServeVariant v;
            if (!serve::serveVariantFromToken(tok, v)) {
                std::fprintf(stderr,
                             "unknown serve variant '%s' (ppa, "
                             "undo-redo-log, delay-free)\n",
                             tok);
                return 1;
            }
            variants.push_back(v);
        } else if (arg == "--ops") {
            cfg.requests = parsePositiveCount("--ops", next());
        } else if (arg == "--threads") {
            cfg.threads = static_cast<unsigned>(
                parsePositiveCount("--threads", next()));
        } else if (arg == "--keys") {
            cfg.keys = parsePositiveCount("--keys", next());
        } else if (arg == "--skew") {
            cfg.skew = parseNonNegDouble("--skew", next());
        } else if (arg == "--read-pct") {
            cfg.readPct = static_cast<unsigned>(
                parseCount("--read-pct", next()));
        } else if (arg == "--arrival") {
            const char *tok = next();
            if (!serve::arrivalFromToken(tok, cfg.arrival.kind)) {
                std::fprintf(stderr,
                             "unknown arrival process '%s' (poisson, "
                             "bursty)\n",
                             tok);
                return 1;
            }
        } else if (arg == "--mean-gap") {
            cfg.arrival.meanGap = static_cast<double>(
                parsePositiveCount("--mean-gap", next()));
        } else if (arg == "--burst-factor") {
            cfg.arrival.burstFactor =
                parseNonNegDouble("--burst-factor", next());
        } else if (arg == "--burst-period") {
            cfg.arrival.period = static_cast<double>(
                parsePositiveCount("--burst-period", next()));
        } else if (arg == "--on-fraction") {
            cfg.arrival.onFraction =
                parseNonNegDouble("--on-fraction", next());
        } else if (arg == "--failures") {
            cfg.failures = static_cast<unsigned>(
                parseCount("--failures", next()));
        } else if (arg == "--seed") {
            cfg.seed = parseCount("--seed", next());
        } else if (arg == "--workers") {
            cfg.workers = static_cast<unsigned>(
                parseCount("--workers", next()));
        } else if (arg == "--json") {
            jsonPath = next();
        } else if (arg == "--telemetry") {
            cfg.telemetry = true;
        } else if (arg == "--telemetry-trace") {
            tracePath = next();
        } else if (arg == "--help" || arg == "-h") {
            usageServe();
            return 0;
        } else {
            std::fprintf(stderr, "unknown serve option '%s'\n",
                         arg.c_str());
            usageServe();
            return 1;
        }
    }

    if (cfg.keys == 0 || (cfg.keys & (cfg.keys - 1)) != 0) {
        std::fprintf(stderr,
                     "--keys must be a power of two, got %llu (see "
                     "ppa_cli --help)\n",
                     static_cast<unsigned long long>(cfg.keys));
        return 1;
    }
    if (cfg.keys > 65536) {
        std::fprintf(stderr,
                     "--keys must be at most 65536, got %llu (the "
                     "per-thread data regions are 16 MiB)\n",
                     static_cast<unsigned long long>(cfg.keys));
        return 1;
    }
    if (cfg.readPct > 100) {
        std::fprintf(stderr, "--read-pct must be at most 100, got %u\n",
                     cfg.readPct);
        return 1;
    }
    if (cfg.arrival.kind == serve::ArrivalKind::Bursty) {
        if (cfg.arrival.onFraction <= 0.0 ||
            cfg.arrival.onFraction >= 1.0) {
            std::fprintf(stderr,
                         "--on-fraction wants a fraction in (0, 1), "
                         "got %g\n",
                         cfg.arrival.onFraction);
            return 1;
        }
        if (cfg.arrival.burstFactor <= 0.0) {
            std::fprintf(stderr,
                         "--burst-factor must be positive, got %g\n",
                         cfg.arrival.burstFactor);
            return 1;
        }
        if (cfg.arrival.burstFactor * cfg.arrival.onFraction > 1.0) {
            std::fprintf(stderr,
                         "--burst-factor times --on-fraction must be "
                         "at most 1 (the off-phase rate would be "
                         "negative)\n");
            return 1;
        }
    }
    if (!tracePath.empty() && !cfg.telemetry) {
        std::fprintf(stderr,
                     "--telemetry-trace requires --telemetry\n");
        return 1;
    }
    if (variants.empty())
        variants = serve::allServeVariants();

    std::printf("serve: %llu %s request(s) on %u thread(s), %s "
                "arrivals (mean gap %g), zipf theta %g, %u failure "
                "point(s), seed %llu\n",
                static_cast<unsigned long long>(cfg.requests),
                serve::serveWorkloadToken(cfg.workload), cfg.threads,
                serve::arrivalToken(cfg.arrival.kind),
                cfg.arrival.meanGap, cfg.skew, cfg.failures,
                static_cast<unsigned long long>(cfg.seed));

    serve::ServeStats stats = serve::runServeStudy(cfg, variants);

    auto median = [](std::vector<std::uint64_t> v) -> std::uint64_t {
        if (v.empty())
            return 0;
        std::sort(v.begin(), v.end());
        return v[(v.size() + 1) / 2 - 1];
    };

    TextTable t({"variant", "completed", "req/kcyc", "p50", "p95",
                 "p99", "p99.9", "recovery~", "loss~", "lost~"});
    for (const serve::ServeVariantStats &vs : stats.variants) {
        std::vector<std::uint64_t> recovery, loss, lost;
        for (const serve::FailurePoint &fp : vs.failures) {
            recovery.push_back(fp.recoveryCycles);
            loss.push_back(fp.lossWindow);
            lost.push_back(fp.lostRequests);
        }
        t.addRow({serve::serveVariantToken(vs.variant),
                  std::to_string(vs.completed),
                  TextTable::num(vs.achievedPerKcycle, 2),
                  std::to_string(vs.latency.percentile(0.50)),
                  std::to_string(vs.latency.percentile(0.95)),
                  std::to_string(vs.latency.percentile(0.99)),
                  std::to_string(vs.latency.percentile(0.999)),
                  std::to_string(median(recovery)),
                  std::to_string(median(loss)),
                  std::to_string(median(lost))});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(~ columns are medians over the %u injected failure "
                "points; latency columns are cycles)\n",
                cfg.failures);

    bool ok = true;
    for (const serve::ServeVariantStats &vs : stats.variants) {
        if (vs.completed != vs.requests) {
            std::printf("WARN: %s completed %llu of %llu requests "
                        "before the cycle cap\n",
                        serve::serveVariantToken(vs.variant),
                        static_cast<unsigned long long>(vs.completed),
                        static_cast<unsigned long long>(vs.requests));
            ok = false;
        }
    }

    if (!tracePath.empty()) {
        if (!obs::writeChromeTrace(stats.variants.front().telemetry,
                                   tracePath))
            return 1;
        std::printf("wrote %s\n", tracePath.c_str());
    }
    if (!jsonPath.empty()) {
        if (!metrics::writeFile(jsonPath,
                                serve::serveToJson(stats) + "\n"))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return sweepMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "bench") == 0)
        return benchMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "trace") == 0)
        return traceMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "profile") == 0)
        return profileMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "litmus") == 0)
        return litmusMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "fuzz") == 0)
        return fuzzMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return serveMain(argc - 2, argv + 2);
    // An explicit "run" selects the default mode.
    int shift = argc > 1 && std::strcmp(argv[1], "run") == 0 ? 1 : 0;
    argc -= shift;
    argv += shift;

    std::string app;
    std::string variant_name = "ppa";
    std::string jsonPath;
    std::string telemetryTracePath;
    ExperimentKnobs knobs;
    knobs.instsPerCore = 50'000;
    bool compare = false;
    bool instsGiven = false;
    bool errorBound = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            TextTable t({"app", "suite", "threads", "store frac",
                         "working set (MiB)"});
            for (const auto &p : allProfiles()) {
                t.addRow({p.name, suiteName(p.suite),
                          std::to_string(p.defaultThreads),
                          TextTable::percent(p.fracStore),
                          TextTable::num(
                              static_cast<double>(p.workingSetBytes) /
                                  (1024.0 * 1024.0),
                              1)});
            }
            std::printf("%s", t.render().c_str());
            return 0;
        } else if (arg == "--app") {
            app = next();
        } else if (arg == "--variant") {
            variant_name = next();
        } else if (arg == "--insts") {
            knobs.instsPerCore = std::strtoull(next(), nullptr, 10);
            instsGiven = true;
        } else if (arg == "--threads") {
            knobs.threads =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--csq") {
            knobs.csqEntries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--int-prf") {
            knobs.intPrf =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--fp-prf") {
            knobs.fpPrf =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--wpq") {
            knobs.wpqEntries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--bw") {
            knobs.nvmWriteGbps = std::strtod(next(), nullptr);
        } else if (arg == "--l3") {
            knobs.l3Cache = true;
        } else if (arg == "--seed") {
            knobs.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--audit") {
            knobs.audit = true;
        } else if (arg == "--fail-at-cycle") {
            knobs.failAtCycles.push_back(
                parsePositiveCount("--fail-at-cycle", next()));
        } else if (arg == "--trace") {
            knobs.traceDir = next();
        } else if (arg == "--time-parallel") {
            knobs.timeParallel = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--warmup-insts") {
            knobs.tpWarmupInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled") {
            knobs.tpSampleStride = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--tp-workers") {
            knobs.tpWorkers = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--tp-fail") {
            const std::string spec = next();
            auto colon = spec.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "--tp-fail wants SEGMENT:CYCLE, got "
                             "'%s'\n",
                             spec.c_str());
                return 1;
            }
            ExperimentKnobs::SegmentFailure f;
            f.segment = static_cast<unsigned>(parseCount(
                "--tp-fail segment", spec.substr(0, colon).c_str()));
            f.cycle = parsePositiveCount(
                "--tp-fail cycle", spec.substr(colon + 1).c_str());
            knobs.tpFailAt.push_back(f);
        } else if (arg == "--telemetry") {
            knobs.telemetry = true;
        } else if (arg == "--telemetry-sample") {
            knobs.telemetrySampleCycles =
                std::strtoull(next(), nullptr, 10);
            knobs.telemetry = true;
        } else if (arg == "--telemetry-trace") {
            telemetryTracePath = next();
            knobs.telemetry = true;
        } else if (arg == "--error-bound") {
            errorBound = true;
        } else if (arg == "--json") {
            jsonPath = next();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return 1;
        }
    }

    if (!knobs.traceDir.empty()) {
        // The trace manifest is authoritative for what was recorded:
        // app, thread count, stream length, and seed all come from it.
        trace::TraceSet set = trace::TraceSet::openOrDie(knobs.traceDir);
        const trace::TraceMeta &meta = set.metadata();
        if (!app.empty() && app != meta.app) {
            std::fprintf(stderr,
                         "--app %s conflicts with trace '%s' (recorded "
                         "from %s)\n",
                         app.c_str(), knobs.traceDir.c_str(),
                         meta.app.c_str());
            return 1;
        }
        if (instsGiven && knobs.instsPerCore != meta.instsPerThread) {
            std::fprintf(stderr,
                         "--insts %llu conflicts with trace '%s' (%llu "
                         "insts per thread)\n",
                         static_cast<unsigned long long>(
                             knobs.instsPerCore),
                         knobs.traceDir.c_str(),
                         static_cast<unsigned long long>(
                             meta.instsPerThread));
            return 1;
        }
        app = meta.app;
        knobs.threads = meta.threads;
        knobs.instsPerCore = meta.instsPerThread;
        knobs.seed = meta.seed;
    }
    if (app.empty()) {
        usage();
        return 1;
    }

    const WorkloadProfile &profile = profileByName(app);
    SystemVariant variant = parseVariant(variant_name);
    if (errorBound && knobs.timeParallel < 2) {
        std::fprintf(stderr,
                     "--error-bound requires --time-parallel K "
                     "(K >= 2)\n");
        return 1;
    }
    if (errorBound && !knobs.tpFailAt.empty()) {
        std::fprintf(stderr,
                     "note: --error-bound compares against a "
                     "failure-free serial run; --tp-fail effects are "
                     "part of the reported delta\n");
    }

    RunStats rs = runWorkload(profile, variant, knobs);
    printStats(rs);
    if (!telemetryTracePath.empty()) {
        if (!obs::writeChromeTrace(rs.telemetry, telemetryTracePath))
            return 1;
        std::printf("wrote %s\n", telemetryTracePath.c_str());
    }
    if (!jsonPath.empty()) {
        if (!metrics::writeFile(jsonPath,
                                metrics::runStatsToJson(rs) + "\n"))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    if (errorBound) {
        // The accuracy contract's empirical side (docs/PERF.md): how
        // far does the segmented run drift from the unsegmented
        // serial reference with this warmup length?
        ExperimentKnobs serialKnobs = knobs;
        serialKnobs.timeParallel = 0;
        serialKnobs.tpFailAt.clear();
        RunStats ref = runWorkload(profile, variant, serialKnobs);
        TextTable t({"stat", "serial", "time-parallel", "rel delta"});
        double worst = 0.0;
        for (const StatDelta &d : statDeltas(ref, rs)) {
            worst = std::max(worst, std::fabs(d.relative()));
            t.addRow({d.name, TextTable::num(d.serial, 3),
                      TextTable::num(d.segmented, 3),
                      TextTable::percent(d.relative(), 2)});
        }
        std::printf("\nerror bound vs unsegmented serial run "
                    "(warmup %llu insts/segment):\n%s"
                    "worst-case relative delta: %s\n",
                    static_cast<unsigned long long>(
                        knobs.tpWarmupInsts),
                    t.render().c_str(),
                    TextTable::percent(worst, 2).c_str());
    }

    if (compare && variant != SystemVariant::MemoryMode) {
        ExperimentKnobs base_knobs = knobs;
        base_knobs.failAtCycles.clear(); // PPA-only mechanism
        RunStats base =
            runWorkload(profile, SystemVariant::MemoryMode, base_knobs);
        std::printf("\nslowdown vs memory-mode baseline: %s\n",
                    TextTable::factor(slowdown(rs, base)).c_str());
    }
    return 0;
}
