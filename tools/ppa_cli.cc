/**
 * @file
 * ppa_cli — command-line driver for the simulator.
 *
 * Run any of the 41 modeled applications on any system variant and
 * print a full statistics report, optionally side by side with the
 * memory-mode baseline:
 *
 *   ppa_cli --list
 *   ppa_cli --app gcc --variant ppa --insts 50000 --compare
 *   ppa_cli --app rb --variant ppa --wpq 8 --bw 1.0
 *   ppa_cli --app water-sp --variant capri --threads 16
 *
 * The sweep subcommand runs a whole figure's simulation grid across
 * hardware threads and writes the schema-versioned JSON document
 * (docs/METRICS.md) that figure plotting consumes:
 *
 *   ppa_cli sweep --list
 *   ppa_cli sweep fig11
 *   ppa_cli sweep fig18 --jobs 8 --insts 30000 --out /tmp/res --csv
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/figures.hh"
#include "sim/report.hh"

using namespace ppa;

namespace
{

void
usage()
{
    std::printf(
        "usage: ppa_cli [options]\n"
        "  --list              list the modeled applications\n"
        "  --app NAME          application to run (required unless "
        "--list)\n"
        "  --variant V         memory-mode | ppa | capri | "
        "replaycache | eadr-bbb | dram-only (default: ppa)\n"
        "  --insts N           committed instructions per core "
        "(default 50000)\n"
        "  --threads N         thread/core count (default: profile)\n"
        "  --csq N             CSQ entries (default 40)\n"
        "  --int-prf N         integer PRF entries (default 180)\n"
        "  --fp-prf N          FP PRF entries (default 168)\n"
        "  --wpq N             WPQ entries per controller (default "
        "16)\n"
        "  --bw G              NVM write bandwidth GB/s (default "
        "2.3)\n"
        "  --l3                add an L3 between L2 and DRAM cache\n"
        "  --seed N            workload seed (default 42)\n"
        "  --compare           also run the memory-mode baseline and "
        "report the slowdown\n"
        "  --audit             attach the persistence-invariant "
        "auditors (ppa variant)\n"
        "  --fail-at-cycle N   inject a power failure at cycle N and "
        "recover through the\n"
        "                      serialized checkpoint (repeatable; ppa "
        "variant)\n"
        "\n"
        "subcommand: sweep — run one figure's full grid in parallel\n"
        "  ppa_cli sweep FIGURE [options]\n"
        "  ppa_cli sweep --list    list the available figure sweeps\n"
        "  --jobs N            driver worker threads (default: "
        "hardware)\n"
        "  --insts N           committed instructions per core "
        "(default: figure's own)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --out DIR           output directory (default: "
        "$PPA_RESULTS_DIR or results)\n"
        "  --csv               also write FIGURE.csv next to the "
        "JSON\n"
        "  --audit             run every ppa-variant job with the "
        "invariant auditors attached\n"
        "\n"
        "subcommand: bench — host-throughput benchmark (simulated "
        "KIPS)\n"
        "  ppa_cli bench [options]\n"
        "  --jobs N            driver worker threads (default: "
        "hardware)\n"
        "  --insts N           committed instructions per core "
        "(default 60000)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --reps N            repeat the grid N times, keep each "
        "job's best wall time (default 1)\n"
        "  --out DIR           output directory for "
        "BENCH_throughput.json (default: $PPA_RESULTS_DIR or "
        "results)\n"
        "  --baseline FILE     compare aggregate KIPS against a prior "
        "BENCH_throughput.json\n"
        "  --threshold PCT     fail when aggregate KIPS regresses "
        "more than PCT%% vs the baseline (default 15)\n");
}

SystemVariant
parseVariant(const std::string &name)
{
    SystemVariant v;
    if (!variantFromToken(name, v)) {
        std::fprintf(stderr, "unknown variant '%s'\n", name.c_str());
        std::exit(1);
    }
    return v;
}

int
sweepMain(int argc, char **argv)
{
    std::string figure;
    unsigned jobs = 0;
    std::uint64_t insts = 0;
    std::uint64_t seed = 42;
    std::string outDir = metrics::resultsDir();
    bool csv = false;
    bool audit = false;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            TextTable t({"figure", "jobs", "description"});
            for (const auto &name : figureNames()) {
                FigureSweep fs = figureSweep(name);
                t.addRow({fs.name, std::to_string(fs.jobs.size()),
                          fs.description});
            }
            std::printf("%s", t.render().c_str());
            return 0;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && figure.empty()) {
            figure = arg;
        } else {
            std::fprintf(stderr, "unknown sweep option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    if (figure.empty()) {
        std::fprintf(stderr,
                     "sweep: figure name required (see sweep --list)\n");
        return 1;
    }
    if (!figureExists(figure)) {
        std::fprintf(stderr,
                     "sweep: unknown figure '%s' (see sweep --list)\n",
                     figure.c_str());
        return 1;
    }

    FigureSweep fs = figureSweep(figure, insts, seed);
    if (audit) {
        for (SweepJob &job : fs.jobs)
            job.knobs.audit = true;
    }
    ExperimentDriver driver(jobs);
    std::fprintf(stderr, "sweep %s: %zu jobs on %u threads — %s\n",
                 fs.name.c_str(), fs.jobs.size(), driver.workers(),
                 fs.description.c_str());
    auto results = driver.run(
        fs.jobs,
        [](const JobResult &r, std::size_t done, std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] %s/%s (%.2fs)\n", done,
                         total, r.job.profile.name.c_str(),
                         variantToken(r.job.variant), r.wallSeconds);
        });

    if (audit) {
        std::uint64_t events = 0;
        std::uint64_t violations = 0;
        for (const JobResult &r : results) {
            events += r.stats.auditEvents;
            violations += r.stats.auditViolations;
            for (const std::string &m : r.stats.auditMessages)
                std::fprintf(stderr, "  audit: %s\n", m.c_str());
        }
        std::printf("audit: %llu events, %llu violations\n",
                    static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(violations));
        if (violations)
            return 1;
    }

    std::string jsonPath = outDir + "/" + fs.name + ".json";
    if (!metrics::writeFile(jsonPath,
                            metrics::sweepToJson(fs.name, results)))
        return 1;
    std::printf("wrote %s (%zu jobs)\n", jsonPath.c_str(),
                results.size());
    if (csv) {
        std::string csvPath = outDir + "/" + fs.name + ".csv";
        if (!metrics::writeFile(csvPath, metrics::sweepToCsv(results)))
            return 1;
        std::printf("wrote %s\n", csvPath.c_str());
    }
    return 0;
}

/** Aggregate simulated kilo-instructions per host-second across a
 *  result set: total committed work over total per-job wall time. */
double
aggregateKips(const std::vector<JobResult> &results)
{
    double insts = 0.0;
    double wall = 0.0;
    for (const JobResult &r : results) {
        insts += static_cast<double>(r.stats.committedInsts);
        wall += r.wallSeconds;
    }
    return wall > 0.0 ? insts / wall / 1e3 : 0.0;
}

int
benchMain(int argc, char **argv)
{
    unsigned jobs = 0;
    std::uint64_t insts = 0;
    std::uint64_t seed = 42;
    unsigned reps = 1;
    std::string outDir = metrics::resultsDir();
    std::string baselinePath;
    double thresholdPct = 15.0;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--reps") {
            reps = std::max(
                1u, static_cast<unsigned>(
                        std::strtoul(next(), nullptr, 10)));
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--threshold") {
            thresholdPct = std::strtod(next(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown bench option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    FigureSweep fs = throughputSweep(insts, seed);
    ExperimentDriver driver(jobs);
    std::fprintf(stderr,
                 "bench: %zu jobs x %u rep(s) on %u threads — %s\n",
                 fs.jobs.size(), reps, driver.workers(),
                 fs.description.c_str());

    // Repetitions re-run the identical grid; each job keeps its best
    // (minimum) wall time, which is the standard defense against
    // scheduling noise on a shared host. Simulation results are
    // deterministic, so only the timing differs between reps.
    std::vector<JobResult> results;
    for (unsigned rep = 0; rep < reps; ++rep) {
        auto repResults = driver.run(fs.jobs, {});
        if (rep == 0) {
            results = std::move(repResults);
            continue;
        }
        for (std::size_t j = 0; j < results.size(); ++j)
            results[j].wallSeconds = std::min(
                results[j].wallSeconds, repResults[j].wallSeconds);
    }

    TextTable t({"workload", "variant", "insts", "wall ms", "KIPS"});
    double logSum = 0.0;
    for (const JobResult &r : results) {
        double kips =
            r.wallSeconds > 0.0
                ? static_cast<double>(r.stats.committedInsts) /
                      r.wallSeconds / 1e3
                : 0.0;
        logSum += std::log(std::max(kips, 1e-9));
        t.addRow({r.job.profile.name, variantToken(r.job.variant),
                  std::to_string(r.stats.committedInsts),
                  TextTable::num(r.wallSeconds * 1e3, 2),
                  TextTable::num(kips, 1)});
    }
    std::printf("%s", t.render().c_str());

    double agg = aggregateKips(results);
    double geomean =
        results.empty()
            ? 0.0
            : std::exp(logSum / static_cast<double>(results.size()));
    std::printf("aggregate: %.1f KIPS   per-job geomean: %.1f KIPS\n",
                agg, geomean);

    std::string jsonPath = outDir + "/BENCH_throughput.json";
    if (!metrics::writeFile(
            jsonPath,
            metrics::sweepToJson(fs.name, results,
                                 {{"aggregateKips", agg},
                                  {"geomeanKips", geomean},
                                  {"reps", static_cast<double>(reps)},
                                  {"workers", static_cast<double>(
                                                  driver.workers())}})))
        return 1;
    std::printf("wrote %s (%zu jobs)\n", jsonPath.c_str(),
                results.size());

    if (baselinePath.empty())
        return 0;

    // Regression gate: recompute the baseline aggregate from its job
    // list (rather than trusting its "extra" block) so hand-edited or
    // older documents still compare apples to apples.
    std::string text;
    if (!metrics::readFile(baselinePath, text))
        return 1;
    metrics::JsonValue doc;
    std::string err;
    if (!metrics::JsonValue::parse(text, doc, err)) {
        std::fprintf(stderr, "bench: cannot parse baseline %s: %s\n",
                     baselinePath.c_str(), err.c_str());
        return 1;
    }
    double baseInsts = 0.0;
    double baseWall = 0.0;
    const auto &baseJobs = doc.field("jobs");
    for (std::size_t j = 0; j < baseJobs.size(); ++j) {
        const auto &job = baseJobs.at(j);
        baseInsts += static_cast<double>(
            job.field("stats").field("committedInsts").asUint64());
        baseWall += job.field("wallSeconds").asDouble();
    }
    double baseAgg = baseWall > 0.0 ? baseInsts / baseWall / 1e3 : 0.0;
    if (baseAgg <= 0.0) {
        std::fprintf(stderr, "bench: baseline %s has no timed jobs\n",
                     baselinePath.c_str());
        return 1;
    }
    double ratio = agg / baseAgg;
    std::printf("baseline: %.1f KIPS (%s) — current/baseline %.2fx\n",
                baseAgg, baselinePath.c_str(), ratio);
    if (ratio < 1.0 - thresholdPct / 100.0) {
        std::fprintf(stderr,
                     "bench: FAIL — aggregate KIPS regressed %.1f%% "
                     "(threshold %.1f%%)\n",
                     (1.0 - ratio) * 100.0, thresholdPct);
        return 1;
    }
    std::printf("bench: OK (within %.1f%% of baseline)\n",
                thresholdPct);
    return 0;
}

void
printStats(const RunStats &rs)
{
    TextTable t({"metric", "value"});
    t.addRow({"workload", rs.workload});
    t.addRow({"variant", variantName(rs.variant)});
    t.addRow({"threads", std::to_string(rs.threads)});
    t.addRow({"measured cycles", std::to_string(rs.cycles)});
    t.addRow({"total cycles (with warmup)",
              std::to_string(rs.totalCycles)});
    t.addRow({"committed instructions",
              std::to_string(rs.committedInsts)});
    t.addRow({"committed stores", std::to_string(rs.committedStores)});
    t.addRow({"system IPC", TextTable::num(rs.ipc, 2)});
    t.addRow({"L2 miss ratio", TextTable::percent(rs.l2MissRatio)});
    t.addRow({"NVM reads", std::to_string(rs.nvmReads)});
    t.addRow({"NVM writes", std::to_string(rs.nvmWrites)});
    t.addRow({"NVM bytes written", std::to_string(rs.nvmBytesWritten)});
    if (rs.regionCount) {
        t.addRow({"regions", std::to_string(rs.regionCount)});
        t.addRow({"stores / region",
                  TextTable::num(rs.avgRegionStores, 1)});
        t.addRow({"others / region",
                  TextTable::num(rs.avgRegionOthers, 1)});
        t.addRow({"boundary stall cycles",
                  std::to_string(rs.boundaryStallCycles)});
        t.addRow({"boundary stall ratio",
                  TextTable::percent(rs.boundaryStallRatio(), 2)});
        t.addRow({"persist ops", std::to_string(rs.persistOps)});
        t.addRow({"coalesced stores",
                  std::to_string(rs.coalescedStores)});
    }
    t.addRow({"rename no-free-reg stall",
              TextTable::percent(rs.renameStallRatio(), 2)});
    if (rs.auditEvents) {
        t.addRow({"audit events", std::to_string(rs.auditEvents)});
        t.addRow({"audit violations",
                  std::to_string(rs.auditViolations)});
    }
    if (rs.powerFailures) {
        t.addRow({"power failures injected",
                  std::to_string(rs.powerFailures)});
        t.addRow({"replay audits", std::to_string(rs.replayAudits)});
        t.addRow({"replay addrs checked",
                  std::to_string(rs.replayAddrsChecked)});
        t.addRow({"replay mismatches",
                  std::to_string(rs.replayMismatches)});
    }
    std::printf("%s", t.render().c_str());
    for (const std::string &m : rs.auditMessages)
        std::fprintf(stderr, "audit: %s\n", m.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return sweepMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "bench") == 0)
        return benchMain(argc - 2, argv + 2);

    std::string app;
    std::string variant_name = "ppa";
    ExperimentKnobs knobs;
    knobs.instsPerCore = 50'000;
    bool compare = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            TextTable t({"app", "suite", "threads", "store frac",
                         "working set (MiB)"});
            for (const auto &p : allProfiles()) {
                t.addRow({p.name, suiteName(p.suite),
                          std::to_string(p.defaultThreads),
                          TextTable::percent(p.fracStore),
                          TextTable::num(
                              static_cast<double>(p.workingSetBytes) /
                                  (1024.0 * 1024.0),
                              1)});
            }
            std::printf("%s", t.render().c_str());
            return 0;
        } else if (arg == "--app") {
            app = next();
        } else if (arg == "--variant") {
            variant_name = next();
        } else if (arg == "--insts") {
            knobs.instsPerCore = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threads") {
            knobs.threads =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--csq") {
            knobs.csqEntries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--int-prf") {
            knobs.intPrf =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--fp-prf") {
            knobs.fpPrf =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--wpq") {
            knobs.wpqEntries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--bw") {
            knobs.nvmWriteGbps = std::strtod(next(), nullptr);
        } else if (arg == "--l3") {
            knobs.l3Cache = true;
        } else if (arg == "--seed") {
            knobs.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--audit") {
            knobs.audit = true;
        } else if (arg == "--fail-at-cycle") {
            knobs.failAtCycles.push_back(
                std::strtoull(next(), nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return 1;
        }
    }

    if (app.empty()) {
        usage();
        return 1;
    }

    const WorkloadProfile &profile = profileByName(app);
    SystemVariant variant = parseVariant(variant_name);

    RunStats rs = runWorkload(profile, variant, knobs);
    printStats(rs);

    if (compare && variant != SystemVariant::MemoryMode) {
        ExperimentKnobs base_knobs = knobs;
        base_knobs.failAtCycles.clear(); // PPA-only mechanism
        RunStats base =
            runWorkload(profile, SystemVariant::MemoryMode, base_knobs);
        std::printf("\nslowdown vs memory-mode baseline: %s\n",
                    TextTable::factor(slowdown(rs, base)).c_str());
    }
    return 0;
}
