#!/usr/bin/env python3
"""Aggregate fuzz campaign JSON into a per-variant table.

Consumes one or more ``fuzz_*.json`` documents produced by
``ppa_cli fuzz run --json`` (schemaVersion 1) and renders a
per-variant campaign summary: programs generated, crash points
explored, own-flavor violations, strict-model divergences, skipped
programs, findings (with shrink and replay statistics), and an
overall verdict. The verdict logic mirrors the CLI's:

* a campaign FAILS on any own-flavor violation, or when a recorded
  finding's trace replay did not reconfirm the observation;
* ``--expect-divergence VARIANT`` additionally fails when the named
  variant reported zero strict-model divergences — for memory-mode
  that would mean the fuzzer lost its ability to expose the
  persistency gap the strict model forbids.

Stdlib only; no third-party packages. Usage:

    python3 tools/fuzz_report.py results/fuzz_*.json \
        [--expect-divergence memory-mode]

Exit status 0 when every verdict passes, 1 with a report otherwise.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"fuzz_report: cannot read {path}: {exc}")
    if doc.get("schemaVersion") != 1:
        sys.exit(
            f"fuzz_report: {path}: unsupported schemaVersion "
            f"{doc.get('schemaVersion')!r}"
        )
    for key in ("variant", "flavor", "seed", "programs", "findings"):
        if key not in doc:
            sys.exit(f"fuzz_report: {path}: missing key {key!r}")
    return doc


def summarize(doc):
    findings = doc["findings"]
    row = {
        "variant": doc["variant"],
        "flavor": doc["flavor"],
        "seed": doc["seed"],
        "programs": doc["programs"],
        "crashes": doc.get("crashPoints", 0),
        "violations": doc.get("violations", 0),
        "strict_div": doc.get("strictDivergences", 0),
        "skipped": doc.get("skipped", 0),
        "findings": len(findings),
        "shrink_steps": sum(f.get("shrinkSteps", 0) for f in findings),
        "budget_exhausted": sum(
            1 for f in findings if f.get("shrinkBudgetExhausted")
        ),
        "replay_failed": [
            f["program"]
            for f in findings
            if f.get("replayAttempted") and not f.get("replayConfirmed")
        ],
        "pass": bool(doc.get("pass")),
    }
    row["pass"] = row["pass"] and not row["replay_failed"]
    return row


def render(rows):
    headers = [
        "variant", "flavor", "seed", "programs", "crashes",
        "violations", "strict-div", "skipped", "findings",
        "shrink-steps", "verdict",
    ]
    cells = [
        [
            r["variant"], r["flavor"], str(r["seed"]),
            str(r["programs"]), str(r["crashes"]),
            str(r["violations"]), str(r["strict_div"]),
            str(r["skipped"]), str(r["findings"]),
            str(r["shrink_steps"]),
            "pass" if r["pass"] else "FAIL",
        ]
        for r in rows
    ]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
        "|-" + "-|-".join("-" * w for w in widths) + "-|",
    ]
    for row in cells:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="fuzz_*.json documents")
    ap.add_argument(
        "--expect-divergence",
        metavar="VARIANT",
        action="append",
        default=[],
        help="fail unless VARIANT reported >0 strict-model divergences",
    )
    args = ap.parse_args()

    rows = [summarize(load(path)) for path in args.files]
    print(render(rows))

    problems = []
    for row in rows:
        if row["violations"]:
            problems.append(
                f"{row['variant']}: {row['violations']} own-flavor "
                f"violation(s) under {row['flavor']}"
            )
        for name in row["replay_failed"]:
            problems.append(
                f"{row['variant']}: finding {name} failed trace replay"
            )
        if row["budget_exhausted"]:
            problems.append(
                f"{row['variant']}: {row['budget_exhausted']} finding(s) "
                "hit the shrink budget (reproducers may not be minimal)"
            )
        if not row["pass"]:
            problems.append(f"{row['variant']}: campaign verdict FAIL")
    seen = {row["variant"]: row for row in rows}
    for variant in args.expect_divergence:
        if variant not in seen:
            problems.append(f"no results for variant {variant}")
        elif seen[variant]["strict_div"] == 0:
            problems.append(
                f"{variant}: expected strict-model divergences, saw none"
            )
        elif seen[variant]["findings"] == 0:
            problems.append(
                f"{variant}: strict divergences but no shrunk findings"
            )

    # Deduplicate: a FAIL verdict usually co-occurs with its cause.
    uniq = list(dict.fromkeys(problems))
    for p in uniq:
        print(f"fuzz_report: {p}", file=sys.stderr)
    if uniq:
        return 1
    total = sum(r["crashes"] for r in rows)
    print(
        f"fuzz_report: OK — {len(rows)} variant(s), "
        f"{total} crash points, all campaign verdicts pass"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
