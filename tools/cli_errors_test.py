#!/usr/bin/env python3
"""Argument-validation conformance test for ppa_cli.

Drives the binary with malformed or out-of-range arguments and asserts
each invocation exits nonzero with a diagnostic that names the
offending flag. This pins the CLI's error contract: garbage numerics
must never be silently coerced (the old ``std::stoul``-based parsing
accepted ``12x`` as 12 and aborted on ``abc``), zero must be rejected
where a count is structurally positive, and every rejection must point
the user at ``--help``.

Stdlib only; no third-party packages. Usage:

    python3 tools/cli_errors_test.py --cli build/tools/ppa_cli

Exit status 0 when every case rejects as specified, 1 otherwise.
"""

import argparse
import subprocess
import sys

# (argv suffix, required diagnostic substring). Every case must exit
# nonzero and print the substring on stdout or stderr.
CASES = [
    # fuzz campaign numerics: zero and garbage.
    (["fuzz", "run", "--programs", "0"], "--programs must be positive"),
    (["fuzz", "run", "--programs", "abc"],
     "--programs wants an unsigned integer"),
    (["fuzz", "run", "--schedules", "0"], "--schedules must be positive"),
    (["fuzz", "run", "--seed", "12x"], "--seed wants an unsigned integer"),
    (["fuzz", "run", "--max-findings", "zz"],
     "--max-findings wants an unsigned integer"),
    # trailing garbage and negatives must not be coerced.
    (["run", "--app", "gcc", "--fail-at-cycle", "0"],
     "--fail-at-cycle must be positive"),
    (["run", "--app", "gcc", "--fail-at-cycle", "-5"],
     "--fail-at-cycle wants an unsigned integer"),
    (["run", "--app", "gcc", "--fail-at-cycle", "10garbage"],
     "--fail-at-cycle wants an unsigned integer"),
    # --tp-fail SEGMENT:CYCLE: each half validated, colon required.
    (["run", "--app", "gcc", "--time-parallel", "2",
      "--tp-fail", "2:x"], "--tp-fail cycle wants an unsigned integer"),
    (["run", "--app", "gcc", "--time-parallel", "2",
      "--tp-fail", "y:100"],
     "--tp-fail segment wants an unsigned integer"),
    (["run", "--app", "gcc", "--time-parallel", "2",
      "--tp-fail", "nope"], "--tp-fail wants SEGMENT:CYCLE"),
    (["run", "--app", "gcc", "--time-parallel", "2",
      "--tp-fail", "2:0"], "--tp-fail cycle must be positive"),
    # litmus numerics share the same parser.
    (["litmus", "run", "--schedules", "0"], "--schedules must be positive"),
    (["litmus", "run", "--seed", ""], "--seed wants an unsigned integer"),
    # structural errors: unknown verbs, unreadable reproducers.
    (["fuzz", "bogus"], "unknown fuzz subcommand"),
    (["fuzz", "repro", "/nonexistent/ppa-fuzz-missing.litmus"],
     "cannot open"),
    # serve: a vacuous request count, malformed reals, negative or
    # garbage numerics, and structural token/range errors.
    (["serve", "--ops", "0"], "--ops must be positive"),
    (["serve", "--ops", "100x"], "--ops wants an unsigned integer"),
    (["serve", "--skew", "-1"], "--skew wants a non-negative number"),
    (["serve", "--skew", "0.9oops"], "--skew wants a non-negative number"),
    (["serve", "--burst-period", "-5"],
     "--burst-period wants an unsigned integer"),
    (["serve", "--burst-period", "0"], "--burst-period must be positive"),
    (["serve", "--variant", "eadr"], "unknown serve variant"),
    (["serve", "--arrival", "pareto"], "unknown arrival process"),
    (["serve", "--keys", "1000"], "--keys must be a power of two"),
    (["serve", "--keys", "131072"], "--keys must be at most 65536"),
    (["serve", "--read-pct", "101"], "--read-pct must be at most 100"),
    (["serve", "--arrival", "bursty", "--on-fraction", "1.5"],
     "--on-fraction wants a fraction in (0, 1)"),
    (["serve", "--arrival", "bursty", "--burst-factor", "8",
      "--on-fraction", "0.5"],
     "--burst-factor times --on-fraction must be at most 1"),
    (["serve", "--telemetry-trace", "/tmp/x.json"],
     "--telemetry-trace requires --telemetry"),
]


def run_case(cli, argv, needle):
    proc = subprocess.run(
        [cli] + argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=60,
    )
    if proc.returncode == 0:
        return f"{' '.join(argv)}: expected nonzero exit, got 0"
    if needle not in proc.stdout:
        head = proc.stdout.splitlines()[:2]
        return (
            f"{' '.join(argv)}: diagnostic missing {needle!r} "
            f"(got {head})"
        )
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cli", required=True, help="path to ppa_cli")
    args = ap.parse_args()

    problems = []
    for argv, needle in CASES:
        err = run_case(args.cli, argv, needle)
        if err:
            problems.append(err)

    for p in problems:
        print(f"cli_errors_test: {p}", file=sys.stderr)
    if problems:
        return 1
    print(f"cli_errors_test: OK — {len(CASES)} malformed invocations "
          "all rejected with diagnostics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
