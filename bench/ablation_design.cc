/**
 * @file
 * Ablation of PPA's design choices (DESIGN.md experiment index):
 *
 *  1. persist coalescing in the write buffer (Section 4.3) — run with
 *     the write-combining window disabled;
 *  2. asynchronous persistence — proxied by the ReplayCache variant,
 *     whose per-store clwb makes persistence synchronous;
 *  3. dynamic (PRF-sized) regions — run with a deliberately small PRF
 *     so regions become compiler-short, isolating the value of long
 *     regions.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Ablation: PPA design choices (slowdown vs memory mode)",
    "Columns isolate the contribution of each mechanism the paper "
    "builds on.",
    {"app", "full PPA", "no coalescing", "tiny PRF (80/80)",
     "sync persist (RC)"});

std::vector<double> full, nocoal, tiny, sync_rc;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    for (auto _ : state) {
        ExperimentKnobs knobs = benchKnobs();
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);

        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);

        ExperimentKnobs k_nocoal = knobs;
        k_nocoal.wbCoalesceWindow = 0;
        const RunStats &ppa_nocoal =
            cachedRun(profile, SystemVariant::Ppa, k_nocoal);

        ExperimentKnobs k_tiny = knobs;
        k_tiny.intPrf = 80;
        k_tiny.fpPrf = 80;
        const RunStats &ppa_tiny =
            cachedRun(profile, SystemVariant::Ppa, k_tiny);
        const RunStats &base_tiny =
            cachedRun(profile, SystemVariant::MemoryMode, k_tiny);

        const RunStats &rc =
            cachedRun(profile, SystemVariant::ReplayCache, knobs);

        double s_full = slowdown(ppa, base);
        double s_nocoal = slowdown(ppa_nocoal, base);
        double s_tiny = slowdown(ppa_tiny, base_tiny);
        double s_rc = slowdown(rc, base);
        state.counters["full"] = s_full;
        state.counters["no_coalescing"] = s_nocoal;
        state.counters["tiny_prf"] = s_tiny;
        state.counters["sync_persist"] = s_rc;
        full.push_back(s_full);
        nocoal.push_back(s_nocoal);
        tiny.push_back(s_tiny);
        sync_rc.push_back(s_rc);
        report.addRow({profile.name, TextTable::factor(s_full),
                       TextTable::factor(s_nocoal),
                       TextTable::factor(s_tiny),
                       TextTable::factor(s_rc)});
    }
}

struct Register
{
    Register()
    {
        ExperimentKnobs base = benchKnobs();
        ExperimentKnobs nocoal = base;
        nocoal.wbCoalesceWindow = 0;
        ExperimentKnobs tiny = base;
        tiny.intPrf = 80;
        tiny.fpPrf = 80;
        for (const char *name :
             {"gcc", "hmmer", "lbm", "rb", "water-ns", "tpcc"}) {
            const auto &profile = profileByName(name);
            enqueueRun(profile, SystemVariant::MemoryMode, base);
            enqueueRun(profile, SystemVariant::Ppa, base);
            enqueueRun(profile, SystemVariant::Ppa, nocoal);
            enqueueRun(profile, SystemVariant::MemoryMode, tiny);
            enqueueRun(profile, SystemVariant::Ppa, tiny);
            enqueueRun(profile, SystemVariant::ReplayCache, base);
            benchmark::RegisterBenchmark(
                (std::string("ablation/") + name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"geomean", TextTable::factor(geomean(full)),
                   TextTable::factor(geomean(nocoal)),
                   TextTable::factor(geomean(tiny)),
                   TextTable::factor(geomean(sync_rc))});
    report.print();
    ppabench::writeResultsJson("ablation");
    return 0;
}
