/**
 * @file
 * Table 4: hardware cost of PPA's three structures (64-bit LCPC,
 * 384-bit MaskReg, 40-entry CSQ) at a 22 nm node, and the resulting
 * chip-area ratio.
 *
 * Paper result: 12.20 / 74.03 / 547.84 um^2, sub-0.1 ns access,
 * sub-femtojoule-per-bit dynamic access; in total 0.005% of an
 * 11.85 mm^2 Xeon core.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "energy/cost_model.hh"

using namespace ppa;
using namespace ppa::energy;

namespace
{

void
computeCosts(benchmark::State &state)
{
    for (auto _ : state) {
        auto costs = ppaStructureCosts();
        benchmark::DoNotOptimize(costs);
        state.counters["area_ratio"] = ppaAreaRatio();
    }
}

BENCHMARK(computeCosts)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    TextTable table({"structure", "area (um^2)", "paper area",
                     "access latency (ns)", "dynamic access (pJ)"});
    const char *paper_area[] = {"12.20", "74.03", "547.84"};
    int i = 0;
    double total_area = 0.0;
    for (const auto &[s, c] : ppaStructureCosts()) {
        table.addRow({std::string(s.name), TextTable::num(c.areaUm2, 2),
                      paper_area[i++],
                      TextTable::num(c.accessLatencyNs, 3),
                      TextTable::num(c.dynamicAccessPj, 5)});
        total_area += c.areaUm2;
    }
    std::printf("\n=== Table 4: PPA hardware overheads (22 nm) ===\n");
    std::printf("Paper: 0.005%% of an 11.85 mm^2 Xeon core in total.\n\n");
    std::printf("%s\n", table.render().c_str());
    std::printf("total area: %.2f um^2 = %.4f%% of core area "
                "(paper: 0.005%%)\n",
                total_area, ppaAreaRatio() * 100.0);
    // No simulation jobs here: the table comes from the analytical
    // cost model, exported under the document's "extra" scalars.
    ppabench::writeResultsJson("table04",
                               {{"totalAreaUm2", total_area},
                                {"coreAreaRatio", ppaAreaRatio()}});
    return 0;
}
