/**
 * @file
 * Figure 17: sensitivity to the committed store queue (CSQ) size,
 * swept from 10 to 50 entries.
 *
 * Paper result: minimal impact — regions average only ~18 stores, so
 * a 40-entry CSQ rarely overflows; the default is set to 40 to make
 * CSQ-full implicit boundaries rare.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

constexpr unsigned sizes[] = {10, 20, 30, 40, 50};

FigureReport report(
    "Figure 17: PPA slowdown vs CSQ size (10..50 entries)",
    "Paper: minimal impact; 40 entries (default) make CSQ overflow "
    "rare.",
    {"app", "CSQ-10", "CSQ-20", "CSQ-30", "CSQ-40 (default)",
     "CSQ-50"});

std::vector<double> slow[5];

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::string> row{profile.name};
        for (std::size_t i = 0; i < 5; ++i) {
            ExperimentKnobs knobs = benchKnobs();
            knobs.csqEntries = sizes[i];
            const RunStats &base =
                cachedRun(profile, SystemVariant::MemoryMode, knobs);
            const RunStats &ppa =
                cachedRun(profile, SystemVariant::Ppa, knobs);
            double s = slowdown(ppa, base);
            state.counters["csq" + std::to_string(sizes[i])] = s;
            row.push_back(TextTable::factor(s));
            slow[i].push_back(s);
        }
        report.addRow(std::move(row));
    }
}

struct Register
{
    Register()
    {
        for (const auto &name : sweepApps()) {
            const auto &profile = profileByName(name);
            for (unsigned csq : sizes) {
                ExperimentKnobs knobs = benchKnobs();
                knobs.csqEntries = csq;
                enqueueRun(profile, SystemVariant::MemoryMode, knobs);
                enqueueRun(profile, SystemVariant::Ppa, knobs);
            }
            benchmark::RegisterBenchmark(
                ("fig17/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    std::vector<std::string> row{"geomean"};
    for (auto &s : slow)
        row.push_back(TextTable::factor(geomean(s)));
    report.addRow(std::move(row));
    report.print();
    ppabench::writeResultsJson("fig17");
    return 0;
}
