/**
 * @file
 * Figure 8: run-time overhead of PPA and Capri, normalized to the
 * baseline (original binaries on PMEM's memory mode), over all 41
 * applications with a 40-entry CSQ.
 *
 * Paper result: PPA averages ~2% overhead while Capri averages ~26%
 * (its regions are ~11x shorter); rb shows PPA's largest overhead due
 * to its higher relative write traffic.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 8: normalized slowdown vs PMEM memory mode (lower is "
    "better)",
    "Paper: PPA ~1.02x mean, Capri ~1.26x mean; rb is PPA's worst "
    "case.",
    {"app", "suite", "PPA", "Capri"});

std::vector<double> ppaSlowdowns;
std::vector<double> capriSlowdowns;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        const RunStats &capri =
            cachedRun(profile, SystemVariant::Capri, knobs);

        double s_ppa = slowdown(ppa, base);
        double s_capri = slowdown(capri, base);
        state.counters["ppa_slowdown"] = s_ppa;
        state.counters["capri_slowdown"] = s_capri;

        ppaSlowdowns.push_back(s_ppa);
        capriSlowdowns.push_back(s_capri);
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::factor(s_ppa),
                       TextTable::factor(s_capri)});
    }
}

struct Register
{
    Register()
    {
        for (const auto &profile : allProfiles()) {
            for (auto v : {SystemVariant::MemoryMode, SystemVariant::Ppa,
                           SystemVariant::Capri})
                enqueueRun(profile, v, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig08/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"geomean", "-",
                   TextTable::factor(geomean(ppaSlowdowns)),
                   TextTable::factor(geomean(capriSlowdowns))});
    report.print();
    ppabench::writeResultsJson("fig08");
    return 0;
}
