/**
 * @file
 * Table 1: qualitative comparison between clwb-based persistence and
 * PPA's asynchronous store writeback — backed by a measured
 * demonstration of the store-queue pressure difference.
 *
 * Paper's Table 1: clwb occupies a store-queue entry, tracks each
 * individual store, requires inter-core snooping, and cannot flush
 * through a DRAM cache to NVM; PPA's writeback does none of that and
 * reaches NVM.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Table 1: CLWB vs PPA's asynchronous store writeback",
    "Qualitative rows from the paper, plus a measured store-queue "
    "pressure demonstration below.",
    {"property", "CLWB (x86)", "PPA"});

void
demo(benchmark::State &state)
{
    // Demonstrate the store-queue occupancy claim empirically: the
    // same workload under ReplayCache (clwb per store) doubles SQ
    // traffic and stalls versus PPA.
    ExperimentKnobs knobs = benchKnobs();
    const auto &profile = profileByName("hmmer");
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &rc =
            cachedRun(profile, SystemVariant::ReplayCache, knobs);
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        state.counters["rc_slowdown"] = slowdown(rc, base);
        state.counters["ppa_slowdown"] = slowdown(ppa, base);
    }
}

BENCHMARK(demo)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    {
        const auto &profile = profileByName("hmmer");
        for (auto v : {SystemVariant::MemoryMode,
                       SystemVariant::ReplayCache, SystemVariant::Ppa})
            enqueueRun(profile, v, benchKnobs());
    }
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    report.addRow({"store queue entry occupied", "yes", "no"});
    report.addRow({"tracks each individual store", "yes",
                   "no (counter register)"});
    report.addRow({"requires inter-core snooping", "yes", "no"});
    report.addRow({"reaches NVM through DRAM cache", "no", "yes"});

    ExperimentKnobs knobs = benchKnobs();
    const auto &profile = profileByName("hmmer");
    const RunStats &base =
        cachedRun(profile, SystemVariant::MemoryMode, knobs);
    const RunStats &rc =
        cachedRun(profile, SystemVariant::ReplayCache, knobs);
    const RunStats &ppa =
        cachedRun(profile, SystemVariant::Ppa, knobs);
    report.addRow({"measured slowdown (hmmer)",
                   TextTable::factor(slowdown(rc, base)),
                   TextTable::factor(slowdown(ppa, base))});
    report.print();
    ppabench::writeResultsJson("table01");
    return 0;
}
