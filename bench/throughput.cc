/**
 * @file
 * Host-throughput benchmark: simulated kilo-instructions per
 * host-second (KIPS) across the representative app subset and the
 * persistence variants (ppa, capri, replaycache).
 *
 * Unlike the figure binaries, the metric here is the simulator
 * itself: each job's wall time is the measurement, so the grid runs
 * through the ExperimentDriver exactly as `ppa_cli bench` runs it
 * (same jobs, same knobs, via throughputSweep) and the per-job KIPS
 * land in the google-benchmark counters. The JSON export
 * (BENCH_throughput.json) is the document the CI regression gate
 * diffs against the checked-in baseline; see docs/PERF.md for the
 * methodology and noise caveats.
 *
 * Environment:
 *  - PPA_BENCH_JOBS: driver worker threads (default: hardware).
 *  - PPA_BENCH_INSTS: committed instructions per core (default:
 *    throughputSweep's own).
 *  - PPA_RESULTS_DIR: JSON output directory (default: results/).
 */

#include "bench/bench_common.hh"

#include <cmath>

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "BENCH: simulated-KIPS host throughput",
    "Not a paper figure: measures the simulator, not the simulated "
    "machine. Gated in CI against bench/throughput_baseline.json.",
    {"workload", "variant", "insts", "wall ms", "KIPS"});

std::vector<JobResult> runs;

double
jobKips(const JobResult &r)
{
    return r.wallSeconds > 0.0
               ? static_cast<double>(r.stats.committedInsts) /
                     r.wallSeconds / 1e3
               : 0.0;
}

void
runCase(benchmark::State &state, std::size_t job_index)
{
    for (auto _ : state) {
        const JobResult &r = runs[job_index];
        double kips = jobKips(r);
        state.counters["KIPS"] = kips;
        report.addRow({r.job.profile.name,
                       variantToken(r.job.variant),
                       std::to_string(r.stats.committedInsts),
                       TextTable::num(r.wallSeconds * 1e3, 2),
                       TextTable::num(kips, 1)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);

    std::uint64_t insts = 0;
    if (const char *env = std::getenv("PPA_BENCH_INSTS"))
        insts = std::strtoull(env, nullptr, 10);
    unsigned workers = 0;
    if (const char *env = std::getenv("PPA_BENCH_JOBS"))
        workers = static_cast<unsigned>(std::strtoul(env, nullptr, 10));

    FigureSweep fs = throughputSweep(insts);
    ExperimentDriver driver(workers);
    std::fprintf(stderr, "bench: %zu throughput jobs on %u threads\n",
                 fs.jobs.size(), driver.workers());
    runs = driver.run(fs.jobs);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        benchmark::RegisterBenchmark(
            ("throughput/" + runs[i].job.profile.name + "/" +
             variantToken(runs[i].job.variant))
                .c_str(),
            [i](benchmark::State &st) { runCase(st, i); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    double instsTotal = 0.0;
    double wallTotal = 0.0;
    double logSum = 0.0;
    for (const JobResult &r : runs) {
        instsTotal += static_cast<double>(r.stats.committedInsts);
        wallTotal += r.wallSeconds;
        logSum += std::log(std::max(jobKips(r), 1e-9));
    }
    double agg =
        wallTotal > 0.0 ? instsTotal / wallTotal / 1e3 : 0.0;
    double geomean =
        runs.empty()
            ? 0.0
            : std::exp(logSum / static_cast<double>(runs.size()));
    report.addRow({"aggregate", "-", "-", "-",
                   TextTable::num(agg, 1)});
    report.addRow({"geomean", "-", "-", "-",
                   TextTable::num(geomean, 1)});
    report.print();

    std::string path =
        metrics::resultsDir() + "/BENCH_throughput.json";
    std::string doc = metrics::sweepToJson(
        fs.name, runs,
        {{"aggregateKips", agg},
         {"geomeanKips", geomean},
         {"workers", static_cast<double>(driver.workers())}});
    if (metrics::writeFile(path, doc))
        std::fprintf(stderr, "bench: wrote %s (%zu jobs)\n",
                     path.c_str(), runs.size());
    return 0;
}
