/**
 * @file
 * Host-throughput benchmark: simulated kilo-instructions per
 * host-second (KIPS) across the representative app subset and the
 * persistence variants (ppa, capri, replaycache).
 *
 * Unlike the figure binaries, the metric here is the simulator
 * itself: each job's wall time is the measurement, so the grid runs
 * through the ExperimentDriver exactly as `ppa_cli bench` runs it
 * (same jobs, same knobs, via throughputSweep) and the per-job KIPS
 * land in the google-benchmark counters. The JSON export
 * (BENCH_throughput.json) is the document the CI regression gate
 * diffs against the checked-in baseline; see docs/PERF.md for the
 * methodology and noise caveats.
 *
 * Environment:
 *  - PPA_BENCH_JOBS: driver worker threads (default: hardware).
 *  - PPA_BENCH_INSTS: committed instructions per core (default:
 *    throughputSweep's own).
 *  - PPA_BENCH_TIME_PARALLEL: when >= 2, also time one long
 *    single-app run serially vs split into that many segments
 *    (sim/segment.hh) and record the speedup under "tpSpeedup" in the
 *    JSON extras. Kept out of the jobs array so the aggregate-KIPS
 *    gate keeps comparing like with like across baselines.
 *  - PPA_RESULTS_DIR: JSON output directory (default: results/).
 */

#include "bench/bench_common.hh"

#include "sim/segment.hh"

#include <cmath>

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "BENCH: simulated-KIPS host throughput",
    "Not a paper figure: measures the simulator, not the simulated "
    "machine. Gated in CI against bench/throughput_baseline.json.",
    {"workload", "variant", "insts", "wall ms", "KIPS"});

std::vector<JobResult> runs;

double
jobKips(const JobResult &r)
{
    return r.wallSeconds > 0.0
               ? static_cast<double>(r.stats.committedInsts) /
                     r.wallSeconds / 1e3
               : 0.0;
}

/** The time-parallel series: one long single-app run, serial vs
 *  segmented, best-of-two so the segmented pass can reuse its seeked
 *  sources (the bench --reps fix under test in
 *  tests/sim/test_time_parallel.cc). */
struct TpSeries
{
    unsigned segments = 0;
    double serialKips = 0.0;
    double tpKips = 0.0;
    double speedup = 0.0;
};

TpSeries
runTimeParallelSeries(unsigned segments, std::uint64_t insts)
{
    using clock = std::chrono::steady_clock;
    const WorkloadProfile &profile = profileByName(sweepApps().front());
    ExperimentKnobs serial;
    serial.instsPerCore = insts;
    ExperimentKnobs seg = serial;
    seg.timeParallel = segments;

    TpSeries out;
    out.segments = segments;
    SegmentSourceCache cache;
    double serialBest = 0.0;
    double tpBest = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
        auto t0 = clock::now();
        RunStats s = runWorkload(profile, SystemVariant::Ppa, serial);
        auto t1 = clock::now();
        RunStats p = runWorkloadTimeParallel(profile, SystemVariant::Ppa,
                                             seg, &cache);
        auto t2 = clock::now();
        double sSec = std::chrono::duration<double>(t1 - t0).count();
        double pSec = std::chrono::duration<double>(t2 - t1).count();
        if (sSec > 0.0)
            serialBest = std::max(
                serialBest,
                static_cast<double>(s.committedInsts) / sSec / 1e3);
        if (pSec > 0.0)
            tpBest = std::max(
                tpBest,
                static_cast<double>(p.committedInsts) / pSec / 1e3);
    }
    out.serialKips = serialBest;
    out.tpKips = tpBest;
    out.speedup = serialBest > 0.0 ? tpBest / serialBest : 0.0;
    return out;
}

void
runCase(benchmark::State &state, std::size_t job_index)
{
    for (auto _ : state) {
        const JobResult &r = runs[job_index];
        double kips = jobKips(r);
        state.counters["KIPS"] = kips;
        report.addRow({r.job.profile.name,
                       variantToken(r.job.variant),
                       std::to_string(r.stats.committedInsts),
                       TextTable::num(r.wallSeconds * 1e3, 2),
                       TextTable::num(kips, 1)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);

    std::uint64_t insts = 0;
    // Env knobs are read on the main thread before the driver spawns
    // workers, so the mt-unsafety of getenv cannot bite.
    if (const char *env = std::getenv("PPA_BENCH_INSTS")) // NOLINT(concurrency-mt-unsafe)
        insts = std::strtoull(env, nullptr, 10);
    unsigned workers = 0;
    if (const char *env = std::getenv("PPA_BENCH_JOBS")) // NOLINT(concurrency-mt-unsafe)
        workers = static_cast<unsigned>(std::strtoul(env, nullptr, 10));

    FigureSweep fs = throughputSweep(insts);
    ExperimentDriver driver(workers);
    std::fprintf(stderr, "bench: %zu throughput jobs on %u threads\n",
                 fs.jobs.size(), driver.workers());
    runs = driver.run(fs.jobs);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        benchmark::RegisterBenchmark(
            ("throughput/" + runs[i].job.profile.name + "/" +
             variantToken(runs[i].job.variant))
                .c_str(),
            [i](benchmark::State &st) { runCase(st, i); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    double instsTotal = 0.0;
    double wallTotal = 0.0;
    double logSum = 0.0;
    for (const JobResult &r : runs) {
        instsTotal += static_cast<double>(r.stats.committedInsts);
        wallTotal += r.wallSeconds;
        logSum += std::log(std::max(jobKips(r), 1e-9));
    }
    double agg =
        wallTotal > 0.0 ? instsTotal / wallTotal / 1e3 : 0.0;
    double geomean =
        runs.empty()
            ? 0.0
            : std::exp(logSum / static_cast<double>(runs.size()));
    report.addRow({"aggregate", "-", "-", "-",
                   TextTable::num(agg, 1)});
    report.addRow({"geomean", "-", "-", "-",
                   TextTable::num(geomean, 1)});

    std::vector<std::pair<std::string, double>> extras = {
        {"aggregateKips", agg},
        {"geomeanKips", geomean},
        {"workers", static_cast<double>(driver.workers())}};

    unsigned tpSegments = 0;
    if (const char *env = std::getenv("PPA_BENCH_TIME_PARALLEL")) // NOLINT(concurrency-mt-unsafe)
        tpSegments = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (tpSegments >= 2) {
        TpSeries tp = runTimeParallelSeries(
            tpSegments, insts ? insts * 4 : 240'000);
        report.addRow({"time-parallel serial", "ppa", "-", "-",
                       TextTable::num(tp.serialKips, 1)});
        report.addRow({"time-parallel x" + std::to_string(tp.segments),
                       "ppa", "-", "-", TextTable::num(tp.tpKips, 1)});
        extras.push_back({"tpSegments",
                          static_cast<double>(tp.segments)});
        extras.push_back({"tpSerialKips", tp.serialKips});
        extras.push_back({"tpKips", tp.tpKips});
        extras.push_back({"tpSpeedup", tp.speedup});
    }
    report.print();

    std::string path =
        metrics::resultsDir() + "/BENCH_throughput.json";
    std::string doc = metrics::sweepToJson(fs.name, runs, extras);
    if (metrics::writeFile(path, doc))
        std::fprintf(stderr, "bench: wrote %s (%zu jobs)\n",
                     path.c_str(), runs.size());
    return 0;
}
