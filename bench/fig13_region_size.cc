/**
 * @file
 * Figure 13: average number of stores and other instructions per
 * dynamically formed PPA region.
 *
 * Paper result: ~301 other + ~18 store instructions per region on
 * average (vs Capri's compiler regions of ~29 instructions); bzip2
 * and libquantum form smaller regions due to heavy register usage.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 13: dynamic region size (instructions per region)",
    "Paper: ~301 others + ~18 stores per region on average; Capri's "
    "regions are ~29 instructions (~11x shorter).",
    {"app", "suite", "stores/region", "others/region",
     "total/region"});

double storeSum = 0.0;
double otherSum = 0.0;
unsigned count = 0;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        state.counters["stores_per_region"] = ppa.avgRegionStores;
        state.counters["others_per_region"] = ppa.avgRegionOthers;
        storeSum += ppa.avgRegionStores;
        otherSum += ppa.avgRegionOthers;
        ++count;
        report.addRow(
            {profile.name, suiteName(profile.suite),
             TextTable::num(ppa.avgRegionStores, 1),
             TextTable::num(ppa.avgRegionOthers, 1),
             TextTable::num(ppa.avgRegionStores + ppa.avgRegionOthers,
                            1)});
    }
}

struct Register
{
    Register()
    {
        for (const auto &profile : allProfiles()) {
            enqueueRun(profile, SystemVariant::Ppa, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig13/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    if (count) {
        report.addRow({"mean", "-",
                       TextTable::num(storeSum / count, 1),
                       TextTable::num(otherSum / count, 1),
                       TextTable::num((storeSum + otherSum) / count,
                                      1)});
    }
    report.addRow({"(Capri compiler regions)", "-", "-", "-", "29"});
    report.print();
    ppabench::writeResultsJson("fig13");
    return 0;
}
