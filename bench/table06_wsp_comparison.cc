/**
 * @file
 * Table 6: qualitative comparison of PPA against the prior WSP
 * schemes, with the measurable columns backed by this repository's
 * models.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.hh"
#include "energy/cost_model.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

void
measure(benchmark::State &state)
{
    ExperimentKnobs knobs = benchKnobs();
    const auto &profile = profileByName("gcc");
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        state.counters["ppa"] = slowdown(
            cachedRun(profile, SystemVariant::Ppa, knobs), base);
        state.counters["capri"] = slowdown(
            cachedRun(profile, SystemVariant::Capri, knobs), base);
        state.counters["rc"] = slowdown(
            cachedRun(profile, SystemVariant::ReplayCache, knobs),
            base);
    }
}

BENCHMARK(measure)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    {
        const auto &profile = profileByName("gcc");
        for (auto v : {SystemVariant::MemoryMode, SystemVariant::Ppa,
                       SystemVariant::Capri,
                       SystemVariant::ReplayCache})
            enqueueRun(profile, v, benchKnobs());
    }
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    TextTable table({"criterion", "WSP [Narayanan]", "Capri",
                     "ReplayCache", "PPA"});
    table.addRow({"hardware complexity", "extremely high (UPS)", "high",
                  "no", "low"});
    table.addRow({"energy requirement", "extremely high", "high", "low",
                  "low"});
    table.addRow({"recompilation", "no", "yes", "yes", "no"});
    table.addRow({"transparency", "yes", "yes", "yes", "yes"});
    table.addRow({"enables DRAM cache", "yes", "yes", "no", "yes"});
    table.addRow({"enables multi-MCs", "yes", "no", "yes", "yes"});

    std::printf("\n=== Table 6: PPA vs prior WSP approaches ===\n\n");
    std::printf("%s\n", table.render().c_str());

    ExperimentKnobs knobs = benchKnobs();
    const auto &profile = profileByName("gcc");
    const RunStats &base =
        cachedRun(profile, SystemVariant::MemoryMode, knobs);
    std::printf("Measured on this repo's models (gcc): PPA %.2fx, "
                "Capri %.2fx, ReplayCache %.2fx; JIT energy "
                "PPA %.1f uJ vs Capri %.2f mJ.\n",
                slowdown(cachedRun(profile, SystemVariant::Ppa, knobs),
                         base),
                slowdown(cachedRun(profile, SystemVariant::Capri,
                                   knobs),
                         base),
                slowdown(cachedRun(profile, SystemVariant::ReplayCache,
                                   knobs),
                         base),
                energy::backupForBytes(
                    energy::ppaWorstCaseCheckpointBytes())
                        .energyJ *
                    1e6,
                energy::backupForBytes(energy::capriFlushBytes())
                        .energyJ *
                    1e3);
    ppabench::writeResultsJson("table06");
    return 0;
}
