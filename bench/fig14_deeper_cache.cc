/**
 * @file
 * Figure 14: sensitivity to a deeper cache hierarchy — a shared L3 is
 * added between the (now private, 14-cycle) L2 and the DRAM cache.
 *
 * Paper result: PPA's overhead stays ~1% even with the extra level,
 * because its regions are long enough to cover the extended store
 * persistence path (PPA treats the hierarchy as a black box).
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 14: PPA slowdown with an L3 atop the DRAM cache",
    "Paper: ~1.01x mean — region length covers the deeper persist "
    "path.",
    {"app", "suite", "PPA (with L3)"});

std::vector<double> slowdowns;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    knobs.l3Cache = true;
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        double s = slowdown(ppa, base);
        state.counters["ppa_l3"] = s;
        slowdowns.push_back(s);
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::factor(s)});
    }
}

struct Register
{
    Register()
    {
        ExperimentKnobs knobs = benchKnobs();
        knobs.l3Cache = true;
        for (const auto &profile : allProfiles()) {
            for (auto v :
                 {SystemVariant::MemoryMode, SystemVariant::Ppa})
                enqueueRun(profile, v, knobs);
            benchmark::RegisterBenchmark(
                ("fig14/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow(
        {"geomean", "-", TextTable::factor(geomean(slowdowns))});
    report.print();
    ppabench::writeResultsJson("fig14");
    return 0;
}
