/**
 * @file
 * Figure 9: slowdown of PPA and of PMEM's memory mode relative to a
 * DRAM-only (volatile) system.
 *
 * Paper result: PPA and memory mode are 16% and 14% slower than the
 * DRAM-only system on average; poor-locality apps (lbm 44%, pc 58%)
 * pay the most because the DRAM cache only lengthens their miss path.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 9: normalized slowdown vs a DRAM-only volatile system",
    "Paper: memory mode ~1.14x, PPA ~1.16x mean; lbm/pc worst "
    "(1.44x/1.58x) due to poor locality.",
    {"app", "suite", "memory-mode", "PPA"});

std::vector<double> memSlow;
std::vector<double> ppaSlow;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &dram =
            cachedRun(profile, SystemVariant::DramOnly, knobs);
        const RunStats &mem =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        double s_mem = slowdown(mem, dram);
        double s_ppa = slowdown(ppa, dram);
        state.counters["memmode_vs_dram"] = s_mem;
        state.counters["ppa_vs_dram"] = s_ppa;
        memSlow.push_back(s_mem);
        ppaSlow.push_back(s_ppa);
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::factor(s_mem),
                       TextTable::factor(s_ppa)});
    }
}

struct Register
{
    Register()
    {
        for (const auto &profile : allProfiles()) {
            for (auto v : {SystemVariant::DramOnly,
                           SystemVariant::MemoryMode,
                           SystemVariant::Ppa})
                enqueueRun(profile, v, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig09/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"geomean", "-", TextTable::factor(geomean(memSlow)),
                   TextTable::factor(geomean(ppaSlow))});
    report.print();
    ppabench::writeResultsJson("fig09");
    return 0;
}
