/**
 * @file
 * Shared plumbing for the per-figure benchmark binaries.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation. Each registers its sweep grid up front
 * (enqueueRun), which the binary's main() fans across hardware
 * threads through the ExperimentDriver before the google-benchmark
 * cases execute; the cases then read the finished runs out of the
 * shared cache (cachedRun), record the paper's metric in the
 * benchmark counters, print the figure's rows as an aligned table,
 * and export every run as schema-versioned JSON (docs/METRICS.md) to
 * results/<figure>.json.
 *
 * Environment:
 *  - PPA_BENCH_JOBS: driver worker threads (default: hardware).
 *  - PPA_RESULTS_DIR: JSON output directory (default: results/).
 */

#ifndef PPA_BENCH_BENCH_COMMON_HH
#define PPA_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/figures.hh"
#include "sim/report.hh"
#include "workload/profile.hh"

namespace ppabench
{

/** Default committed-instruction budget per core for bench runs. */
constexpr std::uint64_t benchInsts = 15000;

/** Default knobs for bench runs (Table 2 configuration). */
inline ppa::ExperimentKnobs
benchKnobs()
{
    ppa::ExperimentKnobs knobs;
    knobs.instsPerCore = benchInsts;
    return knobs;
}

/** A short, representative cross-suite app list for sweep figures. */
inline const std::vector<std::string> &
sweepApps()
{
    return ppa::sweepAppNames();
}

namespace detail
{

/** Exact identity of one simulation point. */
inline std::string
jobKey(const ppa::WorkloadProfile &profile, ppa::SystemVariant variant,
       const ppa::ExperimentKnobs &knobs)
{
    return profile.name + '|' + ppa::variantToken(variant) + '|' +
           ppa::metrics::knobsToJson(knobs);
}

/** All completed runs of this binary, in completion order. */
inline std::vector<ppa::JobResult> &
completedRuns()
{
    static std::vector<ppa::JobResult> runs;
    return runs;
}

/** jobKey -> index into completedRuns(). */
inline std::map<std::string, std::size_t> &
runIndex()
{
    static std::map<std::string, std::size_t> index;
    return index;
}

/** Jobs submitted by the Register ctors, not yet run. */
inline std::vector<ppa::SweepJob> &
pendingJobs()
{
    static std::vector<ppa::SweepJob> jobs;
    return jobs;
}

inline void
recordRun(ppa::JobResult result)
{
    runIndex().emplace(
        jobKey(result.job.profile, result.job.variant, result.job.knobs),
        completedRuns().size());
    completedRuns().push_back(std::move(result));
}

} // namespace detail

/**
 * Submit one simulation point of this binary's sweep. Duplicates
 * (e.g. a baseline shared by several figure rows) are collapsed, so
 * each point simulates once per binary.
 */
inline void
enqueueRun(const ppa::WorkloadProfile &profile,
           ppa::SystemVariant variant, const ppa::ExperimentKnobs &knobs)
{
    std::string key = detail::jobKey(profile, variant, knobs);
    static std::set<std::string> pendingKeys;
    if (detail::runIndex().count(key) || !pendingKeys.insert(key).second)
        return;
    detail::pendingJobs().push_back({profile, variant, knobs});
}

/**
 * Fan all enqueued jobs across hardware threads and fill the shared
 * run cache. Called by each binary's main() after
 * benchmark::Initialize and before RunSpecifiedBenchmarks.
 */
inline void
runPendingJobs()
{
    auto &pending = detail::pendingJobs();
    if (pending.empty())
        return;
    unsigned workers = 0;
    if (const char *env = std::getenv("PPA_BENCH_JOBS"))
        workers = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    ppa::ExperimentDriver driver(workers);
    std::fprintf(stderr,
                 "bench: running %zu simulation jobs on %u threads\n",
                 pending.size(), driver.workers());
    auto results = driver.run(
        pending, [](const ppa::JobResult &r, std::size_t done,
                    std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] %s/%s (%.2fs)\n", done,
                         total, r.job.profile.name.c_str(),
                         ppa::variantToken(r.job.variant),
                         r.wallSeconds);
        });
    for (auto &r : results)
        detail::recordRun(std::move(r));
    pending.clear();
}

/**
 * Look up (or lazily run) one workload/variant/knob combination.
 * Points submitted with enqueueRun() are already in the cache after
 * runPendingJobs(); anything else falls back to an inline serial run
 * (and is recorded, so it still lands in the JSON export).
 */
inline const ppa::RunStats &
cachedRun(const ppa::WorkloadProfile &profile, ppa::SystemVariant variant,
          const ppa::ExperimentKnobs &knobs)
{
    std::string key = detail::jobKey(profile, variant, knobs);
    auto it = detail::runIndex().find(key);
    if (it == detail::runIndex().end()) {
        auto start = std::chrono::steady_clock::now();
        ppa::JobResult r;
        r.job = {profile, variant, knobs};
        r.stats = runWorkload(profile, variant, knobs);
        r.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        detail::recordRun(std::move(r));
        it = detail::runIndex().find(key);
    }
    return detail::completedRuns()[it->second].stats;
}

/**
 * Export every run this binary performed as a schema-versioned JSON
 * document at <results dir>/<figure>.json. @p extra carries
 * figure-specific scalars (used by the analytical-model tables).
 */
inline void
writeResultsJson(
    const std::string &figure,
    const std::vector<std::pair<std::string, double>> &extra = {})
{
    std::string path =
        ppa::metrics::resultsDir() + "/" + figure + ".json";
    std::string doc = ppa::metrics::sweepToJson(
        figure, detail::completedRuns(), extra);
    if (ppa::metrics::writeFile(path, doc))
        std::fprintf(stderr, "bench: wrote %s (%zu jobs)\n",
                     path.c_str(), detail::completedRuns().size());
}

/**
 * Collects the figure's rows and prints them once at the end of the
 * binary (after google-benchmark's own report).
 */
class FigureReport
{
  public:
    FigureReport(std::string title, std::string reference,
                 std::vector<std::string> headers)
        : figTitle(std::move(title)), figReference(std::move(reference)),
          table(std::move(headers))
    {}

    void addRow(std::vector<std::string> cells)
    {
        table.addRow(std::move(cells));
    }

    void
    print() const
    {
        std::printf("\n=== %s ===\n", figTitle.c_str());
        std::printf("%s\n\n", figReference.c_str());
        std::printf("%s\n", table.render().c_str());
    }

  private:
    std::string figTitle;
    std::string figReference;
    ppa::TextTable table;
};

/** Standard main: parallel sweep, registered cases, report, JSON. */
#define PPA_BENCH_MAIN(figure_id, report_expr)                          \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        ::benchmark::Initialize(&argc, argv);                           \
        ::ppabench::runPendingJobs();                                   \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        ::benchmark::Shutdown();                                        \
        (report_expr).print();                                          \
        ::ppabench::writeResultsJson(figure_id);                        \
        return 0;                                                       \
    }

} // namespace ppabench

#endif // PPA_BENCH_BENCH_COMMON_HH
