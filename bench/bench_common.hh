/**
 * @file
 * Shared plumbing for the per-figure benchmark binaries.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation. Each registers its simulation points as
 * google-benchmark cases (one iteration each — these are whole-program
 * simulations, not microbenchmarks), records the paper's metric in the
 * benchmark counters, and prints the figure's rows as an aligned table
 * at exit.
 */

#ifndef PPA_BENCH_BENCH_COMMON_HH
#define PPA_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace ppabench
{

/** Default committed-instruction budget per core for bench runs. */
constexpr std::uint64_t benchInsts = 15000;

/**
 * Run (and memoize) one workload/variant/knob combination so that,
 * e.g., a baseline shared by several figure rows runs only once per
 * binary.
 */
inline const ppa::RunStats &
cachedRun(const ppa::WorkloadProfile &profile, ppa::SystemVariant variant,
          const ppa::ExperimentKnobs &knobs)
{
    using Key = std::tuple<std::string, int, unsigned, unsigned,
                           unsigned, unsigned, unsigned, int, unsigned,
                           std::uint64_t, unsigned>;
    static std::map<Key, ppa::RunStats> cache;
    Key key{profile.name,
            static_cast<int>(variant),
            knobs.threads,
            knobs.wpqEntries,
            knobs.intPrf,
            knobs.fpPrf,
            knobs.csqEntries,
            static_cast<int>(knobs.nvmWriteGbps * 100),
            knobs.l3Cache ? 1u : 0u,
            knobs.instsPerCore,
            knobs.wbCoalesceWindow};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, runWorkload(profile, variant, knobs))
                 .first;
    return it->second;
}

/** Default knobs for bench runs (Table 2 configuration). */
inline ppa::ExperimentKnobs
benchKnobs()
{
    ppa::ExperimentKnobs knobs;
    knobs.instsPerCore = benchInsts;
    return knobs;
}

/**
 * Collects the figure's rows and prints them once at the end of the
 * binary (after google-benchmark's own report).
 */
class FigureReport
{
  public:
    FigureReport(std::string title, std::string reference,
                 std::vector<std::string> headers)
        : figTitle(std::move(title)), figReference(std::move(reference)),
          table(std::move(headers))
    {}

    void addRow(std::vector<std::string> cells)
    {
        table.addRow(std::move(cells));
    }

    void
    print() const
    {
        std::printf("\n=== %s ===\n", figTitle.c_str());
        std::printf("%s\n\n", figReference.c_str());
        std::printf("%s\n", table.render().c_str());
    }

  private:
    std::string figTitle;
    std::string figReference;
    ppa::TextTable table;
};

/** A short, representative cross-suite app list for sweep figures
 *  (full-41 sweeps would multiply runtimes by the sweep depth). */
inline std::vector<std::string>
sweepApps()
{
    return {"gcc",  "hmmer",   "lbm",  "mcf",      "libquantum",
            "rb",   "tpcc",    "sps",  "water-ns", "ocean",
            "lulesh", "xsbench"};
}

/** Standard main: run the registered cases, then print the report. */
#define PPA_BENCH_MAIN(report_expr)                                     \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        ::benchmark::Initialize(&argc, argv);                           \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        ::benchmark::Shutdown();                                        \
        (report_expr).print();                                          \
        return 0;                                                       \
    }

} // namespace ppabench

#endif // PPA_BENCH_BENCH_COMMON_HH
