/**
 * @file
 * Figure 19: sensitivity to the thread count for the multi-threaded
 * applications, swept 8/16/32/64 with the shared L2 and WPQ scaled
 * proportionally (as the paper does).
 *
 * Paper result: PPA maintains 2%-6% mean overhead from 8 to 64
 * threads; water-ns/water-sp and memcached r20w80 rise slightly with
 * more threads due to synchronization stalls.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

constexpr unsigned threadCounts[] = {8, 16, 32, 64};

FigureReport report(
    "Figure 19: PPA slowdown vs thread count (MT suites)",
    "Paper: ~1.02x-1.06x mean for 8..64 threads; water-ns/water-sp "
    "and r20w80 grow slightly with threads.",
    {"app", "8T", "16T", "32T", "64T"});

std::vector<double> slow[4];

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::string> row{profile.name};
        for (std::size_t i = 0; i < 4; ++i) {
            ExperimentKnobs knobs = benchKnobs();
            knobs.threads = threadCounts[i];
            // Keep total simulated work bounded as threads scale.
            knobs.instsPerCore = 8000;
            const RunStats &base =
                cachedRun(profile, SystemVariant::MemoryMode, knobs);
            const RunStats &ppa =
                cachedRun(profile, SystemVariant::Ppa, knobs);
            double s = slowdown(ppa, base);
            row.push_back(TextTable::factor(s));
            slow[i].push_back(s);
        }
        report.addRow(std::move(row));
    }
}

struct Register
{
    Register()
    {
        // A representative MT subset (running all 19 MT apps at 64
        // threads would dominate the whole bench suite's runtime).
        for (const char *name :
             {"rb", "tpcc", "r20w80", "water-ns", "ocean", "genome"}) {
            const auto &profile = profileByName(name);
            for (unsigned threads : threadCounts) {
                ExperimentKnobs knobs = benchKnobs();
                knobs.threads = threads;
                knobs.instsPerCore = 8000;
                enqueueRun(profile, SystemVariant::MemoryMode, knobs);
                enqueueRun(profile, SystemVariant::Ppa, knobs);
            }
            benchmark::RegisterBenchmark(
                (std::string("fig19/") + name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    std::vector<std::string> row{"geomean"};
    for (auto &s : slow)
        row.push_back(TextTable::factor(geomean(s)));
    report.addRow(std::move(row));
    report.print();
    ppabench::writeResultsJson("fig19");
    return 0;
}
