/**
 * @file
 * Figure 1: ReplayCache's slowdown relative to the baseline (original
 * applications on PMEM's memory mode).
 *
 * Paper result: ~5x average slowdown — compiler regions are too short
 * (~12 instructions) and every store carries a clwb that occupies a
 * store-queue entry, so pipelines stall at each persist barrier.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 1: ReplayCache slowdown vs PMEM memory mode (lower is "
    "better)",
    "Paper: ~5x average slowdown across the suites.",
    {"app", "suite", "ReplayCache"});

std::vector<double> slowdowns;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &rc =
            cachedRun(profile, SystemVariant::ReplayCache, knobs);
        double s = slowdown(rc, base);
        state.counters["rc_slowdown"] = s;
        slowdowns.push_back(s);
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::factor(s)});
    }
}

struct Register
{
    Register()
    {
        // A representative subset across all suites (Figure 1 is the
        // motivation sketch; Figure 8 carries the full comparison).
        for (const auto &name : sweepApps()) {
            const auto &profile = profileByName(name);
            for (auto v : {SystemVariant::MemoryMode,
                           SystemVariant::ReplayCache})
                enqueueRun(profile, v, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig01/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"geomean", "-", TextTable::factor(geomean(
                                       slowdowns))});
    report.print();
    ppabench::writeResultsJson("fig01");
    return 0;
}
