/**
 * @file
 * Figure 11: stall cycles at the end of PPA's regions as a percentage
 * of execution time.
 *
 * Paper result: +0.21% on average thanks to long regions hiding the
 * store-persistence latency; water-ns/water-sp are the outliers
 * (6.1%/8.1%) due to shorter regions with more stores.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 11: region-end stall cycles as a fraction of execution",
    "Paper: ~0.21% average; water-ns 6.1% and water-sp 8.1% are the "
    "worst (store-dense, shorter regions).",
    {"app", "suite", "stall ratio", "regions", "avg stall/region"});

double ratioSum = 0.0;
unsigned ratioCount = 0;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        double ratio = ppa.boundaryStallRatio();
        state.counters["stall_ratio"] = ratio;
        ratioSum += ratio;
        ++ratioCount;
        double per_region =
            ppa.regionCount
                ? static_cast<double>(ppa.boundaryStallCycles) /
                      static_cast<double>(ppa.regionCount)
                : 0.0;
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::percent(ratio, 2),
                       std::to_string(ppa.regionCount),
                       TextTable::num(per_region, 1)});
    }
}

struct Register
{
    Register()
    {
        for (const auto &profile : allProfiles()) {
            enqueueRun(profile, SystemVariant::Ppa, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig11/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow(
        {"mean", "-",
         TextTable::percent(ratioCount ? ratioSum / ratioCount : 0.0,
                            2),
         "-", "-"});
    report.print();
    ppabench::writeResultsJson("fig11");
    return 0;
}
