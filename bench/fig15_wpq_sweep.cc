/**
 * @file
 * Figure 15: sensitivity to the NVM write pending queue (WPQ) size,
 * swept from 8 to 24 entries on the memory-intensive and
 * multi-threaded applications.
 *
 * Paper result: even with an 8-entry WPQ the mean overhead stays ~8%;
 * rb and water-ns/sp are the sensitive cases (low baseline write
 * traffic means PPA's store writebacks dominate the WPQ), and the
 * default 16 entries absorbs the pressure.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 15: PPA slowdown vs WPQ size (8 / 16 / 24 entries)",
    "Paper: WPQ-8 ~1.08x mean; rb/water-ns/water-sp most sensitive; "
    "WPQ-16 (default) absorbs the traffic.",
    {"app", "WPQ-8", "WPQ-16", "WPQ-24"});

std::vector<double> s8, s16, s24;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::string> row{profile.name};
        for (unsigned wpq : {8u, 16u, 24u}) {
            ExperimentKnobs knobs = benchKnobs();
            knobs.wpqEntries = wpq;
            const RunStats &base =
                cachedRun(profile, SystemVariant::MemoryMode, knobs);
            const RunStats &ppa =
                cachedRun(profile, SystemVariant::Ppa, knobs);
            double s = slowdown(ppa, base);
            state.counters["wpq" + std::to_string(wpq)] = s;
            row.push_back(TextTable::factor(s));
            (wpq == 8 ? s8 : wpq == 16 ? s16 : s24).push_back(s);
        }
        report.addRow(std::move(row));
    }
}

struct Register
{
    Register()
    {
        for (const auto &name : sweepApps()) {
            const auto &profile = profileByName(name);
            for (unsigned wpq : {8u, 16u, 24u}) {
                ExperimentKnobs knobs = benchKnobs();
                knobs.wpqEntries = wpq;
                enqueueRun(profile, SystemVariant::MemoryMode, knobs);
                enqueueRun(profile, SystemVariant::Ppa, knobs);
            }
            benchmark::RegisterBenchmark(
                ("fig15/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"geomean", TextTable::factor(geomean(s8)),
                   TextTable::factor(geomean(s16)),
                   TextTable::factor(geomean(s24))});
    report.print();
    ppabench::writeResultsJson("fig15");
    return 0;
}
