/**
 * @file
 * Figure 10: PPA vs the ideal partial-system-persistence design
 * (eADR/BBB, i.e. app-direct mode with battery-backed buffers) on the
 * memory-intensive applications (L2 miss rates 18%..100%).
 *
 * Paper result: PPA incurs ~3% overhead on this subset while eADR/BBB
 * slows the programs by 1.39x on average (up to 2.4x for libquantum)
 * because app-direct mode forfeits the DRAM cache. PPA slightly
 * underperforms BBB only for rb (high locality, WPQ contention from
 * the store persistence).
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 10: slowdown vs PMEM memory mode — PPA vs ideal PSP "
    "(eADR/BBB)",
    "Paper: PPA ~1.03x, eADR/BBB ~1.39x mean (up to 2.4x on "
    "libquantum); rb is the one case where BBB edges out PPA.",
    {"app", "suite", "L2 miss (doc.)", "PPA", "eADR/BBB"});

std::vector<double> ppaSlow;
std::vector<double> bbbSlow;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        const RunStats &bbb =
            cachedRun(profile, SystemVariant::EadrBbb, knobs);
        double s_ppa = slowdown(ppa, base);
        double s_bbb = slowdown(bbb, base);
        state.counters["ppa"] = s_ppa;
        state.counters["eadr_bbb"] = s_bbb;
        ppaSlow.push_back(s_ppa);
        bbbSlow.push_back(s_bbb);
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::percent(profile.documentedL2Miss, 0),
                       TextTable::factor(s_ppa),
                       TextTable::factor(s_bbb)});
    }
}

struct Register
{
    Register()
    {
        static const auto subset = memoryIntensiveProfiles();
        for (const auto &profile : subset) {
            for (auto v : {SystemVariant::MemoryMode, SystemVariant::Ppa,
                           SystemVariant::EadrBbb})
                enqueueRun(profile, v, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig10/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"geomean", "-", "-",
                   TextTable::factor(geomean(ppaSlow)),
                   TextTable::factor(geomean(bbbSlow))});
    report.print();
    ppabench::writeResultsJson("fig10");
    return 0;
}
