/**
 * @file
 * Table 5 + Section 7.13: JIT-checkpoint energy requirement and
 * backup-capacitor sizing for PPA vs Capri and LightPC, plus the
 * checkpoint timing breakdown.
 *
 * Paper result: PPA needs 21.7 uJ (0.06 mm^3 supercapacitor /
 * 0.0006 mm^3 Li-thin, 0.005 / 5e-5 of core size), Capri 0.6 mJ,
 * LightPC 189 mJ; eADR needs a 550 mJ supercapacitor and BBB 775 uJ.
 * Checkpoint timing: 114.9 ns to read 1838 bytes at 8 B/cycle, then
 * 0.91 us to flush them at 2.3 GB/s.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "energy/cost_model.hh"

using namespace ppa;
using namespace ppa::energy;

namespace
{

void
computeBackups(benchmark::State &state)
{
    for (auto _ : state) {
        auto r = backupForBytes(ppaWorstCaseCheckpointBytes());
        benchmark::DoNotOptimize(r);
        state.counters["ppa_uJ"] = r.energyJ * 1e6;
    }
}

BENCHMARK(computeBackups)->Iterations(1);

std::string
sci(double v, const char *unit)
{
    char buf[64];
    if (v >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3g m%s", v * 1e3, unit);
    else
        std::snprintf(buf, sizeof(buf), "%.3g u%s", v * 1e6, unit);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    auto ppa_req = backupForBytes(ppaWorstCaseCheckpointBytes());
    auto capri_req = backupForBytes(capriFlushBytes());
    auto lightpc_req = backupForBytes(lightPcFlushBytes());

    TextTable table({"scheme", "flush bytes", "energy",
                     "supercap (mm^3)", "Li-thin (mm^3)",
                     "supercap/core ratio"});
    table.addRow({"PPA (WSP)",
                  std::to_string(ppaWorstCaseCheckpointBytes()),
                  sci(ppa_req.energyJ, "J"),
                  TextTable::num(ppa_req.superCapMm3, 3),
                  TextTable::num(ppa_req.liThinMm3, 4),
                  TextTable::num(ppa_req.superCapRatioToCore, 4)});
    table.addRow({"Capri (WSP)", std::to_string(capriFlushBytes()),
                  sci(capri_req.energyJ, "J"),
                  TextTable::num(capri_req.superCapMm3, 2),
                  TextTable::num(capri_req.liThinMm3, 3),
                  TextTable::num(capri_req.superCapRatioToCore, 3)});
    table.addRow({"LightPC (PSP)",
                  std::to_string(lightPcFlushBytes()),
                  sci(lightpc_req.energyJ, "J"),
                  TextTable::num(lightpc_req.superCapMm3, 1),
                  TextTable::num(lightpc_req.liThinMm3, 2),
                  TextTable::num(lightpc_req.superCapRatioToCore, 2)});
    table.addRow({"eADR (socket)", "-", sci(eadrEnergyJ(), "J"), "-",
                  "-", "-"});
    table.addRow({"BBB persist buffers", "-", sci(bbbEnergyJ(), "J"),
                  "-", "-", "-"});

    std::printf("\n=== Table 5: energy requirement for JIT flushing "
                "===\n");
    std::printf("Paper: PPA 21.7 uJ / 0.06 mm^3, Capri 0.6 mJ / "
                "1.57 mm^3, LightPC 189 mJ / 527.8 mm^3; eADR 550 mJ, "
                "BBB 775 uJ.\n\n");
    std::printf("%s\n", table.render().c_str());

    auto timing = checkpointTiming(ppaWorstCaseCheckpointBytes());
    std::printf("Section 7.13 checkpoint timing (paper: 114.9 ns read "
                "+ 0.91 us flush for 1838 B):\n");
    std::printf("  controller read:  %.1f ns (8 B/cycle at 2 GHz)\n",
                timing.readTimeNs);
    std::printf("  PMEM flush:       %.2f us (at 2.3 GB/s)\n",
                timing.flushTimeUs);
    // Analytical model only — exported as "extra" scalars.
    ppabench::writeResultsJson(
        "table05",
        {{"ppaEnergyJ", ppa_req.energyJ},
         {"capriEnergyJ", capri_req.energyJ},
         {"lightPcEnergyJ", lightpc_req.energyJ},
         {"eadrEnergyJ", eadrEnergyJ()},
         {"bbbEnergyJ", bbbEnergyJ()},
         {"checkpointReadNs", timing.readTimeNs},
         {"checkpointFlushUs", timing.flushTimeUs}});
    return 0;
}
