/**
 * @file
 * Figure 5: CDFs of free integer and floating-point physical
 * registers, sampled every cycle at the renaming stage of the baseline
 * core.
 *
 * Paper result: the PRF is underutilized most of the time — e.g., for
 * CPU2006 the core has >= 138 integer / 110 FP registers free for 75%
 * of execution cycles, which is the headroom PPA's dynamic regions
 * live off.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 5: free physical registers (baseline, sampled per cycle)",
    "Columns: registers still free at the 25th percentile of cycles "
    "(i.e. 75% of cycles have at least this many free). Paper: "
    "CPU2006 has 138 INT / 110 FP free for 75% of cycles.",
    {"suite", "INT free @75% cycles", "FP free @75% cycles",
     "INT mean free", "FP mean free"});

void
runSuite(benchmark::State &state, Suite suite)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        stats::Histogram int_hist(knobs.intPrf);
        stats::Histogram fp_hist(knobs.fpPrf);
        for (const auto &profile : profilesOfSuite(suite)) {
            const RunStats &rs =
                cachedRun(profile, SystemVariant::MemoryMode, knobs);
            int_hist.merge(rs.freeIntHist);
            fp_hist.merge(rs.freeFpHist);
        }
        // "75% of cycles have >= N free" is the 25th percentile of
        // the free-count distribution.
        std::size_t int_p25 = int_hist.percentile(0.25);
        std::size_t fp_p25 = fp_hist.percentile(0.25);
        state.counters["int_free_p25"] =
            static_cast<double>(int_p25);
        state.counters["fp_free_p25"] = static_cast<double>(fp_p25);
        report.addRow({suiteName(suite), std::to_string(int_p25),
                       std::to_string(fp_p25),
                       TextTable::num(int_hist.mean(), 1),
                       TextTable::num(fp_hist.mean(), 1)});
    }
}

struct Register
{
    Register()
    {
        for (const auto &profile : allProfiles())
            enqueueRun(profile, SystemVariant::MemoryMode, benchKnobs());
        for (Suite suite :
             {Suite::Cpu2006, Suite::Cpu2017, Suite::Splash3,
              Suite::Whisper, Suite::Stamp, Suite::MiniApps}) {
            benchmark::RegisterBenchmark(
                (std::string("fig05/") + suiteName(suite)).c_str(),
                [suite](benchmark::State &st) { runSuite(st, suite); })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

PPA_BENCH_MAIN("fig05", report)
