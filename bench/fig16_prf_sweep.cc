/**
 * @file
 * Figure 16: sensitivity to the physical register file size, swept
 * from 80/80 to 280/224 (INT/FP).
 *
 * Paper result: larger PRFs form longer regions and reduce overhead;
 * even the smallest 80/80 configuration stays ~12% on average (the
 * PRF is still underutilized), and the benefit saturates beyond the
 * default 180/168 (Icelake's 280/224 adds little).
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

struct PrfPoint
{
    unsigned intPrf;
    unsigned fpPrf;
    const char *label;
};

constexpr PrfPoint points[] = {
    {80, 80, "80/80"},     {100, 100, "100/100"},
    {120, 120, "120/120"}, {140, 140, "140/140"},
    {180, 168, "180/168"}, {280, 224, "280/224"},
};

FigureReport report(
    "Figure 16: PPA slowdown vs PRF size (INT/FP entries)",
    "Paper: 80/80 ~1.12x mean, default 180/168 ~1.02x, benefits "
    "saturate beyond the default (Icelake 280/224).",
    {"app", "80/80", "100/100", "120/120", "140/140",
     "180/168 (default)", "280/224 (Icelake)"});

std::vector<double> slow[6];

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::string> row{profile.name};
        for (std::size_t i = 0; i < 6; ++i) {
            ExperimentKnobs knobs = benchKnobs();
            knobs.intPrf = points[i].intPrf;
            knobs.fpPrf = points[i].fpPrf;
            const RunStats &base =
                cachedRun(profile, SystemVariant::MemoryMode, knobs);
            const RunStats &ppa =
                cachedRun(profile, SystemVariant::Ppa, knobs);
            double s = slowdown(ppa, base);
            state.counters[points[i].label] = s;
            row.push_back(TextTable::factor(s));
            slow[i].push_back(s);
        }
        report.addRow(std::move(row));
    }
}

struct Register
{
    Register()
    {
        for (const auto &name : sweepApps()) {
            const auto &profile = profileByName(name);
            for (const PrfPoint &p : points) {
                ExperimentKnobs knobs = benchKnobs();
                knobs.intPrf = p.intPrf;
                knobs.fpPrf = p.fpPrf;
                enqueueRun(profile, SystemVariant::MemoryMode, knobs);
                enqueueRun(profile, SystemVariant::Ppa, knobs);
            }
            benchmark::RegisterBenchmark(
                ("fig16/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    std::vector<std::string> row{"geomean"};
    for (auto &s : slow)
        row.push_back(TextTable::factor(geomean(s)));
    report.addRow(std::move(row));
    report.print();
    ppabench::writeResultsJson("fig16");
    return 0;
}
