/**
 * @file
 * Figure 18: sensitivity to the PMEM write bandwidth, swept from
 * 1 GB/s to 6 GB/s.
 *
 * Paper result: ~7% mean overhead even at 1 GB/s; at and beyond the
 * default 2.3 GB/s (the empirical Optane number) the overhead stays
 * ~2%. water-ns/water-sp/rb are the most bandwidth-sensitive because
 * their baselines generate little writeback traffic of their own.
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

constexpr double bws[] = {1.0, 2.3, 4.0, 6.0};

FigureReport report(
    "Figure 18: PPA slowdown vs NVM write bandwidth",
    "Paper: ~1.07x at 1 GB/s, ~1.02x at >= 2.3 GB/s (default); "
    "rb/water most sensitive.",
    {"app", "1 GB/s", "2.3 GB/s (default)", "4 GB/s", "6 GB/s"});

std::vector<double> slow[4];

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::string> row{profile.name};
        for (std::size_t i = 0; i < 4; ++i) {
            ExperimentKnobs knobs = benchKnobs();
            knobs.nvmWriteGbps = bws[i];
            const RunStats &base =
                cachedRun(profile, SystemVariant::MemoryMode, knobs);
            const RunStats &ppa =
                cachedRun(profile, SystemVariant::Ppa, knobs);
            double s = slowdown(ppa, base);
            row.push_back(TextTable::factor(s));
            slow[i].push_back(s);
        }
        report.addRow(std::move(row));
    }
}

struct Register
{
    Register()
    {
        for (const auto &name : sweepApps()) {
            const auto &profile = profileByName(name);
            for (double bw : bws) {
                ExperimentKnobs knobs = benchKnobs();
                knobs.nvmWriteGbps = bw;
                enqueueRun(profile, SystemVariant::MemoryMode, knobs);
                enqueueRun(profile, SystemVariant::Ppa, knobs);
            }
            benchmark::RegisterBenchmark(
                ("fig18/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    std::vector<std::string> row{"geomean"};
    for (auto &s : slow)
        row.push_back(TextTable::factor(geomean(s)));
    report.addRow(std::move(row));
    report.print();
    ppabench::writeResultsJson("fig18");
    return 0;
}
