/**
 * @file
 * Figure 12: increase in rename-stage stall cycles (core out of free
 * physical registers) caused by PPA, versus the baseline.
 *
 * Paper result: +0.07% on average — free registers are plentiful
 * (Figure 5) and region boundaries reclaim the masked registers
 * quickly (Figure 11).
 */

#include "bench/bench_common.hh"

using namespace ppa;
using namespace ppabench;

namespace
{

FigureReport report(
    "Figure 12: extra rename stalls (no free phys reg) under PPA",
    "Paper: +0.07% of cycles on average.",
    {"app", "suite", "baseline stall", "PPA stall", "increase"});

double increaseSum = 0.0;
unsigned increaseCount = 0;

void
runApp(benchmark::State &state, const WorkloadProfile &profile)
{
    ExperimentKnobs knobs = benchKnobs();
    for (auto _ : state) {
        const RunStats &base =
            cachedRun(profile, SystemVariant::MemoryMode, knobs);
        const RunStats &ppa =
            cachedRun(profile, SystemVariant::Ppa, knobs);
        double base_ratio = base.renameStallRatio();
        double ppa_ratio = ppa.renameStallRatio();
        double inc = ppa_ratio - base_ratio;
        state.counters["stall_increase"] = inc;
        increaseSum += inc;
        ++increaseCount;
        report.addRow({profile.name, suiteName(profile.suite),
                       TextTable::percent(base_ratio, 3),
                       TextTable::percent(ppa_ratio, 3),
                       TextTable::percent(inc, 3)});
    }
}

struct Register
{
    Register()
    {
        for (const auto &profile : allProfiles()) {
            for (auto v :
                 {SystemVariant::MemoryMode, SystemVariant::Ppa})
                enqueueRun(profile, v, benchKnobs());
            benchmark::RegisterBenchmark(
                ("fig12/" + profile.name).c_str(),
                [&profile](benchmark::State &st) {
                    runApp(st, profile);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
} registerAll;

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ppabench::runPendingJobs();
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.addRow({"mean", "-", "-", "-",
                   TextTable::percent(increaseCount
                                          ? increaseSum / increaseCount
                                          : 0.0,
                                      3)});
    report.print();
    ppabench::writeResultsJson("fig12");
    return 0;
}
