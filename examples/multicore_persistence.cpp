/**
 * @file
 * Example: whole-system persistence for a data-race-free multicore
 * workload (paper Section 6).
 *
 * Eight cores run a TPCC-style transaction mix: each core appends
 * orders to its own district (disjoint data) and bumps a shared
 * order-id counter through atomic RMWs (the only shared writes, as
 * DRF requires). A power failure hits all cores at once; every core
 * JIT-checkpoints independently and recovery replays the per-core
 * CSQs in arbitrary order — correct because DRF makes the CSQ entries
 * of different cores disjoint.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "isa/builder.hh"
#include "sim/system.hh"

using namespace ppa;

namespace
{

/** Core-local transaction loop: orders into a private district plus
 *  an atomic increment of the shared global order counter. */
Program
districtWorker(unsigned core_id, std::uint64_t txns, Addr shared_ctr)
{
    Addr district = 0x1000000 + Addr{core_id} * 0x100000;
    ProgramBuilder b;
    b.initMem(district, 1); // next local order id

    b.movi(0, txns);
    b.movi(1, district);
    b.movi(4, 1);
    b.movi(5, shared_ctr);
    auto loop = b.label();
    b.place(loop);
    b.ld(2, 1, 0);            // local order id
    b.addi(3, 2, 1);
    b.st(3, 1, 0);
    b.shli(6, 2, 5);          // order record offset (id * 32)
    b.and_(6, 6, 7);          // bounded ring (r7 holds the mask)
    b.add(6, 6, 1);
    b.st(2, 6, 64);           // order payload
    b.st(3, 6, 72);
    b.amoadd(8, 4, 5, 0);     // shared counter += 1
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();

    // r7 (ring mask) must be set before the loop; patch by building a
    // fresh program with the mov hoisted.
    ProgramBuilder real;
    real.initMem(district, 1);
    real.movi(0, txns);
    real.movi(1, district);
    real.movi(4, 1);
    real.movi(5, shared_ctr);
    real.movi(7, (64 - 1) * 32); // 64-record ring
    auto l2 = real.label();
    real.place(l2);
    real.ld(2, 1, 0);
    real.addi(3, 2, 1);
    real.st(3, 1, 0);
    real.shli(6, 2, 5);
    real.and_(6, 6, 7);
    real.add(6, 6, 1);
    real.st(2, 6, 64);
    real.st(3, 6, 72);
    real.amoadd(8, 4, 5, 0);
    real.subi(0, 0, 1);
    real.brnz(0, l2);
    real.halt();
    return real.program();
}

} // namespace

int
main()
{
    constexpr unsigned cores = 8;
    constexpr std::uint64_t txns = 120;
    constexpr Addr shared_ctr = 0x900000;

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.numCores = cores;
    System system(sc);

    std::vector<Program> progs;
    std::vector<std::unique_ptr<ProgramExecutor>> sources;
    for (unsigned c = 0; c < cores; ++c) {
        progs.push_back(districtWorker(c, txns, shared_ctr));
        system.seedMemory(progs.back().initialMemory());
    }
    for (unsigned c = 0; c < cores; ++c) {
        sources.push_back(std::make_unique<ProgramExecutor>(progs[c]));
        system.bindSource(c, sources[c].get());
    }

    std::printf("running %u cores x %llu transactions...\n", cores,
                static_cast<unsigned long long>(txns));
    system.runUntilCycle(15'000);

    auto images = system.powerFail();
    std::size_t replay_total = 0;
    for (const auto &img : images)
        replay_total += img.csq.size();
    std::printf("power failure at cycle %llu: %zu committed stores "
                "pending replay across %u cores\n",
                static_cast<unsigned long long>(system.cycle()),
                replay_total, cores);

    system.recover(images);
    system.run();

    Word counter = system.memory().nvmImage().read(shared_ctr);
    std::printf("shared order counter after recovery: %llu "
                "(expected %llu)\n",
                static_cast<unsigned long long>(counter),
                static_cast<unsigned long long>(cores * txns));

    bool ok = counter == cores * txns;
    for (unsigned c = 0; c < cores && ok; ++c) {
        ProgramExecutor golden(progs[c]);
        golden.totalLength();
        Addr district = 0x1000000 + Addr{c} * 0x100000;
        ok = system.memory().nvmImage().read(district) ==
             golden.goldenMemory().read(district);
    }
    std::printf("all per-core district states intact: %s\n",
                ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
