/**
 * @file
 * Quickstart: run a program on a PPA core, kill the power mid-run,
 * recover, and verify that whole-system persistence held.
 *
 * The 60-second tour of the library:
 *   1. build a program with ProgramBuilder (or use a workload kernel),
 *   2. construct a System in PersistMode::Ppa,
 *   3. run; at an arbitrary cycle call powerFail() -> JIT checkpoint,
 *   4. recover() -> CSQ replay + resume after LCPC,
 *   5. compare the final NVM image and registers with the golden
 *      functional execution.
 */

#include <cstdio>

#include "isa/program.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

int
main()
{
    // A small transactional kernel: TPCC-style new-order records.
    Program prog = kernels::tpccNewOrder(500);

    // Golden model: pure functional execution.
    ProgramExecutor golden(prog);
    std::uint64_t total = golden.totalLength();
    std::printf("program: %llu dynamic instructions\n",
                static_cast<unsigned long long>(total));

    // Simulated PPA system (Table 2 configuration, 1 core).
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.numCores = 1;
    System system(sc);

    // NVM is main memory: seed it with the program's initial data and
    // attach the committed-path source.
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    // Run partway, then cut the power.
    system.runUntilCycle(20'000);
    std::printf("cycle %llu: committed %llu insts; injecting power "
                "failure\n",
                static_cast<unsigned long long>(system.cycle()),
                static_cast<unsigned long long>(
                    system.core(0).committedInsts()));

    auto images = system.powerFail();
    std::printf("JIT checkpoint: %llu bytes (CSQ holds %zu committed "
                "stores to replay)\n",
                static_cast<unsigned long long>(images[0].sizeBytes()),
                images[0].csq.size());

    system.recover(images);
    system.run();

    // Verify: NVM image == golden memory, registers == golden.
    bool mem_ok = system.memory().nvmImage().sameContents(
        golden.goldenMemory());
    bool reg_ok =
        system.core(0).architecturalState() == golden.goldenState();
    std::printf("recovered and finished at cycle %llu\n",
                static_cast<unsigned long long>(system.cycle()));
    std::printf("NVM image matches golden memory: %s\n",
                mem_ok ? "yes" : "NO");
    std::printf("architectural registers match golden: %s\n",
                reg_ok ? "yes" : "NO");
    return mem_ok && reg_ok ? 0 : 1;
}
