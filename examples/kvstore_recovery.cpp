/**
 * @file
 * Example: a memcached-like key-value store surviving repeated power
 * failures on a PPA system.
 *
 * This is the WHISPER-style scenario from the paper's Table 3: a KV
 * store with an 80%-write mix whose entire state lives in persistent
 * memory. With PPA the store needs *no* persistence code at all —
 * no transactions, no logging, no pmalloc — yet arbitrary power cuts
 * never lose a committed update.
 *
 * The demo runs the store, injects three power failures at arbitrary
 * points, recovers each time (CSQ replay + resume after LCPC), and
 * finally verifies the persistent image word-for-word against a
 * failure-free golden execution.
 */

#include <cstdio>

#include "isa/program.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

int
main()
{
    constexpr std::uint64_t ops = 400;
    constexpr unsigned read_pct = 20; // the paper's r20w80 mix
    Program prog = kernels::kvStore(ops, read_pct, 256);

    ProgramExecutor golden(prog);
    std::uint64_t length = golden.totalLength();
    std::printf("kvstore: %llu operations -> %llu committed "
                "instructions\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(length));

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    const Cycle failure_points[] = {4'000, 11'000, 23'000};
    for (Cycle point : failure_points) {
        system.runUntilCycle(point);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        std::printf("power failure at cycle %llu: checkpointed %llu "
                    "bytes, %zu stores to replay, LCPC=%llu\n",
                    static_cast<unsigned long long>(system.cycle()),
                    static_cast<unsigned long long>(
                        images[0].sizeBytes()),
                    images[0].csq.size(),
                    static_cast<unsigned long long>(images[0].lcpc));
        system.recover(images);
    }

    system.run();
    std::printf("finished at cycle %llu with %llu instructions "
                "committed\n",
                static_cast<unsigned long long>(system.cycle()),
                static_cast<unsigned long long>(
                    system.core(0).committedInsts()));

    bool ok = system.memory().nvmImage().sameContents(
        golden.goldenMemory());
    std::printf("persistent KV state intact after %zu power cuts: "
                "%s\n",
                std::size(failure_points), ok ? "yes" : "NO");
    if (!ok) {
        for (Addr a : system.memory().nvmImage().diffAddrs(
                 golden.goldenMemory(), 4)) {
            std::printf("  mismatch at 0x%llx\n",
                        static_cast<unsigned long long>(a));
        }
    }
    return ok ? 0 : 1;
}
