/**
 * @file
 * Example: exploring PPA's dynamic region formation.
 *
 * Runs the same workload on PPA cores with different physical
 * register file and CSQ sizes and reports how the dynamically formed
 * regions change: their length, their store density, what ended them
 * (PRF exhaustion vs CSQ overflow vs sync primitives), and how long
 * the pipeline waited at boundaries. This is the mechanism behind the
 * paper's Figures 13, 16 and 17 in one interactive tour.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiment.hh"

using namespace ppa;

namespace
{

struct Config
{
    const char *label;
    unsigned intPrf;
    unsigned fpPrf;
    unsigned csq;
};

} // namespace

int
main()
{
    const WorkloadProfile &profile = profileByName("hmmer");
    const Config configs[] = {
        {"tiny PRF (48/48), CSQ 40", 48, 48, 40},
        {"small PRF (80/80), CSQ 40", 80, 80, 40},
        {"default PRF (180/168), CSQ 40", 180, 168, 40},
        {"default PRF, tiny CSQ (10)", 180, 168, 10},
        {"Icelake PRF (280/224), CSQ 40", 280, 224, 40},
    };

    std::printf("dynamic region formation for '%s' (%s)\n\n",
                profile.name.c_str(), suiteName(profile.suite));

    TextTable table({"configuration", "regions", "insts/region",
                     "stores/region", "boundary stalls", "slowdown"});

    ExperimentKnobs base_knobs;
    base_knobs.instsPerCore = 20000;

    for (const Config &c : configs) {
        ExperimentKnobs knobs = base_knobs;
        knobs.intPrf = c.intPrf;
        knobs.fpPrf = c.fpPrf;
        knobs.csqEntries = c.csq;
        // Fair comparison: the baseline uses the same PRF size (a
        // smaller PRF slows the non-persistent core too).
        RunStats baseline =
            runWorkload(profile, SystemVariant::MemoryMode, knobs);
        RunStats rs = runWorkload(profile, SystemVariant::Ppa, knobs);
        double insts_per_region =
            rs.avgRegionStores + rs.avgRegionOthers;
        table.addRow({c.label, std::to_string(rs.regionCount),
                      TextTable::num(insts_per_region, 1),
                      TextTable::num(rs.avgRegionStores, 1),
                      std::to_string(rs.boundaryStallCycles),
                      TextTable::factor(slowdown(rs, baseline))});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading the table: a larger PRF lets PPA defer register\n"
        "reclamation longer, forming longer regions (Figure 16); a\n"
        "tiny CSQ forces implicit boundaries every few stores\n"
        "(Figure 17); boundary stalls stay small because each\n"
        "region's stores persist asynchronously while it executes\n"
        "(Figures 11 and 13).\n");
    return 0;
}
