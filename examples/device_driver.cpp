/**
 * @file
 * Example: crash-consistent device I/O through the battery-backed
 * I/O buffer (paper Section 5).
 *
 * A driver drains a persistent work queue to a device doorbell.
 * Device writes are irrevocable — a packet must leave exactly once —
 * so they cannot go through the replay path; PPA instead treats any
 * store to the battery-backed I/O window as persisted at commit.
 *
 * The demo cuts power twice mid-stream and then checks:
 *   1. the device saw every packet exactly once, in order;
 *   2. the persistent queue state (consumer cursor) matches;
 *   3. no uncommitted packet ever reached the device.
 */

#include <cstdio>

#include "isa/builder.hh"
#include "sim/system.hh"

using namespace ppa;

namespace
{

constexpr Addr ioBase = 0x7F00'0000; // device doorbell window
constexpr Addr queueBase = 0x500000; // persistent work queue
constexpr std::uint64_t packets = 200;

Program
driverProgram()
{
    ProgramBuilder b;
    // The work queue holds `packets` pre-filled entries.
    for (std::uint64_t i = 0; i < packets; ++i)
        b.initMem(queueBase + 64 + i * 8, 0xD000 + i);
    b.initMem(queueBase, 0); // consumer cursor

    b.movi(0, packets);      // r0: packets remaining
    b.movi(1, queueBase);    // r1: queue header
    b.movi(2, queueBase + 64);
    b.movi(3, ioBase);       // r3: device doorbell

    auto loop = b.label();
    b.place(loop);
    b.ld(4, 1, 0);           // cursor
    b.shli(5, 4, 3);
    b.add(5, 5, 2);
    b.ld(6, 5, 0);           // packet payload
    b.st(6, 3, 0);           // ring the doorbell (irrevocable I/O)
    b.addi(4, 4, 1);
    b.st(4, 1, 0);           // advance the persistent cursor
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();
    return b.program();
}

} // namespace

int
main()
{
    Program prog = driverProgram();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.mem.ioWindowBase = ioBase;
    sc.mem.ioWindowBytes = 4096;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    for (Cycle fail : {2'000u, 6'000u}) {
        system.runUntilCycle(fail);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        std::printf("power failure at cycle %llu: device had received "
                    "%llu packets; battery preserves them\n",
                    static_cast<unsigned long long>(system.cycle()),
                    static_cast<unsigned long long>(
                        system.memory().ioBuffer().writeCount()));
        system.recover(images);
    }
    system.run();

    const auto &history = system.memory().ioBuffer().history();
    bool ok = history.size() == packets;
    for (std::size_t i = 0; ok && i < history.size(); ++i)
        ok = history[i].value == 0xD000 + i;

    std::printf("device received %zu packets (expected %llu), "
                "exactly once and in order: %s\n",
                history.size(),
                static_cast<unsigned long long>(packets),
                ok ? "yes" : "NO");
    std::printf("persistent consumer cursor: %llu\n",
                static_cast<unsigned long long>(
                    system.memory().nvmImage().read(queueBase)));
    return ok && system.memory().nvmImage().read(queueBase) == packets
               ? 0
               : 1;
}
