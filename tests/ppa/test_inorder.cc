/** @file
 * Tests for the Section 6 in-order core variant: strictly in-order
 * issue with the value-carrying CSQ, recoverable like the OoO design.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

SystemConfig
inOrderConfig()
{
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.core.inOrderIssue = true;
    sc.core.csqCarriesValues = true; // the paper's in-order design
    return sc;
}

} // namespace

TEST(InOrderCore, FunctionalCorrectness)
{
    Program prog = kernels::hashTableUpdate(200);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc = inOrderConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}

TEST(InOrderCore, SlowerThanOutOfOrder)
{
    // Independent loads can overlap OoO but serialize in order.
    Program prog = kernels::tableLookup(400, 4096);

    auto run_mode = [&](bool in_order) {
        SystemConfig sc;
        sc.core.inOrderIssue = in_order;
        System system(sc);
        system.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        system.bindSource(0, &source);
        system.run(80'000'000);
        EXPECT_TRUE(system.allDone());
        return system.cycle();
    };
    EXPECT_GT(run_mode(true), run_mode(false));
}

TEST(InOrderCore, RecoversFromPowerFailures)
{
    Program prog = kernels::tpccNewOrder(60);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc = inOrderConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    for (Cycle fail : {500u, 2500u, 8000u}) {
        system.runUntilCycle(fail);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        // The in-order design's checkpoint needs no PRF values: the
        // CSQ carries data inline and MaskReg is unused.
        EXPECT_TRUE(images[0].maskBits.none());
        system.recover(images);
    }
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}
