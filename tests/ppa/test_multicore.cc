/** @file
 * Multi-core whole-system persistence tests (paper Section 6).
 *
 * DRF programs: each core writes a disjoint data slice; shared state
 * is touched only through atomic RMWs (commutative adds), so final
 * values are schedule-independent and verifiable. Recovery replays
 * the cores' CSQs in arbitrary order.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"

using namespace ppa;

namespace
{

/** Per-core program: update a private array, bump shared counters. */
Program
drfWorker(unsigned core_id, std::uint64_t iters, Addr shared_base)
{
    Addr priv = 0x100000 + Addr{core_id} * 0x100000;
    ProgramBuilder b;
    b.movi(0, iters);
    b.movi(1, priv);
    b.movi(2, core_id + 1);  // private payload
    b.movi(3, shared_base);
    b.movi(4, 1);            // atomic increment amount
    auto loop = b.label();
    b.place(loop);
    b.st(2, 1, 0);
    b.addi(2, 2, 3);
    b.st(2, 1, 8);
    b.addi(1, 1, 16);
    b.amoadd(5, 4, 3, 0);    // shared counter += 1
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();
    return b.program();
}

} // namespace

TEST(Multicore, DrfRunMatchesPerCoreGolden)
{
    constexpr unsigned cores = 4;
    constexpr std::uint64_t iters = 60;
    constexpr Addr shared = 0x50000;

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.numCores = cores;
    System system(sc);

    std::vector<Program> progs;
    std::vector<std::unique_ptr<ProgramExecutor>> sources;
    for (unsigned c = 0; c < cores; ++c) {
        progs.push_back(drfWorker(c, iters, shared));
        system.seedMemory(progs.back().initialMemory());
    }
    for (unsigned c = 0; c < cores; ++c) {
        sources.push_back(
            std::make_unique<ProgramExecutor>(progs[c]));
        system.bindSource(c, sources[c].get());
    }
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());

    // Shared counter: sum of all cores' atomic increments.
    EXPECT_EQ(system.memory().nvmImage().read(shared), cores * iters);

    // Private slices: each core's golden values.
    for (unsigned c = 0; c < cores; ++c) {
        ProgramExecutor golden(progs[c]);
        golden.totalLength();
        Addr priv = 0x100000 + Addr{c} * 0x100000;
        for (std::uint64_t i = 0; i < iters; ++i) {
            EXPECT_EQ(system.memory().nvmImage().read(priv + i * 16),
                      golden.goldenMemory().read(priv + i * 16));
        }
    }
}

TEST(Multicore, PowerFailureRecoversAllCores)
{
    constexpr unsigned cores = 4;
    constexpr std::uint64_t iters = 50;
    constexpr Addr shared = 0x60000;

    for (Cycle fail : {500u, 3000u, 12000u}) {
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        sc.numCores = cores;
        System system(sc);

        std::vector<Program> progs;
        std::vector<std::unique_ptr<ProgramExecutor>> sources;
        for (unsigned c = 0; c < cores; ++c) {
            progs.push_back(drfWorker(c, iters, shared));
            system.seedMemory(progs.back().initialMemory());
        }
        for (unsigned c = 0; c < cores; ++c) {
            sources.push_back(
                std::make_unique<ProgramExecutor>(progs[c]));
            system.bindSource(c, sources[c].get());
        }

        system.runUntilCycle(fail);
        if (!system.allDone()) {
            auto images = system.powerFail();
            ASSERT_EQ(images.size(), cores);
            system.recover(images);
        }
        system.run(40'000'000);
        ASSERT_TRUE(system.allDone()) << "fail=" << fail;

        EXPECT_EQ(system.memory().nvmImage().read(shared),
                  cores * iters)
            << "fail=" << fail;
        for (unsigned c = 0; c < cores; ++c) {
            ProgramExecutor golden(progs[c]);
            golden.totalLength();
            Addr priv = 0x100000 + Addr{c} * 0x100000;
            for (std::uint64_t i = 0; i < iters; ++i) {
                ASSERT_EQ(
                    system.memory().nvmImage().read(priv + i * 16),
                    golden.goldenMemory().read(priv + i * 16))
                    << "core " << c << " i=" << i << " fail=" << fail;
            }
        }
    }
}

TEST(Multicore, RecoveryOrderIsIrrelevant)
{
    // Recover the cores in reversed order: DRF disjointness makes the
    // result identical (Section 6's argument).
    constexpr unsigned cores = 3;
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.numCores = cores;
    System system(sc);

    std::vector<Program> progs;
    std::vector<std::unique_ptr<ProgramExecutor>> sources;
    for (unsigned c = 0; c < cores; ++c) {
        progs.push_back(drfWorker(c, 40, 0x70000));
        system.seedMemory(progs.back().initialMemory());
    }
    for (unsigned c = 0; c < cores; ++c) {
        sources.push_back(std::make_unique<ProgramExecutor>(progs[c]));
        system.bindSource(c, sources[c].get());
    }
    system.runUntilCycle(2000);
    ASSERT_FALSE(system.allDone());
    auto images = system.powerFail();

    // Reverse-order per-core recovery.
    for (int c = static_cast<int>(cores) - 1; c >= 0; --c)
        system.core(static_cast<unsigned>(c))
            .recover(images[static_cast<std::size_t>(c)]);
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.memory().nvmImage().read(0x70000), cores * 40u);
}

TEST(Multicore, SharedWpqContention)
{
    // More cores competing for the shared WPQ must not break
    // persistence (Figures 15/19's stress axis).
    constexpr unsigned cores = 8;
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.numCores = cores;
    sc.mem.nvm.wpqEntries = 4;
    System system(sc);

    std::vector<Program> progs;
    std::vector<std::unique_ptr<ProgramExecutor>> sources;
    for (unsigned c = 0; c < cores; ++c) {
        progs.push_back(drfWorker(c, 30, 0x80000));
        system.seedMemory(progs.back().initialMemory());
    }
    for (unsigned c = 0; c < cores; ++c) {
        sources.push_back(std::make_unique<ProgramExecutor>(progs[c]));
        system.bindSource(c, sources[c].get());
    }
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.memory().nvmImage().read(0x80000), cores * 30u);
}
