/** @file
 * Tests for the battery-backed I/O buffer (paper Section 5):
 * committed stores to the I/O window are irrevocable device writes
 * with exactly-once semantics across power failures.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "ppa/io_buffer.hh"
#include "sim/system.hh"

using namespace ppa;

namespace
{

constexpr Addr ioBase = 0x7F00'0000;
constexpr std::uint64_t ioBytes = 4096;

/**
 * A device-driver-like kernel: computes a value, logs it to memory,
 * and emits it to the device window — @p packets times.
 */
Program
driverKernel(std::uint64_t packets)
{
    ProgramBuilder b;
    b.movi(0, packets);        // r0: packet counter
    b.movi(1, ioBase);         // r1: device doorbell
    b.movi(2, 0x100000);       // r2: in-memory log
    b.movi(3, 1);              // r3: payload
    auto loop = b.label();
    b.place(loop);
    b.addi(3, 3, 7);           // next payload
    b.st(3, 2, 0);             // log to persistent memory
    b.addi(2, 2, 8);
    b.st(3, 1, 0);             // emit to the device (I/O window)
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();
    return b.program();
}

/** Golden device history: the payload sequence the device must see. */
std::vector<IoRecord>
goldenHistory(std::uint64_t packets)
{
    std::vector<IoRecord> out;
    Word payload = 1;
    for (std::uint64_t i = 0; i < packets; ++i) {
        payload += 7;
        out.push_back({ioBase, payload});
    }
    return out;
}

SystemConfig
ioConfig()
{
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.mem.ioWindowBase = ioBase;
    sc.mem.ioWindowBytes = ioBytes;
    return sc;
}

} // namespace

TEST(IoBuffer, RangeCheck)
{
    IoBuffer io(ioBase, ioBytes);
    EXPECT_TRUE(io.inRange(ioBase));
    EXPECT_TRUE(io.inRange(ioBase + ioBytes - 8));
    EXPECT_FALSE(io.inRange(ioBase - 8));
    EXPECT_FALSE(io.inRange(ioBase + ioBytes));
    EXPECT_TRUE(io.enabled());
    EXPECT_FALSE(IoBuffer{}.enabled());
    EXPECT_FALSE(IoBuffer{}.inRange(0));
}

TEST(IoBuffer, DeviceSeesCommittedWritesInOrder)
{
    constexpr std::uint64_t packets = 50;
    Program prog = driverKernel(packets);
    SystemConfig sc = ioConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.memory().ioBuffer().history(),
              goldenHistory(packets));
}

TEST(IoBuffer, IoStoresBypassCsqAndNvm)
{
    Program prog = driverKernel(30);
    SystemConfig sc = ioConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());
    // Device writes never reach the NVM image...
    EXPECT_EQ(system.memory().nvmImage().read(ioBase), 0u);
    // ...while the in-memory log does.
    EXPECT_EQ(system.memory().nvmImage().read(0x100000), 8u);
}

TEST(IoBuffer, ExactlyOnceAcrossPowerFailures)
{
    constexpr std::uint64_t packets = 80;
    Program prog = driverKernel(packets);
    SystemConfig sc = ioConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    for (Cycle fail : {300u, 900u, 2000u, 4000u}) {
        system.runUntilCycle(fail);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        system.memory().ioBuffer().powerFail(); // battery: no-op
        system.recover(images);
    }
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());

    // Exactly once, in order, no duplicates from replay, no holes.
    EXPECT_EQ(system.memory().ioBuffer().history(),
              goldenHistory(packets));
}

TEST(IoBuffer, UncommittedIoWritesNeverEscape)
{
    // Fail very early and DON'T recover: the device history must be
    // a prefix of the golden sequence (only committed stores leaked).
    constexpr std::uint64_t packets = 40;
    Program prog = driverKernel(packets);
    SystemConfig sc = ioConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(150);
    system.powerFail();

    auto golden = goldenHistory(packets);
    const auto &seen = system.memory().ioBuffer().history();
    ASSERT_LE(seen.size(), golden.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], golden[i]) << "at " << i;
}
