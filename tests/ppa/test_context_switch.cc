/** @file
 * Context-switch crash consistency (paper Section 5).
 *
 * PPA "treats context switching as is": the kernel's save/restore of
 * architectural registers to process control blocks is just stores
 * and loads, covered by the same store-integrity regions as user
 * code. A power failure in the middle of a context switch therefore
 * recovers like any other failure point — no special handling.
 *
 * The test builds a two-task round-robin schedule with explicit
 * PCB save/restore sequences and sweeps failures across the whole
 * run, including points inside the switch code.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"

using namespace ppa;

namespace
{

constexpr Addr pcbA = 0x200000;   // task A's saved registers
constexpr Addr pcbB = 0x200100;   // task B's saved registers
constexpr Addr dataA = 0x300000;  // task A's output array
constexpr Addr dataB = 0x400000;  // task B's accumulator

/**
 * Two tasks sharing one core under a round-robin "scheduler":
 *  - task A: appends an incrementing value to its array;
 *  - task B: folds a counter into an accumulator in memory.
 * After each quantum the scheduler saves the running task's working
 * registers (r4, r5) to its PCB and restores the other task's.
 */
Program
twoTaskSchedule(unsigned quanta, unsigned quantum_iters)
{
    ProgramBuilder b;
    // PCB initial state: task A starts at (value=1, cursor=dataA);
    // task B at (sum=0, counter=3).
    b.initMem(pcbA + 0, 1);
    b.initMem(pcbA + 8, dataA);
    b.initMem(pcbB + 0, 0);
    b.initMem(pcbB + 8, 3);

    b.movi(0, quanta);       // r0: quanta remaining
    b.movi(1, pcbA);         // r1: current task's PCB
    b.movi(2, pcbB);         // r2: other task's PCB
    b.movi(8, dataB);        // r8: task B accumulator address
    b.movi(9, 0);            // r9: current task id (0 = A)

    auto schedule = b.label();
    auto run_b = b.label();
    auto do_switch = b.label();

    b.place(schedule);
    // Dispatch: restore the current task's registers from its PCB.
    b.ld(4, 1, 0);           // r4: working register 1
    b.ld(5, 1, 8);           // r5: working register 2
    b.movi(6, quantum_iters);
    b.brnz(9, run_b);

    {
        // Task A quantum: *cursor++ = value++.
        auto loop_a = b.label();
        b.place(loop_a);
        b.st(4, 5, 0);
        b.addi(4, 4, 1);
        b.addi(5, 5, 8);
        b.subi(6, 6, 1);
        b.brnz(6, loop_a);
        b.jmp(do_switch);
    }

    b.place(run_b);
    {
        // Task B quantum: sum += counter; counter += 2 — with the sum
        // written through to memory each iteration.
        auto loop_b = b.label();
        b.place(loop_b);
        b.add(4, 4, 5);
        b.addi(5, 5, 2);
        b.st(4, 8, 0);
        b.subi(6, 6, 1);
        b.brnz(6, loop_b);
    }

    b.place(do_switch);
    // Context switch: save working registers, swap PCB pointers,
    // flip the task id. A failure anywhere in here must recover.
    b.st(4, 1, 0);
    b.st(5, 1, 8);
    b.mov(7, 1);
    b.mov(1, 2);
    b.mov(2, 7);
    b.movi(7, 1);
    b.sub(9, 7, 9);          // task id ^= 1
    b.subi(0, 0, 1);
    b.brnz(0, schedule);
    b.halt();
    return b.program();
}

void
crashAndVerify(const Program &prog, const std::vector<Cycle> &fails)
{
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    for (Cycle f : fails) {
        system.runUntilCycle(f);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        system.recover(images);
    }
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}

} // namespace

TEST(ContextSwitch, ScheduleComputesCorrectly)
{
    Program prog = twoTaskSchedule(8, 10);
    ProgramExecutor golden(prog);
    golden.totalLength();
    // Task A ran 4 quanta x 10 iters: values 1..40 into its array.
    EXPECT_EQ(golden.goldenMemory().read(dataA), 1u);
    EXPECT_EQ(golden.goldenMemory().read(dataA + 39 * 8), 40u);
    // Task B: sum of 3,5,7,... over 40 iterations = 40*3 + 2*(39*40/2).
    EXPECT_EQ(golden.goldenMemory().read(dataB),
              40u * 3 + 39u * 40);
}

TEST(ContextSwitch, SurvivesFailuresAcrossTheRun)
{
    Program prog = twoTaskSchedule(8, 10);
    for (Cycle fail : {100u, 400u, 900u, 1600u, 2500u})
        crashAndVerify(prog, {fail});
}

TEST(ContextSwitch, SweepCatchesMidSwitchFailures)
{
    // Fine sweep: with ~45-instruction quanta, failures land inside
    // the save/restore sequences many times across this range.
    Program prog = twoTaskSchedule(6, 6);
    for (Cycle fail = 40; fail < 1000; fail += 23)
        crashAndVerify(prog, {fail});
}

TEST(ContextSwitch, RepeatedFailuresAcrossQuanta)
{
    Program prog = twoTaskSchedule(10, 8);
    crashAndVerify(prog, {200, 600, 601, 1100, 1900});
}
