/** @file Unit tests for PPA's hardware structures: MaskReg and CSQ. */

#include <gtest/gtest.h>

#include "ppa/csq.hh"
#include "ppa/mask_reg.hh"

using namespace ppa;

TEST(PhysRegIndexer, FlattensIntThenFp)
{
    PhysRegIndexer idx(180, 168);
    EXPECT_EQ(idx.total(), 348u); // the paper's MaskReg is 348 bits
    EXPECT_EQ(idx.flatten(RegClass::Int, 0), 0u);
    EXPECT_EQ(idx.flatten(RegClass::Int, 179), 179u);
    EXPECT_EQ(idx.flatten(RegClass::Fp, 0), 180u);
    EXPECT_EQ(idx.flatten(RegClass::Fp, 167), 347u);
}

TEST(PhysRegIndexer, RoundTrips)
{
    PhysRegIndexer idx(180, 168);
    for (unsigned g : {0u, 5u, 179u, 180u, 200u, 347u}) {
        RegClass cls = idx.classOf(g);
        PhysReg p = idx.indexOf(g);
        EXPECT_EQ(idx.flatten(cls, p), g);
    }
}

TEST(MaskReg, MaskAndQuery)
{
    MaskReg mr(PhysRegIndexer(180, 168));
    EXPECT_TRUE(mr.empty());
    mr.mask(RegClass::Int, 5);
    mr.mask(RegClass::Fp, 7);
    EXPECT_TRUE(mr.isMasked(RegClass::Int, 5));
    EXPECT_TRUE(mr.isMasked(RegClass::Fp, 7));
    EXPECT_FALSE(mr.isMasked(RegClass::Int, 7));
    EXPECT_FALSE(mr.isMasked(RegClass::Fp, 5));
    EXPECT_EQ(mr.maskedCount(), 2u);
}

TEST(MaskReg, ClearAllAtRegionBoundary)
{
    MaskReg mr(PhysRegIndexer(16, 16));
    mr.mask(RegClass::Int, 1);
    mr.mask(RegClass::Int, 2);
    mr.clearAll();
    EXPECT_TRUE(mr.empty());
    EXPECT_FALSE(mr.isMasked(RegClass::Int, 1));
}

TEST(MaskReg, ForEachMaskedReportsClassAndIndex)
{
    MaskReg mr(PhysRegIndexer(4, 4));
    mr.mask(RegClass::Int, 3);
    mr.mask(RegClass::Fp, 0);
    std::vector<std::pair<RegClass, PhysReg>> got;
    mr.forEachMasked(
        [&](RegClass cls, PhysReg p) { got.emplace_back(cls, p); });
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair{RegClass::Int, PhysReg{3}}));
    EXPECT_EQ(got[1], (std::pair{RegClass::Fp, PhysReg{0}}));
}

TEST(MaskReg, CheckpointRestoreRoundTrip)
{
    PhysRegIndexer idx(16, 16);
    MaskReg a(idx), b(idx);
    a.mask(RegClass::Int, 9);
    b.restore(a.raw());
    EXPECT_TRUE(b.isMasked(RegClass::Int, 9));
}

TEST(Csq, FifoOrderPreserved)
{
    Csq csq(4);
    csq.push(1, 0x100);
    csq.push(2, 0x200);
    csq.push(3, 0x300);
    ASSERT_EQ(csq.size(), 3u);
    EXPECT_EQ(csq.contents()[0].physRegIndex, 1u);
    EXPECT_EQ(csq.contents()[1].addr, 0x200u);
    EXPECT_EQ(csq.contents()[2].physRegIndex, 3u);
}

TEST(Csq, FullDetection)
{
    Csq csq(2);
    EXPECT_FALSE(csq.full());
    csq.push(0, 0);
    csq.push(1, 8);
    EXPECT_TRUE(csq.full());
}

TEST(Csq, OverflowPanics)
{
    Csq csq(1);
    csq.push(0, 0);
    EXPECT_DEATH({ csq.push(1, 8); }, "CSQ overflow");
}

TEST(Csq, ClearAtRegionBoundary)
{
    Csq csq(4);
    csq.push(0, 0);
    csq.clear();
    EXPECT_TRUE(csq.empty());
    EXPECT_FALSE(csq.full());
}

TEST(Csq, RestoreFromCheckpoint)
{
    Csq a(4), b(4);
    a.push(5, 0x50);
    a.push(6, 0x60);
    b.restore(a.contents());
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.contents()[0].physRegIndex, 5u);
    EXPECT_EQ(b.contents()[1].addr, 0x60u);
}

TEST(Csq, DefaultCapacityIsForty)
{
    Csq csq;
    EXPECT_EQ(csq.entryCapacity(), 40u); // Table 2
}
