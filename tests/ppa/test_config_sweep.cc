/** @file
 * Parameterized configuration sweeps: the crash-consistency and
 * store-integrity invariants must hold for EVERY hardware
 * configuration the paper's sensitivity studies explore — PRF size
 * (Fig. 16), CSQ size (Fig. 17), WPQ size (Fig. 15), write-buffer
 * tuning, and the Section 6 value-CSQ variant.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

struct SweepConfig
{
    const char *label;
    unsigned intPrf;
    unsigned fpPrf;
    unsigned csqEntries;
    unsigned wpqEntries;
    unsigned wbEntries;
    unsigned wbWindow;
    bool csqCarriesValues;
};

std::ostream &
operator<<(std::ostream &os, const SweepConfig &c)
{
    return os << c.label;
}

class ConfigSweep : public ::testing::TestWithParam<SweepConfig>
{
  protected:
    SystemConfig
    makeConfig() const
    {
        const SweepConfig &c = GetParam();
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        sc.core.intPrfEntries = c.intPrf;
        sc.core.fpPrfEntries = c.fpPrf;
        sc.core.csqEntries = c.csqEntries;
        sc.core.csqCarriesValues = c.csqCarriesValues;
        sc.mem.nvm.wpqEntries = c.wpqEntries;
        sc.mem.writeBufferEntries = c.wbEntries;
        sc.mem.wbCoalesceWindow = c.wbWindow;
        return sc;
    }
};

} // namespace

TEST_P(ConfigSweep, CrashRecoveryExact)
{
    Program prog = kernels::tpccNewOrder(60);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc = makeConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    for (Cycle fail : {400u, 1500u, 5000u}) {
        system.runUntilCycle(fail);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        ASSERT_TRUE(images[0].valid);
        system.recover(images);
    }
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}

TEST_P(ConfigSweep, FailureFreeRunMatchesGolden)
{
    Program prog = kernels::hashTableUpdate(200);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc = makeConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST_P(ConfigSweep, CheckpointStaysTiny)
{
    // Whatever the configuration, the JIT checkpoint stays within
    // the same order as the paper's 1838-byte worst case (scaled by
    // the CSQ size for the value-carrying variant).
    Program prog = kernels::arraySwap(150);
    SystemConfig sc = makeConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(2500);
    auto images = system.powerFail();
    ASSERT_TRUE(images[0].valid);
    EXPECT_LE(images[0].sizeBytes(), 4096u);
}

INSTANTIATE_TEST_SUITE_P(
    HardwareConfigs, ConfigSweep,
    ::testing::Values(
        SweepConfig{"table2_default", 180, 168, 40, 16, 16, 1024,
                    false},
        SweepConfig{"prf_80_80", 80, 80, 40, 16, 16, 1024, false},
        SweepConfig{"prf_100_100", 100, 100, 40, 16, 16, 1024, false},
        SweepConfig{"prf_icelake", 280, 224, 40, 16, 16, 1024, false},
        SweepConfig{"csq_10", 180, 168, 10, 16, 16, 1024, false},
        SweepConfig{"csq_50", 180, 168, 50, 16, 16, 1024, false},
        SweepConfig{"wpq_4", 180, 168, 40, 4, 16, 1024, false},
        SweepConfig{"wpq_24", 180, 168, 40, 24, 16, 1024, false},
        SweepConfig{"tiny_wb", 180, 168, 40, 16, 2, 1024, false},
        SweepConfig{"no_coalescing", 180, 168, 40, 16, 16, 0, false},
        SweepConfig{"value_csq", 180, 168, 40, 16, 16, 1024, true},
        SweepConfig{"value_csq_small", 100, 100, 12, 8, 4, 0, true},
        SweepConfig{"everything_small", 64, 64, 8, 4, 2, 0, false}),
    [](const ::testing::TestParamInfo<SweepConfig> &info) {
        return info.param.label;
    });
