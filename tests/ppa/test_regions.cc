/** @file
 * Dynamic region formation and store-integrity invariant tests
 * (paper Sections 3.1, 4.1, 4.2).
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

/** A PPA system with a deliberately tiny PRF to force regions. */
SystemConfig
tinyPrfConfig()
{
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.core.intPrfEntries = 48; // 16 arch regs + small headroom
    sc.core.fpPrfEntries = 48;
    return sc;
}

} // namespace

TEST(Regions, PrfExhaustionCreatesBoundaries)
{
    // A register-churning loop on a tiny PRF must form PRF-exhaustion
    // regions.
    Program prog = kernels::hashTableUpdate(400);
    SystemConfig sc = tinyPrfConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());

    const RegionStats &reg = system.core(0).regionStats();
    EXPECT_GT(reg.regionCount(), 0u);
    EXPECT_GT(reg.endedByPrf(), 0u);

    // Verify correctness held across all those boundaries.
    ProgramExecutor golden(prog);
    golden.totalLength();
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(Regions, LargePrfFormsLongerRegions)
{
    Program prog = kernels::hashTableUpdate(400);

    auto regions_with_prf = [&](unsigned prf) {
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        sc.core.intPrfEntries = prf;
        sc.core.fpPrfEntries = prf;
        System system(sc);
        system.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        system.bindSource(0, &source);
        system.run(20'000'000);
        EXPECT_TRUE(system.allDone());
        return system.core(0).regionStats().regionCount();
    };

    // More physical registers -> fewer (longer) regions (Figure 16's
    // mechanism).
    EXPECT_GE(regions_with_prf(48), regions_with_prf(180));
}

TEST(Regions, CsqOverflowActsAsBoundary)
{
    // Tiny CSQ: the implicit boundary on CSQ-full must fire and
    // correctness must hold (Section 4.2).
    Program prog = kernels::tpccNewOrder(80);
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.core.csqEntries = 8;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_GT(system.core(0).regionStats().endedByCsq(), 0u);

    ProgramExecutor golden(prog);
    golden.totalLength();
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(Regions, SyncPrimitivesEndRegions)
{
    ProgramBuilder b;
    b.movi(1, 0x1000);
    b.movi(2, 1);
    for (int i = 0; i < 5; ++i) {
        b.st(2, 1, static_cast<Word>(i) * 8);
        b.fence();
    }
    b.halt();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    ProgramExecutor source(b.program());
    system.bindSource(0, &source);
    system.run(10'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_GE(system.core(0).regionStats().endedBySync(), 5u);
}

TEST(Regions, StoresCountedPerRegion)
{
    Program prog = kernels::counterLoop(200);
    SystemConfig sc = tinyPrfConfig();
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());
    const RegionStats &reg = system.core(0).regionStats();
    if (reg.regionCount() > 0) {
        // counterLoop is ~1 store per 5 instructions.
        EXPECT_GT(reg.avgStoresPerRegion(), 0.0);
        EXPECT_GT(reg.avgOthersPerRegion(),
                  reg.avgStoresPerRegion());
    }
}

TEST(Regions, BarrierWaitsForPersistence)
{
    // After every region boundary, the persist counter must have hit
    // zero: verified indirectly by NVM correctness under a tiny WB
    // and WPQ that force heavy backpressure.
    Program prog = kernels::tpccNewOrder(50);
    SystemConfig sc = tinyPrfConfig();
    sc.mem.writeBufferEntries = 2;
    sc.mem.nvm.wpqEntries = 2;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());

    ProgramExecutor golden(prog);
    golden.totalLength();
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(Regions, VolatileModeFormsNoRegions)
{
    Program prog = kernels::counterLoop(100);
    SystemConfig sc;
    sc.core.mode = PersistMode::Volatile;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(10'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.core(0).regionStats().regionCount(), 0u);
}

TEST(Regions, RecoveryAcrossRegionBoundary)
{
    // Inject failures around forced region boundaries (tiny PRF).
    Program prog = kernels::hashTableUpdate(150);
    ProgramExecutor golden(prog);
    golden.totalLength();

    for (Cycle fail : {200u, 1500u, 4000u, 10000u}) {
        SystemConfig sc = tinyPrfConfig();
        System system(sc);
        system.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        system.bindSource(0, &source);
        system.runUntilCycle(fail);
        if (!system.allDone()) {
            auto images = system.powerFail();
            system.recover(images);
        }
        system.run(40'000'000);
        ASSERT_TRUE(system.allDone());
        EXPECT_TRUE(system.memory().nvmImage().sameContents(
            golden.goldenMemory()))
            << "failed at cycle " << fail;
    }
}
