/** @file Tests for checkpoint (de)serialization to the NVM layout. */

#include <gtest/gtest.h>

#include "check/observer.hh"
#include "ppa/checkpoint_io.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

/** Structural equality of two checkpoint images. */
void
expectEqual(const CheckpointImage &a, const CheckpointImage &b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.anyCommitted, b.anyCommitted);
    EXPECT_EQ(a.lcpc, b.lcpc);
    ASSERT_EQ(a.csq.size(), b.csq.size());
    for (std::size_t i = 0; i < a.csq.size(); ++i) {
        EXPECT_EQ(a.csq[i].physRegIndex, b.csq[i].physRegIndex);
        EXPECT_EQ(a.csq[i].addr, b.csq[i].addr);
        EXPECT_EQ(a.csq[i].carriesValue, b.csq[i].carriesValue);
        EXPECT_EQ(a.csq[i].value, b.csq[i].value);
    }
    EXPECT_EQ(a.crtInt, b.crtInt);
    EXPECT_EQ(a.crtFp, b.crtFp);
    EXPECT_TRUE(a.maskBits == b.maskBits);
    EXPECT_EQ(a.physRegValues, b.physRegValues);
}

/** A representative image with every field populated. */
CheckpointImage
sampleImage()
{
    CheckpointImage img;
    img.valid = true;
    img.anyCommitted = true;
    img.lcpc = 12345;
    img.csq.push_back({7, 0x1000, 0, false});
    img.csq.push_back({csqZeroRegIndex, 0x2000, 0, false});
    img.csq.push_back({csqZeroRegIndex, 0x3000, 99, true});
    img.crtInt = {0, 5, invalidPhysReg, 17};
    img.crtFp = {invalidPhysReg, 2};
    img.maskBits = BitVector(348);
    img.maskBits.set(0);
    img.maskBits.set(347);
    img.physRegValues[0] = 111;
    img.physRegValues[5] = 222;
    return img;
}

} // namespace

TEST(CheckpointIo, RoundTripPreservesEverything)
{
    CheckpointImage img = sampleImage();
    auto words = serializeCheckpoint(img);
    CheckpointImage back = deserializeCheckpoint(words);
    expectEqual(img, back);
}

TEST(CheckpointIo, EmptyImageRoundTrips)
{
    CheckpointImage img;
    img.maskBits = BitVector(64);
    auto words = serializeCheckpoint(img);
    CheckpointImage back = deserializeCheckpoint(words);
    expectEqual(img, back);
}

TEST(CheckpointIo, BadMagicIsFatal)
{
    auto words = serializeCheckpoint(sampleImage());
    words[0] ^= 0xFF;
    EXPECT_DEATH({ deserializeCheckpoint(words); }, "bad magic");
}

TEST(CheckpointIo, VersionMismatchIsFatal)
{
    // A checkpoint written by a different format revision must be
    // rejected up front, not deserialized on stale layout assumptions.
    auto words = serializeCheckpoint(sampleImage());
    words[1] += 1;
    EXPECT_DEATH({ deserializeCheckpoint(words); }, "format version");
}

TEST(CheckpointIo, TruncationIsFatal)
{
    auto words = serializeCheckpoint(sampleImage());
    words.resize(words.size() / 2);
    EXPECT_DEATH({ deserializeCheckpoint(words); }, "truncated|garbage");
}

TEST(CheckpointIo, SizeTracksSection712Granularity)
{
    // The serialized entry count stays within 2x of the image's own
    // 8-byte-granularity estimate (headers/trailer add a few words).
    CheckpointImage img = sampleImage();
    auto words = serializeCheckpoint(img);
    EXPECT_LE(words.size() * 8, img.sizeBytes() * 2 + 128);
}

TEST(CheckpointIo, FullCsqRoundTrips)
{
    // Edge case: a checkpoint taken the cycle the CSQ fills (40
    // entries, the paper's sizing) — the largest CSQ section the
    // serializer ever writes. Mix all three entry flavors.
    CheckpointImage img = sampleImage();
    img.csq.clear();
    img.physRegValues.clear();
    for (unsigned i = 0; i < 40; ++i) {
        if (i % 3 == 0) {
            img.csq.push_back({csqZeroRegIndex, 0x4000 + 8 * i,
                               Word{100} + i, true});
        } else if (i % 3 == 1) {
            img.csq.push_back({csqZeroRegIndex, 0x4000 + 8 * i, 0,
                               false});
        } else {
            unsigned reg = 10 + i;
            img.csq.push_back({reg, 0x4000 + 8 * i, 0, false});
            img.maskBits.set(reg);
            img.physRegValues[reg] = Word{1000} + i;
        }
    }
    ASSERT_EQ(img.csq.size(), 40u);
    CheckpointImage back =
        deserializeCheckpoint(serializeCheckpoint(img));
    expectEqual(img, back);
}

TEST(CheckpointIo, EmptyCsqFromRealBoundaryRoundTripsAndRecovers)
{
    // Edge case: power failure in the window right after a region
    // boundary, when the CSQ has drained to empty but instructions
    // have committed. The checkpoint must round-trip and recovery
    // must still reproduce the golden run.
    // The tree walk is read-heavy, so the CSQ sits empty for long
    // stretches between committed stores.
    Program prog = kernels::searchTreeWalk(600);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    // Tick to a window where something committed but the CSQ is empty.
    Cycle limit = system.cycle() + 200'000;
    while ((!system.core(0).csqRef().empty() ||
            system.totalCommitted() == 0) &&
           system.cycle() < limit && !system.allDone())
        system.tick();
    ASSERT_TRUE(system.core(0).csqRef().empty())
        << "no empty-CSQ window found";
    ASSERT_FALSE(system.allDone());

    auto images = system.powerFail();
    ASSERT_TRUE(images[0].valid);
    EXPECT_TRUE(images[0].csq.empty());
    EXPECT_TRUE(images[0].anyCommitted);

    CheckpointImage restored =
        deserializeCheckpoint(serializeCheckpoint(images[0]));
    expectEqual(images[0], restored);
    system.recover({restored});
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}

namespace
{

/** Records the cycle of every region-boundary completion. */
struct BoundaryRecorder : check::PipelineObserver
{
    Cycle cur = 0;
    std::vector<Cycle> boundaries;

    void onCycle(Cycle c) override { cur = c; }
    void onRegionBoundaryComplete() override { boundaries.push_back(cur); }
};

} // namespace

TEST(CheckpointIo, FailureExactlyAtRegionBoundaryCycle)
{
    // Edge case: the failure cycle coincides exactly with a region
    // boundary. First run records the boundary cycles via the audit
    // observer hooks; a fresh, deterministic rerun is then killed at
    // precisely such a cycle and must recover to the golden state.
    Program prog = kernels::hashTableUpdate(120);
    ProgramExecutor golden(prog);
    golden.totalLength();

    std::vector<Cycle> boundaries;
    {
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        System probe(sc);
        probe.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        probe.bindSource(0, &source);
        BoundaryRecorder rec;
        probe.core(0).attachAuditObserver(&rec);
        probe.run(40'000'000);
        ASSERT_TRUE(probe.allDone());
        boundaries = rec.boundaries;
    }
    ASSERT_GE(boundaries.size(), 3u) << "kernel formed too few regions";

    for (std::size_t pick : {std::size_t{1}, boundaries.size() / 2}) {
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        System system(sc);
        system.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        system.bindSource(0, &source);

        system.runUntilCycle(boundaries[pick]);
        ASSERT_FALSE(system.allDone());
        auto images = system.powerFail();
        ASSERT_TRUE(images[0].valid);
        CheckpointImage restored =
            deserializeCheckpoint(serializeCheckpoint(images[0]));
        expectEqual(images[0], restored);
        system.recover({restored});
        system.run(40'000'000);
        ASSERT_TRUE(system.allDone());
        EXPECT_TRUE(system.memory().nvmImage().sameContents(
            golden.goldenMemory()))
            << "diverged failing at boundary cycle " << boundaries[pick];
        EXPECT_EQ(system.core(0).architecturalState(),
                  golden.goldenState());
    }
}

TEST(CheckpointIo, RecoveryThroughSerializedBytes)
{
    // Full loop: run, fail, serialize the checkpoint to "NVM bytes",
    // deserialize, recover — state must match golden exactly.
    Program prog = kernels::hashTableUpdate(120);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(2500);
    ASSERT_FALSE(system.allDone());
    auto images = system.powerFail();

    auto nvm_bytes = serializeCheckpoint(images[0]);
    CheckpointImage restored = deserializeCheckpoint(nvm_bytes);
    system.recover({restored});
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}
