/** @file
 * Tests for the paper's Section 6 extensions: the value-carrying CSQ
 * (in-order cores / ROB-style renaming) and the JIT-checkpoint
 * controller timing model, plus recovery on synthetic streams.
 */

#include <gtest/gtest.h>

#include "isa/semantics.hh"
#include "ppa/jit_controller.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

/** Crash-and-verify helper on an arbitrary core configuration. */
void
crashAndVerify(const Program &prog, const CoreParams &core_params,
               const std::vector<Cycle> &fail_at)
{
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core = core_params;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    for (Cycle target : fail_at) {
        system.runUntilCycle(target);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        system.recover(images);
    }
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}

} // namespace

TEST(ValueCsq, PushValueCarriesData)
{
    Csq csq(4);
    csq.pushValue(0x100, 42);
    ASSERT_EQ(csq.size(), 1u);
    EXPECT_TRUE(csq.contents()[0].carriesValue);
    EXPECT_EQ(csq.contents()[0].value, 42u);
    EXPECT_EQ(csq.contents()[0].physRegIndex, csqZeroRegIndex);
}

TEST(ValueCsq, RecoveryWorksWithInlineValues)
{
    CoreParams params;
    params.mode = PersistMode::Ppa;
    params.csqCarriesValues = true;
    crashAndVerify(kernels::hashTableUpdate(150), params,
                   {500, 3000, 9000});
}

TEST(ValueCsq, MaskRegStaysEmpty)
{
    // Section 6: with inline values, no register needs pinning, so
    // the checkpoint carries no masked-register values from the CSQ.
    Program prog = kernels::tpccNewOrder(60);
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    sc.core.csqCarriesValues = true;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(3000);
    auto images = system.powerFail();
    ASSERT_TRUE(images[0].valid);
    EXPECT_TRUE(images[0].maskBits.none());
    for (const auto &e : images[0].csq)
        EXPECT_TRUE(e.carriesValue);
}

TEST(ValueCsq, WiderEntriesLargerCheckpointOfCsq)
{
    // The extension trades MaskReg pins for wider CSQ entries; the
    // overall checkpoint stays within the same order of magnitude.
    Program prog = kernels::tpccNewOrder(60);
    auto checkpoint_size = [&](bool carries_values) {
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        sc.core.csqCarriesValues = carries_values;
        System system(sc);
        system.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        system.bindSource(0, &source);
        system.runUntilCycle(3000);
        return system.powerFail()[0].sizeBytes();
    };
    EXPECT_GT(checkpoint_size(true), 0u);
    EXPECT_GT(checkpoint_size(false), 0u);
    EXPECT_LE(checkpoint_size(true), 2500u);
}

TEST(JitController, EntryCountRoundsToEightBytes)
{
    CheckpointImage img;
    img.valid = true;
    img.lcpc = 5;
    // 8 bytes LCPC only.
    EXPECT_EQ(JitController::entryCount(img), 1u);
    img.csq.push_back({0, 0x100, 0, false});
    EXPECT_EQ(JitController::entryCount(img), 2u);
}

TEST(JitController, ReadTimeMatchesSection713Scale)
{
    // 1838-byte worst case: ~115 ns at 8 B/cycle, 2 GHz.
    ClockDomain clk(2e9);
    JitController ctrl(clk, 2.3);
    CheckpointImage img;
    img.valid = true;
    // Build an image of the paper's worst-case size: 88 regs, 40 CSQ
    // entries, 48 CRT entries, MaskReg, LCPC.
    for (unsigned i = 0; i < 40; ++i)
        img.csq.push_back({i, i * 8, 0, false});
    img.crtInt.assign(16, 0);
    img.crtFp.assign(32, 0);
    img.maskBits = BitVector(384);
    for (unsigned i = 0; i < 88; ++i)
        img.physRegValues[i] = i;
    double read_ns = ctrl.readTimeNs(img);
    EXPECT_GT(read_ns, 90.0);
    EXPECT_LT(read_ns, 150.0);
    double flush_ns = ctrl.flushTimeNs(img);
    EXPECT_GT(flush_ns, 500.0);  // ~0.8 us
    EXPECT_LT(flush_ns, 1200.0);
    EXPECT_GT(ctrl.totalTimeNs(img), read_ns);
}

TEST(SyntheticRecovery, GeneratorStreamSurvivesFailures)
{
    // Crash consistency on a statistical stream: the generator's
    // seekTo regenerates deterministically, so recovery resumes
    // exactly after LCPC.
    const auto &profile = profileByName("gcc");
    for (Cycle fail : {700u, 4000u, 15000u}) {
        StreamGenerator golden_gen(profile, 0, 99, 4000);
        std::vector<DynInst> stream;
        DynInst d;
        while (golden_gen.next(d))
            stream.push_back(d);
        MemImage init;
        auto golden = runGolden(stream, init);

        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        System system(sc);
        StreamGenerator source(profile, 0, 99, 4000);
        system.bindSource(0, &source);
        system.runUntilCycle(fail);
        if (!system.allDone()) {
            auto images = system.powerFail();
            system.recover(images);
        }
        system.run(40'000'000);
        ASSERT_TRUE(system.allDone()) << "fail=" << fail;
        EXPECT_TRUE(system.memory().nvmImage().sameContents(golden.mem))
            << "fail=" << fail;
        EXPECT_EQ(system.core(0).architecturalState(), golden.state)
            << "fail=" << fail;
    }
}

TEST(SyntheticRecovery, StoreHeavyProfileManySeeds)
{
    // Property sweep across seeds on a store-dense profile.
    const auto &profile = profileByName("lbm");
    for (std::uint64_t seed : {1ull, 7ull, 123ull, 9999ull}) {
        StreamGenerator golden_gen(profile, 0, seed, 2500);
        std::vector<DynInst> stream;
        DynInst d;
        while (golden_gen.next(d))
            stream.push_back(d);
        MemImage init;
        auto golden = runGolden(stream, init);

        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        System system(sc);
        StreamGenerator source(profile, 0, seed, 2500);
        system.bindSource(0, &source);
        system.runUntilCycle(1500 + seed % 1000);
        if (!system.allDone()) {
            auto images = system.powerFail();
            system.recover(images);
        }
        system.run(40'000'000);
        ASSERT_TRUE(system.allDone()) << "seed=" << seed;
        EXPECT_TRUE(system.memory().nvmImage().sameContents(golden.mem))
            << "seed=" << seed;
    }
}
