/** @file
 * Randomized differential tests: structured random programs must
 * produce identical final state on the golden model and on the
 * pipeline — in every persistence mode, and under power failures at
 * randomized points. This is the widest net in the suite.
 */

#include <gtest/gtest.h>

#include "baselines/replaycache.hh"
#include "support/random_program.hh"
#include "sim/system.hh"

using namespace ppa;
using namespace ppa::testsupport;

namespace
{

void
expectMatchesGolden(const Program &prog, System &system,
                    std::uint64_t seed)
{
    ProgramExecutor golden(prog);
    golden.totalLength();
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()))
        << "seed=" << seed;
    EXPECT_EQ(system.core(0).architecturalState(), golden.goldenState())
        << "seed=" << seed;
}

class DifferentialSeed : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(DifferentialSeed, VolatileModeMatchesGolden)
{
    std::uint64_t seed = GetParam();
    Program prog = makeRandomProgram(seed);
    SystemConfig sc;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    expectMatchesGolden(prog, system, seed);
}

TEST_P(DifferentialSeed, PpaModeMatchesGolden)
{
    std::uint64_t seed = GetParam();
    Program prog = makeRandomProgram(seed);
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    expectMatchesGolden(prog, system, seed);
}

TEST_P(DifferentialSeed, PpaSurvivesRandomFailurePoints)
{
    std::uint64_t seed = GetParam();
    Program prog = makeRandomProgram(seed);
    Rng rng(seed ^ 0xF00D);

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    // Three failures at random, increasing points.
    Cycle at = 0;
    for (int k = 0; k < 3; ++k) {
        at += rng.range(50, 2500);
        system.runUntilCycle(at);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        system.recover(images);
    }
    system.run(80'000'000);
    ASSERT_TRUE(system.allDone());
    expectMatchesGolden(prog, system, seed);
}

TEST_P(DifferentialSeed, ReplayCacheModeMatchesGolden)
{
    std::uint64_t seed = GetParam();
    Program prog = makeRandomProgram(seed);
    SystemConfig sc;
    sc.core.mode = PersistMode::ReplayCache;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    ReplayCacheTransform rc(source, ReplayCacheParams{});
    system.bindSource(0, &rc);
    system.run(160'000'000);
    ASSERT_TRUE(system.allDone());
    expectMatchesGolden(prog, system, seed);
}

TEST_P(DifferentialSeed, CapriModeMatchesGolden)
{
    std::uint64_t seed = GetParam();
    Program prog = makeRandomProgram(seed);
    SystemConfig sc;
    sc.core.mode = PersistMode::Capri;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(160'000'000);
    ASSERT_TRUE(system.allDone());
    expectMatchesGolden(prog, system, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });
