/** @file
 * Crash-consistency property tests: the headline invariant.
 *
 * For ANY power-failure point, JIT checkpoint + recovery (replay the
 * CSQ, restore CRT into RAT, resume after LCPC) must produce a final
 * NVM image and architectural state identical to a failure-free run
 * (paper Sections 3.4, 4.5, 4.6). The sweep is parameterized over
 * kernels and failure cycles, including repeated failures.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

Program
kernelByName(const std::string &name)
{
    if (name == "counter")
        return kernels::counterLoop(150);
    if (name == "hash")
        return kernels::hashTableUpdate(150);
    if (name == "tree")
        return kernels::searchTreeWalk(100);
    if (name == "swap")
        return kernels::arraySwap(120);
    if (name == "tatp")
        return kernels::tatpUpdate(80);
    if (name == "tpcc")
        return kernels::tpccNewOrder(60);
    if (name == "kv")
        return kernels::kvStore(80, 50);
    if (name == "stencil")
        return kernels::stencil(2, 128);
    ADD_FAILURE() << "unknown kernel " << name;
    return kernels::counterLoop(1);
}

/**
 * Run @p prog with power failures injected at the given cycles;
 * verify exact state equality with the golden model at the end.
 */
void
crashAndVerify(const Program &prog, const std::vector<Cycle> &fail_at)
{
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    for (Cycle target : fail_at) {
        system.runUntilCycle(target);
        if (system.allDone())
            break;
        auto images = system.powerFail();
        ASSERT_TRUE(images[0].valid);
        system.recover(images);
    }
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone()) << "did not finish after recovery";

    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()))
        << "NVM image diverged from golden memory";
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}

struct Case
{
    const char *kernel;
    Cycle failCycle;
};

class RecoverySweep : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(RecoverySweep, SingleFailureRecovers)
{
    const Case &c = GetParam();
    crashAndVerify(kernelByName(c.kernel), {c.failCycle});
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, RecoverySweep,
    ::testing::Values(
        Case{"counter", 50}, Case{"counter", 500}, Case{"counter", 2000},
        Case{"counter", 7000}, Case{"hash", 100}, Case{"hash", 1000},
        Case{"hash", 5000}, Case{"hash", 20000}, Case{"tree", 300},
        Case{"tree", 3000}, Case{"tree", 12000}, Case{"swap", 400},
        Case{"swap", 4000}, Case{"swap", 16000}, Case{"tatp", 600},
        Case{"tatp", 6000}, Case{"tpcc", 800}, Case{"tpcc", 8000},
        Case{"kv", 700}, Case{"kv", 7000}, Case{"stencil", 900},
        Case{"stencil", 9000}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(info.param.kernel) + "_c" +
               std::to_string(info.param.failCycle);
    });

TEST(Recovery, FailureAtEveryEarlyCycle)
{
    // Exhaustive sweep over the first cycles of a store-heavy kernel:
    // catches boundary conditions (failure before first commit,
    // mid-rename, mid-merge, ...).
    Program prog = kernels::counterLoop(30);
    for (Cycle fail = 1; fail <= 120; fail += 3)
        crashAndVerify(prog, {fail});
}

TEST(Recovery, RepeatedFailures)
{
    Program prog = kernels::hashTableUpdate(120);
    crashAndVerify(prog, {400, 900, 1500, 2600, 4000, 8000});
}

TEST(Recovery, BackToBackFailures)
{
    // A second failure immediately after recovery: the restored
    // CSQ/MaskReg must replay idempotently (paper footnote 8).
    Program prog = kernels::tpccNewOrder(40);
    crashAndVerify(prog, {1000, 1001, 1002, 1400});
}

TEST(Recovery, FailureBeforeFirstCommit)
{
    Program prog = kernels::counterLoop(20);
    crashAndVerify(prog, {1});
}

TEST(Recovery, FailureDuringDrainAfterLastCommit)
{
    Program prog = kernels::counterLoop(20);
    // Very late failure: either the run is done (no-op) or the tail
    // stores replay.
    crashAndVerify(prog, {100'000});
}

TEST(Recovery, CheckpointContainsOnlyMarkedRegisters)
{
    Program prog = kernels::hashTableUpdate(100);
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(3000);
    auto images = system.powerFail();
    const CheckpointImage &img = images[0];
    ASSERT_TRUE(img.valid);

    // Every CSQ-referenced register has a checkpointed value.
    for (const auto &e : img.csq)
        EXPECT_TRUE(img.physRegValues.count(e.physRegIndex));

    // The checkpoint is tiny: bounded by the paper's worst case of
    // ~1.9 KB (88 regs + CSQ + CRT + MaskReg + LCPC).
    EXPECT_LE(img.sizeBytes(), 2200u);
    EXPECT_GT(img.sizeBytes(), 0u);
}

TEST(Recovery, ReplayIsIdempotent)
{
    // Recover twice from the same image: the second replay must not
    // change the NVM image (stores are idempotent).
    Program prog = kernels::arraySwap(60);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(2500);
    auto images = system.powerFail();

    system.recover(images);
    MemImage after_first = system.memory().nvmImage();
    // Second recovery from the same checkpoint (as if power failed
    // again instantly with no progress).
    system.powerFail();
    system.recover(images);
    EXPECT_TRUE(system.memory().nvmImage().sameContents(after_first));

    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(Recovery, VolatileCoreCheckpointIsInvalid)
{
    // Non-PPA systems cannot recover: powerFail returns an invalid
    // image (that inability is the paper's motivation).
    Program prog = kernels::counterLoop(50);
    SystemConfig sc;
    sc.core.mode = PersistMode::Volatile;
    System system(sc);
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(500);
    auto images = system.powerFail();
    EXPECT_FALSE(images[0].valid);
}
