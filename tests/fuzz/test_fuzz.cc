/** @file
 * Tests for the crash-consistency fuzzer: generator hygiene (every
 * random program stays inside the persist model's sound fragment and
 * regenerates bit-identically from (seed, index)), text round-trips,
 * shrinker determinism/termination/1-minimality, campaign verdicts,
 * and the checked-in corpus of minimal reproducers — each one must
 * still violate its recorded flavor at its recorded cycle and remain
 * 1-minimal, so a simulator change that silently fixes or unfixes a
 * reproducer is caught here.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/model.hh"
#include "fuzz/campaign.hh"
#include "fuzz/shrink.hh"
#include "fuzz/spec.hh"

using namespace ppa;
using check::PersistFlavor;
using check::PersistModel;
using fuzz::FuzzSpec;
using fuzz::GeneratorConfig;
using fuzz::ShrinkLimits;
using fuzz::Violation;

namespace
{

PersistModel
modelOf(const check::LitmusTest &test)
{
    std::vector<const Program *> progs;
    for (const Program &p : test.threads)
        progs.push_back(&p);
    return PersistModel(progs);
}

/** Find a strict-forbidden crash of a memory-mode run of @p spec. */
bool
memoryModeViolation(const FuzzSpec &spec, Violation &out)
{
    std::uint64_t judged = 0;
    return fuzz::findEarliestViolation(spec, SystemVariant::MemoryMode,
                                       PersistFlavor::Strict, {}, judged,
                                       out);
}

std::string
corpusDir()
{
    return std::string(PPA_SOURCE_DIR) + "/tests/fuzz/corpus";
}

} // namespace

TEST(FuzzGenerator, RegeneratesBitIdenticallyFromSeedAndIndex)
{
    GeneratorConfig cfg;
    for (std::uint64_t i = 0; i < 8; ++i) {
        FuzzSpec a = fuzz::generateSpec(cfg, 20260808, i);
        FuzzSpec b = fuzz::generateSpec(cfg, 20260808, i);
        EXPECT_EQ(fuzz::specText(a), fuzz::specText(b)) << i;
    }
}

TEST(FuzzGenerator, DistinctSeedsAndIndexesDiverge)
{
    GeneratorConfig cfg;
    std::set<std::string> texts;
    for (std::uint64_t i = 0; i < 16; ++i)
        texts.insert(fuzz::specText(fuzz::generateSpec(cfg, 7, i)));
    for (std::uint64_t s = 1; s <= 16; ++s)
        texts.insert(fuzz::specText(fuzz::generateSpec(cfg, s, 0)));
    // Collisions are astronomically unlikely; near-total distinctness
    // is the point (a frozen generator would collapse this set).
    EXPECT_GE(texts.size(), 30u);
}

TEST(FuzzGenerator, EveryProgramStaysInsideTheSoundFragment)
{
    GeneratorConfig cfg;
    for (std::uint64_t i = 0; i < 64; ++i) {
        FuzzSpec spec = fuzz::generateSpec(cfg, 99, i);
        ASSERT_FALSE(spec.threads.empty()) << i;
        ASSERT_FALSE(spec.observed.empty()) << i;
        check::LitmusTest test = fuzz::lowerSpec(spec);
        PersistModel model = modelOf(test);
        EXPECT_TRUE(model.racyAddresses().empty()) << spec.name;
        EXPECT_TRUE(model.crossThreadReads().empty()) << spec.name;
    }
}

TEST(FuzzGenerator, SpecTextRoundTrips)
{
    GeneratorConfig cfg;
    for (std::uint64_t i = 0; i < 8; ++i) {
        FuzzSpec spec = fuzz::generateSpec(cfg, 5, i);
        FuzzSpec back;
        std::string error;
        ASSERT_TRUE(fuzz::parseSpecText(fuzz::specText(spec), back,
                                        error))
            << error;
        EXPECT_EQ(fuzz::specText(spec), fuzz::specText(back));
    }
}

TEST(FuzzGenerator, ParserRejectsMalformedSpecs)
{
    FuzzSpec out;
    std::string error;
    EXPECT_FALSE(fuzz::parseSpecText("", out, error));
    EXPECT_FALSE(fuzz::parseSpecText("name x\nend\n", out, error));
    EXPECT_FALSE(fuzz::parseSpecText(
        "name x\nlinesPerThread 4\nthread 0x40000\n  store 9 1\n"
        "end-thread\nobserve 0x40000\nend\n",
        out, error))
        << "line index out of range must be rejected";
    EXPECT_FALSE(fuzz::parseSpecText(
        "name x\nlinesPerThread 4\nthread 0x40000\n  store 0 0\n"
        "end-thread\nobserve 0x40000\nend\n",
        out, error))
        << "store value 0 must be rejected";
}

TEST(FuzzShrink, MemoryModeViolationShrinksDeterministically)
{
    GeneratorConfig cfg;
    Violation v;
    bool found = false;
    for (std::uint64_t i = 0; i < 8 && !found; ++i)
        found = memoryModeViolation(fuzz::generateSpec(cfg, 20260808, i),
                                    v);
    ASSERT_TRUE(found) << "memory-mode must expose strict violations";

    fuzz::ShrinkResult a = fuzz::shrinkViolation(v);
    fuzz::ShrinkResult b = fuzz::shrinkViolation(v);
    EXPECT_EQ(fuzz::specText(a.min.spec), fuzz::specText(b.min.spec));
    EXPECT_EQ(a.min.cycle, b.min.cycle);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.judged, b.judged);
}

TEST(FuzzShrink, ResultIsOneMinimalAndWithinBudget)
{
    GeneratorConfig cfg;
    Violation v;
    bool found = false;
    for (std::uint64_t i = 0; i < 8 && !found; ++i)
        found = memoryModeViolation(fuzz::generateSpec(cfg, 20260808, i),
                                    v);
    ASSERT_TRUE(found);

    fuzz::ShrinkResult res = fuzz::shrinkViolation(v);
    EXPECT_FALSE(res.budgetExhausted);
    ShrinkLimits limits;
    EXPECT_LT(res.judged, limits.maxCrashSims);

    // The minimum still violates...
    Violation again;
    std::uint64_t judged = 0;
    ASSERT_TRUE(fuzz::findEarliestViolation(res.min.spec, res.min.variant,
                                            res.min.flavor, limits,
                                            judged, again));
    EXPECT_EQ(again.cycle, res.min.cycle);
    // ...and no single further reduction does.
    EXPECT_TRUE(fuzz::isOneMinimal(res.min, limits, judged));
}

TEST(FuzzShrink, BudgetExhaustionIsReportedNotLooped)
{
    GeneratorConfig cfg;
    Violation v;
    ASSERT_TRUE(memoryModeViolation(fuzz::generateSpec(cfg, 20260808, 0),
                                    v));
    ShrinkLimits tight;
    tight.maxCrashSims = 50; // far below one exhaustive cycle scan
    fuzz::ShrinkResult res = fuzz::shrinkViolation(v, tight);
    EXPECT_TRUE(res.budgetExhausted);
    EXPECT_LE(res.judged, tight.maxCrashSims);
}

TEST(FuzzCampaign, PpaCampaignIsViolationFreeAndReproducible)
{
    fuzz::CampaignOptions opts;
    opts.variant = SystemVariant::Ppa;
    opts.programs = 6;
    opts.schedules = 4;
    opts.seed = 20260808;
    fuzz::CampaignResult a = fuzz::runCampaign(opts);
    EXPECT_TRUE(a.pass());
    EXPECT_EQ(a.violations, 0u);
    EXPECT_EQ(a.strictDivergences, 0u);
    EXPECT_EQ(a.skipped, 0u);
    EXPECT_EQ(a.crashPoints, 24u);

    fuzz::CampaignResult b = fuzz::runCampaign(opts);
    EXPECT_EQ(fuzz::campaignJson(a, opts), fuzz::campaignJson(b, opts));
}

TEST(FuzzCampaign, MemoryModeCampaignFindsAndShrinksStrictDivergence)
{
    fuzz::CampaignOptions opts;
    opts.variant = SystemVariant::MemoryMode;
    opts.programs = 10;
    opts.schedules = 6;
    opts.seed = 20260808;
    opts.maxFindings = 1;
    fuzz::CampaignResult res = fuzz::runCampaign(opts);
    EXPECT_TRUE(res.pass()) << "relaxed flavor must hold";
    EXPECT_EQ(res.violations, 0u);
    EXPECT_GT(res.strictDivergences, 0u);
    ASSERT_EQ(res.findings.size(), 1u);
    const fuzz::CampaignFinding &f = res.findings.front();
    EXPECT_TRUE(f.strictOnly);
    EXPECT_EQ(f.flavor, PersistFlavor::Strict);
    EXPECT_FALSE(f.shrinkBudgetExhausted);
    EXPECT_LE(f.threadsAfter, f.threadsBefore);
    EXPECT_LT(f.actionsAfter, f.actionsBefore);
}

TEST(FuzzCorpus, CheckedInReproducersStillViolateAndStayMinimal)
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(corpusDir()))
        if (entry.path().extension() == ".litmus")
            files.push_back(entry.path());
    ASSERT_FALSE(files.empty())
        << "tests/fuzz/corpus must hold at least one reproducer";

    for (const auto &path : files) {
        std::ifstream in(path);
        std::stringstream buf;
        buf << in.rdbuf();

        Violation v;
        std::string error;
        ASSERT_TRUE(fuzz::parseReproducerText(buf.str(), v, error))
            << path << ": " << error;

        Violation confirmed;
        std::uint64_t judged = 0;
        ShrinkLimits limits;
        ASSERT_TRUE(fuzz::findEarliestViolation(v.spec, v.variant,
                                                v.flavor, limits, judged,
                                                confirmed))
            << path << ": reproducer no longer violates";
        EXPECT_EQ(confirmed.cycle, v.cycle)
            << path << ": recorded earliest cycle drifted";
        EXPECT_TRUE(fuzz::isOneMinimal(confirmed, limits, judged))
            << path << ": reproducer is no longer 1-minimal";
    }
}

TEST(FuzzCorpus, ReproducerTextRoundTrips)
{
    GeneratorConfig cfg;
    Violation v;
    ASSERT_TRUE(memoryModeViolation(fuzz::generateSpec(cfg, 20260808, 0),
                                    v));
    fuzz::ShrinkResult res = fuzz::shrinkViolation(v);

    std::string text = fuzz::reproducerText(res.min);
    Violation back;
    std::string error;
    ASSERT_TRUE(fuzz::parseReproducerText(text, back, error)) << error;
    EXPECT_EQ(back.variant, res.min.variant);
    EXPECT_EQ(back.flavor, res.min.flavor);
    EXPECT_EQ(back.cycle, res.min.cycle);
    EXPECT_EQ(fuzz::specText(back.spec), fuzz::specText(res.min.spec));
}
