/** @file Tests for the hardware cost / energy model (Tables 4-5). */

#include <gtest/gtest.h>

#include "energy/cost_model.hh"

using namespace ppa::energy;

TEST(SramCostModel, Table4AreaMagnitudes)
{
    auto costs = ppaStructureCosts();
    ASSERT_EQ(costs.size(), 3u);
    // LCPC ~12.2 um^2, MaskReg ~74 um^2, CSQ ~548 um^2 (Table 4).
    // The analytical model must land within 35% of CACTI's numbers.
    EXPECT_NEAR(costs[0].second.areaUm2, 12.20, 12.20 * 0.35);
    EXPECT_NEAR(costs[1].second.areaUm2, 74.03, 74.03 * 0.35);
    EXPECT_NEAR(costs[2].second.areaUm2, 547.84, 547.84 * 0.35);
}

TEST(SramCostModel, Table4LatencySubNanosecond)
{
    for (const auto &[s, c] : ppaStructureCosts()) {
        EXPECT_GT(c.accessLatencyNs, 0.03) << s.name;
        EXPECT_LT(c.accessLatencyNs, 0.12) << s.name;
    }
}

TEST(SramCostModel, Table4EnergyIsFemtojouleScale)
{
    // Table 4: 0.00034 / 0.00029 / 0.00025 pJ per dynamic access.
    auto costs = ppaStructureCosts();
    EXPECT_NEAR(costs[0].second.dynamicAccessPj, 0.00034,
                0.00034 * 0.35);
    EXPECT_NEAR(costs[1].second.dynamicAccessPj, 0.00029,
                0.00029 * 0.35);
    EXPECT_NEAR(costs[2].second.dynamicAccessPj, 0.00025,
                0.00025 * 0.35);
    // The trend is mildly decreasing with structure size.
    EXPECT_GT(costs[0].second.dynamicAccessPj,
              costs[2].second.dynamicAccessPj);
}

TEST(SramCostModel, AreaGrowsWithBits)
{
    SramCostModel m(22.0);
    auto small = m.estimate({"a", 64, 1});
    auto big = m.estimate({"b", 640, 1});
    EXPECT_GT(big.areaUm2, small.areaUm2 * 5);
}

TEST(AreaRatio, PpaIsFiveThousandthsPercentOfCore)
{
    // Section 7.12: 0.005% of an 11.85 mm^2 Xeon core.
    double ratio = ppaAreaRatio();
    EXPECT_GT(ratio, 0.00002);
    EXPECT_LT(ratio, 0.0001);
}

TEST(Backup, PpaNeedsMicrojoules)
{
    auto req = backupForBytes(1838); // the paper's worst case
    // 1838 B * 11.839 nJ/B = 21.76 uJ (Table 5's 21.7 uJ).
    EXPECT_NEAR(req.energyJ, 21.7e-6, 0.3e-6);
    // 0.06 mm^3 supercapacitor / 0.0006 mm^3 Li-thin.
    EXPECT_NEAR(req.superCapMm3, 0.06, 0.01);
    EXPECT_NEAR(req.liThinMm3, 0.0006, 0.0001);
    EXPECT_NEAR(req.superCapRatioToCore, 0.005, 0.001);
}

TEST(Backup, CapriNeedsMillijouleScale)
{
    auto req = backupForBytes(capriFlushBytes());
    // 54 KB * 11.839 nJ/B = 0.65 mJ (Table 5 reports 0.6 mJ).
    EXPECT_NEAR(req.energyJ, 0.6e-3, 0.1e-3);
    EXPECT_NEAR(req.superCapMm3, 1.57, 0.35);
}

TEST(Backup, LightPcNeedsHundredsOfMillijoules)
{
    auto req = backupForBytes(lightPcFlushBytes());
    // ~16.07 MB * 11.839 nJ/B = 199 mJ (Table 5 reports 189 mJ).
    EXPECT_NEAR(req.energyJ, 0.189, 0.025);
    EXPECT_NEAR(req.superCapMm3, 527.8, 70.0);
}

TEST(Backup, OrderingAcrossSchemes)
{
    double ppa = backupForBytes(ppaWorstCaseCheckpointBytes()).energyJ;
    double capri = backupForBytes(capriFlushBytes()).energyJ;
    double lightpc = backupForBytes(lightPcFlushBytes()).energyJ;
    EXPECT_LT(ppa, capri);
    EXPECT_LT(capri, lightpc);
    EXPECT_LT(lightpc, eadrEnergyJ());
    // BBB sits between PPA and Capri.
    EXPECT_GT(bbbEnergyJ(), ppa);
    EXPECT_LT(ppa * 30, bbbEnergyJ()); // paper: 36.5x larger
}

TEST(CheckpointTiming, MatchesSection713)
{
    auto t = checkpointTiming(1838, 2.0, 2.3);
    // 1838 B / 8 B-per-cycle at 2 GHz = ~115 ns.
    EXPECT_NEAR(t.readTimeNs, 114.9, 2.0);
    // 1838 B at 2.3 GB/s = 0.80 us; the paper reports 0.91 us
    // including controller overheads.
    EXPECT_GT(t.flushTimeUs, 0.7);
    EXPECT_LT(t.flushTimeUs, 1.0);
}

TEST(CheckpointTiming, ScalesWithBytes)
{
    auto a = checkpointTiming(1000);
    auto b = checkpointTiming(2000);
    EXPECT_NEAR(b.readTimeNs / a.readTimeNs, 2.0, 0.05);
    EXPECT_NEAR(b.flushTimeUs / a.flushTimeUs, 2.0, 0.05);
}

TEST(WorstCase, CheckpointBytesNearPaperValue)
{
    // The paper reports 1838 B; our packing arithmetic lands within
    // a few percent.
    auto bytes = ppaWorstCaseCheckpointBytes();
    EXPECT_GT(bytes, 1700u);
    EXPECT_LT(bytes, 1950u);
}
