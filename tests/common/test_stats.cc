/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace ppa::stats;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, CdfIsMonotonic)
{
    Histogram h(10);
    for (std::size_t v : {1u, 1u, 2u, 5u, 9u})
        h.sample(v);
    double prev = 0.0;
    for (std::size_t v = 0; v <= 10; ++v) {
        double c = h.cdf(v);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdf(10), 1.0);
}

TEST(Histogram, CdfValues)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.cdf(0), 0.25);
    EXPECT_DOUBLE_EQ(h.cdf(1), 0.75);
    EXPECT_DOUBLE_EQ(h.cdf(3), 0.75);
    EXPECT_DOUBLE_EQ(h.cdf(4), 1.0);
}

TEST(Histogram, OutOfRangeCountsAsOverflow)
{
    Histogram h(5);
    h.sample(100);
    // The stray sample must not distort the distribution: it is
    // tracked separately, not folded into the top bin.
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflowCount(), 1u);
    h.sample(3);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.cdf(5), 1.0);
    EXPECT_DOUBLE_EQ(h.cdf(2), 0.0);
}

TEST(Histogram, OverflowSurvivesMerge)
{
    Histogram a(5);
    Histogram b(5);
    a.sample(6);
    a.sample(2);
    b.sample(7);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.overflowCount(), 2u);
}

TEST(Histogram, PercentileFindsThreshold)
{
    Histogram h(100);
    for (std::size_t i = 1; i <= 100; ++i)
        h.sample(i);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 90.0, 1.0);
}

TEST(Histogram, PercentileEndpointsPinned)
{
    // Values 10..19, one sample each; bin 0..9 stay empty.
    Histogram h(50);
    for (std::size_t i = 10; i < 20; ++i)
        h.sample(i);
    // p0 is the smallest observed value, not an empty leading bin
    // (the truncated-rank bug returned 0 here because acc 0 >= 0).
    EXPECT_EQ(h.percentile(0.0), 10u);
    EXPECT_EQ(h.percentile(1.0), 19u);
    // p50: smallest v with cdf(v) >= 0.5.
    EXPECT_EQ(h.percentile(0.5), 14u);
    EXPECT_GE(h.cdf(h.percentile(0.5)), 0.5);
    // p99 with 10 samples is the maximum (ceil(0.99 * 10) = 10).
    EXPECT_EQ(h.percentile(0.99), 19u);
}

TEST(Histogram, PercentileAgreesWithCdf)
{
    // A skewed distribution; percentile(f) must be the smallest value
    // whose cdf reaches f, for every percentile of interest.
    Histogram h(64);
    for (std::size_t i = 0; i < 40; ++i)
        h.sample(3);
    for (std::size_t i = 0; i < 30; ++i)
        h.sample(17);
    for (std::size_t i = 0; i < 29; ++i)
        h.sample(42);
    h.sample(63);
    for (double frac : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        std::size_t p = h.percentile(frac);
        EXPECT_GE(h.cdf(p), frac) << "frac " << frac;
        if (p > 0) {
            EXPECT_LT(h.cdf(p - 1), frac == 0.0 ? 1e-12 : frac)
                << "frac " << frac;
        }
    }
    EXPECT_EQ(h.percentile(0.0), 3u);
    EXPECT_EQ(h.percentile(1.0), 63u);
}

TEST(Histogram, NamedQuantilesMatchPercentile)
{
    // The tail-quantile conveniences the serving metrics expose must
    // be exactly percentile() at the matching fraction — and with
    // 10000 one-per-value samples, exactly the ceil-rank value.
    Histogram h(10000);
    for (std::size_t i = 0; i < 10000; ++i)
        h.sample(i);
    EXPECT_EQ(h.p50(), h.percentile(0.50));
    EXPECT_EQ(h.p95(), h.percentile(0.95));
    EXPECT_EQ(h.p99(), h.percentile(0.99));
    EXPECT_EQ(h.p999(), h.percentile(0.999));
    EXPECT_EQ(h.p9999(), h.percentile(0.9999));
    EXPECT_EQ(h.p50(), 4999u);
    EXPECT_EQ(h.p99(), 9899u);
    EXPECT_EQ(h.p999(), 9989u);
    EXPECT_EQ(h.p9999(), 9998u);
    // ceil-rank, not interpolation: the quantile chain is monotone
    // and never exceeds the maximum.
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_LE(h.p99(), h.p999());
    EXPECT_LE(h.p999(), h.p9999());
    EXPECT_LE(h.p9999(), h.percentile(1.0));
}

TEST(Histogram, NamedQuantilesDegenerateTowardMax)
{
    // With few samples p9999 collapses to the max — never past it.
    Histogram h(100);
    for (std::size_t i = 10; i < 20; ++i)
        h.sample(i);
    EXPECT_EQ(h.p999(), 19u);
    EXPECT_EQ(h.p9999(), 19u);
}

TEST(Histogram, MeanOfUniform)
{
    Histogram h(10);
    for (std::size_t i = 0; i <= 10; ++i)
        h.sample(i);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a(4), b(4);
    a.sample(1);
    b.sample(3);
    b.sample(3);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.cdf(1), 1.0 / 3.0);
}

TEST(Histogram, CdfSeriesCoversAllValues)
{
    Histogram h(3);
    h.sample(0);
    h.sample(2);
    auto series = h.cdfSeries();
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0].second, 0.5);
    EXPECT_DOUBLE_EQ(series[3].second, 1.0);
}

TEST(Group, NamedCountersAreIndependent)
{
    Group g;
    g.counter("a").inc(2);
    g.counter("b").inc(5);
    EXPECT_EQ(g.counterValue("a"), 2u);
    EXPECT_EQ(g.counterValue("b"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(Group, NamedAverages)
{
    Group g;
    g.average("x").sample(1.0);
    g.average("x").sample(3.0);
    EXPECT_DOUBLE_EQ(g.averageValue("x"), 2.0);
    EXPECT_DOUBLE_EQ(g.averageValue("missing"), 0.0);
}
