/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace ppa::stats;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, CdfIsMonotonic)
{
    Histogram h(10);
    for (std::size_t v : {1u, 1u, 2u, 5u, 9u})
        h.sample(v);
    double prev = 0.0;
    for (std::size_t v = 0; v <= 10; ++v) {
        double c = h.cdf(v);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdf(10), 1.0);
}

TEST(Histogram, CdfValues)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.cdf(0), 0.25);
    EXPECT_DOUBLE_EQ(h.cdf(1), 0.75);
    EXPECT_DOUBLE_EQ(h.cdf(3), 0.75);
    EXPECT_DOUBLE_EQ(h.cdf(4), 1.0);
}

TEST(Histogram, ClampsToTopBin)
{
    Histogram h(5);
    h.sample(100);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.cdf(5), 1.0);
    EXPECT_DOUBLE_EQ(h.cdf(4), 0.0);
}

TEST(Histogram, PercentileFindsThreshold)
{
    Histogram h(100);
    for (std::size_t i = 1; i <= 100; ++i)
        h.sample(i);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 90.0, 1.0);
}

TEST(Histogram, MeanOfUniform)
{
    Histogram h(10);
    for (std::size_t i = 0; i <= 10; ++i)
        h.sample(i);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a(4), b(4);
    a.sample(1);
    b.sample(3);
    b.sample(3);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.cdf(1), 1.0 / 3.0);
}

TEST(Histogram, CdfSeriesCoversAllValues)
{
    Histogram h(3);
    h.sample(0);
    h.sample(2);
    auto series = h.cdfSeries();
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0].second, 0.5);
    EXPECT_DOUBLE_EQ(series[3].second, 1.0);
}

TEST(Group, NamedCountersAreIndependent)
{
    Group g;
    g.counter("a").inc(2);
    g.counter("b").inc(5);
    EXPECT_EQ(g.counterValue("a"), 2u);
    EXPECT_EQ(g.counterValue("b"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(Group, NamedAverages)
{
    Group g;
    g.average("x").sample(1.0);
    g.average("x").sample(3.0);
    EXPECT_DOUBLE_EQ(g.averageValue("x"), 2.0);
    EXPECT_DOUBLE_EQ(g.averageValue("missing"), 0.0);
}
