/** @file Unit tests for the power-of-two RingBuffer. */

#include <gtest/gtest.h>

#include <string>

#include "common/ring_buffer.hh"

using namespace ppa;

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb(8);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 8u);
}

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(RingBuffer<int>(5).capacity(), 8u);
    EXPECT_EQ(RingBuffer<int>(8).capacity(), 8u);
    EXPECT_EQ(RingBuffer<int>(9).capacity(), 16u);
}

TEST(RingBuffer, FifoOrderAndFrontRelativeIndexing)
{
    RingBuffer<int> rb(4);
    rb.push_back(10);
    rb.push_back(20);
    rb.push_back(30);
    EXPECT_EQ(rb.front(), 10);
    EXPECT_EQ(rb.back(), 30);
    EXPECT_EQ(rb[0], 10);
    EXPECT_EQ(rb[1], 20);
    EXPECT_EQ(rb[2], 30);
    rb.pop_front();
    EXPECT_EQ(rb.front(), 20);
    EXPECT_EQ(rb[0], 20);
    EXPECT_EQ(rb[1], 30);
}

TEST(RingBuffer, WrapAroundKeepsFifoOrder)
{
    // Drive head all the way around the backing array several times
    // with the buffer near capacity, so (head + i) & mask wraps.
    RingBuffer<int> rb(4);
    int next_in = 0;
    int next_out = 0;
    for (int i = 0; i < 3; ++i)
        rb.push_back(next_in++);
    for (int round = 0; round < 25; ++round) {
        EXPECT_EQ(rb.front(), next_out);
        rb.pop_front();
        ++next_out;
        rb.push_back(next_in++);
        ASSERT_EQ(rb.size(), 3u);
        for (std::size_t i = 0; i < rb.size(); ++i)
            EXPECT_EQ(rb[i], next_out + static_cast<int>(i));
    }
}

TEST(RingBuffer, FullEmptyFullTransitions)
{
    RingBuffer<int> rb(4);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i)
            rb.push_back(round * 10 + i);
        EXPECT_EQ(rb.size(), rb.capacity());
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(rb.front(), round * 10 + i);
            rb.pop_front();
        }
        EXPECT_TRUE(rb.empty());
    }
}

TEST(RingBuffer, CapacityOneHoldsExactlyOneElement)
{
    RingBuffer<int> rb(1);
    EXPECT_EQ(rb.capacity(), 1u);
    EXPECT_TRUE(rb.empty());
    // Repeated single-slot cycling exercises the mask == 0 edge case.
    for (int i = 0; i < 10; ++i) {
        rb.push_back(i);
        EXPECT_EQ(rb.size(), 1u);
        EXPECT_EQ(rb.front(), i);
        EXPECT_EQ(rb.back(), i);
        EXPECT_EQ(rb[0], i);
        rb.pop_front();
        EXPECT_TRUE(rb.empty());
    }
}

TEST(RingBuffer, OverflowAndUnderflowAreFatal)
{
    RingBuffer<int> rb(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_DEATH({ rb.push_back(3); }, "overflow");
    RingBuffer<int> empty(2);
    EXPECT_DEATH({ empty.pop_front(); }, "empty");
    EXPECT_DEATH({ empty.front(); }, "empty");
    EXPECT_DEATH({ empty.back(); }, "empty");
    EXPECT_DEATH({ empty[0]; }, "out of");
}

TEST(RingBuffer, CapacityOneOverflowIsFatal)
{
    RingBuffer<int> rb(1);
    rb.push_back(7);
    EXPECT_DEATH({ rb.push_back(8); }, "overflow");
}

TEST(RingBuffer, EmplaceBackDefaultConstructsSlot)
{
    RingBuffer<std::string> rb(2);
    rb.push_back("recycled");
    rb.pop_front();
    // The new slot must be reset even though the backing storage was
    // previously occupied.
    std::string &slot = rb.emplace_back();
    EXPECT_TRUE(slot.empty());
    slot = "fresh";
    EXPECT_EQ(rb.back(), "fresh");
}

TEST(RingBuffer, ClearEmptiesWithoutReallocating)
{
    RingBuffer<int> rb(4);
    rb.push_back(1);
    rb.push_back(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 4u);
    rb.push_back(5);
    EXPECT_EQ(rb.front(), 5);
}

TEST(RingBuffer, ResetChangesCapacityAndDiscardsContents)
{
    RingBuffer<int> rb(2);
    rb.push_back(1);
    rb.reset(6);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 8u);
    for (int i = 0; i < 8; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 8u);
}
