/** @file Unit tests for clock-domain conversions and TextTable. */

#include <gtest/gtest.h>

#include "common/table.hh"
#include "common/units.hh"

using namespace ppa;

TEST(ClockDomain, NsToCyclesAt2GHz)
{
    ClockDomain clk(2e9);
    EXPECT_EQ(clk.nsToCycles(1.0), 2u);
    EXPECT_EQ(clk.nsToCycles(175.0), 350u); // NVM read latency
    EXPECT_EQ(clk.nsToCycles(90.0), 180u);  // NVM write latency
    EXPECT_EQ(clk.nsToCycles(0.4), 1u);     // rounds up
}

TEST(ClockDomain, CyclesToNsRoundTrip)
{
    ClockDomain clk(2e9);
    EXPECT_DOUBLE_EQ(clk.cyclesToNs(350), 175.0);
    EXPECT_DOUBLE_EQ(clk.cyclesToNs(2), 1.0);
}

TEST(ClockDomain, BandwidthCycles)
{
    ClockDomain clk(2e9);
    // 64 B at 2.3 GB/s: 27.8 ns -> 56 cycles (rounded up).
    Cycle c = clk.bandwidthCycles(64, 2.3);
    EXPECT_GE(c, 55u);
    EXPECT_LE(c, 57u);
    // Double the bandwidth halves the time.
    Cycle c2 = clk.bandwidthCycles(64, 4.6);
    EXPECT_NEAR(static_cast<double>(c) / 2.0,
                static_cast<double>(c2), 1.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"app", "slowdown"});
    t.addRow({"mcf", "1.02x"});
    t.addRow({"libquantum", "1.05x"});
    std::string s = t.render();
    EXPECT_NE(s.find("app"), std::string::npos);
    EXPECT_NE(s.find("libquantum"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::factor(1.26), "1.26x");
    EXPECT_EQ(TextTable::percent(0.021), "2.1%");
    EXPECT_EQ(TextTable::percent(0.00005, 3), "0.005%");
}

TEST(UnitConstants, ByteSizes)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024ull * 1024 * 1024);
}
