/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace ppa;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricHasRequestedMean)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(8.0));
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, GeometricOfSmallMeanIsOne)
{
    Rng r(19);
    EXPECT_EQ(r.geometric(0.5), 1u);
    EXPECT_EQ(r.geometric(1.0), 1u);
}
