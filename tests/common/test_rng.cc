/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

using namespace ppa;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricHasRequestedMean)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(8.0));
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, GeometricOfSmallMeanIsOne)
{
    Rng r(19);
    EXPECT_EQ(r.geometric(0.5), 1u);
    EXPECT_EQ(r.geometric(1.0), 1u);
}

TEST(Rng, GeometricLargeMeanIsUntruncated)
{
    // The old rejection-loop implementation silently capped every
    // draw at 100000, biasing the sample mean of a mean-100000
    // geometric down to ~63000. The closed-form draw must hit the
    // requested mean and produce tail values past the old cap.
    Rng r(41);
    const int n = 2000;
    double sum = 0.0;
    std::uint64_t max_draw = 0;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = r.geometric(100000.0);
        sum += static_cast<double>(v);
        max_draw = std::max(max_draw, v);
    }
    EXPECT_NEAR(sum / n, 100000.0, 10000.0);
    EXPECT_GT(max_draw, 100000u);
}

TEST(Rng, GeometricDeterministicForSameSeed)
{
    Rng a(43), b(43);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.geometric(7.0), b.geometric(7.0));
}

TEST(Rng, GeometricConsumesExactlyOneDraw)
{
    // The inverse-CDF draw costs one raw next() regardless of the
    // mean, so a geometric call keeps two same-seed generators in
    // lockstep with a single next() on the other.
    Rng a(47), b(47);
    a.geometric(1000.0);
    b.next();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(Rng, GeometricStateRoundTrip)
{
    // setState must reproduce the *geometric* stream bitwise, not
    // just the raw one.
    Rng r(53);
    for (int i = 0; i < 77; ++i)
        r.geometric(16.0);
    auto saved = r.getState();
    std::vector<std::uint64_t> ref;
    for (int i = 0; i < 128; ++i)
        ref.push_back(r.geometric(16.0));
    Rng other(0xFEEDFACE);
    other.setState(saved);
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(other.geometric(16.0), ref[i]) << "draw " << i;
}

TEST(Rng, GetStateDoesNotAdvanceStream)
{
    Rng a(23), b(23);
    for (int i = 0; i < 10; ++i)
        a.getState();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SetStateReproducesStreamBitwise)
{
    Rng r(29);
    for (int i = 0; i < 257; ++i)
        r.next();
    auto saved = r.getState();
    std::vector<std::uint64_t> ref;
    for (int i = 0; i < 256; ++i)
        ref.push_back(r.next());

    // A generator seeded completely differently must, after setState,
    // produce bitwise the same stream.
    Rng other(0xDEADBEEF);
    other.setState(saved);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(other.next(), ref[i]) << "draw " << i;
}

TEST(Rng, SetStateRestoresAfterInterveningRun)
{
    // Save, run an arbitrary mix of distributions (each consumes a
    // different number of raw draws), then restore into the SAME
    // object — the post-restore stream must match the first replay.
    Rng r(31);
    for (int i = 0; i < 64; ++i)
        r.next();
    auto saved = r.getState();
    std::vector<std::uint64_t> ref;
    for (int i = 0; i < 128; ++i)
        ref.push_back(r.next());

    for (int i = 0; i < 1000; ++i) {
        r.below(97);
        r.uniform();
        r.chance(0.5);
        r.geometric(4.0);
        r.range(3, 1000);
    }

    r.setState(saved);
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(r.next(), ref[i]) << "draw " << i;
}

TEST(Rng, StateRoundTripsThroughCopy)
{
    // getState -> setState must be lossless: the restored copy and
    // the original stay in lockstep indefinitely.
    Rng a(37);
    for (int i = 0; i < 33; ++i)
        a.next();
    Rng b(0);
    b.setState(a.getState());
    for (int i = 0; i < 4096; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
    // And the states themselves remain identical afterwards.
    EXPECT_EQ(a.getState(), b.getState());
}
