/** @file Unit tests for BitVector. */

#include <gtest/gtest.h>

#include "common/bitvector.hh"

using namespace ppa;

TEST(BitVector, StartsAllClear)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_EQ(bv.count(), 0u);
    EXPECT_TRUE(bv.none());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, SetAndTest)
{
    BitVector bv(348); // MaskReg size from the paper
    bv.set(0);
    bv.set(63);
    bv.set(64);
    bv.set(347);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(347));
    EXPECT_FALSE(bv.test(1));
    EXPECT_FALSE(bv.test(346));
    EXPECT_EQ(bv.count(), 4u);
}

TEST(BitVector, ResetClearsOneBit)
{
    BitVector bv(64);
    bv.set(10);
    bv.set(11);
    bv.reset(10);
    EXPECT_FALSE(bv.test(10));
    EXPECT_TRUE(bv.test(11));
    EXPECT_EQ(bv.count(), 1u);
}

TEST(BitVector, ClearAllEmptiesEverything)
{
    BitVector bv(200);
    for (std::size_t i = 0; i < 200; i += 3)
        bv.set(i);
    EXPECT_GT(bv.count(), 0u);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, ForEachSetVisitsAscending)
{
    BitVector bv(130);
    std::vector<std::size_t> want = {3, 64, 65, 129};
    for (auto i : want)
        bv.set(i);
    std::vector<std::size_t> got;
    bv.forEachSet([&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST(BitVector, SetIsIdempotent)
{
    BitVector bv(32);
    bv.set(5);
    bv.set(5);
    EXPECT_EQ(bv.count(), 1u);
}

TEST(BitVector, RawRoundTrip)
{
    BitVector bv(128);
    bv.set(7);
    bv.set(127);
    BitVector other(128);
    other.restoreRaw(bv.raw());
    EXPECT_EQ(bv, other);
    EXPECT_TRUE(other.test(7));
    EXPECT_TRUE(other.test(127));
}

TEST(BitVector, StorageBytesRoundsToWords)
{
    EXPECT_EQ(BitVector(1).storageBytes(), 8u);
    EXPECT_EQ(BitVector(64).storageBytes(), 8u);
    EXPECT_EQ(BitVector(65).storageBytes(), 16u);
    EXPECT_EQ(BitVector(348).storageBytes(), 48u);
}

TEST(BitVector, EqualityComparesContents)
{
    BitVector a(64), b(64);
    a.set(3);
    EXPECT_FALSE(a == b);
    b.set(3);
    EXPECT_TRUE(a == b);
}
