/** @file
 * PPA_ASSERT / PPA_AUDIT_ASSERT semantics: the condition evaluates
 * exactly once, the macro composes as a plain void expression, and
 * failures panic with the stringified condition plus the streamed
 * message (prefixed by the audit context for PPA_AUDIT_ASSERT).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"

namespace
{

/** Minimal stand-in for check::AuditContext. */
struct FakeContext
{
    std::string describe() const { return "ctx core 9"; }
};

} // namespace

TEST(PpaAssert, EvaluatesConditionExactlyOnce)
{
    int n = 0;
    PPA_ASSERT(++n == 1, "side effect must run exactly once");
    EXPECT_EQ(n, 1);
}

TEST(PpaAssert, ComposesAsAnExpression)
{
    // Ternary arms and comma chains: legal only if the macro expands
    // to a single expression rather than a statement block.
    int n = 0;
    int picked = true ? (PPA_ASSERT(++n == 1, "then arm"), 1)
                      : (PPA_ASSERT(false, "else arm"), 2);
    EXPECT_EQ(picked, 1);
    EXPECT_EQ(n, 1);

    // Single-statement if body without braces: no dangling-else.
    if (picked == 1)
        PPA_ASSERT(n == 1, "if body");
    else
        PPA_ASSERT(false, "not reached");
}

TEST(PpaAssert, MessageIsOptional)
{
    int n = 0;
    PPA_ASSERT(++n == 1);
    EXPECT_EQ(n, 1);
}

TEST(PpaAssertDeathTest, PanicsWithConditionAndComposedMessage)
{
    EXPECT_DEATH(PPA_ASSERT(2 + 2 == 5, "math ", 42, " failed"),
                 "assertion '2 \\+ 2 == 5' failed.*math 42 failed");
}

TEST(PpaAssertDeathTest, AuditAssertPrefixesTheContext)
{
    FakeContext ctx;
    EXPECT_DEATH(PPA_AUDIT_ASSERT(false, ctx, "invariant broken"),
                 "\\[ctx core 9\\] invariant broken");
}

TEST(PpaAssert, AuditAssertPassesQuietlyAndEvaluatesOnce)
{
    FakeContext ctx;
    int n = 0;
    PPA_AUDIT_ASSERT(++n == 1, ctx, "once");
    EXPECT_EQ(n, 1);
}
