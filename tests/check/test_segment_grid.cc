/** @file
 * Segment-boundary failure grid (the time-parallel audit acceptance
 * test, companion to test_failure_grid.cc).
 *
 * The classic failure grid injects power failures at absolute cycles
 * of one long run; under --time-parallel the stitched cycle axis is
 * not known up front, so failures are scheduled as (segment, cycle
 * after warmup end) pairs instead. This grid drives the spots the
 * segmented runner is most likely to get wrong: a failure exactly at
 * a segment join (cycle 0 — the first measured cycle after warmup), a
 * failure inside the very first segment (which has no warmup prefix),
 * and failures deep inside interior segments. Every case runs with
 * the full audit harness and must recover with zero invariant
 * violations and a bitwise-clean replay diff — and must produce the
 * same counters whether the segments execute serially or on four
 * worker threads.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/segment.hh"
#include "workload/profile.hh"

using namespace ppa;

namespace
{

struct GridCase
{
    const char *profile;
    unsigned threads; // 0 = profile default
};

class SegmentGrid : public ::testing::TestWithParam<GridCase>
{
};

std::string
caseName(const ::testing::TestParamInfo<GridCase> &info)
{
    std::string name = info.param.profile;
    for (char &ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    return name + "_t" + std::to_string(info.param.threads);
}

ExperimentKnobs
gridKnobs(unsigned threads)
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 20'000;
    knobs.threads = threads;
    knobs.audit = true;
    knobs.timeParallel = 4;
    knobs.tpWarmupInsts = 2'000;
    // Segment 0 has no warmup prefix; cycle 0 in segments 1..3 is the
    // first cycle after the warmup drain — i.e. exactly at the join.
    knobs.tpFailAt = {{0, 150}, {1, 0}, {2, 0}, {3, 450}};
    return knobs;
}

} // namespace

TEST_P(SegmentGrid, JoinFailuresReplayCleanAndWorkerInvariant)
{
    const GridCase &c = GetParam();
    const WorkloadProfile &profile = profileByName(c.profile);

    ExperimentKnobs knobs = gridKnobs(c.threads);
    knobs.tpWorkers = 1;
    RunStats serial = runWorkload(profile, SystemVariant::Ppa, knobs);
    knobs.tpWorkers = 4;
    RunStats parallel = runWorkload(profile, SystemVariant::Ppa, knobs);

    std::string messages;
    for (const std::string &m : serial.auditMessages)
        messages += m + "\n";

    EXPECT_EQ(serial.powerFailures, knobs.tpFailAt.size());
    EXPECT_EQ(serial.auditViolations, 0u) << messages;
    EXPECT_EQ(serial.replayMismatches, 0u) << messages;
    EXPECT_EQ(serial.replayAudits,
              serial.powerFailures * serial.threads);
    EXPECT_GT(serial.replayAddrsChecked, 0u);
    EXPECT_GT(serial.auditEvents, 0u);
    EXPECT_GT(serial.committedInsts, 0u);

    // Failure/audit counters, timing counters, histograms — all of it
    // must survive the serial-vs-parallel schedule swap bitwise.
    EXPECT_EQ(metrics::runStatsToJson(serial),
              metrics::runStatsToJson(parallel));
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, SegmentGrid,
    ::testing::Values(GridCase{"gcc", 1},       // SPEC int
                      GridCase{"mcf", 1},       // memory-bound
                      GridCase{"lbm", 1},       // store-heavy FP
                      GridCase{"tatp", 2},      // multicore txn
                      GridCase{"tpcc", 1},      // txn, fwd-heavy
                      GridCase{"water-ns", 2}), // store-dense sync
    caseName);

TEST(SegmentGridDeterminism, RepeatRunsAreBitwiseIdentical)
{
    // Same contract as the classic grid's determinism check, through
    // the segmented runner: re-running an identical plan — including
    // recovery replays seeking backward across segment windows — must
    // reproduce every stat bit for bit.
    ExperimentKnobs knobs = gridKnobs(0);
    const WorkloadProfile &p = profileByName("tpcc");
    RunStats a = runWorkload(p, SystemVariant::Ppa, knobs);
    RunStats b = runWorkload(p, SystemVariant::Ppa, knobs);
    EXPECT_EQ(metrics::runStatsToJson(a), metrics::runStatsToJson(b));
    EXPECT_EQ(a.auditViolations, 0u);
}

TEST(SegmentGridDeterminism, RepeatedJoinFailuresInOneSegment)
{
    // Several failures in one segment exercise repeated recovery from
    // the same warmup image; the first fires on the join itself.
    ExperimentKnobs knobs = gridKnobs(0);
    knobs.tpFailAt = {{2, 0}, {2, 200}, {2, 400}};
    RunStats rs =
        runWorkload(profileByName("gcc"), SystemVariant::Ppa, knobs);
    std::string messages;
    for (const std::string &m : rs.auditMessages)
        messages += m + "\n";
    EXPECT_EQ(rs.powerFailures, 3u);
    EXPECT_EQ(rs.auditViolations, 0u) << messages;
    EXPECT_EQ(rs.replayMismatches, 0u) << messages;
    EXPECT_GT(rs.replayAddrsChecked, 0u);
}
