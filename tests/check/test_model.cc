/** @file
 * Unit tests for the declarative persistency model (check/model.hh).
 *
 * Everything here is static analysis: a PersistModel is built from
 * Program text alone and queried about store metadata, persist-before
 * edges, committed states, and allowed post-crash outcomes under the
 * three flavors. No System is ever constructed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/model.hh"
#include "isa/builder.hh"

using namespace ppa;
using check::ModelStore;
using check::PersistFlavor;
using check::PersistModel;
using check::VectorClock;

namespace
{

constexpr ArchReg rBase = 1;
constexpr ArchReg rVal = 2;
constexpr ArchReg rAmo = 3;
constexpr Addr base = 0x10000;
constexpr Addr line = 0x100;

/** data := 41 at base; fence optional; flag := 1 at base+line. */
Program
mpProgram(bool fenced)
{
    ProgramBuilder b;
    b.movi(rBase, base);
    b.movi(rVal, 41);
    b.st(rVal, rBase, 0);
    if (fenced)
        b.fence();
    b.movi(rVal, 1);
    b.st(rVal, rBase, line);
    b.halt();
    return b.program();
}

/** Three stores of 1, 2, 3 to the same address. */
Program
coherenceProgram()
{
    ProgramBuilder b;
    b.movi(rBase, base);
    for (Word v = 1; v <= 3; ++v) {
        b.movi(rVal, v);
        b.st(rVal, rBase, 0);
    }
    b.halt();
    return b.program();
}

bool
contains(const std::vector<PersistModel::Outcome> &outcomes,
         const PersistModel::Outcome &o)
{
    return std::find(outcomes.begin(), outcomes.end(), o) !=
           outcomes.end();
}

} // namespace

TEST(VectorClock, LeqIsPointwiseAndCrossThreadIncomparable)
{
    VectorClock a{{1, 0}};
    VectorClock b{{2, 0}};
    VectorClock c{{0, 1}};
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    EXPECT_TRUE(a.leq(a));
    // Stores from different threads: neither orders the other.
    EXPECT_FALSE(a.leq(c));
    EXPECT_FALSE(c.leq(a));
}

TEST(PersistModel, ExtractsStoresValuesAndEpochs)
{
    Program prog = mpProgram(/*fenced=*/true);
    PersistModel model({&prog});

    ASSERT_EQ(model.threadCount(), 1u);
    ASSERT_EQ(model.storeCount(0), 2u);
    EXPECT_EQ(model.totalStores(), 2u);
    EXPECT_GE(model.threadInstCount(0), 6u);

    const ModelStore &data = model.stores(0)[0];
    const ModelStore &flag = model.stores(0)[1];
    EXPECT_EQ(data.addr, base);
    EXPECT_EQ(data.value, 41u);
    EXPECT_EQ(data.epoch, 0u);
    EXPECT_EQ(flag.addr, base + line);
    EXPECT_EQ(flag.value, 1u);
    EXPECT_EQ(flag.epoch, 1u); // after the fence
    EXPECT_LT(data.instIndex, flag.instIndex);
    EXPECT_TRUE(model.racyAddresses().empty());
    EXPECT_TRUE(model.crossThreadReads().empty());
}

TEST(PersistModel, AtomicRmwIsASynchronizingStoreWithPostRmwValue)
{
    ProgramBuilder b;
    b.initMem(base, 10);
    b.movi(rBase, base);
    b.movi(rVal, 5);
    b.amoadd(rAmo, rVal, rBase, 0); // mem := 10 + 5
    b.movi(rVal, 7);
    b.st(rVal, rBase, line);
    b.halt();
    Program prog = b.program();
    PersistModel model({&prog});

    ASSERT_EQ(model.storeCount(0), 2u);
    const ModelStore &amo = model.stores(0)[0];
    EXPECT_EQ(amo.value, 15u);
    EXPECT_TRUE(amo.sync);
    EXPECT_EQ(amo.epoch, 0u);
    // The store after the RMW sits in the next epoch.
    EXPECT_EQ(model.stores(0)[1].epoch, 1u);
    EXPECT_EQ(model.initialValue(base), 10u);
}

TEST(PersistModel, PersistBeforeFollowsTheFlavorEdgeRules)
{
    Program unfenced = mpProgram(false);
    Program fenced = mpProgram(true);
    PersistModel near(std::vector<const Program *>{&unfenced});
    PersistModel far(std::vector<const Program *>{&fenced});

    // Same epoch, different addresses: only Strict orders them.
    const ModelStore &a0 = near.stores(0)[0];
    const ModelStore &a1 = near.stores(0)[1];
    EXPECT_TRUE(near.persistBefore(PersistFlavor::Strict, a0, a1));
    EXPECT_FALSE(near.persistBefore(PersistFlavor::Epoch, a0, a1));
    EXPECT_FALSE(near.persistBefore(PersistFlavor::Relaxed, a0, a1));
    // Never reflexive, never against program order.
    EXPECT_FALSE(near.persistBefore(PersistFlavor::Strict, a1, a0));
    EXPECT_FALSE(near.persistBefore(PersistFlavor::Strict, a0, a0));

    // Across a fence the Epoch flavor gains the edge too.
    const ModelStore &b0 = far.stores(0)[0];
    const ModelStore &b1 = far.stores(0)[1];
    EXPECT_TRUE(far.persistBefore(PersistFlavor::Epoch, b0, b1));
    EXPECT_FALSE(far.persistBefore(PersistFlavor::Relaxed, b0, b1));

    // Same address: every flavor keeps coherence order.
    Program coh = coherenceProgram();
    PersistModel cm(std::vector<const Program *>{&coh});
    const ModelStore &c0 = cm.stores(0)[0];
    const ModelStore &c1 = cm.stores(0)[1];
    EXPECT_TRUE(cm.persistBefore(PersistFlavor::Relaxed, c0, c1));
    EXPECT_TRUE(cm.persistBefore(PersistFlavor::Epoch, c0, c1));
}

TEST(PersistModel, CrossThreadStoresAreNeverPersistOrdered)
{
    ProgramBuilder t0;
    t0.movi(rBase, base);
    t0.movi(rVal, 1);
    t0.st(rVal, rBase, 0);
    t0.halt();
    ProgramBuilder t1;
    t1.movi(rBase, base);
    t1.movi(rVal, 2);
    t1.st(rVal, rBase, line);
    t1.halt();
    Program p0 = t0.program(), p1 = t1.program();
    PersistModel model({&p0, &p1});

    const ModelStore &s0 = model.stores(0)[0];
    const ModelStore &s1 = model.stores(1)[0];
    EXPECT_FALSE(model.persistBefore(PersistFlavor::Strict, s0, s1));
    EXPECT_FALSE(model.persistBefore(PersistFlavor::Strict, s1, s0));
    EXPECT_TRUE(model.racyAddresses().empty());
}

TEST(PersistModel, FlagsWriteWriteRacesAndCrossThreadReads)
{
    ProgramBuilder w0;
    w0.movi(rBase, base);
    w0.movi(rVal, 1);
    w0.st(rVal, rBase, 0);
    w0.halt();
    ProgramBuilder w1;
    w1.movi(rBase, base);
    w1.movi(rVal, 2);
    w1.st(rVal, rBase, 0); // same address: racy
    w1.halt();
    Program a = w0.program(), bprog = w1.program();
    PersistModel racy({&a, &bprog});
    ASSERT_EQ(racy.racyAddresses().size(), 1u);
    EXPECT_EQ(racy.racyAddresses()[0], base);

    ProgramBuilder r1;
    r1.movi(rBase, base);
    r1.ld(rVal, rBase, 0); // reads thread 0's address
    r1.halt();
    Program c = w0.program(), d = r1.program();
    PersistModel crossRead({&c, &d});
    EXPECT_TRUE(crossRead.racyAddresses().empty());
    ASSERT_EQ(crossRead.crossThreadReads().size(), 1u);
    EXPECT_EQ(crossRead.crossThreadReads()[0], base);
}

TEST(PersistModel, CommittedStateTracksTheCut)
{
    Program prog = mpProgram(true);
    PersistModel model({&prog});
    const std::vector<Addr> addrs = {base, base + line};

    EXPECT_EQ(model.committedState({0}, addrs),
              (PersistModel::Outcome{0, 0}));
    EXPECT_EQ(model.committedState({1}, addrs),
              (PersistModel::Outcome{41, 0}));
    EXPECT_EQ(model.committedState(model.fullCut(), addrs),
              (PersistModel::Outcome{41, 1}));
}

TEST(PersistModel, StrictAllowsExactlyTheCommittedState)
{
    Program prog = mpProgram(false);
    PersistModel model({&prog});
    const std::vector<Addr> addrs = {base, base + line};

    for (std::uint64_t n = 0; n <= 2; ++n) {
        PersistModel::StoreCut cut{n};
        auto allowed =
            model.allowedOutcomes(PersistFlavor::Strict, cut, addrs);
        ASSERT_EQ(allowed.size(), 1u) << "cut " << n;
        EXPECT_EQ(allowed[0], model.committedState(cut, addrs));
    }
    // In particular flag-without-data never appears.
    EXPECT_FALSE(model.outcomeAllowed(PersistFlavor::Strict, {2}, addrs,
                                      {0, 1}));
}

TEST(PersistModel, EpochAllowsIntraEpochSubsetsButNotCrossEpochSkew)
{
    const std::vector<Addr> addrs = {base, base + line};

    // No fence: data and flag share an epoch, any subset may persist.
    Program unfenced = mpProgram(false);
    PersistModel near(std::vector<const Program *>{&unfenced});
    EXPECT_TRUE(near.outcomeAllowed(PersistFlavor::Epoch, {2}, addrs,
                                    {0, 1}));
    EXPECT_TRUE(near.outcomeAllowed(PersistFlavor::Epoch, {2}, addrs,
                                    {41, 0}));

    // Fence between them: flag persisted implies data persisted.
    Program fenced = mpProgram(true);
    PersistModel far(std::vector<const Program *>{&fenced});
    EXPECT_FALSE(far.outcomeAllowed(PersistFlavor::Epoch, {2}, addrs,
                                    {0, 1}));
    EXPECT_TRUE(far.outcomeAllowed(PersistFlavor::Epoch, {2}, addrs,
                                   {41, 0}));
    EXPECT_TRUE(far.outcomeAllowed(PersistFlavor::Epoch, {2}, addrs,
                                   {41, 1}));
}

TEST(PersistModel, RelaxedKeepsPerAddressCoherenceOnly)
{
    Program coh = coherenceProgram();
    PersistModel model(std::vector<const Program *>{&coh});
    const std::vector<Addr> addrs = {base};

    auto relaxed = model.allowedOutcomes(PersistFlavor::Relaxed,
                                         model.fullCut(), addrs);
    // Any committed prefix of the same-address chain, or nothing.
    EXPECT_EQ(relaxed.size(), 4u);
    for (Word v : {Word{0}, Word{1}, Word{2}, Word{3}})
        EXPECT_TRUE(contains(relaxed, {v})) << v;

    auto strict = model.allowedOutcomes(PersistFlavor::Strict,
                                        model.fullCut(), addrs);
    ASSERT_EQ(strict.size(), 1u);
    EXPECT_EQ(strict[0], (PersistModel::Outcome{3}));
}

TEST(PersistModel, ReachableOutcomesUnionAllCuts)
{
    const std::vector<Addr> addrs = {base, base + line};

    Program fenced = mpProgram(true);
    PersistModel far(std::vector<const Program *>{&fenced});
    auto strict = far.reachableOutcomes(PersistFlavor::Strict, addrs);
    EXPECT_EQ(strict.size(), 3u);
    EXPECT_TRUE(contains(strict, {0, 0}));
    EXPECT_TRUE(contains(strict, {41, 0}));
    EXPECT_TRUE(contains(strict, {41, 1}));
    EXPECT_FALSE(contains(strict, {0, 1}));

    // Epoch across the fence forbids flag-without-data too; Relaxed
    // does not.
    auto epoch = far.reachableOutcomes(PersistFlavor::Epoch, addrs);
    EXPECT_FALSE(contains(epoch, {0, 1}));
    auto relaxed = far.reachableOutcomes(PersistFlavor::Relaxed, addrs);
    EXPECT_TRUE(contains(relaxed, {0, 1}));
}
