/** @file
 * Tests for the litmus corpus and the crash-point conformance engine.
 *
 * Corpus hygiene first (every test must sit inside the model's sound
 * fragment), then end-to-end conformance: the PPA variant must satisfy
 * the Strict flavor with full coverage under exhaustive crash
 * enumeration, ReplayCache must satisfy Epoch, and memory-mode must
 * demonstrably diverge from Strict while conforming to Relaxed — the
 * discrimination property that makes the checker worth having.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "check/litmus.hh"
#include "check/model.hh"

using namespace ppa;
using check::ExploreMode;
using check::LitmusOptions;
using check::LitmusResult;
using check::LitmusTest;
using check::PersistFlavor;
using check::PersistModel;

namespace
{

PersistModel
modelOf(const LitmusTest &test)
{
    std::vector<const Program *> progs;
    for (const Program &p : test.threads)
        progs.push_back(&p);
    return PersistModel(progs);
}

LitmusResult
runOn(const std::string &name, SystemVariant variant,
      ExploreMode mode = ExploreMode::Exhaustive, std::uint64_t seed = 1)
{
    const LitmusTest *test = check::findLitmusTest(name);
    EXPECT_NE(test, nullptr) << name;
    LitmusOptions opts;
    opts.variant = variant;
    opts.mode = mode;
    opts.seed = seed;
    opts.schedules = 24;
    return check::runLitmusTest(*test, opts);
}

} // namespace

TEST(LitmusCorpus, HasAtLeastTenTestsWithUniqueNames)
{
    const auto &corpus = check::litmusCorpus();
    EXPECT_GE(corpus.size(), 10u);
    std::set<std::string> names;
    for (const LitmusTest &t : corpus) {
        EXPECT_TRUE(names.insert(t.name).second)
            << "duplicate name " << t.name;
        EXPECT_FALSE(t.description.empty()) << t.name;
        EXPECT_EQ(check::findLitmusTest(t.name), &t);
    }
    EXPECT_EQ(check::findLitmusTest("no-such-test"), nullptr);
}

TEST(LitmusCorpus, EveryTestIsInsideTheModelsSoundFragment)
{
    for (const LitmusTest &t : check::litmusCorpus()) {
        PersistModel model = modelOf(t);
        EXPECT_TRUE(model.racyAddresses().empty()) << t.name;
        EXPECT_TRUE(model.crossThreadReads().empty()) << t.name;
        EXPECT_GE(model.totalStores(), 2u) << t.name;
        ASSERT_FALSE(t.observed.empty()) << t.name;

        // NVM writebacks are line-granular: observed addresses must
        // not share a cache line or one address's persist drags the
        // other's value along.
        std::set<Addr> observedLines;
        for (Addr a : t.observed)
            EXPECT_TRUE(observedLines.insert(a & ~Addr{0xFF}).second)
                << t.name << ": observed addresses share a line";

        // Declared extra coverage goals must be Strict-reachable.
        if (!t.extraRequired.empty()) {
            auto reachable = model.reachableOutcomes(
                PersistFlavor::Strict, t.observed);
            for (const auto &o : t.extraRequired)
                EXPECT_NE(std::find(reachable.begin(), reachable.end(),
                                    o),
                          reachable.end())
                    << t.name << ": unreachable extraRequired";
        }
    }
}

TEST(LitmusEngine, FlavorAndSupportPerVariant)
{
    EXPECT_EQ(check::flavorForVariant(SystemVariant::Ppa),
              PersistFlavor::Strict);
    EXPECT_EQ(check::flavorForVariant(SystemVariant::ReplayCache),
              PersistFlavor::Epoch);
    EXPECT_EQ(check::flavorForVariant(SystemVariant::MemoryMode),
              PersistFlavor::Relaxed);

    std::string why;
    EXPECT_TRUE(check::variantSupportsLitmus(SystemVariant::Ppa, &why));
    EXPECT_TRUE(
        check::variantSupportsLitmus(SystemVariant::ReplayCache, &why));
    EXPECT_TRUE(
        check::variantSupportsLitmus(SystemVariant::MemoryMode, &why));
    for (SystemVariant v :
         {SystemVariant::Capri, SystemVariant::EadrBbb,
          SystemVariant::DramOnly}) {
        why.clear();
        EXPECT_FALSE(check::variantSupportsLitmus(v, &why));
        EXPECT_FALSE(why.empty());
    }
}

TEST(LitmusEngine, PpaConformsToStrictWithFullCoverage)
{
    for (const char *name : {"mp", "coherence", "zero-regions",
                             "multi-region"}) {
        LitmusResult r = runOn(name, SystemVariant::Ppa);
        EXPECT_TRUE(r.pass()) << name;
        EXPECT_FALSE(r.corpusError) << name;
        EXPECT_EQ(r.violations, 0u) << name;
        EXPECT_EQ(r.strictDivergences, 0u) << name;
        EXPECT_TRUE(r.coverageRequired) << name;
        EXPECT_EQ(r.vacuous, 0u) << name;
        EXPECT_EQ(r.requiredSeen, r.requiredTotal) << name;
        EXPECT_GT(r.crashPoints, 0u) << name;
    }
}

TEST(LitmusEngine, PpaSurvivesCsqOverflowBoundaries)
{
    LitmusResult r = runOn("csq-overflow", SystemVariant::Ppa);
    EXPECT_TRUE(r.pass());
    EXPECT_EQ(r.violations, 0u);
    // The run crosses a CSQ-full implicit boundary, so crash points
    // land on both sides of it and many distinct prefixes show up.
    EXPECT_GT(r.distinctOutcomes, 4u);
}

TEST(LitmusEngine, MemoryModeDivergesFromStrictButMeetsRelaxed)
{
    LitmusResult r = runOn("mp", SystemVariant::MemoryMode);
    EXPECT_EQ(r.flavor, PersistFlavor::Relaxed);
    // Conforms to its own (weak) contract...
    EXPECT_TRUE(r.pass());
    EXPECT_EQ(r.violations, 0u);
    // ...but the checker proves the contract is genuinely weaker:
    // crashes expose states the PPA model forbids.
    EXPECT_GT(r.strictDivergences, 0u);
    // Relaxed coverage is best-effort; vacuity must not fail it.
    EXPECT_FALSE(r.coverageRequired);
}

TEST(LitmusEngine, ReplayCacheConformsToEpoch)
{
    for (const char *name : {"mp-epoch", "epoch-chain"}) {
        LitmusResult r = runOn(name, SystemVariant::ReplayCache);
        EXPECT_EQ(r.flavor, PersistFlavor::Epoch);
        EXPECT_TRUE(r.pass()) << name;
        EXPECT_EQ(r.violations, 0u) << name;
    }
}

TEST(LitmusEngine, RandomizedModeIsDeterministicPerSeed)
{
    LitmusResult a =
        runOn("wpq-pressure", SystemVariant::Ppa, ExploreMode::Randomized,
              /*seed=*/42);
    LitmusResult b =
        runOn("wpq-pressure", SystemVariant::Ppa, ExploreMode::Randomized,
              /*seed=*/42);
    EXPECT_EQ(a.crashPoints, b.crashPoints);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.strictDivergences, b.strictDivergences);
    EXPECT_EQ(a.distinctOutcomes, b.distinctOutcomes);
    EXPECT_EQ(a.requiredSeen, b.requiredSeen);
    EXPECT_EQ(a.violations, 0u);
}

TEST(LitmusEngine, UnsupportedVariantReportsCorpusError)
{
    LitmusResult r = runOn("mp", SystemVariant::DramOnly);
    EXPECT_TRUE(r.corpusError);
    EXPECT_FALSE(r.pass());
    EXPECT_FALSE(r.notes.empty());
}

TEST(LitmusEngine, JsonCarriesSchemaAndPerTestVerdicts)
{
    LitmusOptions opts;
    std::vector<LitmusResult> results = {
        runOn("mp", SystemVariant::Ppa),
        runOn("sb", SystemVariant::Ppa),
    };
    std::string json = check::litmusResultsJson(results, opts);
    EXPECT_NE(json.find("\"schemaVersion\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"variant\": \"ppa\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"mp\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"sb\""), std::string::npos);
    EXPECT_NE(json.find("\"pass\": true"), std::string::npos);
    EXPECT_NE(json.find("\"totals\""), std::string::npos);
}
