/** @file
 * Unit and integration tests for the persistence-invariant auditor.
 *
 * Positive direction: attached to a PPA core running the persistent
 * kernels, the auditor must observe a busy event stream and report
 * zero violations, including across serialized crash/recovery cycles.
 * Negative direction: driven directly with protocol-violating event
 * sequences, it must flag each broken invariant (and panic with its
 * context when failFast is set).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/auditor.hh"
#include "check/observer.hh"
#include "isa/builder.hh"
#include "isa/program.hh"
#include "ppa/checkpoint.hh"
#include "ppa/checkpoint_io.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;
using check::Auditor;
using check::StoreOracle;

namespace
{

SystemConfig
ppaConfig()
{
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    return sc;
}

/** A PPA system plus an UNATTACHED auditor for protocol-drive tests. */
struct Harness
{
    System system{ppaConfig()};
    std::shared_ptr<StoreOracle> oracle = std::make_shared<StoreOracle>();
    Auditor aud{system.core(0), system.memory(), oracle};
};

std::string
joinedViolations(const Auditor &aud)
{
    std::string all;
    for (const auto &v : aud.violations())
        all += v.where.describe() + ": " + v.what + "\n";
    return all;
}

/** A checkpoint image whose CSQ references phys reg 5 (value 77). */
CheckpointImage
regCarriedImage()
{
    CheckpointImage img;
    img.valid = true;
    img.anyCommitted = true;
    img.lcpc = 9;
    img.csq.push_back({5, 0x2000, 0, false});
    img.maskBits = BitVector(348);
    img.maskBits.set(5);
    img.physRegValues[5] = 77;
    return img;
}

} // namespace

TEST(StoreOracle, TracksLastWriterAndFlagsCrossCoreConflicts)
{
    StoreOracle oracle;
    oracle.record(0, 0x100, 1);
    oracle.record(0, 0x100, 2); // same core overwrite: not a conflict
    oracle.record(1, 0x200, 3);

    const auto &map = oracle.contents();
    ASSERT_EQ(map.size(), 2u);
    EXPECT_EQ(map.at(0x100).value, 2u);
    EXPECT_FALSE(map.at(0x100).conflicted);

    oracle.record(1, 0x100, 4); // another core: conflicted forever
    EXPECT_TRUE(map.at(0x100).conflicted);
    EXPECT_EQ(map.at(0x100).value, 4u);
    oracle.record(1, 0x100, 5);
    EXPECT_TRUE(map.at(0x100).conflicted);
}

TEST(Auditor, CleanKernelRunsProduceZeroViolations)
{
    struct KernelCase
    {
        const char *name;
        Program prog;
    };
    const KernelCase cases[] = {
        {"counter", kernels::counterLoop(150)},
        {"hash", kernels::hashTableUpdate(150)},
        {"tpcc", kernels::tpccNewOrder(60)},
        {"kv", kernels::kvStore(80, 50)},
    };
    for (const KernelCase &c : cases) {
        System system(ppaConfig());
        system.seedMemory(c.prog.initialMemory());
        auto oracle = std::make_shared<StoreOracle>();
        Auditor aud(system.core(0), system.memory(), oracle);
        aud.attach();

        ProgramExecutor source(c.prog);
        system.bindSource(0, &source);
        system.run(20'000'000);
        ASSERT_TRUE(system.allDone()) << c.name;

        EXPECT_EQ(aud.violationCount(), 0u)
            << c.name << ":\n" << joinedViolations(aud);
        EXPECT_GT(aud.eventCount(), 0u) << c.name;
        EXPECT_GT(aud.regionsAudited(), 0u) << c.name;
        EXPECT_FALSE(oracle->contents().empty()) << c.name;
    }
}

TEST(Auditor, CrashRecoveryReplaysExactlyAndStaysClean)
{
    Program prog = kernels::hashTableUpdate(600);
    ProgramExecutor golden(prog);
    golden.totalLength();

    System system(ppaConfig());
    system.seedMemory(prog.initialMemory());
    auto oracle = std::make_shared<StoreOracle>();
    Auditor aud(system.core(0), system.memory(), oracle);
    aud.attach();

    ProgramExecutor source(prog);
    system.bindSource(0, &source);

    for (Cycle fail_at : {Cycle{1200}, Cycle{3600}}) {
        system.runUntilCycle(fail_at);
        ASSERT_FALSE(system.allDone());
        auto images = system.powerFail();
        ASSERT_TRUE(images[0].valid);
        // Round-trip through the NVM serialization, as real recovery
        // firmware would.
        CheckpointImage restored =
            deserializeCheckpoint(serializeCheckpoint(images[0]));
        system.recover({restored});

        check::ReplayAuditResult replay = aud.verifyReplay();
        EXPECT_EQ(replay.mismatches, 0u)
            << "replay diverged after failure at cycle " << fail_at;
        EXPECT_GT(replay.addrsChecked, 0u);
    }

    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(aud.violationCount(), 0u) << joinedViolations(aud);
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(Auditor, FlagsOutOfOrderCommit)
{
    Harness h;
    h.aud.onCommit(5, false);
    h.aud.onCommit(3, false);
    ASSERT_EQ(h.aud.violationCount(), 1u);
    EXPECT_NE(h.aud.violations()[0].what.find("commit order violated"),
              std::string::npos);
}

TEST(Auditor, FlagsStoreCommitWithoutCsqRecord)
{
    Harness h;
    h.aud.onStoreCommit(0x1000, 7, csqZeroRegIndex, false, false);
    h.aud.onCommit(1, true); // retired with no CSQ push in between
    ASSERT_EQ(h.aud.violationCount(), 1u);
    EXPECT_NE(h.aud.violations()[0].what.find("without a CSQ record"),
              std::string::npos);
}

TEST(Auditor, IgnoresIoBufferStores)
{
    // Device-window stores bypass the CSQ by design (battery-backed
    // IO buffer); committing one must not demand a CSQ record.
    Harness h;
    h.aud.onStoreCommit(0x1000, 7, csqZeroRegIndex, false, true);
    h.aud.onCommit(1, true);
    EXPECT_EQ(h.aud.violationCount(), 0u);
}

TEST(Auditor, FlagsStructureClearsOutsideBoundary)
{
    Harness h;
    h.aud.onCsqClear(0);
    EXPECT_EQ(h.aud.violationCount(), 1u);
    h.aud.onMaskClearAll(0);
    EXPECT_EQ(h.aud.violationCount(), 2u);
}

TEST(Auditor, FlagsMaskSetOutsideStoreBookkeeping)
{
    Harness h;
    h.aud.onMaskSet(7);
    ASSERT_EQ(h.aud.violationCount(), 1u);
    EXPECT_NE(h.aud.violations()[0].what.find(
                  "outside a committing store's bookkeeping"),
              std::string::npos);
}

TEST(Auditor, FlagsPinnedRegisterOverwriteAndFree)
{
    // Resync the shadow from a checkpoint whose CSQ pins phys reg 5,
    // then violate store integrity both ways.
    Harness h;
    h.aud.onRecover(regCarriedImage());
    h.aud.onRegWrite(5);
    ASSERT_EQ(h.aud.violationCount(), 1u);
    EXPECT_NE(h.aud.violations()[0].what.find(
                  "overwritten while referenced"),
              std::string::npos);
    h.aud.onRegFree(5);
    ASSERT_EQ(h.aud.violationCount(), 2u);
    EXPECT_NE(h.aud.violations()[1].what.find("freed while pinned"),
              std::string::npos);

    // Untracked registers stay free game.
    h.aud.onRegWrite(6);
    h.aud.onRegFree(6);
    EXPECT_EQ(h.aud.violationCount(), 2u);
}

TEST(Auditor, FlagsCheckpointThatCorruptsAStoreValue)
{
    // The shadow says reg 5 carried committed value 77; a checkpoint
    // claiming 78 has lost store integrity before the power failure.
    Harness h;
    h.aud.onRecover(regCarriedImage());
    CheckpointImage bad = regCarriedImage();
    bad.physRegValues[5] = 78;
    h.aud.onPowerFail(bad);
    ASSERT_EQ(h.aud.violationCount(), 1u);
    EXPECT_NE(h.aud.violations()[0].what.find("store integrity lost"),
              std::string::npos);

    // The uncorrupted image audits clean.
    Harness h2;
    h2.aud.onRecover(regCarriedImage());
    h2.aud.onPowerFail(regCarriedImage());
    EXPECT_EQ(h2.aud.violationCount(), 0u);
}

namespace
{

/** Records the cycles at which region-boundary events fire. */
struct BoundaryRecorder : check::PipelineObserver
{
    Cycle now = 0;
    std::vector<Cycle> starts;
    std::vector<Cycle> completes;

    void onCycle(Cycle cycle) override { now = cycle; }
    void
    onRegionBoundaryStart(RegionEndCause cause) override
    {
        (void)cause;
        starts.push_back(now);
    }
    void onRegionBoundaryComplete() override { completes.push_back(now); }
};

/** Stores at @p stride-spaced lines, a fence, more stores, halt. */
Program
fencedBurst(unsigned before, unsigned fences, unsigned after)
{
    ProgramBuilder b;
    b.movi(1, 0x40000);
    b.movi(2, 7);
    for (unsigned i = 0; i < before; ++i)
        b.st(2, 1, i * 0x100);
    for (unsigned i = 0; i < fences; ++i)
        b.fence();
    for (unsigned i = 0; i < after; ++i)
        b.st(2, 1, (before + i) * 0x100);
    b.halt();
    return b.program();
}

} // namespace

TEST(Auditor, CrashInsideTheDrainToBoundaryWindowRecoversClean)
{
    // The riskiest crash cycle is the one where the persist barrier's
    // drain has just completed but the boundary's CSQ/MaskReg clears
    // have not executed yet. Scout the run once to learn exactly when
    // boundaries fire, then crash fresh systems at the recorded cycle
    // (boundary not yet executed) and one cycle after (structures
    // freshly cleared).
    Program prog = fencedBurst(6, 1, 6);
    ProgramExecutor golden(prog);
    golden.totalLength();

    BoundaryRecorder recorder;
    System scout(ppaConfig());
    scout.seedMemory(prog.initialMemory());
    scout.core(0).attachAuditObserver(&recorder);
    ProgramExecutor scoutSource(prog);
    scout.bindSource(0, &scoutSource);
    scout.run(1'000'000);
    ASSERT_TRUE(scout.allDone());
    ASSERT_FALSE(recorder.starts.empty());
    ASSERT_EQ(recorder.starts.size(), recorder.completes.size());

    std::vector<Cycle> crashes;
    for (std::size_t i = 0; i < recorder.starts.size() && i < 3; ++i) {
        crashes.push_back(recorder.starts[i]);
        crashes.push_back(recorder.starts[i] + 1);
    }
    for (Cycle fail_at : crashes) {
        System system(ppaConfig());
        system.seedMemory(prog.initialMemory());
        auto oracle = std::make_shared<StoreOracle>();
        Auditor aud(system.core(0), system.memory(), oracle);
        aud.attach();
        ProgramExecutor source(prog);
        system.bindSource(0, &source);

        system.runUntilCycle(fail_at);
        auto images = system.powerFail();
        ASSERT_TRUE(images[0].valid) << "crash at " << fail_at;
        system.recover(images);

        check::ReplayAuditResult replay = aud.verifyReplay();
        EXPECT_EQ(replay.mismatches, 0u)
            << "replay diverged, crash at " << fail_at;

        system.run(1'000'000);
        ASSERT_TRUE(system.allDone()) << "crash at " << fail_at;
        EXPECT_EQ(aud.violationCount(), 0u)
            << "crash at " << fail_at << ":\n" << joinedViolations(aud);
        EXPECT_TRUE(system.memory().nvmImage().sameContents(
            golden.goldenMemory()))
            << "NVM diverged from golden, crash at " << fail_at;
    }
}

TEST(Auditor, BackToBackZeroLengthRegionsStayClean)
{
    // Three consecutive fences create two regions with no stores at
    // all. Their boundaries must still run the full clear protocol
    // (the auditor checks clears only happen inside boundaries), and
    // crashing anywhere around the empty-region cluster must recover.
    Program prog = fencedBurst(2, 3, 2);
    ProgramExecutor golden(prog);
    golden.totalLength();

    BoundaryRecorder recorder;
    System scout(ppaConfig());
    scout.seedMemory(prog.initialMemory());
    scout.core(0).attachAuditObserver(&recorder);
    ProgramExecutor scoutSource(prog);
    scout.bindSource(0, &scoutSource);
    scout.run(1'000'000);
    ASSERT_TRUE(scout.allDone());
    // Every fence ends a region, stores or not: at least the three
    // explicit boundaries fired.
    ASSERT_GE(recorder.starts.size(), 3u);

    // A clean end-to-end pass with the auditor attached counts the
    // empty regions too.
    System clean(ppaConfig());
    clean.seedMemory(prog.initialMemory());
    auto cleanOracle = std::make_shared<StoreOracle>();
    Auditor cleanAud(clean.core(0), clean.memory(), cleanOracle);
    cleanAud.attach();
    ProgramExecutor cleanSource(prog);
    clean.bindSource(0, &cleanSource);
    clean.run(1'000'000);
    ASSERT_TRUE(clean.allDone());
    EXPECT_EQ(cleanAud.violationCount(), 0u)
        << joinedViolations(cleanAud);
    EXPECT_GE(cleanAud.regionsAudited(), 3u);

    // Crash at each boundary cycle inside the empty-region cluster.
    for (Cycle fail_at : recorder.starts) {
        System system(ppaConfig());
        system.seedMemory(prog.initialMemory());
        auto oracle = std::make_shared<StoreOracle>();
        Auditor aud(system.core(0), system.memory(), oracle);
        aud.attach();
        ProgramExecutor source(prog);
        system.bindSource(0, &source);

        system.runUntilCycle(fail_at);
        auto images = system.powerFail();
        ASSERT_TRUE(images[0].valid) << "crash at " << fail_at;
        system.recover(images);
        EXPECT_EQ(aud.verifyReplay().mismatches, 0u)
            << "crash at " << fail_at;

        system.run(1'000'000);
        ASSERT_TRUE(system.allDone()) << "crash at " << fail_at;
        EXPECT_EQ(aud.violationCount(), 0u)
            << "crash at " << fail_at << ":\n" << joinedViolations(aud);
        EXPECT_TRUE(system.memory().nvmImage().sameContents(
            golden.goldenMemory()))
            << "crash at " << fail_at;
    }
}

TEST(AuditorDeathTest, FailFastPanicsWithAuditContext)
{
    Harness h;
    h.aud.setFailFast(true);
    EXPECT_DEATH(h.aud.onMaskSet(3), "audit core 0.*MaskReg bit 3");
}

TEST(AuditorDeathTest, WriteBufferUnderflowAlwaysPanics)
{
    // Issuing more persists than were ever enqueued is an event-protocol
    // impossibility, not a simulator-model bug: it panics regardless of
    // failFast.
    Harness h;
    h.aud.onPersistEnqueue(0x40, 1, false);
    EXPECT_DEATH(h.aud.onPersistIssue(0x40, 4),
                 "issued 4 stores with only 1 outstanding");
}
