/** @file
 * Seeded failure-injection grid (the audit layer's acceptance test).
 *
 * For each workload profile in the grid, inject power failures at
 * eight pseudo-random cycles drawn from a fixed seed, recover through
 * the serialized checkpoint path every time, and require that the
 * replayed NVM image matches the committed-store oracle exactly and
 * that no pipeline invariant was violated anywhere along the way.
 * Seeded Rng cycles keep every run byte-reproducible while still
 * sampling failure points across warmup, steady state, and region
 * boundaries.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

using namespace ppa;

namespace
{

constexpr std::size_t failuresPerRun = 8;

std::vector<Cycle>
randomFailCycles(std::uint64_t seed, Cycle lo, Cycle hi)
{
    Rng rng(seed);
    std::vector<Cycle> cycles;
    cycles.reserve(failuresPerRun);
    for (std::size_t i = 0; i < failuresPerRun; ++i)
        cycles.push_back(lo + rng.below(hi - lo));
    return cycles;
}

struct GridCase
{
    const char *profile;
    unsigned threads; // 0 = profile default
    std::uint64_t seed;
};

class FailureGrid : public ::testing::TestWithParam<GridCase>
{
};

std::string
caseName(const ::testing::TestParamInfo<GridCase> &info)
{
    std::string name = info.param.profile;
    for (char &ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    return name + "_t" + std::to_string(info.param.threads);
}

} // namespace

TEST_P(FailureGrid, ReplayMatchesCommittedStoreOracle)
{
    const GridCase &c = GetParam();

    ExperimentKnobs knobs;
    knobs.instsPerCore = 20'000;
    knobs.threads = c.threads;
    knobs.audit = true;
    // The budget above keeps every profile busy well past cycle 6000
    // (PPA IPC stays below ~3), so all eight failures fire.
    knobs.failAtCycles = randomFailCycles(c.seed, 200, 6000);

    RunStats rs =
        runWorkload(profileByName(c.profile), SystemVariant::Ppa, knobs);

    std::string messages;
    for (const std::string &m : rs.auditMessages)
        messages += m + "\n";

    EXPECT_EQ(rs.powerFailures, failuresPerRun);
    EXPECT_EQ(rs.auditViolations, 0u) << messages;
    EXPECT_EQ(rs.replayMismatches, 0u) << messages;
    EXPECT_EQ(rs.replayAudits, rs.powerFailures * rs.threads);
    EXPECT_GT(rs.replayAddrsChecked, 0u);
    EXPECT_GT(rs.auditEvents, 0u);
    EXPECT_GT(rs.committedInsts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FailureGrid,
    ::testing::Values(GridCase{"gcc", 1, 101},       // SPEC int
                      GridCase{"mcf", 1, 202},       // memory-bound
                      GridCase{"lbm", 1, 303},       // store-heavy FP
                      GridCase{"tatp", 2, 404},      // multicore txn
                      GridCase{"sps", 2, 505},       // multicore struct
                      GridCase{"tpcc", 1, 606},      // txn, fwd-heavy
                      GridCase{"hmmer", 1, 707},     // ILP-heavy ALU
                      GridCase{"water-ns", 2, 808},  // store-dense sync
                      GridCase{"ocean", 2, 909},     // multicore FP
                      GridCase{"genome", 2, 1010},   // STAMP atomic mix
                      GridCase{"xsbench", 1, 1111}), // mini-app
    caseName);

TEST(FailureGridDeterminism, RepeatRunsAreBitwiseIdentical)
{
    // The recovery path replays committed streams through
    // StreamGenerator::seekTo(); with eight failures the replay seeks
    // backward repeatedly, so this doubles as the integration check
    // that snapshot-based seeks leave simulation results bitwise
    // unchanged from run to run.
    ExperimentKnobs knobs;
    knobs.instsPerCore = 20'000;
    knobs.audit = true;
    knobs.failAtCycles = randomFailCycles(1212, 200, 6000);

    const WorkloadProfile &p = profileByName("tpcc");
    RunStats a = runWorkload(p, SystemVariant::Ppa, knobs);
    RunStats b = runWorkload(p, SystemVariant::Ppa, knobs);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.committedStores, b.committedStores);
    EXPECT_EQ(a.regionCount, b.regionCount);
    EXPECT_EQ(a.boundaryStallCycles, b.boundaryStallCycles);
    EXPECT_EQ(a.persistOps, b.persistOps);
    EXPECT_EQ(a.coalescedStores, b.coalescedStores);
    EXPECT_EQ(a.nvmWrites, b.nvmWrites);
    EXPECT_EQ(a.nvmBytesWritten, b.nvmBytesWritten);
    EXPECT_EQ(a.replayAddrsChecked, b.replayAddrsChecked);
    EXPECT_EQ(a.auditViolations, 0u);
    EXPECT_EQ(b.auditViolations, 0u);
}

TEST(FailureGridDeterminism, LateFailuresRecoverCleanly)
{
    // Failures injected deep into the run force long backward seeks
    // (many snapshot intervals) during replay.
    ExperimentKnobs knobs;
    knobs.instsPerCore = 30'000;
    knobs.audit = true;
    knobs.failAtCycles = {9'000, 9'500, 10'000};

    RunStats rs = runWorkload(profileByName("gcc"), SystemVariant::Ppa,
                              knobs);
    std::string messages;
    for (const std::string &m : rs.auditMessages)
        messages += m + "\n";
    EXPECT_EQ(rs.powerFailures, 3u);
    EXPECT_EQ(rs.auditViolations, 0u) << messages;
    EXPECT_EQ(rs.replayMismatches, 0u) << messages;
    EXPECT_GT(rs.replayAddrsChecked, 0u);
}
