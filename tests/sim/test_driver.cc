/**
 * @file
 * Tests for the parallel experiment driver: the determinism contract
 * (parallel fan-out is bitwise-identical to a serial run), submission
 * ordering, and progress reporting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/figures.hh"
#include "sim/report.hh"
#include "workload/profile.hh"

using namespace ppa;

namespace
{

/** A small mixed grid: several workloads/variants with distinct knob
 *  points, cheap enough to run many times per test binary. */
std::vector<SweepJob>
smallGrid()
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 3000;
    std::vector<SweepJob> jobs;
    for (const char *name : {"gcc", "hmmer", "rb", "water-ns"}) {
        const auto &profile = profileByName(name);
        jobs.push_back({profile, SystemVariant::MemoryMode, knobs});
        jobs.push_back({profile, SystemVariant::Ppa, knobs});
    }
    ExperimentKnobs tinyPrf = knobs;
    tinyPrf.intPrf = 80;
    tinyPrf.fpPrf = 80;
    jobs.push_back({profileByName("lbm"), SystemVariant::Ppa, tinyPrf});
    return jobs;
}

/** Exact textual identity of a RunStats, including histogram bins. */
std::string
fingerprint(const RunStats &stats)
{
    return metrics::runStatsToJson(stats);
}

} // namespace

TEST(Driver, WorkerCountDefaultsToAtLeastOne)
{
    EXPECT_GE(ExperimentDriver(0).workers(), 1u);
    EXPECT_EQ(ExperimentDriver(3).workers(), 3u);
}

TEST(Driver, EmptyJobListYieldsEmptyResults)
{
    ExperimentDriver driver(4);
    EXPECT_TRUE(driver.run({}).empty());
}

TEST(Driver, ResultsFollowSubmissionOrder)
{
    auto jobs = smallGrid();
    auto results = ExperimentDriver(4).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].job.profile.name, jobs[i].profile.name);
        EXPECT_EQ(results[i].job.variant, jobs[i].variant);
        EXPECT_EQ(results[i].stats.workload, jobs[i].profile.name);
        EXPECT_GE(results[i].wallSeconds, 0.0);
        EXPECT_GT(results[i].stats.cycles, 0u);
    }
}

// The determinism contract: RunStats is a pure function of
// (profile, variant, knobs), so fanning the same grid across many
// threads must reproduce the serial results bit for bit, regardless
// of completion order.
TEST(Driver, ParallelMatchesSerialBitwise)
{
    auto jobs = smallGrid();
    auto serial = ExperimentDriver(1).run(jobs);
    auto parallel = ExperimentDriver(4).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(fingerprint(serial[i].stats),
                  fingerprint(parallel[i].stats))
            << "job " << i << " (" << jobs[i].profile.name << ")";
}

TEST(Driver, RepeatedParallelRunsAreIdentical)
{
    auto jobs = smallGrid();
    auto first = ExperimentDriver(4).run(jobs);
    auto second = ExperimentDriver(4).run(jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(fingerprint(first[i].stats),
                  fingerprint(second[i].stats));
}

TEST(Driver, ProgressCallbackCountsEveryJob)
{
    auto jobs = smallGrid();
    std::atomic<std::size_t> calls{0};
    std::size_t lastCompleted = 0;
    auto results = ExperimentDriver(4).run(
        jobs, [&](const JobResult &r, std::size_t completed,
                  std::size_t total) {
            ++calls;
            EXPECT_EQ(total, jobs.size());
            EXPECT_GE(completed, 1u);
            EXPECT_LE(completed, total);
            // The callback is serialized, so completed must strictly
            // increase.
            EXPECT_GT(completed, lastCompleted);
            lastCompleted = completed;
            EXPECT_FALSE(r.job.profile.name.empty());
        });
    EXPECT_EQ(calls.load(), jobs.size());
    EXPECT_EQ(lastCompleted, jobs.size());
    EXPECT_EQ(results.size(), jobs.size());
}

TEST(Driver, FigureSweepRunsDeterministically)
{
    // A real figure grid (smallest one) through the public sweep
    // definition, serial vs parallel.
    FigureSweep fs = figureSweep("table01", /*instsPerCore=*/2000);
    ASSERT_FALSE(fs.jobs.empty());
    auto serial = ExperimentDriver(1).run(fs.jobs);
    auto parallel = ExperimentDriver(4).run(fs.jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(fingerprint(serial[i].stats),
                  fingerprint(parallel[i].stats));
}
