/** @file
 * Time-parallel simulation oracle suite (docs/PERF.md).
 *
 * The exact-mode contract under test: a segmented run's stitched
 * RunStats is a pure function of (profile, variant, knobs) — the host
 * worker count used to execute the segments never changes a single
 * bit of it. This mirrors the SchedEquiv/driver determinism oracles:
 * serial-scheduled vs parallel-scheduled execution of the same
 * segmented plan must agree bitwise, across the golden workload set
 * and with injected power failures. Also covered here: segment-plan
 * geometry edge cases, SimPoint-style sampling, trace-vs-generator
 * agreement, and the seek-count regression guard for source reuse
 * (the bench --reps fix).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/segment.hh"
#include "trace/capture.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace ppa;
namespace fs = std::filesystem;

namespace
{

/** Knobs for a small segmented run (kept cheap: the golden grid
 *  multiplies this by 41 profiles x 3 variants x 2 worker counts). */
ExperimentKnobs
tpKnobs(unsigned segments, std::uint64_t insts = 6'000,
        std::uint64_t warmup = 500)
{
    ExperimentKnobs k;
    k.instsPerCore = insts;
    k.seed = 42;
    k.timeParallel = segments;
    k.tpWarmupInsts = warmup;
    return k;
}

/** Serialize with worker count pinned; the JSON covers every stats
 *  field (counters, doubles, histograms), so string equality is the
 *  bitwise-identity oracle. */
std::string
statsAt(const WorkloadProfile &p, SystemVariant v, ExperimentKnobs k,
        unsigned workers)
{
    k.tpWorkers = workers;
    return metrics::runStatsToJson(runWorkload(p, v, k));
}

/** Strip trace provenance so trace-driven and generator-driven runs
 *  compare equal (same idiom as the trace replay tests). */
std::string
statsJsonSansProvenance(RunStats rs)
{
    rs.traceDir.clear();
    rs.traceShards = 0;
    rs.traceInsts = 0;
    rs.traceCrc = 0;
    return metrics::runStatsToJson(rs);
}

std::string
scratchDir(const std::string &name)
{
    fs::path dir =
        fs::path(testing::TempDir()) / "ppa_time_parallel" / name;
    fs::remove_all(dir);
    fs::create_directories(dir.parent_path());
    return dir.string();
}

} // namespace

TEST(TimeParallel, WorkerCountInvariantAcrossGoldenGrid)
{
    // The SchedEquiv golden set (all profiles, the non-replaycache
    // variants) at the SchedEquiv budget: serial segment execution
    // (tpWorkers=1) vs parallel (tpWorkers=4) must agree bitwise.
    for (const WorkloadProfile &p : allProfiles()) {
        for (SystemVariant v :
             {SystemVariant::MemoryMode, SystemVariant::Ppa,
              SystemVariant::Capri}) {
            ExperimentKnobs k = tpKnobs(4);
            EXPECT_EQ(statsAt(p, v, k, 1), statsAt(p, v, k, 4))
                << p.name << "/" << variantToken(v);
        }
    }
}

TEST(TimeParallel, WorkerCountInvariantWithInjectedFailures)
{
    // Power failures inside segments — including one exactly at a
    // segment join (cycle 0) — go through checkpoint serialization,
    // recovery, and replay audit; none of it may depend on the host
    // worker count.
    for (const char *app : {"gcc", "tpcc", "sps"}) {
        ExperimentKnobs k = tpKnobs(4, 20'000, 2'000);
        k.audit = true;
        k.tpFailAt = {{0, 0}, {1, 0}, {2, 123}, {3, 7}};
        const WorkloadProfile &p = profileByName(app);
        std::string serial = statsAt(p, SystemVariant::Ppa, k, 1);
        std::string parallel = statsAt(p, SystemVariant::Ppa, k, 4);
        EXPECT_EQ(serial, parallel) << app;

        k.tpWorkers = 4;
        RunStats rs = runWorkload(p, SystemVariant::Ppa, k);
        std::string messages;
        for (const std::string &m : rs.auditMessages)
            messages += m + "\n";
        EXPECT_EQ(rs.powerFailures, 4u) << app;
        EXPECT_EQ(rs.replayAudits, 4u * rs.threads) << app;
        EXPECT_EQ(rs.replayMismatches, 0u) << app << "\n" << messages;
        EXPECT_EQ(rs.auditViolations, 0u) << app << "\n" << messages;
        EXPECT_GT(rs.replayAddrsChecked, 0u) << app;
    }
}

TEST(TimeParallel, SingleSegmentRoutesToClassicPath)
{
    // timeParallel 0 and 1 are both the classic serial runner;
    // neither carries segmentation provenance.
    const WorkloadProfile &p = profileByName("gcc");
    ExperimentKnobs off;
    off.instsPerCore = 6'000;
    ExperimentKnobs one = off;
    one.timeParallel = 1;
    RunStats a = runWorkload(p, SystemVariant::Ppa, off);
    RunStats b = runWorkload(p, SystemVariant::Ppa, one);
    EXPECT_EQ(a.tpSegments, 0u);
    EXPECT_EQ(b.tpSegments, 0u);
    EXPECT_EQ(metrics::runStatsToJson(a), metrics::runStatsToJson(b));
}

TEST(TimeParallel, SampledModeIsDeterministicAndExtrapolates)
{
    const WorkloadProfile &p = profileByName("gcc");
    ExperimentKnobs k = tpKnobs(8);
    k.tpSampleStride = 3; // simulate segments 0, 3, 6
    EXPECT_EQ(statsAt(p, SystemVariant::Ppa, k, 1),
              statsAt(p, SystemVariant::Ppa, k, 4));

    RunStats rs = runWorkload(p, SystemVariant::Ppa, k);
    EXPECT_EQ(rs.tpSegments, 8u);
    EXPECT_EQ(rs.tpSimulatedSegments, 3u);
    EXPECT_EQ(rs.tpSampleStride, 3u);
    // Extrapolated counters approximate the full-stream totals.
    EXPECT_NEAR(static_cast<double>(rs.committedInsts),
                static_cast<double>(k.instsPerCore), 0.1 * 6'000);
    EXPECT_GT(rs.totalCycles, 0u);
    EXPECT_GE(rs.tpCpiRelStderr, 0.0);
}

TEST(TimeParallel, MoreSegmentsThanInstructionsClamps)
{
    ExperimentKnobs k = tpKnobs(64, 16, 4);
    SegmentPlan plan = planSegments(k);
    ASSERT_EQ(plan.segments.size(), 16u); // one instruction each
    for (std::size_t s = 0; s < plan.segments.size(); ++s) {
        EXPECT_EQ(plan.segments[s].begin, s);
        EXPECT_EQ(plan.segments[s].end, s + 1);
    }

    const WorkloadProfile &p = profileByName("gcc");
    EXPECT_EQ(statsAt(p, SystemVariant::Ppa, k, 1),
              statsAt(p, SystemVariant::Ppa, k, 4));
    RunStats rs = runWorkload(p, SystemVariant::Ppa, k);
    EXPECT_EQ(rs.tpSegments, 16u);
    EXPECT_GT(rs.totalCycles, 0u);
}

TEST(TimeParallel, PlanPartitionsStreamAndClampsWarmup)
{
    ExperimentKnobs k = tpKnobs(8, 4'000, 2'000);
    SegmentPlan plan = planSegments(k);
    ASSERT_EQ(plan.segments.size(), 8u);
    std::uint64_t expectBegin = 0;
    for (const SegmentPlan::Segment &seg : plan.segments) {
        EXPECT_EQ(seg.begin, expectBegin); // contiguous partition
        EXPECT_GT(seg.end, seg.begin);
        EXPECT_LE(seg.warmupBegin, seg.begin);
        // Warmup never reaches before the stream start, and is
        // otherwise exactly tpWarmupInsts long.
        EXPECT_EQ(seg.warmupBegin,
                  seg.begin > k.tpWarmupInsts
                      ? seg.begin - k.tpWarmupInsts
                      : 0);
        expectBegin = seg.end;
    }
    EXPECT_EQ(expectBegin, k.instsPerCore);

    k.tpSampleStride = 2;
    plan = planSegments(k);
    for (std::size_t s = 0; s < plan.segments.size(); ++s)
        EXPECT_EQ(plan.segments[s].simulated, s % 2 == 0);
    EXPECT_EQ(plan.simulatedCount(), 4u);
}

TEST(TimeParallel, SegmentShorterThanWarmupStaysExact)
{
    // 500-instruction segments under a 2000-instruction warmup: the
    // warmup prefix spans several earlier segments' windows and the
    // early segments' prefixes clamp at the stream start.
    const WorkloadProfile &p = profileByName("tpcc");
    ExperimentKnobs k = tpKnobs(8, 4'000, 2'000);
    EXPECT_EQ(statsAt(p, SystemVariant::Ppa, k, 1),
              statsAt(p, SystemVariant::Ppa, k, 4));
    RunStats rs = runWorkload(p, SystemVariant::Ppa, k);
    EXPECT_EQ(rs.tpSegments, 8u);
    // The measured windows tile the whole stream, per core (the
    // warmup loop can overshoot a boundary by at most a commit group).
    EXPECT_NEAR(static_cast<double>(rs.committedInsts),
                4'000.0 * rs.threads, 64.0 * rs.threads);
}

TEST(TimeParallel, TraceAndGeneratorRunsAgreeBitwise)
{
    const std::string dir = scratchDir("tp_equiv");
    const WorkloadProfile &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 42;
    spec.instsPerThread = 6'000;
    spec.shardInsts = 2048; // several shards, so seeks cross files
    spec.blockInsts = 256;
    trace::recordWorkloadTrace(dir, p, spec);

    ExperimentKnobs k = tpKnobs(4);
    k.tpWorkers = 2;
    RunStats fromGen = runWorkload(p, SystemVariant::Ppa, k);
    k.traceDir = dir;
    RunStats fromTrace = runWorkload(p, SystemVariant::Ppa, k);
    EXPECT_EQ(fromTrace.traceInsts, 6'000u);
    EXPECT_EQ(statsJsonSansProvenance(fromGen),
              statsJsonSansProvenance(fromTrace));

    // And the trace-driven path obeys the worker-count contract too.
    EXPECT_EQ(statsAt(p, SystemVariant::Ppa, k, 1),
              statsAt(p, SystemVariant::Ppa, k, 4));
}

TEST(TimeParallel, SourceCacheReuseBoundsSeekReplay)
{
    // The bench --reps regression guard, timing-independent by
    // design: a reused StreamGenerator re-seeks from its nearest
    // state snapshot, so the second run's regeneration cost is
    // bounded by one snapshot interval per segment — not by the
    // O(segment start) fast-forward fresh sources pay.
    const WorkloadProfile &p = profileByName("gcc");
    ExperimentKnobs k = tpKnobs(4, 20'000, 2'000);
    k.tpWorkers = 1;

    SegmentSourceCache cache;
    RunStats first =
        runWorkloadTimeParallel(p, SystemVariant::Ppa, k, &cache);
    std::uint64_t afterFirst = cache.generatorReplayedInsts();
    // First run pays the forward fast-forward to each segment's
    // warmup start: sum of warmupBegin over segments 1..3.
    EXPECT_GE(afterFirst, 3'000u + 8'000u + 13'000u);

    RunStats second =
        runWorkloadTimeParallel(p, SystemVariant::Ppa, k, &cache);
    std::uint64_t secondCost =
        cache.generatorReplayedInsts() - afterFirst;
    EXPECT_LE(secondCost, 4 * StreamGenerator::snapshotInterval);
    EXPECT_LT(secondCost, afterFirst);
    // Reuse must not perturb results.
    EXPECT_EQ(metrics::runStatsToJson(first),
              metrics::runStatsToJson(second));
    // Segment 0's first-run seekTo(0) on a fresh source is a trivial
    // seek and is skipped: 3 counted seeks on run one, 4 on run two
    // (by then every source sits at its segment end).
    EXPECT_EQ(cache.sourceSeeks(), 7u);
}

TEST(TimeParallel, CachedAndFreshSourcesAgree)
{
    const WorkloadProfile &p = profileByName("mcf");
    ExperimentKnobs k = tpKnobs(4);
    k.tpWorkers = 2;
    SegmentSourceCache cache;
    RunStats cached =
        runWorkloadTimeParallel(p, SystemVariant::Ppa, k, &cache);
    RunStats fresh = runWorkload(p, SystemVariant::Ppa, k);
    EXPECT_EQ(metrics::runStatsToJson(cached),
              metrics::runStatsToJson(fresh));
}

TEST(TimeParallelDeath, ReplayCacheVariantIsRejected)
{
    // ReplayCache's stream transform inserts instructions, so the
    // committed index no longer equals the stream position and
    // segment boundaries cannot align.
    const WorkloadProfile &p = profileByName("gcc");
    ExperimentKnobs k = tpKnobs(4);
    EXPECT_DEATH(runWorkload(p, SystemVariant::ReplayCache, k),
                 "time-parallel does not support");
}

TEST(TimeParallelDeath, ClassicFailureCyclesAreRejected)
{
    const WorkloadProfile &p = profileByName("gcc");
    ExperimentKnobs k = tpKnobs(4);
    k.failAtCycles = {1'000};
    EXPECT_DEATH(runWorkload(p, SystemVariant::Ppa, k),
                 "tpFailAt");
}

TEST(TimeParallelDeath, FailureInUnsimulatedSegmentIsRejected)
{
    ExperimentKnobs k = tpKnobs(8);
    k.tpSampleStride = 2;
    k.tpFailAt = {{1, 0}}; // segment 1 is sampled out
    EXPECT_DEATH(planSegments(k), "skips");
    k.tpFailAt = {{9, 0}}; // out of range
    EXPECT_DEATH(planSegments(k), "only");
}
