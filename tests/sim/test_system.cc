/** @file Tests for the System driver and experiment runner. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "workload/kernels.hh"

using namespace ppa;

TEST(System, RunStopsAtCycleCap)
{
    Program prog = kernels::counterLoop(100000);
    SystemConfig sc;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(/*max_cycles=*/1000);
    EXPECT_GE(system.cycle(), 1000u);
    EXPECT_FALSE(system.allDone());
}

TEST(System, TotalCommittedSumsCores)
{
    SystemConfig sc;
    sc.numCores = 2;
    System system(sc);
    Program p0 = kernels::counterLoop(10, 0x10000);
    Program p1 = kernels::counterLoop(20, 0x20000);
    system.seedMemory(p0.initialMemory());
    system.seedMemory(p1.initialMemory());
    ProgramExecutor s0(p0), s1(p1);
    system.bindSource(0, &s0);
    system.bindSource(1, &s1);
    system.run(10'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.totalCommitted(), s0.generated().size() +
                                           s1.generated().size());
}

TEST(Experiment, VariantConfigsDiffer)
{
    ExperimentKnobs knobs;
    auto base = makeSystemConfig(SystemVariant::MemoryMode, knobs, 1);
    auto ppa = makeSystemConfig(SystemVariant::Ppa, knobs, 1);
    auto eadr = makeSystemConfig(SystemVariant::EadrBbb, knobs, 1);
    auto dram = makeSystemConfig(SystemVariant::DramOnly, knobs, 1);
    auto capri = makeSystemConfig(SystemVariant::Capri, knobs, 1);

    EXPECT_EQ(base.core.mode, PersistMode::Volatile);
    EXPECT_TRUE(base.mem.dramCache.enabled);
    EXPECT_EQ(ppa.core.mode, PersistMode::Ppa);
    EXPECT_FALSE(eadr.mem.dramCache.enabled);
    EXPECT_TRUE(dram.mem.dramOnly);
    EXPECT_EQ(capri.core.mode, PersistMode::Capri);
}

TEST(Experiment, KnobsPropagate)
{
    ExperimentKnobs knobs;
    knobs.wpqEntries = 8;
    knobs.intPrf = 100;
    knobs.fpPrf = 90;
    knobs.csqEntries = 20;
    knobs.nvmWriteGbps = 6.0;
    knobs.l3Cache = true;
    auto sc = makeSystemConfig(SystemVariant::Ppa, knobs, 1);
    EXPECT_EQ(sc.mem.nvm.wpqEntries, 8u);
    EXPECT_EQ(sc.core.intPrfEntries, 100u);
    EXPECT_EQ(sc.core.fpPrfEntries, 90u);
    EXPECT_EQ(sc.core.csqEntries, 20u);
    EXPECT_DOUBLE_EQ(sc.mem.nvm.writeBwGBps, 6.0);
    EXPECT_TRUE(sc.mem.l3Enabled);
}

TEST(Experiment, ThreadScalingGrowsSharedResources)
{
    ExperimentKnobs knobs;
    auto sc8 = makeSystemConfig(SystemVariant::Ppa, knobs, 8);
    auto sc32 = makeSystemConfig(SystemVariant::Ppa, knobs, 32);
    EXPECT_EQ(sc32.mem.l2.sizeBytes, sc8.mem.l2.sizeBytes * 4);
    EXPECT_EQ(sc32.mem.nvm.wpqEntries, sc8.mem.nvm.wpqEntries * 4);
}

TEST(Experiment, RunWorkloadProducesStats)
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 5000;
    auto rs = runWorkload(profileByName("gcc"), SystemVariant::Ppa,
                          knobs);
    EXPECT_EQ(rs.threads, 1u);
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_GE(rs.committedInsts, 5000u);
    EXPECT_GT(rs.committedStores, 0u);
    EXPECT_GT(rs.ipc, 0.0);
    EXPECT_GT(rs.freeIntHist.count(), 0u);
}

TEST(Experiment, PpaOverheadIsBounded)
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 8000;
    auto base = runWorkload(profileByName("gcc"),
                            SystemVariant::MemoryMode, knobs);
    auto ppa = runWorkload(profileByName("gcc"), SystemVariant::Ppa,
                           knobs);
    double s = slowdown(ppa, base);
    EXPECT_GE(s, 0.95);
    EXPECT_LT(s, 1.6); // sane even at this tiny scale
}

TEST(Experiment, MultithreadedProfileUsesEightCores)
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 2000;
    auto rs = runWorkload(profileByName("barnes"), SystemVariant::Ppa,
                          knobs);
    EXPECT_EQ(rs.threads, 8u);
    EXPECT_GE(rs.committedInsts, 8u * 2000u);
}

TEST(Experiment, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Experiment, VariantNames)
{
    EXPECT_STREQ(variantName(SystemVariant::Ppa), "PPA");
    EXPECT_STREQ(variantName(SystemVariant::MemoryMode),
                 "memory-mode");
    EXPECT_STREQ(variantName(SystemVariant::EadrBbb), "eADR/BBB");
}
