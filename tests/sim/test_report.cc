/**
 * @file
 * Tests for the structured metrics layer: JSON round-tripping of
 * RunStats (including histogram bins) and knobs, string escaping,
 * parser robustness, and the shape of the sweep JSON/CSV documents.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workload/profile.hh"

using namespace ppa;
using metrics::JsonValue;

namespace
{

/** A real RunStats from a short simulation — exercises every field,
 *  including non-trivial histograms. */
const RunStats &
sampleStats()
{
    static RunStats rs = [] {
        ExperimentKnobs knobs;
        knobs.instsPerCore = 3000;
        return runWorkload(profileByName("gcc"), SystemVariant::Ppa,
                           knobs);
    }();
    return rs;
}

JsonValue
parseOrDie(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(text, v, err)) << err;
    return v;
}

} // namespace

TEST(Report, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(metrics::jsonEscape("plain"), "plain");
    EXPECT_EQ(metrics::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(metrics::jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(metrics::jsonEscape(std::string("nul\x01") + "x"),
              "nul\\u0001x");
}

TEST(Report, ParserHandlesNestedDocuments)
{
    JsonValue v = parseOrDie(
        "{\"a\": [1, 2.5, -3], \"b\": {\"c\": true, \"d\": null}, "
        "\"s\": \"x\\ny\"}");
    EXPECT_EQ(v.field("a").size(), 3u);
    EXPECT_EQ(v.field("a").at(0).asUint64(), 1u);
    EXPECT_DOUBLE_EQ(v.field("a").at(1).asDouble(), 2.5);
    EXPECT_TRUE(v.field("b").field("c").asBool());
    EXPECT_TRUE(v.field("b").field("d").isNull());
    EXPECT_EQ(v.field("s").asString(), "x\ny");
    EXPECT_TRUE(v.hasField("a"));
    EXPECT_FALSE(v.hasField("missing"));
}

TEST(Report, ParserRejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("{\"a\": }", v, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(JsonValue::parse("[1, 2", v, err));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v, err));
    EXPECT_FALSE(JsonValue::parse("", v, err));
}

TEST(Report, Uint64CountersSurviveRoundTrip)
{
    // A counter above 2^53 loses bits through a double; the number
    // token text must preserve it exactly.
    const std::uint64_t big = 9'007'199'254'740'993ull; // 2^53 + 1
    JsonValue v =
        parseOrDie("{\"n\": " + std::to_string(big) + "}");
    EXPECT_EQ(v.field("n").asUint64(), big);
}

TEST(Report, RunStatsRoundTripsThroughJson)
{
    const RunStats &rs = sampleStats();
    std::string text = metrics::runStatsToJson(rs);
    RunStats back = metrics::runStatsFromJson(parseOrDie(text));

    EXPECT_EQ(back.workload, rs.workload);
    EXPECT_EQ(back.variant, rs.variant);
    EXPECT_EQ(back.threads, rs.threads);
    EXPECT_EQ(back.cycles, rs.cycles);
    EXPECT_EQ(back.totalCycles, rs.totalCycles);
    EXPECT_EQ(back.committedInsts, rs.committedInsts);
    EXPECT_EQ(back.committedStores, rs.committedStores);
    EXPECT_EQ(back.ipc, rs.ipc);
    EXPECT_EQ(back.regionCount, rs.regionCount);
    EXPECT_EQ(back.boundaryStallCycles, rs.boundaryStallCycles);
    EXPECT_EQ(back.renameStallNoRegCycles, rs.renameStallNoRegCycles);
    EXPECT_EQ(back.nvmBytesWritten, rs.nvmBytesWritten);
    EXPECT_EQ(back.l2MissRatio, rs.l2MissRatio);

    // Serialize-parse-serialize is a fixed point: the second pass must
    // reproduce the first document byte for byte.
    EXPECT_EQ(metrics::runStatsToJson(back), text);
}

TEST(Report, HistogramBinsRoundTrip)
{
    const RunStats &rs = sampleStats();
    ASSERT_GT(rs.freeIntHist.count(), 0u);
    std::string text = metrics::runStatsToJson(rs);
    RunStats back = metrics::runStatsFromJson(parseOrDie(text));

    EXPECT_EQ(back.freeIntHist.binCounts(), rs.freeIntHist.binCounts());
    EXPECT_EQ(back.freeFpHist.binCounts(), rs.freeFpHist.binCounts());
    EXPECT_EQ(back.freeIntHist.count(), rs.freeIntHist.count());
    EXPECT_EQ(back.freeIntHist.maxValue(), rs.freeIntHist.maxValue());
}

TEST(Report, KnobsRoundTripThroughJson)
{
    ExperimentKnobs k;
    k.threads = 16;
    k.wpqEntries = 8;
    k.intPrf = 280;
    k.fpPrf = 224;
    k.csqEntries = 10;
    k.nvmWriteGbps = 4.0;
    k.l3Cache = true;
    k.wbCoalesceWindow = 0;
    k.instsPerCore = 12345;
    k.seed = 99;
    k.warmupFraction = 0.25;

    ExperimentKnobs back =
        metrics::knobsFromJson(parseOrDie(metrics::knobsToJson(k)));
    EXPECT_EQ(metrics::knobsToJson(back), metrics::knobsToJson(k));
    EXPECT_EQ(back.threads, 16u);
    EXPECT_EQ(back.l3Cache, true);
    EXPECT_DOUBLE_EQ(back.nvmWriteGbps, 4.0);
    EXPECT_DOUBLE_EQ(back.warmupFraction, 0.25);
}

TEST(Report, SweepDocumentHasVersionedShape)
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 3000;
    std::vector<SweepJob> jobs = {
        {profileByName("gcc"), SystemVariant::MemoryMode, knobs},
        {profileByName("gcc"), SystemVariant::Ppa, knobs},
    };
    auto results = ExperimentDriver(2).run(jobs);

    std::string doc = metrics::sweepToJson("unit-test", results,
                                           {{"someScalar", 1.25}});
    JsonValue v = parseOrDie(doc);

    EXPECT_EQ(v.field("schemaVersion").asUint64(),
              static_cast<std::uint64_t>(metrics::schemaVersion));
    EXPECT_EQ(v.field("sweep").asString(), "unit-test");
    ASSERT_EQ(v.field("jobs").size(), 2u);

    const JsonValue &job = v.field("jobs").at(1);
    EXPECT_EQ(job.field("workload").asString(), "gcc");
    EXPECT_EQ(job.field("variant").asString(), "ppa");
    EXPECT_GE(job.field("wallSeconds").asDouble(), 0.0);
    EXPECT_EQ(job.field("stats").field("workload").asString(), "gcc");
    ExperimentKnobs back = metrics::knobsFromJson(job.field("knobs"));
    EXPECT_EQ(back.instsPerCore, 3000u);
    EXPECT_DOUBLE_EQ(v.field("extra").field("someScalar").asDouble(),
                     1.25);
}

TEST(Report, CsvHasOneRowPerJobAndMatchingColumns)
{
    ExperimentKnobs knobs;
    knobs.instsPerCore = 3000;
    std::vector<SweepJob> jobs = {
        {profileByName("gcc"), SystemVariant::MemoryMode, knobs},
        {profileByName("hmmer"), SystemVariant::Ppa, knobs},
    };
    auto results = ExperimentDriver(2).run(jobs);
    std::string csv = metrics::sweepToCsv(results);

    std::istringstream is(csv);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u + jobs.size());

    auto columns = [](const std::string &row) {
        std::size_t n = 1;
        for (char c : row)
            n += c == ',';
        return n;
    };
    std::size_t headerCols = columns(lines[0]);
    EXPECT_GT(headerCols, 30u);
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_EQ(columns(lines[i]), headerCols) << "row " << i;
    EXPECT_EQ(lines[1].substr(0, 4), "gcc,");
    EXPECT_EQ(lines[2].substr(0, 6), "hmmer,");
}

TEST(Report, HistogramFromBinsRebuildsTotals)
{
    stats::Histogram h = stats::Histogram::fromBins({0, 3, 0, 2});
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.maxValue(), 3u);
    EXPECT_EQ(h.binCounts(),
              (std::vector<std::uint64_t>{0, 3, 0, 2}));
}
