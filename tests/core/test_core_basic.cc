/** @file Core pipeline tests: functional correctness vs golden model. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

/** Run @p prog on a 1-core system in @p mode; verify vs golden. */
void
runAndVerify(const Program &prog, PersistMode mode,
             Cycle max_cycles = 2'000'000)
{
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = mode;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(max_cycles);

    ASSERT_TRUE(system.allDone()) << "pipeline wedged";
    EXPECT_TRUE(system.memory().committed().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(), golden.goldenState());
    // Whole-system drain leaves NVM equal to committed memory.
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

} // namespace

TEST(CoreBasic, CounterLoopVolatile)
{
    runAndVerify(kernels::counterLoop(100), PersistMode::Volatile);
}

TEST(CoreBasic, CounterLoopPpa)
{
    runAndVerify(kernels::counterLoop(100), PersistMode::Ppa);
}

TEST(CoreBasic, HashTableVolatile)
{
    runAndVerify(kernels::hashTableUpdate(300), PersistMode::Volatile);
}

TEST(CoreBasic, HashTablePpa)
{
    runAndVerify(kernels::hashTableUpdate(300), PersistMode::Ppa);
}

TEST(CoreBasic, TreeWalkPpa)
{
    runAndVerify(kernels::searchTreeWalk(200), PersistMode::Ppa);
}

TEST(CoreBasic, ArraySwapPpa)
{
    runAndVerify(kernels::arraySwap(200), PersistMode::Ppa);
}

TEST(CoreBasic, TatpPpa)
{
    runAndVerify(kernels::tatpUpdate(150), PersistMode::Ppa);
}

TEST(CoreBasic, TpccPpa)
{
    runAndVerify(kernels::tpccNewOrder(100), PersistMode::Ppa);
}

TEST(CoreBasic, KvStorePpa)
{
    runAndVerify(kernels::kvStore(150, 20), PersistMode::Ppa);
}

TEST(CoreBasic, StencilPpa)
{
    runAndVerify(kernels::stencil(3, 256), PersistMode::Ppa);
}

TEST(CoreBasic, TableLookupPpa)
{
    runAndVerify(kernels::tableLookup(300, 1024), PersistMode::Ppa);
}

TEST(CoreBasic, StoreToLoadForwarding)
{
    // st then immediate ld of the same address must see the new value
    // even before the store merges into the cache.
    ProgramBuilder b;
    b.movi(1, 0x1000);
    b.movi(2, 55);
    b.st(2, 1, 0);
    b.ld(3, 1, 0);
    b.addi(3, 3, 1);
    b.st(3, 1, 8);
    b.halt();
    runAndVerify(b.program(), PersistMode::Ppa);
}

TEST(CoreBasic, FenceDrainsStores)
{
    ProgramBuilder b;
    b.movi(1, 0x1000);
    b.movi(2, 7);
    b.st(2, 1, 0);
    b.fence();
    b.ld(3, 1, 0);
    b.st(3, 1, 8);
    b.halt();
    runAndVerify(b.program(), PersistMode::Ppa);
    runAndVerify(b.program(), PersistMode::Volatile);
}

TEST(CoreBasic, AtomicRmwReturnsOldValue)
{
    ProgramBuilder b;
    b.initMem(0x2000, 10);
    b.movi(1, 0x2000);
    b.movi(2, 5);
    b.amoadd(3, 2, 1, 0);  // r3 = 10, mem = 15
    b.st(3, 1, 8);         // mem[0x2008] = 10
    b.halt();
    runAndVerify(b.program(), PersistMode::Ppa);
    runAndVerify(b.program(), PersistMode::Volatile);
}

TEST(CoreBasic, DependentChainComputesCorrectly)
{
    ProgramBuilder b;
    b.movi(0, 1);
    for (int i = 0; i < 40; ++i)
        b.addi(0, 0, 2);
    b.movi(1, 0x100);
    b.st(0, 1, 0);
    b.halt();
    runAndVerify(b.program(), PersistMode::Ppa);
}

TEST(CoreBasic, IpcIsReasonableForIndependentOps)
{
    // A stream of independent adds should achieve IPC well above 1
    // on the 4-wide core.
    ProgramBuilder b;
    b.movi(0, 200);
    auto loop = b.label();
    b.place(loop);
    for (ArchReg r = 1; r <= 8; ++r)
        b.addi(r, r, 1);
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();

    SystemConfig sc;
    System system(sc);
    ProgramExecutor source(b.program());
    system.bindSource(0, &source);
    system.run(1'000'000);
    ASSERT_TRUE(system.allDone());
    double ipc = static_cast<double>(system.core(0).committedInsts()) /
                 static_cast<double>(system.cycle());
    EXPECT_GT(ipc, 1.0);
}

TEST(CoreBasic, LcpcTracksLastCommit)
{
    ProgramBuilder b;
    b.movi(0, 1);
    b.movi(1, 2);
    b.halt();
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    ProgramExecutor source(b.program());
    system.bindSource(0, &source);
    system.run(100'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.core(0).anyCommitted());
    EXPECT_EQ(system.core(0).lastCommittedIndex(), 2u); // the halt
}

TEST(CoreBasic, DoneRequiresDrainedStores)
{
    ProgramBuilder b;
    b.movi(1, 0x1000);
    b.movi(2, 3);
    b.st(2, 1, 0);
    b.halt();
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    ProgramExecutor source(b.program());
    system.bindSource(0, &source);
    system.run(100'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.core(0).committedStores(), 1u);
}
