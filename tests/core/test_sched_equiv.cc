/** @file
 * Scheduler-equivalence suite: the optimized hot loop against the
 * old-path statistics oracle.
 *
 * The core's issue/wakeup path was restructured for host throughput
 * (flat waiter lists, ring buffers, a calendar event wheel — see
 * docs/PERF.md). None of that may change simulated behaviour: this
 * suite runs every workload profile through every pipeline-relevant
 * system variant and asserts that cycle counts, region boundaries,
 * store traffic, and stall accounting are identical to the golden
 * numbers recorded from the pre-optimization scheduler
 * (tests/core/sched_equiv_golden.txt).
 *
 * Regenerating the oracle (only when simulated behaviour changes *on
 * purpose*, e.g. a timing-model fix — never to paper over a scheduler
 * discrepancy):
 *
 *   PPA_SCHED_EQUIV_REGEN=1 ./build/tests/ppa_tests \
 *       --gtest_filter='SchedEquiv.*'
 *
 * which rewrites the golden file in the source tree.
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

using namespace ppa;

namespace
{

#ifndef PPA_SOURCE_DIR
#error "PPA_SOURCE_DIR must be defined by the build"
#endif

constexpr std::uint64_t equivInsts = 6'000;
constexpr std::uint64_t equivSeed = 42;

std::string
goldenPath()
{
    return std::string(PPA_SOURCE_DIR) +
           "/tests/core/sched_equiv_golden.txt";
}

/** The scheduler-visible scalar fingerprint of one run. */
struct Fingerprint
{
    std::uint64_t totalCycles = 0;
    std::uint64_t cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t regionCount = 0;
    std::uint64_t boundaryStallCycles = 0;
    std::uint64_t renameStallNoRegCycles = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t persistOps = 0;
    std::uint64_t coalescedStores = 0;

    bool operator==(const Fingerprint &other) const = default;
};

Fingerprint
fingerprintOf(const RunStats &rs)
{
    Fingerprint f;
    f.totalCycles = rs.totalCycles;
    f.cycles = rs.cycles;
    f.committedInsts = rs.committedInsts;
    f.committedStores = rs.committedStores;
    f.regionCount = rs.regionCount;
    f.boundaryStallCycles = rs.boundaryStallCycles;
    f.renameStallNoRegCycles = rs.renameStallNoRegCycles;
    f.nvmWrites = rs.nvmWrites;
    f.nvmBytesWritten = rs.nvmBytesWritten;
    f.persistOps = rs.persistOps;
    f.coalescedStores = rs.coalescedStores;
    return f;
}

std::string
fingerprintLine(const std::string &key, const Fingerprint &f)
{
    std::ostringstream os;
    os << key << ' ' << f.totalCycles << ' ' << f.cycles << ' '
       << f.committedInsts << ' ' << f.committedStores << ' '
       << f.regionCount << ' ' << f.boundaryStallCycles << ' '
       << f.renameStallNoRegCycles << ' ' << f.nvmWrites << ' '
       << f.nvmBytesWritten << ' ' << f.persistOps << ' '
       << f.coalescedStores;
    return os.str();
}

/** The grid: every profile through every pipeline-distinct variant. */
std::vector<SweepJob>
equivalenceGrid()
{
    std::vector<SweepJob> jobs;
    ExperimentKnobs knobs;
    knobs.instsPerCore = equivInsts;
    knobs.seed = equivSeed;
    for (const WorkloadProfile &p : allProfiles()) {
        for (SystemVariant v :
             {SystemVariant::MemoryMode, SystemVariant::Ppa,
              SystemVariant::Capri, SystemVariant::ReplayCache}) {
            jobs.push_back({p, v, knobs});
        }
    }
    return jobs;
}

std::string
jobKey(const SweepJob &job)
{
    return job.profile.name + "/" + variantToken(job.variant);
}

std::map<std::string, Fingerprint>
loadGolden(const std::string &path)
{
    std::map<std::string, Fingerprint> golden;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return golden;
    char line[512];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#' || line[0] == '\n')
            continue;
        char key[128];
        Fingerprint fp;
        if (std::sscanf(line,
                        "%127s %" SCNu64 " %" SCNu64 " %" SCNu64
                        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64,
                        key, &fp.totalCycles, &fp.cycles,
                        &fp.committedInsts, &fp.committedStores,
                        &fp.regionCount, &fp.boundaryStallCycles,
                        &fp.renameStallNoRegCycles, &fp.nvmWrites,
                        &fp.nvmBytesWritten, &fp.persistOps,
                        &fp.coalescedStores) == 12) {
            golden.emplace(key, fp);
        }
    }
    std::fclose(f);
    return golden;
}

} // namespace

TEST(SchedEquiv, AllProfilesMatchOldPathOracle)
{
    std::vector<SweepJob> jobs = equivalenceGrid();
    ExperimentDriver driver;
    std::vector<JobResult> results = driver.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());

    if (std::getenv("PPA_SCHED_EQUIV_REGEN")) {
        std::FILE *f = std::fopen(goldenPath().c_str(), "w");
        ASSERT_NE(f, nullptr) << "cannot write " << goldenPath();
        std::fprintf(f,
                     "# Scheduler-equivalence oracle: one line per "
                     "(workload, variant) at\n"
                     "# instsPerCore=%llu seed=%llu. Columns: key "
                     "totalCycles cycles committedInsts\n"
                     "# committedStores regionCount "
                     "boundaryStallCycles renameStallNoRegCycles\n"
                     "# nvmWrites nvmBytesWritten persistOps "
                     "coalescedStores.\n"
                     "# Regenerate: PPA_SCHED_EQUIV_REGEN=1 "
                     "ppa_tests --gtest_filter='SchedEquiv.*'\n",
                     static_cast<unsigned long long>(equivInsts),
                     static_cast<unsigned long long>(equivSeed));
        for (const JobResult &r : results) {
            std::fprintf(
                f, "%s\n",
                fingerprintLine(jobKey(r.job),
                                fingerprintOf(r.stats))
                    .c_str());
        }
        std::fclose(f);
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::map<std::string, Fingerprint> golden =
        loadGolden(goldenPath());
    ASSERT_FALSE(golden.empty())
        << "missing oracle " << goldenPath()
        << " (regenerate with PPA_SCHED_EQUIV_REGEN=1)";

    for (const JobResult &r : results) {
        std::string key = jobKey(r.job);
        auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
        Fingerprint actual = fingerprintOf(r.stats);
        EXPECT_EQ(actual, it->second)
            << key << "\n  actual: " << fingerprintLine(key, actual)
            << "\n  golden: " << fingerprintLine(key, it->second);
    }
    EXPECT_EQ(golden.size(), results.size())
        << "golden file has stale extra entries";
}
