/** @file Unit tests for renaming structures (PRF/free list/RAT). */

#include <gtest/gtest.h>

#include "core/rename.hh"

using namespace ppa;

TEST(PhysRegFile, WriteMakesReady)
{
    PhysRegFile prf(8);
    EXPECT_FALSE(prf.isReady(0));
    prf.write(0, 42);
    EXPECT_TRUE(prf.isReady(0));
    EXPECT_EQ(prf.value(0), 42u);
}

TEST(PhysRegFile, MarkPendingClearsReady)
{
    PhysRegFile prf(8);
    prf.write(3, 1);
    prf.markPending(3);
    EXPECT_FALSE(prf.isReady(3));
}

TEST(FreeList, FillAllocateFree)
{
    FreeList fl;
    fl.fill(0, 4);
    EXPECT_EQ(fl.size(), 4u);
    PhysReg a = fl.allocate();
    PhysReg b = fl.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(fl.size(), 2u);
    fl.free(a);
    EXPECT_EQ(fl.size(), 3u);
}

TEST(FreeList, FifoOrder)
{
    FreeList fl;
    fl.fill(0, 3);
    EXPECT_EQ(fl.allocate(), 0);
    EXPECT_EQ(fl.allocate(), 1);
    fl.free(7);
    EXPECT_EQ(fl.allocate(), 2);
    EXPECT_EQ(fl.allocate(), 7);
}

TEST(FreeList, EmptyDetection)
{
    FreeList fl;
    fl.fill(0, 1);
    EXPECT_FALSE(fl.empty());
    fl.allocate();
    EXPECT_TRUE(fl.empty());
}

TEST(RenameTable, StartsInvalid)
{
    RenameTable rt(16);
    for (ArchReg a = 0; a < 16; ++a)
        EXPECT_EQ(rt.lookup(a), invalidPhysReg);
}

TEST(RenameTable, UpdateAndLookup)
{
    RenameTable rt(16);
    rt.update(3, 77);
    EXPECT_EQ(rt.lookup(3), 77);
    EXPECT_EQ(rt.lookup(4), invalidPhysReg);
}

TEST(RenameTable, RawRoundTrip)
{
    RenameTable a(8), b(8);
    a.update(1, 10);
    a.update(7, 20);
    b.restoreRaw(a.raw());
    EXPECT_EQ(b.lookup(1), 10);
    EXPECT_EQ(b.lookup(7), 20);
    EXPECT_EQ(b.lookup(0), invalidPhysReg);
}
