/** @file Tests for the front end: branch predictor and L1I model. */

#include <gtest/gtest.h>

#include "core/branch_predictor.hh"
#include "isa/semantics.hh"
#include "isa/builder.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

using namespace ppa;

TEST(BranchPredictor, LearnsStableBranch)
{
    BranchPredictor bp(64);
    for (int i = 0; i < 20; ++i)
        bp.update(0x100, true);
    EXPECT_TRUE(bp.predict(0x100));
    EXPECT_GT(bp.accuracy(), 0.85);
}

TEST(BranchPredictor, AdaptsToDirectionChange)
{
    BranchPredictor bp(64);
    for (int i = 0; i < 10; ++i)
        bp.update(0x200, true);
    EXPECT_TRUE(bp.predict(0x200));
    for (int i = 0; i < 3; ++i)
        bp.update(0x200, false);
    EXPECT_FALSE(bp.predict(0x200));
}

TEST(BranchPredictor, TwoBitHysteresis)
{
    BranchPredictor bp(64);
    for (int i = 0; i < 10; ++i)
        bp.update(0x300, true);
    // A single not-taken must not flip a strongly-taken counter.
    bp.update(0x300, false);
    EXPECT_TRUE(bp.predict(0x300));
}

TEST(BranchPredictor, DistinctPcsIndependent)
{
    BranchPredictor bp(1024);
    for (int i = 0; i < 8; ++i) {
        bp.update(0x400, true);
        bp.update(0x404, false);
    }
    EXPECT_TRUE(bp.predict(0x400));
    EXPECT_FALSE(bp.predict(0x404));
}

TEST(BranchPredictor, LoopBranchNearPerfect)
{
    // A loop-closing branch: taken N-1 times, not-taken once per trip.
    BranchPredictor bp(64);
    for (int trip = 0; trip < 50; ++trip) {
        for (int i = 0; i < 9; ++i)
            bp.update(0x500, true);
        bp.update(0x500, false);
    }
    EXPECT_GT(bp.accuracy(), 0.85);
}

TEST(FrontEnd, LoopProgramTrainsPredictor)
{
    // The counter loop's back edge is taken 199/200 times: after
    // simulation, the core's predictor should be highly accurate.
    ProgramBuilder b;
    b.movi(0, 200);
    auto loop = b.label();
    b.place(loop);
    b.addi(1, 1, 1);
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();

    SystemConfig sc;
    System system(sc);
    ProgramExecutor source(b.program());
    system.bindSource(0, &source);
    system.run(10'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_GT(system.core(0).branchPredictor().accuracy(), 0.9);
}

TEST(FrontEnd, MispredictionCostsCycles)
{
    // Same instruction count, opposite predictability: alternating
    // branches mistrain a bimodal predictor.
    auto run_with_flips = [](bool alternating) {
        VectorSource src;
        for (int i = 0; i < 4000; ++i) {
            DynInst d;
            d.pc = 0x4000'0000 + (i % 64) * 4;
            if (i % 4 == 3) {
                d.op = Opcode::Branch;
                d.taken = alternating ? (i / 4) % 2 == 0 : true;
            } else {
                d.op = Opcode::IntAdd;
                d.dst = RegRef::intReg(1);
                d.srcs[0] = RegRef::intReg(1);
                d.imm = 1;
            }
            src.push(d);
        }
        SystemConfig sc;
        System system(sc);
        system.bindSource(0, &src);
        system.run(10'000'000);
        EXPECT_TRUE(system.allDone());
        return system.cycle();
    };
    EXPECT_GT(run_with_flips(true), run_with_flips(false));
}

TEST(FrontEnd, ICacheMissesStallFetch)
{
    // A huge code footprint streams through the L1I; a tiny one is
    // resident. Identical instruction mixes otherwise.
    auto run_with_code = [](std::uint64_t code_bytes) {
        WorkloadProfile p = profileByName("gcc");
        p.codeFootprintBytes = code_bytes;
        p.syncEveryInsts = 0;
        SystemConfig sc;
        System system(sc);
        StreamGenerator gen(p, 0, 5, 15000);
        system.bindSource(0, &gen);
        system.run(50'000'000);
        EXPECT_TRUE(system.allDone());
        return system.cycle();
    };
    Cycle small_code = run_with_code(8 * KiB);
    Cycle huge_code = run_with_code(4 * MiB);
    EXPECT_GT(huge_code, small_code);
}

TEST(FrontEnd, ICacheModelCanBeDisabled)
{
    WorkloadProfile p = profileByName("gcc");
    p.codeFootprintBytes = 4 * MiB;
    p.syncEveryInsts = 0;
    auto run = [&](bool model_icache) {
        SystemConfig sc;
        sc.core.modelICache = model_icache;
        System system(sc);
        StreamGenerator gen(p, 0, 5, 10000);
        system.bindSource(0, &gen);
        system.run(50'000'000);
        EXPECT_TRUE(system.allDone());
        return system.cycle();
    };
    EXPECT_GT(run(true), run(false));
}

TEST(FrontEnd, RecoveryWithFrontEndModels)
{
    // Crash consistency must hold with prediction + L1I stalls in the
    // mix (they perturb timing, never correctness).
    WorkloadProfile p = profileByName("gcc");
    StreamGenerator golden_gen(p, 0, 77, 3000);
    std::vector<DynInst> stream;
    DynInst d;
    while (golden_gen.next(d))
        stream.push_back(d);
    MemImage init;
    auto golden = runGolden(stream, init);

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    StreamGenerator source(p, 0, 77, 3000);
    system.bindSource(0, &source);
    system.runUntilCycle(2000);
    if (!system.allDone()) {
        auto images = system.powerFail();
        system.recover(images);
    }
    system.run(50'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(golden.mem));
}
