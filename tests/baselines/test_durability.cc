/** @file Tests for the software-durability baseline transforms. */

#include <gtest/gtest.h>

#include <vector>

#include "baselines/durability.hh"
#include "isa/semantics.hh"

using namespace ppa;

namespace
{

constexpr Addr dataA = 0x1000;
constexpr Addr dataB = 0x1008;
constexpr Addr dataC = 0x1010;
constexpr Addr publishAddr = 0x2000;
constexpr Addr commitAddr = 0x2008;
constexpr Addr logBase = 0x3000;

DynInst
movi(ArchReg rd, Word imm)
{
    DynInst di;
    di.op = Opcode::IntMov;
    di.dst = RegRef::intReg(rd);
    di.imm = imm;
    return di;
}

DynInst
st(ArchReg rdata, Addr addr)
{
    DynInst di;
    di.op = Opcode::Store;
    di.srcs[0] = RegRef::intReg(rdata);
    di.memAddr = addr;
    return di;
}

/** Two transactions: (A := 0xAA, B := 0xBB, publish 1) then
 *  (C := 0xCC, publish 2). */
VectorSource
twoTxnStream()
{
    VectorSource src;
    src.push(movi(1, 0xAA));
    src.push(st(1, dataA));
    src.push(movi(1, 0xBB));
    src.push(st(1, dataB));
    src.push(movi(2, 1));
    src.push(st(2, publishAddr));
    src.push(movi(1, 0xCC));
    src.push(st(1, dataC));
    src.push(movi(2, 2));
    src.push(st(2, publishAddr));
    return src;
}

DurabilityParams
params()
{
    DurabilityParams p;
    p.publishAddr = publishAddr;
    p.commitAddr = commitAddr;
    p.logBase = logBase;
    p.logWords = 8;
    return p;
}

std::vector<DynInst>
drain(DynInstSource &src)
{
    std::vector<DynInst> out;
    DynInst di;
    while (src.next(di))
        out.push_back(di);
    return out;
}

} // namespace

TEST(UndoRedoLogTransform, EmitsExactInjectionSequence)
{
    VectorSource inner = twoTxnStream();
    UndoRedoLogTransform t(inner, params());
    auto out = drain(t);

    // Per data store: the store, a log-ring shadow, a clwb of the log
    // slot. Per publish: fence, publish, commit record, clwb, fence.
    std::vector<Opcode> expect = {
        Opcode::IntMov, Opcode::Store, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Store, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Fence, Opcode::Store, Opcode::Store,
        Opcode::Clwb,   Opcode::Fence,
        Opcode::IntMov, Opcode::Store, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Fence, Opcode::Store, Opcode::Store,
        Opcode::Clwb,   Opcode::Fence,
    };
    ASSERT_EQ(out.size(), expect.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].op, expect[i]) << "inst " << i;

    // The first data store's shadow lands in log slot 0, the second in
    // slot 1, the third (second txn) in slot 2.
    EXPECT_EQ(out[2].memAddr, logBase + 0);
    EXPECT_EQ(out[3].memAddr, logBase + 0);
    EXPECT_EQ(out[6].memAddr, logBase + 8);
    EXPECT_EQ(out[16].memAddr, logBase + 16);
    // The commit record copies the publish store's data register.
    EXPECT_EQ(out[11].memAddr, commitAddr);
    EXPECT_EQ(out[11].srcs[0], out[10].srcs[0]);
    EXPECT_EQ(out[12].memAddr, commitAddr);

    EXPECT_EQ(t.injectedLogStores(), 3u);
    EXPECT_EQ(t.injectedClwbs(), 5u); // 3 log + 2 commit
    EXPECT_EQ(t.injectedFences(), 4u);
    EXPECT_EQ(t.committedTxns(), 2u);
    EXPECT_EQ(t.openTxnStores(), 0u);
}

TEST(UndoRedoLogTransform, InjectionPreservesIndicesMonotone)
{
    VectorSource inner = twoTxnStream();
    UndoRedoLogTransform t(inner, params());
    auto out = drain(t);
    // Injected instructions reuse the preceding original index so
    // LCPC bookkeeping stays monotonic.
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_GE(out[i].index, out[i - 1].index) << "inst " << i;
}

TEST(UndoRedoLogTransform, GoldenRunFillsLogAndCommitRecord)
{
    VectorSource inner = twoTxnStream();
    UndoRedoLogTransform t(inner, params());
    GoldenResult g = runGolden(drain(t), MemImage{});

    // Data semantics unchanged by the shadow traffic.
    EXPECT_EQ(g.mem.read(dataA), 0xAAu);
    EXPECT_EQ(g.mem.read(dataB), 0xBBu);
    EXPECT_EQ(g.mem.read(dataC), 0xCCu);
    EXPECT_EQ(g.mem.read(publishAddr), 2u);
    // The log ring holds the shadowed values in store order.
    EXPECT_EQ(g.mem.read(logBase + 0), 0xAAu);
    EXPECT_EQ(g.mem.read(logBase + 8), 0xBBu);
    EXPECT_EQ(g.mem.read(logBase + 16), 0xCCu);
    // The commit record tracks the last published sequence number.
    EXPECT_EQ(g.mem.read(commitAddr), 2u);
}

TEST(UndoRedoLogTransform, TracksOpenTransactionStores)
{
    VectorSource inner = twoTxnStream();
    UndoRedoLogTransform t(inner, params());
    DynInst di;
    // Consume through the second txn's data store but stop short of
    // its publish: one store is logged but uncommitted.
    for (int i = 0; i < 18; ++i)
        ASSERT_TRUE(t.next(di));
    EXPECT_EQ(t.committedTxns(), 1u);
    EXPECT_EQ(t.openTxnStores(), 1u);
}

TEST(UndoRedoLogTransform, LogRingWraps)
{
    VectorSource inner;
    for (int txn = 0; txn < 6; ++txn) {
        inner.push(movi(1, 0x100 + txn));
        inner.push(st(1, dataA));
        inner.push(st(1, dataB));
        inner.push(movi(2, txn + 1));
        inner.push(st(2, publishAddr));
    }
    DurabilityParams p = params();
    p.logWords = 4;
    UndoRedoLogTransform t(inner, p);
    GoldenResult g = runGolden(drain(t), MemImage{});
    EXPECT_EQ(t.injectedLogStores(), 12u);
    // 12 shadowed stores over a 4-word ring: the last lap (txns 5 and
    // 6, values 0x104/0x104/0x105/0x105) is what survives.
    EXPECT_EQ(g.mem.read(logBase + 0), 0x104u);
    EXPECT_EQ(g.mem.read(logBase + 8), 0x104u);
    EXPECT_EQ(g.mem.read(logBase + 16), 0x105u);
    EXPECT_EQ(g.mem.read(logBase + 24), 0x105u);
}

TEST(DelayFreeTransform, EmitsExactInjectionSequence)
{
    VectorSource inner = twoTxnStream();
    DelayFreeTransform t(inner, params());
    auto out = drain(t);

    // Per data store: a clwb of its own line. Per publish: fence,
    // publish, clwb of the publish line — and no trailing fence.
    std::vector<Opcode> expect = {
        Opcode::IntMov, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Fence, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Store, Opcode::Clwb,
        Opcode::IntMov, Opcode::Fence, Opcode::Store, Opcode::Clwb,
    };
    ASSERT_EQ(out.size(), expect.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].op, expect[i]) << "inst " << i;
    // clwbs flush the just-written lines, not a log.
    EXPECT_EQ(out[2].memAddr, dataA);
    EXPECT_EQ(out[5].memAddr, dataB);
    EXPECT_EQ(out[9].memAddr, publishAddr);

    EXPECT_EQ(t.injectedClwbs(), 5u);
    EXPECT_EQ(t.injectedFences(), 2u);
    EXPECT_EQ(t.committedTxns(), 2u);
}

TEST(DelayFreeTransform, GoldenSemanticsUnchanged)
{
    VectorSource plain = twoTxnStream();
    GoldenResult base = runGolden(plain.all(), MemImage{});

    VectorSource inner = twoTxnStream();
    DelayFreeTransform t(inner, params());
    GoldenResult g = runGolden(drain(t), MemImage{});

    // clwb and fence have no functional effect: every word the plain
    // stream wrote reads back identically.
    EXPECT_EQ(g.mem.read(dataA), base.mem.read(dataA));
    EXPECT_EQ(g.mem.read(dataB), base.mem.read(dataB));
    EXPECT_EQ(g.mem.read(dataC), base.mem.read(dataC));
    EXPECT_EQ(g.mem.read(publishAddr), base.mem.read(publishAddr));
    EXPECT_EQ(g.storeCount, base.storeCount);
}

TEST(DurabilityTransforms, SeekClearsPendingInjection)
{
    VectorSource inner = twoTxnStream();
    UndoRedoLogTransform t(inner, params());
    DynInst di;
    // Stop right after a data store: its shadow pair is pending.
    ASSERT_TRUE(t.next(di));
    ASSERT_TRUE(t.next(di));
    ASSERT_EQ(di.op, Opcode::Store);
    t.seekTo(0);
    // The replayed stream must restart cleanly from the original
    // instruction, not leak the stale pending shadow.
    ASSERT_TRUE(t.next(di));
    EXPECT_EQ(di.op, Opcode::IntMov);
}
