/** @file Tests for the ReplayCache baseline transform and mode. */

#include <gtest/gtest.h>

#include "baselines/replaycache.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

TEST(ReplayCacheTransform, InsertsClwbAfterEachStore)
{
    VectorSource inner;
    DynInst st;
    st.op = Opcode::Store;
    st.srcs[0] = RegRef::intReg(0);
    st.memAddr = 0x1000;
    inner.push(st);
    DynInst add;
    add.op = Opcode::IntAdd;
    add.dst = RegRef::intReg(1);
    inner.push(add);

    ReplayCacheTransform rc(inner, ReplayCacheParams{});
    DynInst out;
    ASSERT_TRUE(rc.next(out));
    EXPECT_EQ(out.op, Opcode::Store);
    ASSERT_TRUE(rc.next(out));
    EXPECT_EQ(out.op, Opcode::Clwb);
    EXPECT_EQ(out.memAddr, 0x1000u);
    ASSERT_TRUE(rc.next(out));
    EXPECT_EQ(out.op, Opcode::IntAdd);
    EXPECT_EQ(rc.injectedClwbs(), 1u);
}

TEST(ReplayCacheTransform, InsertsFenceEveryRegion)
{
    VectorSource inner;
    for (int i = 0; i < 30; ++i) {
        DynInst add;
        add.op = Opcode::IntAdd;
        add.dst = RegRef::intReg(1);
        inner.push(add);
    }
    ReplayCacheParams p;
    p.regionInsts = 10;
    ReplayCacheTransform rc(inner, p);
    unsigned fences = 0, total = 0;
    DynInst out;
    while (rc.next(out)) {
        ++total;
        if (out.op == Opcode::Fence)
            ++fences;
    }
    EXPECT_EQ(fences, 3u);
    EXPECT_EQ(total, 33u);
}

TEST(ReplayCacheTransform, SyncResetsRegionWithoutExtraFence)
{
    VectorSource inner;
    for (int i = 0; i < 9; ++i) {
        DynInst add;
        add.op = Opcode::IntAdd;
        add.dst = RegRef::intReg(1);
        inner.push(add);
    }
    DynInst fence;
    fence.op = Opcode::Fence;
    inner.push(fence);

    ReplayCacheParams p;
    p.regionInsts = 10;
    ReplayCacheTransform rc(inner, p);
    unsigned fences = 0;
    DynInst out;
    while (rc.next(out)) {
        if (out.op == Opcode::Fence)
            ++fences;
    }
    // The program's own fence serves as the boundary; no injected one.
    EXPECT_EQ(fences, 1u);
    EXPECT_EQ(rc.injectedFences(), 0u);
}

TEST(ReplayCacheMode, FunctionalCorrectnessPreserved)
{
    Program prog = kernels::hashTableUpdate(150);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::ReplayCache;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    ReplayCacheTransform rc(source, ReplayCacheParams{});
    system.bindSource(0, &rc);
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().committed().sameContents(
        golden.goldenMemory()));
    // Every store was clwb'ed (plus the final drain): NVM matches.
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(ReplayCacheMode, SlowerThanPpa)
{
    // The motivation figure: ReplayCache's short regions and per-store
    // clwb make it much slower than PPA on the same kernel.
    Program prog = kernels::hashTableUpdate(250);

    auto run_mode = [&](PersistMode mode) {
        SystemConfig sc;
        sc.core.mode = mode;
        System system(sc);
        system.seedMemory(prog.initialMemory());
        ProgramExecutor source(prog);
        std::unique_ptr<ReplayCacheTransform> rc;
        if (mode == PersistMode::ReplayCache) {
            rc = std::make_unique<ReplayCacheTransform>(
                source, ReplayCacheParams{});
            system.bindSource(0, rc.get());
        } else {
            system.bindSource(0, &source);
        }
        system.run(80'000'000);
        EXPECT_TRUE(system.allDone());
        return system.cycle();
    };

    Cycle rc_cycles = run_mode(PersistMode::ReplayCache);
    Cycle ppa_cycles = run_mode(PersistMode::Ppa);
    EXPECT_GT(rc_cycles, ppa_cycles);
}
