/** @file Tests for the Capri redo-buffer baseline. */

#include <gtest/gtest.h>

#include "baselines/capri.hh"
#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;

TEST(CapriChannel, AcceptsUntilFull)
{
    ClockDomain clk(2e9);
    // Tiny 64-byte buffer = 4 entries of 16 B.
    CapriChannel ch(clk, 4.0, 64);
    EXPECT_TRUE(ch.onStoreCommit(0));
    EXPECT_TRUE(ch.onStoreCommit(0));
    EXPECT_TRUE(ch.onStoreCommit(0));
    EXPECT_TRUE(ch.onStoreCommit(0));
    EXPECT_FALSE(ch.onStoreCommit(0));
    EXPECT_EQ(ch.fullStalls(), 1u);
}

TEST(CapriChannel, DrainsAtPathBandwidth)
{
    ClockDomain clk(2e9);
    CapriChannel ch(clk, 4.0, 64);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ch.onStoreCommit(0));
    EXPECT_FALSE(ch.empty(0));
    // 16 B at 4 GB/s = 4 ns = 8 cycles per entry, with a 38 ns
    // (76-cycle) path latency floor: completions land at 76, 84, 92,
    // 100.
    EXPECT_FALSE(ch.empty(60));
    EXPECT_FALSE(ch.empty(99));
    EXPECT_TRUE(ch.empty(101));
}

TEST(CapriChannel, LatencyFloorAppliesToSingleEntry)
{
    ClockDomain clk(2e9);
    CapriChannel ch(clk, 4.0, 1024);
    ASSERT_TRUE(ch.onStoreCommit(1000));
    EXPECT_FALSE(ch.empty(1075));
    EXPECT_TRUE(ch.empty(1077));
}

TEST(CapriChannel, SlowerPathDrainsLater)
{
    ClockDomain clk(2e9);
    CapriChannel fast(clk, 32.0, 1024);
    CapriChannel slow(clk, 4.0, 1024);
    for (int i = 0; i < 16; ++i) {
        fast.onStoreCommit(0);
        slow.onStoreCommit(0);
    }
    Cycle t = 0;
    while (!fast.empty(t))
        ++t;
    Cycle t_fast = t;
    t = 0;
    while (!slow.empty(t))
        ++t;
    EXPECT_GT(t, t_fast);
}

TEST(CapriMode, FunctionalCorrectnessPreserved)
{
    Program prog = kernels::tatpUpdate(120);
    ProgramExecutor golden(prog);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Capri;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().committed().sameContents(
        golden.goldenMemory()));
}

TEST(CapriMode, FormsCompilerRegions)
{
    Program prog = kernels::hashTableUpdate(300);
    SystemConfig sc;
    sc.core.mode = PersistMode::Capri;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    // ~29-instruction regions over ~4k instructions.
    std::uint64_t insts = system.core(0).committedInsts();
    std::uint64_t regions = system.core(0).regionStats().regionCount();
    EXPECT_GT(regions, insts / 40);
}
