/**
 * @file
 * Structured random program generation for differential testing.
 *
 * Produces well-formed micro-ISA programs — nested counted loops with
 * random bodies of ALU ops, loads, stores, atomics, and fences — whose
 * functional behaviour the golden model defines. Differential tests
 * run them through the pipeline (any mode, any configuration, with or
 * without power failures) and require exact state equality.
 */

#ifndef PPA_TESTS_SUPPORT_RANDOM_PROGRAM_HH
#define PPA_TESTS_SUPPORT_RANDOM_PROGRAM_HH

#include "common/rng.hh"
#include "isa/builder.hh"

namespace ppa
{
namespace testsupport
{

/** Tuning for random program generation. */
struct RandomProgramParams
{
    /** Top-level loop iterations (bounds the dynamic length). */
    unsigned outerIters = 12;
    /** Instructions per loop body. */
    unsigned bodyOps = 24;
    /** Number of nested inner loops. */
    unsigned innerLoops = 2;
    /** Memory region the program owns. */
    Addr dataBase = 0x100000;
    std::uint64_t dataBytes = 8 * 1024;
    /** Probability weights. */
    double storeProb = 0.2;
    double loadProb = 0.25;
    double fenceProb = 0.02;
    double atomicProb = 0.02;
};

/**
 * Build a random program from @p seed.
 *
 * Register conventions: r0..r2 are loop counters (owned by the
 * harness), r3 is the data base pointer, r4..r11 are scratch integer
 * registers, f0..f5 scratch FP registers. Addresses are computed
 * within [dataBase, dataBase+dataBytes) via masked scratch values, so
 * any generated program is memory-safe by construction.
 */
inline Program
makeRandomProgram(std::uint64_t seed,
                  const RandomProgramParams &params = {})
{
    Rng rng(seed);
    ProgramBuilder b;

    // Seed some initial data so early loads see nonzero values.
    for (Addr off = 0; off < params.dataBytes; off += 64)
        b.initMem(params.dataBase + off, off * 2654435761ull);

    b.movi(3, params.dataBase);
    b.movi(15, params.dataBytes - 8); // address mask space
    // Scratch registers start with distinct values.
    for (ArchReg r = 4; r <= 11; ++r)
        b.movi(r, seed * 31 + static_cast<std::uint64_t>(r) * 17 + 1);

    auto emit_address_into = [&](ArchReg dst, ArchReg src) {
        // addr = base + (src & (dataBytes-8)) rounded to words; the
        // mask keeps every access inside the owned region.
        b.and_(dst, src, 15);
        b.shri(dst, dst, 3);
        b.shli(dst, dst, 3);
        b.add(dst, dst, 3);
    };

    auto emit_body = [&](unsigned ops) {
        for (unsigned i = 0; i < ops; ++i) {
            double u = rng.uniform();
            auto ra = static_cast<ArchReg>(rng.range(4, 11));
            auto rb_reg = static_cast<ArchReg>(rng.range(4, 11));
            auto rd = static_cast<ArchReg>(rng.range(4, 11));
            if (u < params.storeProb) {
                emit_address_into(12, ra);
                b.st(rb_reg, 12, 0);
            } else if (u < params.storeProb + params.loadProb) {
                emit_address_into(12, ra);
                b.ld(rd, 12, 0);
            } else if (u < params.storeProb + params.loadProb +
                               params.fenceProb) {
                b.fence();
            } else if (u < params.storeProb + params.loadProb +
                               params.fenceProb + params.atomicProb) {
                emit_address_into(12, ra);
                b.amoadd(rd, rb_reg, 12, 0);
            } else {
                switch (rng.below(6)) {
                  case 0:
                    b.add(rd, ra, rb_reg);
                    break;
                  case 1:
                    b.sub(rd, ra, rb_reg);
                    break;
                  case 2:
                    b.xor_(rd, ra, rb_reg);
                    break;
                  case 3:
                    b.mul(rd, ra, rb_reg);
                    break;
                  case 4:
                    b.shri(rd, ra, rng.range(1, 7));
                    break;
                  default:
                    b.addi(rd, ra, rng.below(1000));
                    break;
                }
            }
        }
    };

    // Outer loop with a couple of nested counted loops inside.
    b.movi(0, params.outerIters);
    auto outer = b.label();
    b.place(outer);
    emit_body(params.bodyOps);
    for (unsigned l = 0; l < params.innerLoops; ++l) {
        b.movi(1, rng.range(2, 5));
        auto inner = b.label();
        b.place(inner);
        emit_body(params.bodyOps / 2);
        b.subi(1, 1, 1);
        b.brnz(1, inner);
    }
    b.subi(0, 0, 1);
    b.brnz(0, outer);
    b.halt();
    return b.program();
}

} // namespace testsupport
} // namespace ppa

#endif // PPA_TESTS_SUPPORT_RANDOM_PROGRAM_HH
