/** @file
 * Telemetry oracle suite (docs/TELEMETRY.md).
 *
 * The contracts under test:
 *  - Stall attribution is an exact partition: per core, the eight
 *    CycleClass buckets sum to the covered cycles, which on the
 *    classic path is the whole run.
 *  - Downsampling is lossless for interval counters: the sum over an
 *    nvmWriteBytes series equals the end-of-run NVM aggregate, for
 *    any series capacity.
 *  - Telemetry joins the repo's bitwise determinism contracts: a
 *    sweep's results are identical serial vs parallel, and a
 *    time-parallel run's stitched telemetry is identical for any
 *    host worker count.
 *  - `stats.telemetry` is additive (absent when off) and round-trips
 *    through the schema-v1 JSON byte-for-byte.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workload/profile.hh"

using namespace ppa;

namespace
{

ExperimentKnobs
telemetryKnobs(std::uint64_t insts = 8'000)
{
    ExperimentKnobs k;
    k.instsPerCore = insts;
    k.seed = 42;
    k.telemetry = true;
    return k;
}

/** Per-core bucket sums must equal the covered-cycle count — the
 *  exactly-one-class-per-cycle partition. */
void
expectExactPartition(const obs::TelemetryResult &t)
{
    ASSERT_TRUE(t.enabled);
    ASSERT_FALSE(t.stallCycles.empty());
    for (std::size_t core = 0; core < t.stallCycles.size(); ++core) {
        std::uint64_t sum = 0;
        for (std::uint64_t v : t.stallCycles[core])
            sum += v;
        EXPECT_EQ(sum, t.coveredCycles) << "core " << core;
    }
}

} // namespace

TEST(Telemetry, StallPartitionCoversWholeRun)
{
    for (const char *variant : {"ppa", "memory-mode", "capri"}) {
        SystemVariant v;
        ASSERT_TRUE(variantFromToken(variant, v));
        RunStats rs = runWorkload(profileByName("gcc"), v,
                                  telemetryKnobs());
        SCOPED_TRACE(variant);
        expectExactPartition(rs.telemetry);
        // Classic runner attaches at cycle 0: covered == whole run.
        EXPECT_EQ(rs.telemetry.coveredCycles, rs.totalCycles);
        EXPECT_GT(rs.telemetry.classCycles(obs::CycleClass::Active),
                  0u);
    }
}

TEST(Telemetry, StallPartitionMultiCore)
{
    ExperimentKnobs k = telemetryKnobs(4'000);
    k.threads = 4;
    RunStats rs =
        runWorkload(profileByName("gcc"), SystemVariant::Ppa, k);
    ASSERT_EQ(rs.telemetry.stallCycles.size(), 4u);
    expectExactPartition(rs.telemetry);
    EXPECT_EQ(rs.telemetry.coveredCycles, rs.totalCycles);
}

TEST(Telemetry, DownsamplingPreservesIntervalTotals)
{
    // The same run under aggressive and generous series capacities:
    // bucket counts differ, totals must not. The nvmWriteBytes series
    // is the end-to-end check — its sum is pinned to the NVM device's
    // own aggregate, which the collector never reads directly (it
    // accumulates per-sample deltas plus a harvest-time flush).
    for (std::uint64_t cap : {4u, 16u, 1024u}) {
        ExperimentKnobs k = telemetryKnobs();
        k.telemetrySeriesCap = cap;
        RunStats rs = runWorkload(profileByName("gcc"),
                                  SystemVariant::Ppa, k);
        SCOPED_TRACE(cap);
        const obs::TelemetrySeries *wr =
            rs.telemetry.findSeries("nvmWriteBytes", -1);
        ASSERT_NE(wr, nullptr);
        EXPECT_EQ(wr->total(), rs.nvmBytesWritten);
        EXPECT_LE(wr->cycles.size(), std::max<std::uint64_t>(cap, 2));
        // Occupancy series keep their sample population too.
        const obs::TelemetrySeries *rob =
            rs.telemetry.findSeries("rob", 0);
        ASSERT_NE(rob, nullptr);
        EXPECT_EQ(rob->samples(),
                  rs.totalCycles / rs.telemetry.sampleCycles + 1);
    }
}

TEST(Telemetry, SweepSerialVsParallelBitwise)
{
    std::vector<SweepJob> jobs;
    for (const char *app : {"gcc", "rb", "mcf"}) {
        SweepJob j;
        j.profile = profileByName(app);
        j.variant = SystemVariant::Ppa;
        j.knobs = telemetryKnobs(5'000);
        jobs.push_back(j);
    }
    auto serial = ExperimentDriver(1).run(jobs);
    auto parallel = ExperimentDriver(4).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].stats.telemetry.enabled);
        EXPECT_EQ(metrics::runStatsToJson(serial[i].stats),
                  metrics::runStatsToJson(parallel[i].stats))
            << jobs[i].profile.name;
    }
}

TEST(Telemetry, TimeParallelWorkerCountInvariance)
{
    ExperimentKnobs k = telemetryKnobs(12'000);
    k.timeParallel = 4;
    k.tpWarmupInsts = 500;
    for (const char *app : {"gcc", "rb"}) {
        const WorkloadProfile &p = profileByName(app);
        ExperimentKnobs k1 = k;
        k1.tpWorkers = 1;
        ExperimentKnobs k4 = k;
        k4.tpWorkers = 4;
        RunStats w1 = runWorkload(p, SystemVariant::Ppa, k1);
        RunStats w4 = runWorkload(p, SystemVariant::Ppa, k4);
        SCOPED_TRACE(app);
        EXPECT_TRUE(w1.telemetry.enabled);
        expectExactPartition(w1.telemetry);
        EXPECT_EQ(metrics::runStatsToJson(w1),
                  metrics::runStatsToJson(w4));
    }
}

TEST(Telemetry, TimeParallelCoversStitchedWindow)
{
    // Segments attach after their warmup prefix, so the stitched
    // covered window is exactly the measured (stitched) cycles.
    ExperimentKnobs k = telemetryKnobs(12'000);
    k.timeParallel = 3;
    k.tpWarmupInsts = 500;
    RunStats rs =
        runWorkload(profileByName("gcc"), SystemVariant::Ppa, k);
    expectExactPartition(rs.telemetry);
    EXPECT_EQ(rs.telemetry.coveredCycles, rs.cycles);
}

TEST(Telemetry, OffPathIsAdditive)
{
    ExperimentKnobs k;
    k.instsPerCore = 3'000;
    RunStats rs =
        runWorkload(profileByName("gcc"), SystemVariant::Ppa, k);
    EXPECT_FALSE(rs.telemetry.enabled);
    std::string json = metrics::runStatsToJson(rs);
    EXPECT_EQ(json.find("telemetry"), std::string::npos);
}

TEST(Telemetry, JsonRoundTripBitwise)
{
    ExperimentKnobs k = telemetryKnobs();
    k.failAtCycles = {2'000};
    RunStats rs =
        runWorkload(profileByName("gcc"), SystemVariant::Ppa, k);
    ASSERT_FALSE(rs.telemetry.powerEvents.empty());
    std::string json = metrics::runStatsToJson(rs);

    metrics::JsonValue doc;
    std::string err;
    ASSERT_TRUE(metrics::JsonValue::parse(json, doc, err)) << err;
    RunStats back = metrics::runStatsFromJson(doc);
    EXPECT_EQ(metrics::runStatsToJson(back), json);
}

TEST(Telemetry, RegionAndPowerTimelines)
{
    ExperimentKnobs k = telemetryKnobs();
    k.failAtCycles = {2'000};
    RunStats rs =
        runWorkload(profileByName("gcc"), SystemVariant::Ppa, k);
    const obs::TelemetryResult &t = rs.telemetry;

    ASSERT_FALSE(t.regionEvents.empty());
    for (const obs::TelemetryRegionEvent &e : t.regionEvents) {
        EXPECT_LE(e.start, e.drainStart);
        EXPECT_LE(e.drainStart, e.end);
        EXPECT_LT(e.end, t.coveredCycles + 1);
    }
    ASSERT_EQ(t.powerEvents.size(), 1u);
    EXPECT_TRUE(t.powerEvents[0].recovered);
    EXPECT_LE(t.powerEvents[0].fail, t.powerEvents[0].recover);
    EXPECT_EQ(rs.powerFailures, 1u);
}
