/** @file End-to-end tests for the open-loop serving study. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/serve.hh"

using namespace ppa;
using namespace ppa::serve;

namespace
{

ServeConfig
smallConfig()
{
    ServeConfig cfg;
    cfg.workload = ServeWorkload::Tatp;
    cfg.requests = 240;
    cfg.threads = 2;
    cfg.keys = 256;
    cfg.skew = 0.9;
    cfg.arrival.meanGap = 64.0;
    cfg.failures = 4;
    cfg.seed = 11;
    return cfg;
}

void
checkCommonInvariants(const ServeConfig &cfg,
                      const ServeVariantStats &s)
{
    std::string tag = serveVariantToken(s.variant);
    EXPECT_EQ(s.requests, cfg.requests) << tag;
    EXPECT_EQ(s.completed, cfg.requests) << tag;
    EXPECT_GT(s.serviceCycles, 0u) << tag;
    EXPECT_GT(s.committedInsts, 0u) << tag;
    EXPECT_GT(s.committedStores, 0u) << tag;
    EXPECT_GT(s.achievedPerKcycle, 0.0) << tag;
    EXPECT_GT(s.offeredPerKcycle, 0.0) << tag;

    EXPECT_EQ(s.latency.count(), cfg.requests) << tag;
    std::uint64_t prev = 0;
    for (double f : {0.50, 0.95, 0.99, 0.999, 0.9999}) {
        std::uint64_t p = s.latency.percentile(f);
        EXPECT_GE(p, prev) << tag << " frac " << f;
        prev = p;
    }
    EXPECT_LE(prev, s.latency.max()) << tag;

    ASSERT_EQ(s.failures.size(), cfg.failures) << tag;
    Cycle prev_cycle = 0;
    for (const FailurePoint &fp : s.failures) {
        EXPECT_GT(fp.cycle, prev_cycle) << tag;
        prev_cycle = fp.cycle;
        EXPECT_GT(fp.recoveryCycles, 0u) << tag;
        EXPECT_EQ(fp.durableRequests + fp.lostRequests,
                  fp.completedRequests)
            << tag << " cycle " << fp.cycle;
        EXPECT_LE(fp.lossWindow, fp.cycle)
            << tag << " cycle " << fp.cycle;
        EXPECT_LE(fp.completedRequests, cfg.requests) << tag;
    }
    // The last crash point sits deep in the run: work completed.
    EXPECT_GT(s.failures.back().completedRequests, 0u) << tag;
}

} // namespace

TEST(Serve, VariantTokensRoundTrip)
{
    for (ServeVariant v : allServeVariants()) {
        ServeVariant parsed;
        ASSERT_TRUE(serveVariantFromToken(serveVariantToken(v), parsed));
        EXPECT_EQ(parsed, v);
    }
    ServeVariant v;
    EXPECT_FALSE(serveVariantFromToken("eadr", v));
    EXPECT_EQ(allServeVariants().size(), 3u);
}

TEST(Serve, PpaVariantCompletesWithNoInjectedInstructions)
{
    ServeConfig cfg = smallConfig();
    ServeVariantStats s = runServeVariant(cfg, ServeVariant::Ppa);
    checkCommonInvariants(cfg, s);
    EXPECT_EQ(s.injectedClwbs, 0u);
    EXPECT_EQ(s.injectedFences, 0u);
    EXPECT_EQ(s.injectedLogStores, 0u);
    EXPECT_GT(s.nvmWrites, 0u);
}

TEST(Serve, UndoRedoLogInjectsLoggingTraffic)
{
    ServeConfig cfg = smallConfig();
    ServeVariantStats s =
        runServeVariant(cfg, ServeVariant::UndoRedoLog);
    checkCommonInvariants(cfg, s);
    // Every data store is shadowed (tatp: 2 per request) and every
    // commit adds a record clwb and two fences.
    EXPECT_EQ(s.injectedLogStores, cfg.requests * 2);
    EXPECT_EQ(s.injectedFences, cfg.requests * 2);
    EXPECT_EQ(s.injectedClwbs, cfg.requests * 3);
}

TEST(Serve, DelayFreeInjectsFlushOnlyTraffic)
{
    ServeConfig cfg = smallConfig();
    ServeVariantStats s = runServeVariant(cfg, ServeVariant::DelayFree);
    checkCommonInvariants(cfg, s);
    EXPECT_EQ(s.injectedLogStores, 0u);
    EXPECT_EQ(s.injectedFences, cfg.requests);
    // clwb per data store plus one per publish.
    EXPECT_EQ(s.injectedClwbs, cfg.requests * 3);
}

TEST(Serve, SoftwareDurabilityCostsThroughput)
{
    // The study's headline: the same offered load costs the software
    // schemes more cycles per request than hardware persistence.
    ServeConfig cfg = smallConfig();
    cfg.failures = 0;
    ServeVariantStats ppa = runServeVariant(cfg, ServeVariant::Ppa);
    ServeVariantStats log =
        runServeVariant(cfg, ServeVariant::UndoRedoLog);
    EXPECT_GT(log.serviceCycles, ppa.serviceCycles);
}

TEST(Serve, StudyIsDeterministic)
{
    ServeConfig cfg = smallConfig();
    cfg.failures = 2;
    ServeStats a = runServeStudy(cfg, allServeVariants());
    ServeStats b = runServeStudy(cfg, allServeVariants());
    EXPECT_EQ(serveToJson(a), serveToJson(b));
}

TEST(Serve, WorkerCountNeverChangesResults)
{
    // The serial == parallel bitwise contract: failure branches are
    // stored by index, so the host pool size is invisible.
    ServeConfig serial = smallConfig();
    serial.workers = 1;
    ServeConfig wide = smallConfig();
    wide.workers = 8;
    ServeStats a = runServeStudy(serial, {ServeVariant::DelayFree});
    ServeStats b = runServeStudy(wide, {ServeVariant::DelayFree});
    // workers is scheduling metadata: not echoed into the JSON, and
    // the measured document is bitwise identical.
    EXPECT_EQ(serveToJson(a), serveToJson(b));
}

TEST(Serve, KvWorkloadServes)
{
    ServeConfig cfg = smallConfig();
    cfg.workload = ServeWorkload::Kv;
    cfg.readPct = 50;
    cfg.failures = 2;
    ServeVariantStats s = runServeVariant(cfg, ServeVariant::Ppa);
    checkCommonInvariants(cfg, s);
}

TEST(Serve, JsonDocumentShape)
{
    ServeConfig cfg = smallConfig();
    cfg.failures = 2;
    ServeStats stats = runServeStudy(cfg, {ServeVariant::Ppa});
    std::string json = serveToJson(stats);
    // Additive schema-v1 document of kind "serve"; per-variant metrics
    // under stats.serve (docs/METRICS.md).
    EXPECT_NE(json.find("\"schemaVersion\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"serve\""), std::string::npos);
    EXPECT_NE(json.find("\"variants\": ["), std::string::npos);
    EXPECT_NE(json.find("\"serve\": {"), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);
    EXPECT_NE(json.find("\"p9999\""), std::string::npos);
    EXPECT_NE(json.find("\"lossWindow\""), std::string::npos);
    EXPECT_NE(json.find("\"recovery\""), std::string::npos);
    // Scheduling metadata must not leak into the measured document.
    EXPECT_EQ(json.find("\"workers\""), std::string::npos);
    // No telemetry requested: the key is absent, not empty.
    EXPECT_EQ(json.find("\"telemetry\""), std::string::npos);
}

TEST(Serve, TelemetryCarriesRequestSpans)
{
    ServeConfig cfg = smallConfig();
    cfg.requests = 120;
    cfg.failures = 0;
    cfg.telemetry = true;
    ServeVariantStats s = runServeVariant(cfg, ServeVariant::Ppa);
    ASSERT_FALSE(s.telemetry.requestSpans.empty());
    EXPECT_LE(s.telemetry.requestSpans.size(),
              static_cast<std::size_t>(obs::kRequestSpanCap));
    for (const obs::TelemetryRequestSpan &span :
         s.telemetry.requestSpans) {
        EXPECT_LT(span.core, cfg.threads);
        EXPECT_GE(span.start, span.arrival);
        EXPECT_GE(span.finish, span.start);
    }
}
