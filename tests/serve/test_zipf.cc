/** @file Tests for the Zipfian key-popularity generator. */

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "serve/zipf.hh"

using namespace ppa;
using namespace ppa::serve;

TEST(Zipf, DeterministicFromSeed)
{
    ZipfGenerator za(1024, 0.99);
    ZipfGenerator zb(1024, 0.99);
    Rng ra(7), rb(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(za.sample(ra), zb.sample(rb)) << "draw " << i;
}

TEST(Zipf, ZeroSkewIsUniform)
{
    constexpr std::uint64_t keys = 16;
    constexpr std::uint64_t draws = 64000;
    ZipfGenerator z(keys, 0.0);
    Rng rng(42);
    std::array<std::uint64_t, keys> counts{};
    for (std::uint64_t i = 0; i < draws; ++i) {
        std::uint64_t r = z.sample(rng);
        ASSERT_LT(r, keys);
        ++counts[r];
    }
    // Every cell within a loose 2x band of the uniform expectation.
    constexpr std::uint64_t expect = draws / keys;
    for (std::uint64_t k = 0; k < keys; ++k) {
        EXPECT_GT(counts[k], expect / 2) << "key " << k;
        EXPECT_LT(counts[k], expect * 2) << "key " << k;
    }
}

TEST(Zipf, SkewConcentratesOnLowRanks)
{
    constexpr std::uint64_t keys = 1024;
    constexpr std::uint64_t draws = 50000;
    auto rank0_share = [&](double theta) {
        ZipfGenerator z(keys, theta);
        Rng rng(3);
        std::uint64_t hits = 0;
        for (std::uint64_t i = 0; i < draws; ++i) {
            if (z.sample(rng) == 0)
                ++hits;
        }
        return static_cast<double>(hits) / draws;
    };
    double flat = rank0_share(0.0);
    double skewed = rank0_share(0.99);
    double steeper = rank0_share(1.2);
    // theta = 0.99 over 1024 keys puts >10% of mass on the top rank;
    // uniform puts ~0.1% there. More skew, more mass.
    EXPECT_LT(flat, 0.01);
    EXPECT_GT(skewed, 0.10);
    EXPECT_GT(steeper, skewed);
}

TEST(Zipf, RankOrderingHolds)
{
    constexpr std::uint64_t keys = 64;
    ZipfGenerator z(keys, 0.99);
    Rng rng(11);
    std::vector<std::uint64_t> counts(keys, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[z.sample(rng)];
    // Popularity must decay with rank: compare head to deep tail.
    EXPECT_GT(counts[0], counts[8]);
    EXPECT_GT(counts[1], counts[32]);
    EXPECT_GT(counts[0], counts[keys - 1] * 4);
}

TEST(Zipf, HarmonicSingularityIsSafe)
{
    // theta exactly 1 hits the closed form's pole; the generator must
    // nudge it and still produce in-range draws.
    ZipfGenerator z(256, 1.0);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(z.sample(rng), 256u);
}

TEST(Zipf, ScrambleRankIsBijective)
{
    constexpr std::uint64_t keys = 4096;
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < keys; ++r) {
        std::uint64_t s = scrambleRank(r, keys);
        ASSERT_LT(s, keys);
        seen.insert(s);
    }
    // Odd-multiplier mixing mod 2^k is invertible: no collisions.
    EXPECT_EQ(seen.size(), keys);
}

TEST(Zipf, ScrambleSeparatesHotKeys)
{
    // The whole point of scrambling: adjacent popular ranks must not
    // land on adjacent table slots (same or neighboring cache lines).
    constexpr std::uint64_t keys = 4096;
    std::uint64_t a = scrambleRank(0, keys);
    std::uint64_t b = scrambleRank(1, keys);
    std::uint64_t c = scrambleRank(2, keys);
    EXPECT_GT(std::max(a, b) - std::min(a, b), 8u);
    EXPECT_GT(std::max(b, c) - std::min(b, c), 8u);
}
