/** @file Tests for the open-loop arrival processes. */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "serve/arrival.hh"

using namespace ppa;
using namespace ppa::serve;

namespace
{

std::vector<double>
draw(const ArrivalParams &p, std::uint64_t seed, std::size_t n)
{
    ArrivalProcess proc(p, seed);
    std::vector<double> ts(n);
    for (std::size_t i = 0; i < n; ++i)
        ts[i] = proc.next();
    return ts;
}

} // namespace

TEST(Arrival, Tokens)
{
    EXPECT_STREQ(arrivalToken(ArrivalKind::Poisson), "poisson");
    EXPECT_STREQ(arrivalToken(ArrivalKind::Bursty), "bursty");
    ArrivalKind k;
    EXPECT_TRUE(arrivalFromToken("poisson", k));
    EXPECT_EQ(k, ArrivalKind::Poisson);
    EXPECT_TRUE(arrivalFromToken("bursty", k));
    EXPECT_EQ(k, ArrivalKind::Bursty);
    EXPECT_FALSE(arrivalFromToken("pareto", k));
    EXPECT_FALSE(arrivalFromToken("", k));
}

TEST(Arrival, PoissonStrictlyMonotone)
{
    ArrivalParams p;
    p.meanGap = 50.0;
    auto ts = draw(p, 1, 20000);
    for (std::size_t i = 1; i < ts.size(); ++i)
        ASSERT_GT(ts[i], ts[i - 1]) << "arrival " << i;
}

TEST(Arrival, PoissonMeanGapMatches)
{
    ArrivalParams p;
    p.meanGap = 100.0;
    constexpr std::size_t n = 40000;
    auto ts = draw(p, 2, n);
    double mean = ts.back() / static_cast<double>(n);
    EXPECT_NEAR(mean, p.meanGap, p.meanGap * 0.05);
}

TEST(Arrival, DeterministicFromSeed)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.meanGap = 64.0;
    auto a = draw(p, 9, 5000);
    auto b = draw(p, 9, 5000);
    EXPECT_EQ(a, b);
    auto c = draw(p, 10, 5000);
    EXPECT_NE(a, c);
}

TEST(Arrival, BurstyPreservesLongRunRate)
{
    // The on-off modulation reshapes arrivals in time but the long-run
    // mean rate must stay 1 / meanGap (the exact-integration claim).
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.meanGap = 100.0;
    p.burstFactor = 2.0;
    p.period = 10000.0;
    p.onFraction = 0.25;
    constexpr std::size_t n = 40000;
    auto ts = draw(p, 4, n);
    double mean = ts.back() / static_cast<double>(n);
    EXPECT_NEAR(mean, p.meanGap, p.meanGap * 0.05);
}

TEST(Arrival, BurstyClustersArrivalsInOnWindows)
{
    // burstFactor * onFraction = 1 drives the OFF rate to zero: every
    // arrival must land inside an ON window.
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.meanGap = 100.0;
    p.burstFactor = 4.0;
    p.period = 8192.0;
    p.onFraction = 0.25;
    auto ts = draw(p, 6, 20000);
    std::size_t on = 0;
    for (double t : ts) {
        double phase = std::fmod(t, p.period);
        if (phase < p.onFraction * p.period)
            ++on;
    }
    EXPECT_EQ(on, ts.size());
}

TEST(Arrival, BurstyOverweightsOnWindows)
{
    // With a nonzero OFF rate the ON windows still get a share of
    // arrivals well above their share of time (0.25 of the period
    // carries burstFactor * onFraction = 0.5 of the arrivals).
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.meanGap = 100.0;
    p.burstFactor = 2.0;
    p.period = 8192.0;
    p.onFraction = 0.25;
    auto ts = draw(p, 8, 40000);
    std::size_t on = 0;
    for (double t : ts) {
        double phase = std::fmod(t, p.period);
        if (phase < p.onFraction * p.period)
            ++on;
    }
    double share = static_cast<double>(on) /
                   static_cast<double>(ts.size());
    EXPECT_NEAR(share, 0.5, 0.05);
}
