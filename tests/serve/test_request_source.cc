/** @file Tests for the streaming transaction-request source. */

#include <gtest/gtest.h>

#include <vector>

#include "isa/semantics.hh"
#include "serve/request_source.hh"

using namespace ppa;
using namespace ppa::serve;

namespace
{

RequestStreamConfig
smallConfig(ServeWorkload w)
{
    RequestStreamConfig cfg;
    cfg.workload = w;
    cfg.requests = 50;
    cfg.keys = 64;
    cfg.skew = 0.99;
    cfg.readPct = 50;
    cfg.seed = 9;
    cfg.dataBase = 0x10000;
    cfg.ackAddr = 0x8000;
    cfg.scratchAddr = 0x8100;
    return cfg;
}

std::vector<DynInst>
drain(RequestSource &src)
{
    std::vector<DynInst> out;
    DynInst di;
    while (src.next(di))
        out.push_back(di);
    return out;
}

void
expectSameInst(const DynInst &a, const DynInst &b, std::size_t i)
{
    ASSERT_EQ(a.index, b.index) << "inst " << i;
    ASSERT_EQ(a.op, b.op) << "inst " << i;
    ASSERT_EQ(a.dst, b.dst) << "inst " << i;
    for (int s = 0; s < maxSrcRegs; ++s)
        ASSERT_EQ(a.srcs[s], b.srcs[s]) << "inst " << i;
    ASSERT_EQ(a.imm, b.imm) << "inst " << i;
    ASSERT_EQ(a.memAddr, b.memAddr) << "inst " << i;
}

} // namespace

TEST(RequestSource, Tokens)
{
    EXPECT_STREQ(serveWorkloadToken(ServeWorkload::Tatp), "tatp");
    EXPECT_STREQ(serveWorkloadToken(ServeWorkload::Tpcc), "tpcc");
    EXPECT_STREQ(serveWorkloadToken(ServeWorkload::Kv), "kv");
    ServeWorkload w;
    EXPECT_TRUE(serveWorkloadFromToken("tpcc", w));
    EXPECT_EQ(w, ServeWorkload::Tpcc);
    EXPECT_FALSE(serveWorkloadFromToken("ycsb", w));
}

TEST(RequestSource, IdenticalConfigsProduceIdenticalStreams)
{
    for (ServeWorkload w :
         {ServeWorkload::Tatp, ServeWorkload::Tpcc, ServeWorkload::Kv}) {
        RequestSource a(smallConfig(w));
        RequestSource b(smallConfig(w));
        auto sa = drain(a);
        auto sb = drain(b);
        ASSERT_EQ(sa.size(), sb.size());
        ASSERT_FALSE(sa.empty());
        for (std::size_t i = 0; i < sa.size(); ++i)
            expectSameInst(sa[i], sb[i], i);
    }
}

TEST(RequestSource, GoldenMemoryMatchesStreamReplay)
{
    // The source's incremental golden state must equal a from-scratch
    // golden run over the stream it handed out — the property that
    // makes the simulated cores' re-executed dataflow checkable.
    for (ServeWorkload w :
         {ServeWorkload::Tatp, ServeWorkload::Tpcc, ServeWorkload::Kv}) {
        RequestSource src(smallConfig(w));
        auto stream = drain(src);
        GoldenResult golden = runGolden(stream, MemImage{});
        EXPECT_TRUE(golden.mem.sameContents(src.goldenMemory()))
            << serveWorkloadToken(w);
        EXPECT_EQ(golden.instCount, src.generatedInsts());
    }
}

TEST(RequestSource, AckSequenceCountsRequests)
{
    RequestStreamConfig cfg = smallConfig(ServeWorkload::Tatp);
    RequestSource src(cfg);
    auto stream = drain(src);
    // Replay instruction by instruction: every store to the ack word
    // must advance the sequence number by exactly one, starting at 1.
    ArchState state;
    MemImage mem;
    Word last_seq = 0;
    for (const DynInst &di : stream) {
        applyDynInst(di, state, mem);
        if (di.isStore() &&
            di.memAddr == MemImage::wordAlign(cfg.ackAddr)) {
            Word seq = mem.read(cfg.ackAddr);
            EXPECT_EQ(seq, last_seq + 1);
            last_seq = seq;
        }
    }
    EXPECT_EQ(last_seq, cfg.requests);
    EXPECT_EQ(src.generatedRequests(), cfg.requests);
}

TEST(RequestSource, TatpBlockLengthIsFixed)
{
    RequestStreamConfig cfg = smallConfig(ServeWorkload::Tatp);
    RequestSource src(cfg);
    auto stream = drain(src);
    // 9 transaction instructions + 3 ack instructions per request,
    // straight-line (branchless by construction).
    EXPECT_EQ(stream.size(), cfg.requests * 12);
    for (const DynInst &di : stream)
        EXPECT_FALSE(di.isBranch());
}

TEST(RequestSource, StoresStayInsideTheStreamRegions)
{
    RequestStreamConfig cfg = smallConfig(ServeWorkload::Kv);
    RequestSource src(cfg);
    auto stream = drain(src);
    Addr data_lo = cfg.dataBase;
    Addr data_hi = cfg.dataBase + cfg.keys * 128;
    for (const DynInst &di : stream) {
        if (!di.isStore())
            continue;
        bool in_data = di.memAddr >= data_lo && di.memAddr < data_hi;
        bool is_ack = di.memAddr == MemImage::wordAlign(cfg.ackAddr);
        bool is_scratch =
            di.memAddr == MemImage::wordAlign(cfg.scratchAddr);
        EXPECT_TRUE(in_data || is_ack || is_scratch)
            << "stray store to " << std::hex << di.memAddr;
    }
}

TEST(RequestSource, SeekToReplaysIdenticalInstructions)
{
    RequestSource src(smallConfig(ServeWorkload::Tpcc));
    std::vector<DynInst> first;
    DynInst di;
    for (int i = 0; i < 240; ++i) {
        ASSERT_TRUE(src.next(di));
        first.push_back(di);
    }
    // Seek back across several request boundaries (recovery's
    // LCPC + 1 resume) and re-read; the ring must hand back the same
    // instructions.
    src.seekTo(100);
    for (std::size_t i = 100; i < first.size(); ++i) {
        ASSERT_TRUE(src.next(di));
        expectSameInst(di, first[i], i);
    }
}

TEST(RequestSource, SeekDoesNotPerturbGeneration)
{
    // A source that seeks mid-stream must still generate the same
    // suffix as one that never seeks: generation state (rng, golden
    // memory) is independent of the read cursor.
    RequestSource plain(smallConfig(ServeWorkload::Kv));
    RequestSource seeky(smallConfig(ServeWorkload::Kv));
    auto expect = drain(plain);
    DynInst di;
    for (int i = 0; i < 64; ++i)
        ASSERT_TRUE(seeky.next(di));
    seeky.seekTo(10);
    seeky.seekTo(64);
    std::vector<DynInst> got;
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(seeky.next(di));
        got.push_back(di);
    }
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameInst(got[i], expect[64 + i], 64 + i);
}
