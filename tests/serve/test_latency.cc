/** @file Tests for the log-bucketed latency histogram. */

#include <gtest/gtest.h>

#include <cstdint>

#include "serve/latency.hh"

using namespace ppa;
using namespace ppa::serve;

TEST(LogHistogram, SmallValuesAreExact)
{
    // Values below 2^subBits land in unit buckets: percentiles are
    // exact, not lower bounds.
    LogHistogram h;
    for (std::uint64_t v = 0; v < LogHistogram::subBuckets; ++v)
        h.sample(v);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), LogHistogram::subBuckets - 1);
    EXPECT_EQ(h.percentile(0.5), LogHistogram::subBuckets / 2 - 1);
    EXPECT_EQ(h.percentile(1.0), LogHistogram::subBuckets - 1);
}

TEST(LogHistogram, BucketIndexRoundTrips)
{
    // bucketLo(bucketIndex(v)) <= v, and v maps back into the same
    // bucket — across the full 64-bit range.
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{15},
          std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{1000},
          std::uint64_t{123456789}, std::uint64_t{1} << 40,
          (std::uint64_t{1} << 63) + 12345}) {
        std::size_t idx = LogHistogram::bucketIndex(v);
        ASSERT_LT(idx, LogHistogram::bucketCount);
        std::uint64_t lo = LogHistogram::bucketLo(idx);
        EXPECT_LE(lo, v);
        EXPECT_EQ(LogHistogram::bucketIndex(lo), idx) << "v " << v;
    }
}

TEST(LogHistogram, RelativeResolutionBounded)
{
    // A bucket's width is at most 1/subBuckets of its lower bound:
    // percentile answers are within ~6% of the true order statistic.
    for (std::uint64_t v = 100; v < 2'000'000; v = v * 7 + 3) {
        std::size_t idx = LogHistogram::bucketIndex(v);
        std::uint64_t lo = LogHistogram::bucketLo(idx);
        EXPECT_GE(v - lo,
                  0u); // lo <= v by construction
        EXPECT_LE(static_cast<double>(v - lo),
                  static_cast<double>(lo) / LogHistogram::subBuckets +
                      1.0)
            << "v " << v;
    }
}

TEST(LogHistogram, PercentilesMonotone)
{
    LogHistogram h;
    std::uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        h.sample((x >> 33) % 1'000'000);
    }
    std::uint64_t prev = 0;
    for (double f : {0.0, 0.5, 0.95, 0.99, 0.999, 0.9999, 1.0}) {
        std::uint64_t p = h.percentile(f);
        EXPECT_GE(p, prev) << "frac " << f;
        prev = p;
    }
    EXPECT_LE(h.percentile(1.0), h.max());
    EXPECT_GE(h.min(), h.percentile(0.0));
}

TEST(LogHistogram, MergeMatchesCombinedSampling)
{
    LogHistogram a, b, both;
    for (std::uint64_t v = 1; v < 5000; v += 7) {
        a.sample(v);
        both.sample(v);
    }
    for (std::uint64_t v = 100000; v < 400000; v += 1111) {
        b.sample(v);
        both.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    for (double f : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.percentile(f), both.percentile(f)) << "frac " << f;
    EXPECT_EQ(a.nonZeroBuckets(), both.nonZeroBuckets());
}

TEST(LogHistogram, NonZeroBucketsSumToCount)
{
    LogHistogram h;
    for (std::uint64_t v : {3u, 3u, 17u, 900u, 900u, 900u})
        h.sample(v);
    std::uint64_t total = 0;
    for (const auto &[idx, cnt] : h.nonZeroBuckets()) {
        EXPECT_GT(cnt, 0u);
        total += cnt;
    }
    EXPECT_EQ(total, h.count());
    EXPECT_EQ(h.count(), 6u);
}
