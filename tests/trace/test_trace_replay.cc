/** @file Record→replay tests: trace capture, streaming replay, verify. */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/report.hh"
#include "trace/capture.hh"
#include "trace/reader.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace ppa;
namespace fs = std::filesystem;

namespace
{

/** Fresh scratch directory under the test temp root. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / "ppa_trace_tests" / name;
    fs::remove_all(dir);
    fs::create_directories(dir.parent_path());
    return dir.string();
}

void
expectSameInst(const DynInst &a, const DynInst &b, std::uint64_t at)
{
    EXPECT_EQ(a.index, b.index) << "at " << at;
    EXPECT_EQ(a.pc, b.pc) << "at " << at;
    EXPECT_EQ(a.op, b.op) << "at " << at;
    EXPECT_EQ(a.dst, b.dst) << "at " << at;
    for (int s = 0; s < maxSrcRegs; ++s)
        EXPECT_EQ(a.srcs[s], b.srcs[s]) << "at " << at << " src " << s;
    EXPECT_EQ(a.imm, b.imm) << "at " << at;
    EXPECT_EQ(a.memAddr, b.memAddr) << "at " << at;
    EXPECT_EQ(a.taken, b.taken) << "at " << at;
}

/** Strip the provenance block so trace and direct runs compare equal. */
std::string
statsJsonSansProvenance(RunStats rs)
{
    rs.traceDir.clear();
    rs.traceShards = 0;
    rs.traceInsts = 0;
    rs.traceCrc = 0;
    return metrics::runStatsToJson(rs);
}

} // namespace

TEST(TraceReplay, RecordedStreamMatchesGeneratorBitwise)
{
    const std::string dir = scratchDir("bitwise");
    const auto &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 5;
    spec.instsPerThread = 6000;
    spec.shardInsts = 2048; // force several shards
    spec.blockInsts = 256;
    auto summary = trace::recordWorkloadTrace(dir, p, spec);
    EXPECT_EQ(summary.totalInsts, 6000u);
    EXPECT_GT(summary.shardCount, 1u);

    auto set = trace::TraceSet::openOrDie(dir);
    EXPECT_EQ(set.metadata().app, "gcc");
    EXPECT_EQ(set.metadata().seed, 5u);
    EXPECT_EQ(set.metadata().threads, 1u);
    EXPECT_EQ(set.threadInsts(0), 6000u);
    EXPECT_EQ(set.combinedCrc(), summary.combinedCrc);

    trace::TraceReplaySource replay(set, 0);
    StreamGenerator gen(p, 0, spec.seed, spec.instsPerThread);
    DynInst a, b;
    std::uint64_t n = 0;
    while (gen.next(a)) {
        ASSERT_TRUE(replay.next(b)) << "trace ended early at " << n;
        expectSameInst(b, a, n);
        ++n;
    }
    EXPECT_EQ(n, 6000u);
    EXPECT_FALSE(replay.next(b)) << "trace longer than generator";
}

TEST(TraceReplay, SeekToMatchesGeneratorSeek)
{
    const std::string dir = scratchDir("seek");
    const auto &p = profileByName("mcf");
    trace::CaptureSpec spec;
    spec.seed = 9;
    spec.instsPerThread = 4000;
    spec.shardInsts = 1024;
    spec.blockInsts = 128;
    trace::recordWorkloadTrace(dir, p, spec);

    auto set = trace::TraceSet::openOrDie(dir);
    trace::TraceReplaySource replay(set, 0);
    StreamGenerator gen(p, 0, spec.seed, spec.instsPerThread);

    // Forward, backward, block-boundary, and shard-boundary targets;
    // exactly the motions power-failure recovery performs.
    const std::uint64_t targets[] = {100, 1024, 127, 128, 3999, 0, 2500};
    DynInst a, b;
    for (std::uint64_t t : targets) {
        replay.seekTo(t);
        gen.seekTo(t);
        std::uint64_t checked = 0;
        for (std::uint64_t i = t;
             i < spec.instsPerThread && checked < 300; ++i, ++checked) {
            ASSERT_TRUE(gen.next(a));
            ASSERT_TRUE(replay.next(b)) << "target " << t << " at " << i;
            expectSameInst(b, a, i);
        }
    }
}

TEST(TraceReplay, EnsureWorkloadTraceReusesMatchingRecording)
{
    const std::string dir = scratchDir("reuse");
    const auto &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 11;
    spec.instsPerThread = 2000;
    auto first = trace::ensureWorkloadTrace(dir, p, spec);
    auto manifest =
        fs::path(dir) / trace::manifestFileName;
    auto stamp = fs::last_write_time(manifest);

    // Matching spec: reused, not re-recorded.
    EXPECT_TRUE(trace::traceMatches(dir, p, spec));
    auto again = trace::ensureWorkloadTrace(dir, p, spec);
    EXPECT_EQ(again.combinedCrc, first.combinedCrc);
    EXPECT_EQ(fs::last_write_time(manifest), stamp);

    // Any identity change invalidates the match.
    trace::CaptureSpec other = spec;
    other.seed = 12;
    EXPECT_FALSE(trace::traceMatches(dir, p, other));
    other = spec;
    other.instsPerThread = 2001;
    EXPECT_FALSE(trace::traceMatches(dir, p, other));
    EXPECT_FALSE(trace::traceMatches(dir, profileByName("mcf"), spec));
}

TEST(TraceReplay, VerifyDetectsCorruptionTruncationAndMissingShard)
{
    const std::string dir = scratchDir("verify");
    const auto &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 3;
    spec.instsPerThread = 3000;
    spec.shardInsts = 1024;
    spec.blockInsts = 256;
    trace::recordWorkloadTrace(dir, p, spec);

    auto clean = trace::verifyTrace(dir);
    ASSERT_TRUE(clean.ok) << (clean.errors.empty() ? ""
                                                   : clean.errors[0]);
    EXPECT_EQ(clean.totalInsts, 3000u);
    EXPECT_GT(clean.shardCount, 1u);

    const fs::path shard =
        fs::path(dir) / trace::shardFileName(0, 0);
    ASSERT_TRUE(fs::exists(shard));
    std::vector<char> original(fs::file_size(shard));
    {
        std::ifstream in(shard, std::ios::binary);
        in.read(original.data(),
                static_cast<std::streamsize>(original.size()));
    }

    auto writeShard = [&](const std::vector<char> &bytes) {
        std::ofstream out(shard, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // One flipped payload byte must fail the CRC.
    auto corrupt = original;
    corrupt[trace::shardHeaderBytes + 7] ^= 0x01;
    writeShard(corrupt);
    auto res = trace::verifyTrace(dir);
    EXPECT_FALSE(res.ok);
    ASSERT_FALSE(res.errors.empty());

    // Truncation must fail structurally.
    auto truncated = original;
    truncated.resize(truncated.size() / 2);
    writeShard(truncated);
    EXPECT_FALSE(trace::verifyTrace(dir).ok);

    // A missing shard file must be reported, not skipped.
    fs::remove(shard);
    EXPECT_FALSE(trace::verifyTrace(dir).ok);

    // Restoring the original bytes makes the trace verify again.
    writeShard(original);
    EXPECT_TRUE(trace::verifyTrace(dir).ok);
}

TEST(TraceReplay, LoadRejectsCorruptManifestGracefully)
{
    // The fuzzer records every violating run, so manifest-parsing is a
    // load-bearing garbage-in path: every corruption must come back as
    // a clean load failure with a diagnostic, never a throw or abort.
    const std::string dir = scratchDir("manifest");
    const auto &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 3;
    spec.instsPerThread = 1000;
    trace::recordWorkloadTrace(dir, p, spec);

    const fs::path manifest = fs::path(dir) / trace::manifestFileName;
    std::string original;
    {
        std::ifstream in(manifest);
        std::stringstream ss;
        ss << in.rdbuf();
        original = ss.str();
    }

    auto writeManifest = [&](const std::string &text) {
        std::ofstream out(manifest, std::ios::trunc);
        out << text;
    };
    auto expectLoadFails = [&](const std::string &text,
                               const std::string &needle) {
        writeManifest(text);
        trace::TraceSet set;
        std::string error;
        EXPECT_FALSE(set.load(dir, error)) << text;
        EXPECT_NE(error.find(needle), std::string::npos) << error;
    };

    // Garbage in the crc32 hex field (used to throw std::invalid_argument
    // out of std::stoul and abort the process).
    auto corruptCrc = [&](const std::string &repl) {
        std::string text = original;
        auto at = text.find("shard ");
        EXPECT_NE(at, std::string::npos);
        auto eol = text.find('\n', at);
        auto sp = text.rfind(' ', eol);
        return text.substr(0, sp + 1) + repl + text.substr(eol);
    };
    expectLoadFails(corruptCrc("nothex!"), "crc32");
    expectLoadFails(corruptCrc(""), "malformed");
    // Overflow past 32 bits must be rejected, not silently truncated.
    expectLoadFails(corruptCrc("1ffffffff"), "crc32");

    // Zero-length manifest and truncated manifest (no 'end' sentinel).
    expectLoadFails("", "header");
    auto endAt = original.rfind("end");
    ASSERT_NE(endAt, std::string::npos);
    expectLoadFails(original.substr(0, endAt), "end");

    // The pristine text still loads.
    writeManifest(original);
    trace::TraceSet set;
    std::string error;
    EXPECT_TRUE(set.load(dir, error)) << error;
}

TEST(TraceReplay, VerifyRejectsZeroLengthAndCorruptFooterShard)
{
    const std::string dir = scratchDir("zerolen");
    const auto &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 3;
    spec.instsPerThread = 1000;
    trace::recordWorkloadTrace(dir, p, spec);
    ASSERT_TRUE(trace::verifyTrace(dir).ok);

    const fs::path shard = fs::path(dir) / trace::shardFileName(0, 0);
    std::vector<char> original(fs::file_size(shard));
    {
        std::ifstream in(shard, std::ios::binary);
        in.read(original.data(),
                static_cast<std::streamsize>(original.size()));
    }
    auto writeShard = [&](const std::vector<char> &bytes) {
        std::ofstream out(shard, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // A zero-length shard file must verify-fail cleanly.
    writeShard({});
    auto res = trace::verifyTrace(dir);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.errors.empty());

    // A corrupted footer magic must be a structural error.
    auto corrupt = original;
    corrupt[corrupt.size() - 1] ^= 0xFF;
    writeShard(corrupt);
    res = trace::verifyTrace(dir);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.errors.empty());

    writeShard(original);
    EXPECT_TRUE(trace::verifyTrace(dir).ok);
}

TEST(TraceReplay, RunStatsBitwiseIdenticalToDirectRun)
{
    const std::string dir = scratchDir("runstats");
    const auto &p = profileByName("gcc");
    ExperimentKnobs knobs;
    knobs.instsPerCore = 8000;
    knobs.seed = 42;

    trace::CaptureSpec spec;
    spec.seed = knobs.seed;
    spec.instsPerThread = knobs.instsPerCore;
    trace::recordWorkloadTrace(dir, p, spec);

    RunStats direct = runWorkload(p, SystemVariant::Ppa, knobs);
    ExperimentKnobs traced = knobs;
    traced.traceDir = dir;
    RunStats replayed = runWorkload(p, SystemVariant::Ppa, traced);

    EXPECT_EQ(replayed.traceDir, dir);
    EXPECT_GT(replayed.traceShards, 0u);
    EXPECT_EQ(replayed.traceInsts, 8000u);
    EXPECT_EQ(statsJsonSansProvenance(replayed),
              statsJsonSansProvenance(direct));
}

TEST(TraceReplay, FailureInjectionReplayIdenticalToDirectRun)
{
    // The acceptance oracle: a replayed trace must survive mid-trace
    // power failures (checkpoint, recover, seekTo) and still produce
    // bitwise the same audited RunStats as the generator-driven run.
    const std::string dir = scratchDir("failure");
    const auto &p = profileByName("gcc");
    ExperimentKnobs knobs;
    knobs.instsPerCore = 8000;
    knobs.seed = 42;
    knobs.audit = true;
    knobs.failAtCycles = {3000, 7000};

    trace::CaptureSpec spec;
    spec.seed = knobs.seed;
    spec.instsPerThread = knobs.instsPerCore;
    spec.shardInsts = 4096; // failures land in different shards
    spec.blockInsts = 512;
    trace::recordWorkloadTrace(dir, p, spec);

    RunStats direct = runWorkload(p, SystemVariant::Ppa, knobs);
    ExperimentKnobs traced = knobs;
    traced.traceDir = dir;
    RunStats replayed = runWorkload(p, SystemVariant::Ppa, traced);

    EXPECT_EQ(replayed.powerFailures, 2u);
    EXPECT_EQ(replayed.auditViolations, 0u);
    EXPECT_EQ(replayed.replayMismatches, 0u);
    EXPECT_EQ(statsJsonSansProvenance(replayed),
              statsJsonSansProvenance(direct));
}

TEST(TraceReplay, MultithreadedReplayIdenticalToDirectRun)
{
    const std::string dir = scratchDir("multithread");
    const auto &p = profileByName("genome"); // 8-thread STAMP profile
    ASSERT_EQ(p.defaultThreads, 8u);
    ExperimentKnobs knobs;
    knobs.instsPerCore = 1500;
    knobs.seed = 42;

    trace::CaptureSpec spec;
    spec.seed = knobs.seed;
    spec.instsPerThread = knobs.instsPerCore;
    trace::recordWorkloadTrace(dir, p, spec);

    auto set = trace::TraceSet::openOrDie(dir);
    EXPECT_EQ(set.metadata().threads, 8u);

    RunStats direct = runWorkload(p, SystemVariant::Ppa, knobs);
    ExperimentKnobs traced = knobs;
    traced.traceDir = dir;
    RunStats replayed = runWorkload(p, SystemVariant::Ppa, traced);
    EXPECT_EQ(statsJsonSansProvenance(replayed),
              statsJsonSansProvenance(direct));
}

TEST(TraceReplay, MismatchedKnobsAreFatal)
{
    // A trace pins the workload identity; running it under different
    // thread or length knobs is a configuration error, not a quieter
    // experiment.
    const std::string dir = scratchDir("mismatch");
    const auto &p = profileByName("gcc");
    trace::CaptureSpec spec;
    spec.seed = 42;
    spec.instsPerThread = 2000;
    trace::recordWorkloadTrace(dir, p, spec);

    ExperimentKnobs knobs;
    knobs.traceDir = dir;
    knobs.instsPerCore = 2001;
    EXPECT_DEATH(
        { runWorkload(p, SystemVariant::Ppa, knobs); }, "trace");
    knobs.instsPerCore = 2000;
    knobs.threads = 2;
    EXPECT_DEATH(
        { runWorkload(p, SystemVariant::Ppa, knobs); }, "trace");
}
