/** @file Unit tests for the trace on-disk format primitives. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/binary_format.hh"
#include "common/rng.hh"
#include "trace/format.hh"
#include "trace/writer.hh"

using namespace ppa;
using namespace ppa::trace;

TEST(TraceFormat, VarintRoundTripsRepresentativeValues)
{
    const std::uint64_t values[] = {
        0, 1, 127, 128, 129, 16383, 16384, 0xDEADBEEF,
        std::uint64_t{1} << 32, ~std::uint64_t{0},
    };
    for (std::uint64_t v : values) {
        std::vector<std::uint8_t> buf;
        putVarint(buf, v);
        std::size_t pos = 0;
        std::uint64_t out = 0;
        ASSERT_TRUE(getVarint(buf.data(), buf.size(), pos, out)) << v;
        EXPECT_EQ(out, v);
        EXPECT_EQ(pos, buf.size()) << v;
    }
}

TEST(TraceFormat, VarintRoundTripsRandomStream)
{
    Rng rng(101);
    std::vector<std::uint64_t> values;
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 5000; ++i) {
        // Mix magnitudes so every byte-length class appears.
        std::uint64_t v = rng.next() >> (rng.below(64));
        values.push_back(v);
        putVarint(buf, v);
    }
    std::size_t pos = 0;
    for (std::uint64_t v : values) {
        std::uint64_t out = 0;
        ASSERT_TRUE(getVarint(buf.data(), buf.size(), pos, out));
        EXPECT_EQ(out, v);
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(TraceFormat, VarintDetectsTruncation)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, ~std::uint64_t{0}); // 10-byte encoding
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        std::size_t pos = 0;
        std::uint64_t out = 0;
        EXPECT_FALSE(getVarint(buf.data(), cut, pos, out))
            << "cut at " << cut;
    }
}

TEST(TraceFormat, ZigzagRoundTripsAndOrdersSmallMagnitudes)
{
    const std::int64_t values[] = {
        0, 1, -1, 2, -2, 4, -4, 1234567, -1234567,
        std::int64_t{1} << 62, -(std::int64_t{1} << 62),
    };
    for (std::int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    // The point of zigzag: small |v| maps to small codes.
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(TraceFormat, Crc32MatchesKnownVector)
{
    // The standard IEEE CRC-32 check value.
    const char *msg = "123456789";
    EXPECT_EQ(binfmt::crc32(reinterpret_cast<const std::uint8_t *>(msg),
                            9),
              0xCBF43926u);
}

TEST(TraceFormat, Crc32IsIncremental)
{
    const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::uint32_t whole = binfmt::crc32(data, sizeof(data));
    std::uint32_t part = binfmt::crc32(data, 4);
    part = binfmt::crc32(data + 4, sizeof(data) - 4, part);
    EXPECT_EQ(part, whole);
}

TEST(TraceFormat, PackMagicPutsFirstCharInLowestByte)
{
    // Little-endian storage of the packed magic must show the literal
    // string in a hex dump.
    EXPECT_EQ(shardMagic & 0xFF, static_cast<std::uint64_t>('P'));
    EXPECT_EQ((shardMagic >> 56) & 0xFF, static_cast<std::uint64_t>('1'));
    EXPECT_NE(shardMagic, footerMagic);
}

TEST(TraceFormat, ShardFileNamesAreStableAndSortable)
{
    EXPECT_EQ(shardFileName(0, 0), "t00-s00000.ppashard");
    EXPECT_EQ(shardFileName(7, 123), "t07-s00123.ppashard");
}

namespace
{

/** A random but structurally valid committed-path instruction. */
DynInst
randomInst(Rng &rng, std::uint64_t index, Addr &pc)
{
    static const Opcode ops[] = {
        Opcode::Nop,    Opcode::IntAdd, Opcode::IntMul, Opcode::IntMov,
        Opcode::FpAdd,  Opcode::FpMul,  Opcode::Load,   Opcode::FpLoad,
        Opcode::Store,  Opcode::FpStore, Opcode::Branch, Opcode::Jump,
        Opcode::AtomicRmw, Opcode::Fence, Opcode::Clwb,
    };
    DynInst d;
    d.index = index;
    // Mostly sequential PCs with occasional jumps, like a real stream.
    if (rng.chance(0.85))
        pc += 4;
    else
        pc = 0x400000 + 4 * rng.below(1 << 20);
    d.pc = pc;
    d.op = ops[rng.below(sizeof(ops) / sizeof(ops[0]))];
    if (writesReg(d.op)) {
        d.dst = destClass(d.op) == RegClass::Fp
                    ? RegRef::fpReg(static_cast<ArchReg>(rng.below(32)))
                    : RegRef::intReg(static_cast<ArchReg>(rng.below(16)));
    }
    const unsigned nsrcs = static_cast<unsigned>(rng.below(maxSrcRegs + 1));
    for (unsigned s = 0; s < nsrcs; ++s) {
        d.srcs[s] = rng.chance(0.3)
                        ? RegRef::fpReg(static_cast<ArchReg>(rng.below(32)))
                        : RegRef::intReg(static_cast<ArchReg>(rng.below(16)));
    }
    if (rng.chance(0.5))
        d.imm = rng.next() >> rng.below(40);
    if (d.isMem() || d.op == Opcode::Clwb)
        d.memAddr = 0x10000000 + 8 * rng.below(1 << 24);
    if (d.isBranch())
        d.taken = rng.chance(0.6);
    return d;
}

void
expectSameInst(const DynInst &a, const DynInst &b, std::size_t at)
{
    EXPECT_EQ(a.pc, b.pc) << "at " << at;
    EXPECT_EQ(a.op, b.op) << "at " << at;
    EXPECT_EQ(a.dst, b.dst) << "at " << at;
    for (int s = 0; s < maxSrcRegs; ++s)
        EXPECT_EQ(a.srcs[s], b.srcs[s]) << "at " << at << " src " << s;
    EXPECT_EQ(a.imm, b.imm) << "at " << at;
    EXPECT_EQ(a.memAddr, b.memAddr) << "at " << at;
    EXPECT_EQ(a.taken, b.taken) << "at " << at;
}

} // namespace

TEST(TraceFormat, BlockRoundTripsRandomInstructions)
{
    Rng rng(7);
    Addr pc = 0x400000;
    std::vector<DynInst> ref;
    BlockEncoder enc;
    enc.reset();
    for (std::uint64_t i = 0; i < 2000; ++i) {
        DynInst d = randomInst(rng, i, pc);
        ref.push_back(d);
        enc.append(d);
    }
    EXPECT_EQ(enc.instCount(), 2000u);

    BlockDecoder dec(enc.bytes().data(), enc.bytes().size());
    DynInst d;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(dec.next(d)) << "at " << i << ": " << dec.error();
        expectSameInst(d, ref[i], i);
    }
    EXPECT_FALSE(dec.next(d));
    EXPECT_TRUE(dec.atEnd()) << dec.error();
}

TEST(TraceFormat, BlockHandlesWideRegisterIds)
{
    // FP register ids above 15 cannot be nibble-packed and take the
    // wide escape; mixing both forms in one block must round-trip.
    BlockEncoder enc;
    enc.reset();
    std::vector<DynInst> ref;
    for (int i = 0; i < 8; ++i) {
        DynInst d;
        d.index = static_cast<std::uint64_t>(i);
        d.pc = 0x1000 + 4 * static_cast<Addr>(i);
        d.op = Opcode::FpAdd;
        d.dst = RegRef::fpReg(static_cast<ArchReg>(i % 2 ? 31 : 3));
        d.srcs[0] = RegRef::fpReg(static_cast<ArchReg>(16 + i));
        d.srcs[1] = RegRef::fpReg(static_cast<ArchReg>(i));
        ref.push_back(d);
        enc.append(d);
    }
    BlockDecoder dec(enc.bytes().data(), enc.bytes().size());
    DynInst d;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(dec.next(d)) << dec.error();
        expectSameInst(d, ref[i], i);
    }
    EXPECT_TRUE(dec.atEnd());
}

TEST(TraceFormat, DecoderFlagsTruncatedBlock)
{
    BlockEncoder enc;
    enc.reset();
    Rng rng(11);
    Addr pc = 0x400000;
    for (std::uint64_t i = 0; i < 50; ++i)
        enc.append(randomInst(rng, i, pc));
    // Cut mid-record: the decoder must stop with an error, not crash
    // or fabricate instructions past the cut.
    BlockDecoder dec(enc.bytes().data(), enc.bytes().size() - 3);
    DynInst d;
    int decoded = 0;
    while (dec.next(d))
        ++decoded;
    EXPECT_LT(decoded, 50);
    EXPECT_FALSE(dec.atEnd());
    EXPECT_FALSE(dec.error().empty());
}

namespace
{

/** Build a two-block shard image from deterministic instructions. */
std::vector<std::uint8_t>
buildTestShard(ShardHeader &header, std::vector<DynInst> &ref)
{
    Rng rng(13);
    Addr pc = 0x400000;
    std::vector<std::vector<std::uint8_t>> blocks;
    BlockEncoder enc;
    std::uint64_t index = 0;
    for (int b = 0; b < 2; ++b) {
        enc.reset();
        for (int i = 0; i < 100; ++i) {
            DynInst d = randomInst(rng, index++, pc);
            ref.push_back(d);
            enc.append(d);
        }
        blocks.push_back(enc.bytes());
    }
    header.blockInsts = 100;
    header.firstIndex = 0;
    header.count = 200;
    return buildShardImage(header, blocks);
}

} // namespace

TEST(TraceFormat, ShardImageRoundTrips)
{
    ShardHeader in;
    std::vector<DynInst> ref;
    auto image = buildTestShard(in, ref);

    ShardHeader header;
    ShardFooter footer;
    std::string error;
    ASSERT_TRUE(parseShardImage(image, header, footer, error)) << error;
    EXPECT_EQ(header.blockInsts, 100u);
    EXPECT_EQ(header.firstIndex, 0u);
    EXPECT_EQ(header.count, 200u);
    ASSERT_EQ(footer.blockOffsets.size(), 2u);

    // The recorded payload CRC matches a recomputation.
    std::size_t b0begin, b0end, b1begin, b1end;
    shardBlockRange(header, footer, image, 0, b0begin, b0end);
    shardBlockRange(header, footer, image, 1, b1begin, b1end);
    EXPECT_EQ(b0begin, shardHeaderBytes);
    EXPECT_EQ(b0end, b1begin);
    EXPECT_EQ(footer.payloadCrc,
              binfmt::crc32(image.data() + b0begin, b1end - b0begin));

    // Both blocks decode back to the original instructions.
    std::size_t at = 0;
    for (std::size_t b = 0; b < 2; ++b) {
        std::size_t begin, end;
        shardBlockRange(header, footer, image, b, begin, end);
        BlockDecoder dec(image.data() + begin, end - begin);
        DynInst d;
        while (dec.next(d)) {
            ASSERT_LT(at, ref.size());
            expectSameInst(d, ref[at], at);
            ++at;
        }
        EXPECT_TRUE(dec.atEnd()) << dec.error();
    }
    EXPECT_EQ(at, ref.size());
}

TEST(TraceFormat, ParseRejectsStructuralCorruption)
{
    ShardHeader in;
    std::vector<DynInst> ref;
    auto good = buildTestShard(in, ref);

    ShardHeader header;
    ShardFooter footer;
    std::string error;

    // Bad header magic.
    auto bad = good;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(parseShardImage(bad, header, footer, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    // Unknown format version.
    bad = good;
    bad[8] += 1;
    EXPECT_FALSE(parseShardImage(bad, header, footer, error));

    // Bad footer magic.
    bad = good;
    bad[bad.size() - 1] ^= 0xFF;
    EXPECT_FALSE(parseShardImage(bad, header, footer, error));

    // Truncation anywhere in the tail.
    bad = good;
    bad.resize(bad.size() - 9);
    EXPECT_FALSE(parseShardImage(bad, header, footer, error));

    // Shorter than a header at all.
    bad.assign(10, 0);
    EXPECT_FALSE(parseShardImage(bad, header, footer, error));

    // The pristine image still parses (corruption checks above did
    // not mutate `good`).
    EXPECT_TRUE(parseShardImage(good, header, footer, error)) << error;
}

TEST(TraceFormat, ManifestTextListsEveryShard)
{
    TraceMeta meta;
    meta.app = "gcc";
    meta.seed = 7;
    meta.threads = 2;
    meta.instsPerThread = 300;
    meta.shardInsts = 200;
    meta.blockInsts = 100;
    std::vector<ShardInfo> shards = {
        {0, 0, "t00-s00000.ppashard", 0, 200, 0x11111111},
        {0, 1, "t00-s00001.ppashard", 200, 100, 0x22222222},
        {1, 0, "t01-s00000.ppashard", 0, 200, 0x33333333},
        {1, 1, "t01-s00001.ppashard", 200, 100, 0x44444444},
    };
    std::string text = manifestText(meta, shards);
    EXPECT_EQ(text.find(manifestHeaderLine), 0u);
    EXPECT_NE(text.find("app gcc"), std::string::npos);
    EXPECT_NE(text.find("shard 0 1 t00-s00001.ppashard 200 100 22222222"),
              std::string::npos);
    EXPECT_NE(text.find("shard 1 1 t01-s00001.ppashard 200 100 44444444"),
              std::string::npos);
    EXPECT_NE(text.find("\nend\n"), std::string::npos);
}

TEST(TraceFormat, CombinedCrcIsOrderSensitive)
{
    std::vector<ShardInfo> a = {
        {0, 0, "x", 0, 10, 0xAAAAAAAA},
        {0, 1, "y", 10, 10, 0xBBBBBBBB},
    };
    std::vector<ShardInfo> swapped = {a[1], a[0]};
    EXPECT_NE(combineShardCrcs(a), combineShardCrcs(swapped));
    EXPECT_EQ(combineShardCrcs(a), combineShardCrcs(a));
}
