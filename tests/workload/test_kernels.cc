/** @file Functional tests for the micro-kernels (golden semantics). */

#include <bit>
#include <cmath>
#include <functional>
#include <gtest/gtest.h>

#include "workload/kernels.hh"

using namespace ppa;
using namespace ppa::kernels;

TEST(Kernels, CounterLoopCountsExactly)
{
    Program p = counterLoop(123, 0x9000);
    ProgramExecutor ex(p);
    ex.totalLength();
    EXPECT_EQ(ex.goldenMemory().read(0x9000), 123u);
}

TEST(Kernels, HashTableConservesUpdateCount)
{
    constexpr std::uint64_t ops = 200, slots = 64;
    constexpr Addr base = 0x100000;
    Program p = hashTableUpdate(ops, slots, base);
    ProgramExecutor ex(p);
    ex.totalLength();

    // Each op adds the key to one slot; slots started at i.
    // Verify total delta equals the sum of all keys used.
    Word table_sum = 0, init_sum = 0;
    for (std::uint64_t i = 0; i < slots; ++i) {
        table_sum += ex.goldenMemory().read(base + i * 8);
        init_sum += i;
    }
    EXPECT_NE(table_sum, init_sum); // something was written
}

TEST(Kernels, TreeWalkTotalIncrementsEqualOps)
{
    constexpr std::uint64_t ops = 150, nodes = 63;
    constexpr Addr base = 0x200000;
    Program p = searchTreeWalk(ops, nodes, base);
    ProgramExecutor ex(p);
    ex.totalLength();

    Word total_value = 0;
    for (std::uint64_t i = 0; i < nodes; ++i)
        total_value += ex.goldenMemory().read(base + i * 32 + 8);
    EXPECT_EQ(total_value, ops);
}

TEST(Kernels, TreeIsWellFormed)
{
    constexpr std::uint64_t nodes = 31;
    constexpr Addr base = 0x200000;
    Program p = searchTreeWalk(1, nodes, base);
    const MemImage &init = p.initialMemory();

    // Walk the tree from the root: keys must respect BST order.
    std::function<std::uint64_t(Addr, Word, Word)> count =
        [&](Addr node, Word lo, Word hi) -> std::uint64_t {
        if (node == 0)
            return 0;
        Word key = init.read(node);
        EXPECT_GT(key, lo);
        EXPECT_LT(key, hi);
        return 1 + count(init.read(node + 16), lo, key) +
               count(init.read(node + 24), key, hi);
    };
    EXPECT_EQ(count(base, 0, ~Word{0}), nodes);
}

TEST(Kernels, ArraySwapPreservesMultiset)
{
    constexpr std::uint64_t ops = 100, entries = 128;
    constexpr Addr base = 0x300000;
    Program p = arraySwap(ops, entries, base);
    ProgramExecutor ex(p);
    ex.totalLength();

    // Swapping permutes: the value sum is invariant.
    Word sum = 0, init_sum = 0;
    for (std::uint64_t i = 0; i < entries; ++i) {
        sum += ex.goldenMemory().read(base + i * 8);
        init_sum += i * 3 + 1;
    }
    EXPECT_EQ(sum, init_sum);
}

TEST(Kernels, TatpBumpsVersions)
{
    constexpr std::uint64_t txns = 120, subs = 64;
    constexpr Addr base = 0x400000;
    Program p = tatpUpdate(txns, subs, base);
    ProgramExecutor ex(p);
    ex.totalLength();

    Word versions = 0;
    for (std::uint64_t i = 0; i < subs; ++i)
        versions += ex.goldenMemory().read(base + i * 32 + 16);
    EXPECT_EQ(versions, txns);
}

TEST(Kernels, TpccCountsOrders)
{
    constexpr std::uint64_t txns = 77;
    Program p = tpccNewOrder(txns, 0x500000, 0x510000);
    ProgramExecutor ex(p);
    ex.totalLength();
    EXPECT_EQ(ex.goldenMemory().read(0x500000), txns + 1); // next id
    EXPECT_EQ(ex.goldenMemory().read(0x500008), txns);     // counter
    // First order record was written.
    EXPECT_EQ(ex.goldenMemory().read(0x510000 + 1 * 32 + 8), 42u);
}

TEST(Kernels, KvStoreWritesValues)
{
    Program p = kvStore(100, 20, 64, 0x600000);
    ProgramExecutor ex(p);
    std::uint64_t len = ex.totalLength();
    EXPECT_GT(len, 100u);
    // At least one bucket has a full 8-word value written (all words
    // equal the key stored there).
    bool found = false;
    for (std::uint64_t bkt = 0; bkt < 64 && !found; ++bkt) {
        Addr a = 0x600000 + bkt * 128;
        Word key = ex.goldenMemory().read(a);
        if (key > 63) { // overwritten by a set (initial keys are 0..63)
            found = true;
            for (Word off = 8; off <= 64; off += 8)
                EXPECT_EQ(ex.goldenMemory().read(a + off), key);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Kernels, StencilSmoothsGrid)
{
    constexpr std::uint64_t cells = 64;
    constexpr Addr base = 0x700000;
    Program p = stencil(4, cells, base);
    ProgramExecutor ex(p);
    ex.totalLength();

    // Interior cells hold finite doubles after smoothing.
    for (std::uint64_t i = 1; i + 1 < cells; ++i) {
        double v =
            std::bit_cast<double>(ex.goldenMemory().read(base + i * 8));
        EXPECT_TRUE(std::isfinite(v));
    }
    // Smoothing pulls neighbors together: variance shrinks.
    auto variance = [&](const MemImage &m) {
        double mean = 0.0;
        for (std::uint64_t i = 0; i < cells; ++i)
            mean += std::bit_cast<double>(m.read(base + i * 8));
        mean /= cells;
        double var = 0.0;
        for (std::uint64_t i = 0; i < cells; ++i) {
            double d =
                std::bit_cast<double>(m.read(base + i * 8)) - mean;
            var += d * d;
        }
        return var / cells;
    };
    EXPECT_LT(variance(ex.goldenMemory()),
              variance(p.initialMemory()));
}

TEST(Kernels, TableLookupAccumulates)
{
    constexpr std::uint64_t entries = 256;
    constexpr Addr base = 0x800000;
    Program p = tableLookup(200, entries, base);
    ProgramExecutor ex(p);
    ex.totalLength();
    Addr result = base + entries * 8 + 64;
    double acc = std::bit_cast<double>(ex.goldenMemory().read(result));
    EXPECT_GT(acc, 0.0);
    EXPECT_TRUE(std::isfinite(acc));
}

TEST(Kernels, RequirePowerOfTwoSizes)
{
    EXPECT_DEATH({ hashTableUpdate(10, 100); }, "power of two");
}
