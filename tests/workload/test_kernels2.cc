/** @file Tests for the journaling and matrix-multiply kernels. */

#include <bit>
#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workload/kernels.hh"

using namespace ppa;
using namespace ppa::kernels;

namespace
{

constexpr Addr logBase = 0x900000;

} // namespace

TEST(PersistentLog, AppendsRecordsWithChecksums)
{
    constexpr std::uint64_t records = 60;
    Program p = persistentLog(records, logBase);
    ProgramExecutor ex(p);
    ex.totalLength();
    const MemImage &mem = ex.goldenMemory();

    EXPECT_EQ(mem.read(logBase), records); // head index
    for (std::uint64_t i = 0; i < records; ++i) {
        Addr rec = logBase + 64 + i * 32;
        EXPECT_EQ(mem.read(rec), i); // sequence
        Word payload = mem.read(rec + 8);
        EXPECT_EQ(mem.read(rec + 16), payload ^ i); // checksum
    }
}

TEST(PersistentLog, ReplayRepairsCrashInconsistency)
{
    // The paper's Section 2.4 scenario, live: at the failure instant
    // the NVM image inside the interrupted region may be arbitrarily
    // out of order (a younger store — the log head — can be persisted
    // while an older one — a record's checksum — is not). PPA's CSQ
    // replay is what repairs it. We count such raw inconsistencies
    // before replay and require exactness after recovery.
    constexpr std::uint64_t records = 50;
    Program p = persistentLog(records, logBase);
    ProgramExecutor golden(p);
    golden.totalLength();

    auto broken_records = [&](const MemImage &nvm) {
        Word head = nvm.read(logBase);
        std::uint64_t broken = 0;
        for (Word i = 0; i < head; ++i) {
            Addr rec = logBase + 64 + i * 32;
            if (nvm.read(rec + 16) != (nvm.read(rec + 8) ^ i))
                ++broken;
        }
        return broken;
    };

    for (Cycle fail : {200u, 800u, 2000u}) {
        SystemConfig sc;
        sc.core.mode = PersistMode::Ppa;
        System system(sc);
        system.seedMemory(p.initialMemory());
        ProgramExecutor source(p);
        system.bindSource(0, &source);
        system.runUntilCycle(fail);
        if (!system.allDone()) {
            auto images = system.powerFail();
            // Pre-replay the image may be inconsistent; that is
            // expected and exactly what recovery must repair.
            (void)broken_records(system.memory().nvmImage());
            system.recover(images);
            // Post-replay: every record below the head is whole.
            EXPECT_EQ(broken_records(system.memory().nvmImage()), 0u)
                << "fail=" << fail;
        }
        system.run(20'000'000);
        ASSERT_TRUE(system.allDone());
        EXPECT_TRUE(system.memory().nvmImage().sameContents(
            golden.goldenMemory()));
    }
}

TEST(MatrixMultiply, MatchesHostArithmetic)
{
    constexpr std::uint64_t n = 6;
    constexpr Addr base = 0xA00000;
    Program p = matrixMultiply(n, base);
    ProgramExecutor ex(p);
    ex.totalLength();

    // Recompute on the host from the same initial values.
    auto a = [&](std::uint64_t i, std::uint64_t k) {
        return 0.5 + static_cast<double>((i * n + k) % 7);
    };
    auto bm = [&](std::uint64_t k, std::uint64_t j) {
        return 1.0 + static_cast<double>((k * n + j) % 5);
    };
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            double want = 0.0;
            for (std::uint64_t k = 0; k < n; ++k)
                want += a(i, k) * bm(k, j);
            Addr c = base + 2 * n * n * 8 + (i * n + j) * 8;
            EXPECT_DOUBLE_EQ(
                std::bit_cast<double>(ex.goldenMemory().read(c)), want)
                << "C[" << i << "][" << j << "]";
        }
    }
}

TEST(MatrixMultiply, RunsOnPpaCoreWithRecovery)
{
    Program p = matrixMultiply(8);
    ProgramExecutor golden(p);
    golden.totalLength();

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(p.initialMemory());
    ProgramExecutor source(p);
    system.bindSource(0, &source);
    system.runUntilCycle(3000);
    if (!system.allDone()) {
        auto images = system.powerFail();
        system.recover(images);
    }
    system.run(40'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
    EXPECT_EQ(system.core(0).architecturalState(),
              golden.goldenState());
}
