/** @file Tests for profiles and the synthetic stream generator. */

#include <gtest/gtest.h>

#include "isa/semantics.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace ppa;

TEST(Profiles, FortyOneApplications)
{
    EXPECT_EQ(allProfiles().size(), 41u);
}

TEST(Profiles, SuiteBreakdownMatchesPaper)
{
    EXPECT_EQ(profilesOfSuite(Suite::Splash3).size(), 7u);
    EXPECT_EQ(profilesOfSuite(Suite::Whisper).size(), 7u);
    EXPECT_EQ(profilesOfSuite(Suite::Stamp).size(), 5u);
    EXPECT_EQ(profilesOfSuite(Suite::MiniApps).size(), 2u);
}

TEST(Profiles, LookupByName)
{
    const auto &p = profileByName("lbm");
    EXPECT_EQ(p.suite, Suite::Cpu2006);
    EXPECT_GT(p.documentedL2Miss, 0.9);
    EXPECT_DEATH({ profileByName("nonexistent"); }, "unknown workload");
}

TEST(Profiles, MultithreadedSuitesRunEightThreads)
{
    for (const auto &p : multithreadedProfiles()) {
        EXPECT_EQ(p.defaultThreads, 8u) << p.name;
        EXPECT_GT(p.syncEveryInsts, 0u) << p.name;
    }
    // SPEC profiles are single-threaded.
    EXPECT_EQ(profileByName("gcc").defaultThreads, 1u);
}

TEST(Profiles, MemoryIntensiveSubsetIsNonTrivial)
{
    auto subset = memoryIntensiveProfiles();
    EXPECT_GT(subset.size(), 10u);
    EXPECT_LT(subset.size(), allProfiles().size());
    for (const auto &p : subset)
        EXPECT_GE(p.documentedL2Miss, 0.18);
}

TEST(Generator, DeterministicForSameSeed)
{
    const auto &p = profileByName("gcc");
    StreamGenerator a(p, 0, 7, 1000), b(p, 0, 7, 1000);
    DynInst da, db;
    while (a.next(da)) {
        ASSERT_TRUE(b.next(db));
        EXPECT_EQ(da.op, db.op);
        EXPECT_EQ(da.memAddr, db.memAddr);
        EXPECT_EQ(da.dst, db.dst);
        EXPECT_EQ(da.imm, db.imm);
    }
    EXPECT_FALSE(b.next(db));
}

TEST(Generator, SeekToReproducesSuffix)
{
    const auto &p = profileByName("mcf");
    StreamGenerator a(p, 0, 9, 500);
    std::vector<DynInst> all;
    DynInst d;
    while (a.next(d))
        all.push_back(d);
    ASSERT_EQ(all.size(), 500u);

    StreamGenerator b(p, 0, 9, 500);
    b.seekTo(250);
    for (std::size_t i = 250; i < 500; ++i) {
        ASSERT_TRUE(b.next(d));
        EXPECT_EQ(d.op, all[i].op) << "at " << i;
        EXPECT_EQ(d.memAddr, all[i].memAddr) << "at " << i;
        EXPECT_EQ(d.index, all[i].index) << "at " << i;
    }
}

TEST(Generator, SeekBackwardAlsoWorks)
{
    const auto &p = profileByName("astar");
    StreamGenerator g(p, 0, 3, 100);
    DynInst first;
    ASSERT_TRUE(g.next(first));
    DynInst d;
    for (int i = 0; i < 50; ++i)
        g.next(d);
    g.seekTo(0);
    ASSERT_TRUE(g.next(d));
    EXPECT_EQ(d.op, first.op);
    EXPECT_EQ(d.memAddr, first.memAddr);
}

TEST(Generator, MixApproximatesProfile)
{
    const auto &p = profileByName("gcc");
    StreamGenerator g(p, 0, 11, 50000);
    std::uint64_t loads = 0, stores = 0, branches = 0, total = 0;
    DynInst d;
    while (g.next(d)) {
        ++total;
        if (d.isLoad() && !d.isStore())
            ++loads;
        if (d.isStore() && !d.isSync())
            ++stores;
        if (d.isBranch())
            ++branches;
    }
    EXPECT_NEAR(static_cast<double>(loads) / total, p.fracLoad, 0.03);
    EXPECT_NEAR(static_cast<double>(stores) / total, p.fracStore, 0.03);
    EXPECT_NEAR(static_cast<double>(branches) / total, p.fracBranch,
                0.03);
}

TEST(Generator, ThreadsGetDisjointPrivateSlices)
{
    const auto &p = profileByName("ocean");
    StreamGenerator g0(p, 0, 5, 2000), g1(p, 1, 5, 2000);
    EXPECT_NE(g0.privateBase(), g1.privateBase());
    DynInst d;
    while (g0.next(d)) {
        if (d.isMem() && !d.isSync()) {
            EXPECT_GE(d.memAddr, g0.privateBase());
            EXPECT_LT(d.memAddr, g1.privateBase());
        }
    }
}

TEST(Generator, SyncedProfilesEmitSyncOps)
{
    const auto &p = profileByName("water-ns");
    StreamGenerator g(p, 0, 13, 20000);
    std::uint64_t syncs = 0;
    DynInst d;
    while (g.next(d)) {
        if (d.isSync())
            ++syncs;
    }
    // ~one sync per syncEveryInsts instructions.
    EXPECT_GT(syncs, 20000 / p.syncEveryInsts / 2);
    EXPECT_LT(syncs, 20000 * 3 / p.syncEveryInsts);
}

TEST(Generator, SyncAddressesAreShared)
{
    const auto &p = profileByName("genome");
    StreamGenerator g(p, 2, 17, 30000);
    DynInst d;
    bool saw_atomic = false;
    while (g.next(d)) {
        if (d.op == Opcode::AtomicRmw) {
            saw_atomic = true;
            EXPECT_GE(d.memAddr, StreamGenerator::sharedSyncBase);
            EXPECT_LT(d.memAddr,
                      StreamGenerator::sharedSyncBase + 16 * 64);
        }
    }
    EXPECT_TRUE(saw_atomic);
}

TEST(Generator, StreamIsFunctionallyExecutable)
{
    // The golden model must run any generated stream without tripping
    // assertions (all register references valid, addresses aligned).
    const auto &p = profileByName("lulesh");
    StreamGenerator g(p, 0, 23, 5000);
    std::vector<DynInst> stream;
    DynInst d;
    while (g.next(d))
        stream.push_back(d);
    MemImage init;
    auto result = runGolden(stream, init);
    EXPECT_EQ(result.instCount, 5000u);
    EXPECT_GT(result.storeCount, 0u);
}

TEST(Generator, HighLocalityProfileReusesHotSet)
{
    const auto &rb = profileByName("rb");
    StreamGenerator g(rb, 0, 29, 20000);
    std::uint64_t in_hot = 0, mem_ops = 0;
    DynInst d;
    while (g.next(d)) {
        if (d.isMem() && !d.isSync()) {
            ++mem_ops;
            if (d.memAddr <
                g.privateBase() + rb.hotSetBytes + rb.workingSetBytes *
                                                       0.001)
                ++in_hot;
        }
    }
    // Most accesses land in the hot set for a 97%-hot profile.
    EXPECT_GT(static_cast<double>(in_hot) / mem_ops, 0.6);
}
