/** @file Tests for profiles and the synthetic stream generator. */

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/semantics.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace ppa;

TEST(Profiles, FortyOneApplications)
{
    EXPECT_EQ(allProfiles().size(), 41u);
}

TEST(Profiles, SuiteBreakdownMatchesPaper)
{
    EXPECT_EQ(profilesOfSuite(Suite::Splash3).size(), 7u);
    EXPECT_EQ(profilesOfSuite(Suite::Whisper).size(), 7u);
    EXPECT_EQ(profilesOfSuite(Suite::Stamp).size(), 5u);
    EXPECT_EQ(profilesOfSuite(Suite::MiniApps).size(), 2u);
}

TEST(Profiles, LookupByName)
{
    const auto &p = profileByName("lbm");
    EXPECT_EQ(p.suite, Suite::Cpu2006);
    EXPECT_GT(p.documentedL2Miss, 0.9);
    EXPECT_DEATH({ profileByName("nonexistent"); }, "unknown workload");
}

TEST(Profiles, MultithreadedSuitesRunEightThreads)
{
    for (const auto &p : multithreadedProfiles()) {
        EXPECT_EQ(p.defaultThreads, 8u) << p.name;
        EXPECT_GT(p.syncEveryInsts, 0u) << p.name;
    }
    // SPEC profiles are single-threaded.
    EXPECT_EQ(profileByName("gcc").defaultThreads, 1u);
}

TEST(Profiles, MemoryIntensiveSubsetIsNonTrivial)
{
    auto subset = memoryIntensiveProfiles();
    EXPECT_GT(subset.size(), 10u);
    EXPECT_LT(subset.size(), allProfiles().size());
    for (const auto &p : subset)
        EXPECT_GE(p.documentedL2Miss, 0.18);
}

TEST(Generator, DeterministicForSameSeed)
{
    const auto &p = profileByName("gcc");
    StreamGenerator a(p, 0, 7, 1000), b(p, 0, 7, 1000);
    DynInst da, db;
    while (a.next(da)) {
        ASSERT_TRUE(b.next(db));
        EXPECT_EQ(da.op, db.op);
        EXPECT_EQ(da.memAddr, db.memAddr);
        EXPECT_EQ(da.dst, db.dst);
        EXPECT_EQ(da.imm, db.imm);
    }
    EXPECT_FALSE(b.next(db));
}

TEST(Generator, SeekToReproducesSuffix)
{
    const auto &p = profileByName("mcf");
    StreamGenerator a(p, 0, 9, 500);
    std::vector<DynInst> all;
    DynInst d;
    while (a.next(d))
        all.push_back(d);
    ASSERT_EQ(all.size(), 500u);

    StreamGenerator b(p, 0, 9, 500);
    b.seekTo(250);
    for (std::size_t i = 250; i < 500; ++i) {
        ASSERT_TRUE(b.next(d));
        EXPECT_EQ(d.op, all[i].op) << "at " << i;
        EXPECT_EQ(d.memAddr, all[i].memAddr) << "at " << i;
        EXPECT_EQ(d.index, all[i].index) << "at " << i;
    }
}

TEST(Generator, SeekBackwardAlsoWorks)
{
    const auto &p = profileByName("astar");
    StreamGenerator g(p, 0, 3, 100);
    DynInst first;
    ASSERT_TRUE(g.next(first));
    DynInst d;
    for (int i = 0; i < 50; ++i)
        g.next(d);
    g.seekTo(0);
    ASSERT_TRUE(g.next(d));
    EXPECT_EQ(d.op, first.op);
    EXPECT_EQ(d.memAddr, first.memAddr);
}

namespace
{

void
expectSameInst(const DynInst &a, const DynInst &b, std::size_t at)
{
    EXPECT_EQ(a.index, b.index) << "at " << at;
    EXPECT_EQ(a.pc, b.pc) << "at " << at;
    EXPECT_EQ(a.op, b.op) << "at " << at;
    EXPECT_EQ(a.dst, b.dst) << "at " << at;
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        EXPECT_EQ(a.srcs[s], b.srcs[s]) << "at " << at << " src " << s;
    EXPECT_EQ(a.imm, b.imm) << "at " << at;
    EXPECT_EQ(a.memAddr, b.memAddr) << "at " << at;
    EXPECT_EQ(a.taken, b.taken) << "at " << at;
}

} // namespace

TEST(Generator, SeekBackwardBitwiseIdenticalToFresh)
{
    // Backward seeks resume from a periodic snapshot, not a replay
    // from index 0; the restored state must reproduce the stream
    // bitwise in every DynInst field. Length spans several snapshot
    // intervals so restores exercise real (non-initial) snapshots.
    const std::uint64_t len = 3 * StreamGenerator::snapshotInterval + 500;
    const auto &p = profileByName("tpcc");
    StreamGenerator fresh(p, 0, 31, len);
    std::vector<DynInst> ref;
    DynInst d;
    while (fresh.next(d))
        ref.push_back(d);
    ASSERT_EQ(ref.size(), len);

    StreamGenerator g(p, 0, 31, len);
    while (g.next(d)) {
    }
    // Each target lands differently relative to the snapshot grid:
    // exactly on a boundary, just before, just after, and deep inside
    // an interval; 0 re-checks the full stream from the start.
    const std::uint64_t targets[] = {
        2 * StreamGenerator::snapshotInterval,
        StreamGenerator::snapshotInterval - 1,
        StreamGenerator::snapshotInterval + 1,
        len - 37,
        1,
        0,
    };
    for (std::uint64_t t : targets) {
        g.seekTo(t);
        std::uint64_t checked = 0;
        for (std::uint64_t i = t; i < len && checked < 600;
             ++i, ++checked) {
            ASSERT_TRUE(g.next(d)) << "target " << t << " at " << i;
            expectSameInst(d, ref[i], i);
        }
    }
}

TEST(Generator, SeekBackwardBeforeAnyForwardProgress)
{
    // A backward seek before the first snapshot exists must still
    // work (falls back to a full state reset).
    const auto &p = profileByName("gcc");
    StreamGenerator a(p, 0, 41, 100), b(p, 0, 41, 100);
    DynInst da, db;
    ASSERT_TRUE(a.next(da));
    a.seekTo(0);
    ASSERT_TRUE(a.next(da));
    ASSERT_TRUE(b.next(db));
    expectSameInst(da, db, 0);
}

TEST(Generator, EverySnapshotPointResumesBitwise)
{
    // Exhaustive over the snapshot grid: a backward seek to each
    // snapshot point restores the generator's saved Rng state
    // (getState/setState round-trip) and must resume the stream
    // bitwise — even after an intervening run to the end of the
    // stream has advanced the live Rng far past the saved state.
    const std::uint64_t intervals = 4;
    const std::uint64_t len =
        intervals * StreamGenerator::snapshotInterval + 123;
    const auto &p = profileByName("vacation");
    StreamGenerator fresh(p, 0, 47, len);
    std::vector<DynInst> ref;
    DynInst d;
    while (fresh.next(d))
        ref.push_back(d);
    ASSERT_EQ(ref.size(), len);

    StreamGenerator g(p, 0, 47, len);
    while (g.next(d)) {
    }
    for (std::uint64_t k = 0; k <= intervals; ++k) {
        const std::uint64_t t =
            std::min(k * StreamGenerator::snapshotInterval, len - 1);
        g.seekTo(t);
        std::uint64_t checked = 0;
        for (std::uint64_t i = t; i < len && checked < 128;
             ++i, ++checked) {
            ASSERT_TRUE(g.next(d)) << "snapshot " << k << " at " << i;
            expectSameInst(d, ref[i], i);
        }
    }
}

TEST(Generator, RngStateRoundTrips)
{
    Rng r(1234);
    for (int i = 0; i < 100; ++i)
        r.next();
    auto saved = r.getState();
    std::vector<std::uint64_t> ref;
    for (int i = 0; i < 64; ++i)
        ref.push_back(r.next());
    Rng other; // different seed, fully overwritten by setState
    other.setState(saved);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(other.next(), ref[i]) << "draw " << i;
}

TEST(Generator, MixApproximatesProfile)
{
    const auto &p = profileByName("gcc");
    StreamGenerator g(p, 0, 11, 50000);
    std::uint64_t loads = 0, stores = 0, branches = 0, total = 0;
    DynInst d;
    while (g.next(d)) {
        ++total;
        if (d.isLoad() && !d.isStore())
            ++loads;
        if (d.isStore() && !d.isSync())
            ++stores;
        if (d.isBranch())
            ++branches;
    }
    EXPECT_NEAR(static_cast<double>(loads) / total, p.fracLoad, 0.03);
    EXPECT_NEAR(static_cast<double>(stores) / total, p.fracStore, 0.03);
    EXPECT_NEAR(static_cast<double>(branches) / total, p.fracBranch,
                0.03);
}

TEST(Generator, ThreadsGetDisjointPrivateSlices)
{
    const auto &p = profileByName("ocean");
    StreamGenerator g0(p, 0, 5, 2000), g1(p, 1, 5, 2000);
    EXPECT_NE(g0.privateBase(), g1.privateBase());
    DynInst d;
    while (g0.next(d)) {
        if (d.isMem() && !d.isSync()) {
            EXPECT_GE(d.memAddr, g0.privateBase());
            EXPECT_LT(d.memAddr, g1.privateBase());
        }
    }
}

TEST(Generator, SyncedProfilesEmitSyncOps)
{
    const auto &p = profileByName("water-ns");
    StreamGenerator g(p, 0, 13, 20000);
    std::uint64_t syncs = 0;
    DynInst d;
    while (g.next(d)) {
        if (d.isSync())
            ++syncs;
    }
    // ~one sync per syncEveryInsts instructions.
    EXPECT_GT(syncs, 20000 / p.syncEveryInsts / 2);
    EXPECT_LT(syncs, 20000 * 3 / p.syncEveryInsts);
}

TEST(Generator, SyncAddressesAreShared)
{
    const auto &p = profileByName("genome");
    StreamGenerator g(p, 2, 17, 30000);
    DynInst d;
    bool saw_atomic = false;
    while (g.next(d)) {
        if (d.op == Opcode::AtomicRmw) {
            saw_atomic = true;
            EXPECT_GE(d.memAddr, StreamGenerator::sharedSyncBase);
            EXPECT_LT(d.memAddr,
                      StreamGenerator::sharedSyncBase + 16 * 64);
        }
    }
    EXPECT_TRUE(saw_atomic);
}

TEST(Generator, StreamIsFunctionallyExecutable)
{
    // The golden model must run any generated stream without tripping
    // assertions (all register references valid, addresses aligned).
    const auto &p = profileByName("lulesh");
    StreamGenerator g(p, 0, 23, 5000);
    std::vector<DynInst> stream;
    DynInst d;
    while (g.next(d))
        stream.push_back(d);
    MemImage init;
    auto result = runGolden(stream, init);
    EXPECT_EQ(result.instCount, 5000u);
    EXPECT_GT(result.storeCount, 0u);
}

TEST(Generator, HighLocalityProfileReusesHotSet)
{
    const auto &rb = profileByName("rb");
    StreamGenerator g(rb, 0, 29, 20000);
    std::uint64_t in_hot = 0, mem_ops = 0;
    DynInst d;
    while (g.next(d)) {
        if (d.isMem() && !d.isSync()) {
            ++mem_ops;
            if (d.memAddr <
                g.privateBase() + rb.hotSetBytes + rb.workingSetBytes *
                                                       0.001)
                ++in_hot;
        }
    }
    // Most accesses land in the hot set for a 97%-hot profile.
    EXPECT_GT(static_cast<double>(in_hot) / mem_ops, 0.6);
}
