/** @file
 * Semantic self-checks for the transaction kernels the serving study
 * dispatches: tatpUpdate, tpccNewOrder, and kvStore must leave memory
 * in the state an independent C++ reference model computes. These pin
 * the kernels' arithmetic (LCG parameters, record layouts, ring
 * indexing) so a refactor cannot silently change what the benchmarks
 * measure.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "workload/kernels.hh"

using namespace ppa;

namespace
{

/** The kernels' shared LCG: state = state * 2654435761 + 0x7C15
 *  (the low 16 bits of the golden-ratio constant), mod 2^64. */
std::uint64_t
lcg(std::uint64_t state)
{
    return state * 2654435761ull + 0x7C15u;
}

/** Run @p prog to completion and return its golden memory. */
const MemImage &
execute(ProgramExecutor &exec)
{
    exec.totalLength();
    return exec.goldenMemory();
}

} // namespace

TEST(KernelSemantics, TatpUpdateMatchesReference)
{
    constexpr std::uint64_t txns = 200;
    constexpr std::uint64_t subs = 64;
    constexpr Addr base = 0x400000;

    // Reference model: records are [id, location, version, pad] at
    // 32 B; each txn rewrites the location with the raw LCG state and
    // increments the version.
    std::map<std::uint64_t, std::uint64_t> location, version;
    std::uint64_t state = 0x5151;
    for (std::uint64_t t = 0; t < txns; ++t) {
        state = lcg(state);
        std::uint64_t idx = (state >> 7) & (subs - 1);
        location[idx] = state;
        version[idx] += 1;
    }

    Program prog = kernels::tatpUpdate(txns, subs, base);
    ProgramExecutor exec(prog);
    const MemImage &mem = execute(exec);

    std::uint64_t touched = 0;
    for (std::uint64_t i = 0; i < subs; ++i) {
        Addr rec = base + i * 32;
        EXPECT_EQ(mem.read(rec + 0), i) << "record " << i;
        if (version.count(i)) {
            EXPECT_EQ(mem.read(rec + 8), location[i]) << "record " << i;
            EXPECT_EQ(mem.read(rec + 16), version[i]) << "record " << i;
            ++touched;
        } else {
            EXPECT_EQ(mem.read(rec + 8), 100 + i) << "record " << i;
            EXPECT_EQ(mem.read(rec + 16), 0u) << "record " << i;
        }
    }
    // Zipf-free LCG over 64 records and 200 txns touches most of them.
    EXPECT_GT(touched, subs / 2);
}

TEST(KernelSemantics, TpccNewOrderMatchesReference)
{
    constexpr std::uint64_t txns = 100;
    constexpr Addr district = 0x500000;
    constexpr Addr orders = 0x510000;
    constexpr std::uint64_t slots = 1024;

    Program prog = kernels::tpccNewOrder(txns, district, orders);
    ProgramExecutor exec(prog);
    const MemImage &mem = execute(exec);

    // next-order-id starts at 1 and advances once per txn; the order
    // counter counts txns.
    EXPECT_EQ(mem.read(district + 0), txns + 1);
    EXPECT_EQ(mem.read(district + 8), txns);

    // Order ids 1..txns fill ring slots (o_id * 32) & ((slots-1)*32)
    // with [o_id, 42, o_id, 5].
    for (std::uint64_t oid = 1; oid <= txns; ++oid) {
        Addr slot = orders + ((oid * 32) & ((slots - 1) * 32));
        EXPECT_EQ(mem.read(slot + 0), oid) << "order " << oid;
        EXPECT_EQ(mem.read(slot + 8), 42u) << "order " << oid;
        EXPECT_EQ(mem.read(slot + 16), oid) << "order " << oid;
        EXPECT_EQ(mem.read(slot + 24), 5u) << "order " << oid;
    }
}

TEST(KernelSemantics, KvStoreMatchesReference)
{
    constexpr std::uint64_t ops = 120;
    constexpr unsigned readPct = 25;
    constexpr std::uint64_t buckets = 32;
    constexpr Addr base = 0x600000;

    // Reference model: every op hashes a bucket; a countdown fires a
    // GET every k = 100 / readPct ops (which folds three words and
    // writes nothing), all other ops SET the key word and the 8-word
    // value to the raw LCG state.
    std::map<std::uint64_t, std::uint64_t> stored;
    const std::uint64_t k = 100 / readPct;
    std::uint64_t state = 0xFACE;
    std::uint64_t countdown = k;
    for (std::uint64_t op = 0; op < ops; ++op) {
        state = lcg(state);
        std::uint64_t idx = (state >> 9) & (buckets - 1);
        if (--countdown == 0) {
            countdown = k; // GET: reads only
            continue;
        }
        stored[idx] = state;
    }

    Program prog = kernels::kvStore(ops, readPct, buckets, base);
    ProgramExecutor exec(prog);
    const MemImage &mem = execute(exec);

    for (std::uint64_t i = 0; i < buckets; ++i) {
        Addr bucket = base + i * 128;
        std::uint64_t key =
            stored.count(i) ? stored[i] : i; // init: key = index
        EXPECT_EQ(mem.read(bucket + 0), key) << "bucket " << i;
        for (Addr off = 8; off <= 64; off += 8) {
            std::uint64_t val = stored.count(i) ? stored[i] : 0;
            EXPECT_EQ(mem.read(bucket + off), val)
                << "bucket " << i << " off " << off;
        }
    }
}

TEST(KernelSemantics, KvStoreWriteOnlyNeverReads)
{
    // read_pct = 0 must disable the GET path entirely (the countdown
    // is initialized past the op count).
    constexpr std::uint64_t ops = 40;
    constexpr std::uint64_t buckets = 16;
    constexpr Addr base = 0x600000;

    std::map<std::uint64_t, std::uint64_t> stored;
    std::uint64_t state = 0xFACE;
    for (std::uint64_t op = 0; op < ops; ++op) {
        state = lcg(state);
        stored[(state >> 9) & (buckets - 1)] = state;
    }

    Program prog = kernels::kvStore(ops, 0, buckets, base);
    ProgramExecutor exec(prog);
    const MemImage &mem = execute(exec);
    for (const auto &[idx, val] : stored)
        EXPECT_EQ(mem.read(base + idx * 128), val) << "bucket " << idx;
}
