/** @file Unit tests for the shared functional semantics. */

#include <bit>
#include <gtest/gtest.h>

#include "isa/semantics.hh"

using namespace ppa;

TEST(AluCompute, IntegerOps)
{
    EXPECT_EQ(aluCompute(Opcode::IntAdd, 2, 3, 4), 9u);
    EXPECT_EQ(aluCompute(Opcode::IntSub, 10, 3, 0), 7u);
    EXPECT_EQ(aluCompute(Opcode::IntMul, 6, 7, 0), 42u);
    EXPECT_EQ(aluCompute(Opcode::IntDiv, 42, 6, 0), 7u);
    EXPECT_EQ(aluCompute(Opcode::IntAnd, 0b1100, 0b1010, 0), 0b1000u);
    EXPECT_EQ(aluCompute(Opcode::IntOr, 0b1100, 0b1010, 0), 0b1110u);
    EXPECT_EQ(aluCompute(Opcode::IntXor, 0b1100, 0b1010, 0), 0b0110u);
    EXPECT_EQ(aluCompute(Opcode::IntShl, 1, 0, 4), 16u);
    EXPECT_EQ(aluCompute(Opcode::IntShr, 16, 0, 4), 1u);
    EXPECT_EQ(aluCompute(Opcode::IntMov, 5, 0, 7), 12u);
    EXPECT_EQ(aluCompute(Opcode::IntCmpLt, 3, 5, 0), 1u);
    EXPECT_EQ(aluCompute(Opcode::IntCmpLt, 5, 3, 0), 0u);
}

TEST(AluCompute, DivideByZeroIsGuarded)
{
    EXPECT_EQ(aluCompute(Opcode::IntDiv, 42, 0, 0), 42u);
}

TEST(AluCompute, FloatingPointOps)
{
    auto w = [](double d) { return std::bit_cast<Word>(d); };
    auto d = [](Word v) { return std::bit_cast<double>(v); };
    EXPECT_DOUBLE_EQ(d(aluCompute(Opcode::FpAdd, w(1.5), w(2.5), 0)),
                     4.0);
    EXPECT_DOUBLE_EQ(d(aluCompute(Opcode::FpMul, w(3.0), w(4.0), 0)),
                     12.0);
    EXPECT_DOUBLE_EQ(d(aluCompute(Opcode::FpDiv, w(9.0), w(2.0), 0)),
                     4.5);
    EXPECT_DOUBLE_EQ(d(aluCompute(Opcode::FpCvt, 7, 0, 0)), 7.0);
    EXPECT_DOUBLE_EQ(d(aluCompute(Opcode::FpMov, w(2.25), 0, 0)), 2.25);
}

TEST(ApplyDynInst, StoreWritesMemory)
{
    ArchState st;
    MemImage mem;
    st.write(RegClass::Int, 2, 99);

    DynInst di;
    di.op = Opcode::Store;
    di.srcs[0] = RegRef::intReg(2);
    di.memAddr = 0x1000;
    applyDynInst(di, st, mem);
    EXPECT_EQ(mem.read(0x1000), 99u);
}

TEST(ApplyDynInst, LoadReadsMemory)
{
    ArchState st;
    MemImage mem;
    mem.write(0x2000, 1234);

    DynInst di;
    di.op = Opcode::Load;
    di.dst = RegRef::intReg(5);
    di.memAddr = 0x2000;
    applyDynInst(di, st, mem);
    EXPECT_EQ(st.read(RegClass::Int, 5), 1234u);
}

TEST(ApplyDynInst, AtomicRmwReturnsOldValue)
{
    ArchState st;
    MemImage mem;
    mem.write(0x3000, 10);
    st.write(RegClass::Int, 1, 5);

    DynInst di;
    di.op = Opcode::AtomicRmw;
    di.dst = RegRef::intReg(2);
    di.srcs[0] = RegRef::intReg(1);
    di.memAddr = 0x3000;
    applyDynInst(di, st, mem);
    EXPECT_EQ(mem.read(0x3000), 15u);
    EXPECT_EQ(st.read(RegClass::Int, 2), 10u);
}

TEST(ApplyDynInst, BranchAndFenceHaveNoArchEffect)
{
    ArchState st;
    MemImage mem;
    DynInst br;
    br.op = Opcode::Branch;
    br.srcs[0] = RegRef::intReg(0);
    br.taken = true;
    applyDynInst(br, st, mem);
    DynInst fe;
    fe.op = Opcode::Fence;
    applyDynInst(fe, st, mem);
    EXPECT_EQ(st, ArchState{});
    EXPECT_EQ(mem.footprintWords(), 0u);
}

TEST(ApplyDynInst, MovWithNoSourceUsesZero)
{
    ArchState st;
    MemImage mem;
    DynInst di;
    di.op = Opcode::IntMov;
    di.dst = RegRef::intReg(3);
    di.imm = 77;
    applyDynInst(di, st, mem);
    EXPECT_EQ(st.read(RegClass::Int, 3), 77u);
}

TEST(RunGolden, CountsInstsAndStores)
{
    std::vector<DynInst> stream;
    DynInst mov;
    mov.op = Opcode::IntMov;
    mov.dst = RegRef::intReg(0);
    mov.imm = 3;
    stream.push_back(mov);
    DynInst st;
    st.op = Opcode::Store;
    st.srcs[0] = RegRef::intReg(0);
    st.memAddr = 0x10;
    stream.push_back(st);

    MemImage init;
    auto result = runGolden(stream, init);
    EXPECT_EQ(result.instCount, 2u);
    EXPECT_EQ(result.storeCount, 1u);
    EXPECT_EQ(result.mem.read(0x10), 3u);
}

TEST(OpInfo, ClassificationFlags)
{
    EXPECT_TRUE(opInfo(Opcode::Load).isLoad);
    EXPECT_TRUE(opInfo(Opcode::Store).isStore);
    EXPECT_TRUE(opInfo(Opcode::AtomicRmw).isStore);
    EXPECT_TRUE(opInfo(Opcode::AtomicRmw).isLoad);
    EXPECT_TRUE(opInfo(Opcode::AtomicRmw).isSync);
    EXPECT_TRUE(opInfo(Opcode::Fence).isSync);
    EXPECT_TRUE(opInfo(Opcode::Branch).isBranch);
    EXPECT_FALSE(opInfo(Opcode::Clwb).isStore);
    EXPECT_TRUE(opInfo(Opcode::FpAdd).writesFpReg);
    EXPECT_TRUE(opInfo(Opcode::IntAdd).writesIntReg);
    EXPECT_EQ(destClass(Opcode::FpLoad), RegClass::Fp);
    EXPECT_EQ(destClass(Opcode::Load), RegClass::Int);
}

TEST(DynInst, StoreDataRegConvention)
{
    DynInst st;
    st.op = Opcode::Store;
    st.srcs[0] = RegRef::intReg(4);
    EXPECT_EQ(st.storeDataReg(), RegRef::intReg(4));

    DynInst ld;
    ld.op = Opcode::Load;
    EXPECT_FALSE(ld.storeDataReg().valid());
}
