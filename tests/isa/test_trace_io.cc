/** @file Tests for the binary trace format. */

#include <cstdio>
#include <gtest/gtest.h>

#include "isa/trace_io.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"

using namespace ppa;

namespace
{

/** Temp path per test, cleaned up on destruction. */
struct TempTrace
{
    std::string path;

    explicit TempTrace(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}

    ~TempTrace() { std::remove(path.c_str()); }
};

std::vector<DynInst>
sampleStream()
{
    StreamGenerator gen(profileByName("gcc"), 0, 3, 2000);
    std::vector<DynInst> out;
    DynInst d;
    while (gen.next(d))
        out.push_back(d);
    return out;
}

} // namespace

TEST(TraceIo, RoundTripPreservesStream)
{
    TempTrace tmp("roundtrip.ppatrace");
    auto stream = sampleStream();
    writeTrace(tmp.path, stream);
    auto back = readTrace(tmp.path);
    ASSERT_EQ(back.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(back[i].op, stream[i].op) << i;
        EXPECT_EQ(back[i].pc, stream[i].pc) << i;
        EXPECT_EQ(back[i].memAddr, stream[i].memAddr) << i;
        EXPECT_EQ(back[i].imm, stream[i].imm) << i;
        EXPECT_EQ(back[i].dst, stream[i].dst) << i;
        for (int s = 0; s < maxSrcRegs; ++s)
            EXPECT_EQ(back[i].srcs[s], stream[i].srcs[s]) << i;
        EXPECT_EQ(back[i].taken, stream[i].taken) << i;
        EXPECT_EQ(back[i].index, i);
    }
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TempTrace tmp("empty.ppatrace");
    writeTrace(tmp.path, {});
    EXPECT_TRUE(readTrace(tmp.path).empty());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_DEATH({ readTrace("/nonexistent/path.ppatrace"); },
                 "cannot open");
}

TEST(TraceIo, GarbageFileIsFatal)
{
    TempTrace tmp("garbage.ppatrace");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_DEATH({ readTrace(tmp.path); }, "not a PPA trace");
}

TEST(TraceIo, TruncatedFileIsFatal)
{
    TempTrace tmp("truncated.ppatrace");
    writeTrace(tmp.path, sampleStream());
    // Chop the file in half.
    auto full = readTrace(tmp.path); // sanity: valid before chopping
    ASSERT_FALSE(full.empty());
    std::FILE *f = std::fopen(tmp.path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long half = std::ftell(f) / 2;
    std::fclose(f);
    ASSERT_EQ(truncate(tmp.path.c_str(), half), 0);
    EXPECT_DEATH({ readTrace(tmp.path); }, "truncated");
}

TEST(TraceIo, TraceSourceDrivesSimulation)
{
    // Record a kernel's committed path, replay it from the file, and
    // verify the simulated memory matches the golden execution.
    TempTrace tmp("kernel.ppatrace");
    Program prog = kernels::counterLoop(100);
    ProgramExecutor golden(prog);
    golden.totalLength();
    writeTrace(tmp.path, golden.generated());

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    TraceFileSource source(tmp.path);
    EXPECT_EQ(source.size(), golden.generated().size());
    system.bindSource(0, &source);
    system.run(10'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}

TEST(TraceIo, RecoverySeeksWithinTraceFile)
{
    TempTrace tmp("recovery.ppatrace");
    Program prog = kernels::tatpUpdate(80);
    ProgramExecutor golden(prog);
    golden.totalLength();
    writeTrace(tmp.path, golden.generated());

    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    TraceFileSource source(tmp.path);
    system.bindSource(0, &source);
    system.runUntilCycle(1500);
    if (!system.allDone()) {
        auto images = system.powerFail();
        system.recover(images);
    }
    system.run(20'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(system.memory().nvmImage().sameContents(
        golden.goldenMemory()));
}
