/** @file Unit tests for Program / ProgramBuilder / ProgramExecutor. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/program.hh"

using namespace ppa;

TEST(ProgramBuilder, StraightLineProgram)
{
    ProgramBuilder b;
    b.movi(0, 5);
    b.movi(1, 7);
    b.add(2, 0, 1);
    b.halt();

    ProgramExecutor ex(b.program());
    EXPECT_EQ(ex.totalLength(), 4u);
    EXPECT_EQ(ex.goldenState().read(RegClass::Int, 2), 12u);
}

TEST(ProgramBuilder, LoopExecutesExpectedIterations)
{
    ProgramBuilder b;
    b.movi(0, 10); // counter
    b.movi(1, 0);  // accumulator
    auto loop = b.label();
    b.place(loop);
    b.addi(1, 1, 3);
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();

    ProgramExecutor ex(b.program());
    ex.totalLength();
    EXPECT_EQ(ex.goldenState().read(RegClass::Int, 1), 30u);
}

TEST(ProgramBuilder, LoadStoreRoundTrip)
{
    ProgramBuilder b;
    b.initMem(0x100, 41);
    b.movi(1, 0x100);
    b.ld(2, 1, 0);
    b.addi(2, 2, 1);
    b.st(2, 1, 8);
    b.halt();

    ProgramExecutor ex(b.program());
    ex.totalLength();
    EXPECT_EQ(ex.goldenMemory().read(0x108), 42u);
}

TEST(ProgramBuilder, BranchNotTakenFallsThrough)
{
    ProgramBuilder b;
    b.movi(0, 0);     // condition = 0: not taken
    auto skip = b.label();
    b.brnz(0, skip);
    b.movi(1, 111);
    b.place(skip);
    b.halt();

    ProgramExecutor ex(b.program());
    ex.totalLength();
    EXPECT_EQ(ex.goldenState().read(RegClass::Int, 1), 111u);
}

TEST(ProgramBuilder, JumpSkipsCode)
{
    ProgramBuilder b;
    auto over = b.label();
    b.jmp(over);
    b.movi(1, 111); // skipped
    b.place(over);
    b.movi(2, 222);
    b.halt();

    ProgramExecutor ex(b.program());
    ex.totalLength();
    EXPECT_EQ(ex.goldenState().read(RegClass::Int, 1), 0u);
    EXPECT_EQ(ex.goldenState().read(RegClass::Int, 2), 222u);
}

TEST(ProgramExecutor, StreamHasResolvedAddresses)
{
    ProgramBuilder b;
    b.movi(1, 0x4000);
    b.st(1, 1, 16);
    b.halt();

    ProgramExecutor ex(b.program());
    DynInst di;
    ASSERT_TRUE(ex.next(di)); // movi
    ASSERT_TRUE(ex.next(di)); // st
    EXPECT_EQ(di.op, Opcode::Store);
    EXPECT_EQ(di.memAddr, 0x4010u);
}

TEST(ProgramExecutor, TakenBranchesAreMarked)
{
    ProgramBuilder b;
    b.movi(0, 2);
    auto loop = b.label();
    b.place(loop);
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();

    ProgramExecutor ex(b.program());
    std::vector<DynInst> branches;
    DynInst di;
    while (ex.next(di)) {
        if (di.isBranch())
            branches.push_back(di);
    }
    ASSERT_EQ(branches.size(), 2u);
    EXPECT_TRUE(branches[0].taken);  // loop back once
    EXPECT_FALSE(branches[1].taken); // exit
}

TEST(ProgramExecutor, SeekToRepositionsStream)
{
    ProgramBuilder b;
    b.movi(0, 1);
    b.movi(1, 2);
    b.movi(2, 3);
    b.halt();

    ProgramExecutor ex(b.program());
    DynInst di;
    ASSERT_TRUE(ex.next(di));
    ASSERT_TRUE(ex.next(di));
    EXPECT_EQ(di.index, 1u);
    ex.seekTo(0);
    ASSERT_TRUE(ex.next(di));
    EXPECT_EQ(di.index, 0u);
    ex.seekTo(3);
    ASSERT_TRUE(ex.next(di));
    EXPECT_EQ(di.op, Opcode::Halt);
    EXPECT_FALSE(ex.next(di));
}

TEST(ProgramExecutor, RespectsMaxInstBound)
{
    ProgramBuilder b;
    b.movi(0, 1); // r0 != 0 forever
    auto loop = b.label();
    b.place(loop);
    b.addi(1, 1, 1);
    b.brnz(0, loop); // infinite loop
    ProgramExecutor ex(b.program(), 1000);
    EXPECT_EQ(ex.totalLength(), 1000u);
}

TEST(ProgramBuilder, FpPipeline)
{
    ProgramBuilder b;
    b.initMem(0x100, std::bit_cast<Word>(2.0));
    b.initMem(0x108, std::bit_cast<Word>(3.0));
    b.movi(1, 0x100);
    b.fld(0, 1, 0);
    b.fld(1, 1, 8);
    b.fmul(2, 0, 1);
    b.fst(2, 1, 16);
    b.halt();

    ProgramExecutor ex(b.program());
    ex.totalLength();
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(ex.goldenMemory().read(0x110)), 6.0);
}

TEST(ProgramBuilder, AtomicRmw)
{
    ProgramBuilder b;
    b.initMem(0x200, 100);
    b.movi(1, 0x200);
    b.movi(2, 7);
    b.amoadd(3, 2, 1, 0);
    b.halt();

    ProgramExecutor ex(b.program());
    ex.totalLength();
    EXPECT_EQ(ex.goldenMemory().read(0x200), 107u);
    EXPECT_EQ(ex.goldenState().read(RegClass::Int, 3), 100u);
}

TEST(Program, UnplacedLabelIsFatalOnUse)
{
    Program p;
    Label l = p.newLabel();
    EXPECT_DEATH({ p.labelPc(l); }, "unplaced");
}
