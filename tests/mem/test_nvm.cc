/** @file Unit tests for the NVM / WPQ device model. */

#include <gtest/gtest.h>

#include "mem/nvm.hh"

using namespace ppa;

namespace
{

ClockDomain clk2GHz(2e9);

NvmParams
defaultNvm()
{
    return NvmParams{}; // Table 2: 175/90 ns, 16-entry WPQ, 2.3 GB/s
}

} // namespace

TEST(Nvm, ReadLatencyMatchesTable2)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    // 175 ns at 2 GHz = 350 cycles.
    EXPECT_EQ(nvm.readLatency(1000), 1350u);
    EXPECT_EQ(nvm.readCount(), 1u);
}

TEST(Nvm, WriteAcceptedImmediatelyWhenEmpty)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    auto t = nvm.enqueueWrite(0x0, 64, 100);
    EXPECT_EQ(t.acceptCycle, 100u);
    EXPECT_GT(t.ackCycle, t.acceptCycle);
    EXPECT_EQ(nvm.writeCount(), 1u);
    EXPECT_EQ(nvm.bytesWritten(), 64u);
}

TEST(Nvm, WriteLatencyFloor)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    auto t = nvm.enqueueWrite(0x0, 64, 0);
    // At least the 90 ns device write latency (180 cycles).
    EXPECT_GE(t.ackCycle, 180u);
}

TEST(Nvm, BandwidthSerializesWrites)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    auto t1 = nvm.enqueueWrite(0x0, 64, 0);
    auto t2 = nvm.enqueueWrite(0x0, 64, 0); // same controller
    EXPECT_GT(t2.ackCycle, t1.ackCycle);
    // Per-controller service: 64 B at 1.15 GB/s ~= 112 cycles.
    Cycle service = t2.ackCycle - t1.ackCycle;
    EXPECT_GE(service, 100u);
    EXPECT_LE(service, 125u);
}

TEST(Nvm, ControllersInterleaveByLine)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    EXPECT_NE(nvm.controllerOf(0x0), nvm.controllerOf(0x40));
    EXPECT_EQ(nvm.controllerOf(0x0), nvm.controllerOf(0x80));
}

TEST(Nvm, WpqFullDelaysAcceptance)
{
    NvmParams p = defaultNvm();
    p.wpqEntries = 4;
    p.numControllers = 1;
    Nvm nvm(p, clk2GHz);
    NvmWriteTicket last{};
    for (int i = 0; i < 4; ++i)
        last = nvm.enqueueWrite(0x0, 64, 0);
    EXPECT_FALSE(nvm.writeAcceptable(0x0, 0));
    auto t = nvm.enqueueWrite(0x0, 64, 0);
    EXPECT_GT(t.acceptCycle, 0u);
    EXPECT_GT(nvm.wpqStallCycles(), 0u);
    (void)last;
}

TEST(Nvm, WriteAcceptableProbeHasNoSideEffects)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    EXPECT_TRUE(nvm.writeAcceptable(0x0, 0));
    EXPECT_TRUE(nvm.writeAcceptable(0x0, 0));
    EXPECT_EQ(nvm.writeCount(), 0u);
    EXPECT_EQ(nvm.wpqOccupancy(0, 0), 0u);
}

TEST(Nvm, OccupancyDrainsOverTime)
{
    NvmParams p = defaultNvm();
    p.numControllers = 1;
    Nvm nvm(p, clk2GHz);
    auto t = nvm.enqueueWrite(0x0, 64, 0);
    EXPECT_EQ(nvm.wpqOccupancy(0, 0), 1u);
    EXPECT_EQ(nvm.wpqOccupancy(0, t.ackCycle), 0u);
}

TEST(Nvm, HigherBandwidthShortensService)
{
    NvmParams slow = defaultNvm();
    slow.writeBwGBps = 1.0;
    NvmParams fast = defaultNvm();
    fast.writeBwGBps = 6.0;
    Nvm a(slow, clk2GHz), b(fast, clk2GHz);
    a.enqueueWrite(0x0, 64, 0);
    b.enqueueWrite(0x0, 64, 0);
    auto t_slow = a.enqueueWrite(0x0, 64, 0);
    auto t_fast = b.enqueueWrite(0x0, 64, 0);
    EXPECT_GT(t_slow.ackCycle, t_fast.ackCycle);
}

TEST(Nvm, DrainAllByTracksLatestAck)
{
    Nvm nvm(defaultNvm(), clk2GHz);
    EXPECT_EQ(nvm.drainAllBy(), 0u);
    auto t1 = nvm.enqueueWrite(0x0, 64, 0);
    auto t2 = nvm.enqueueWrite(0x40, 64, 0); // other controller
    EXPECT_EQ(nvm.drainAllBy(), std::max(t1.ackCycle, t2.ackCycle));
}
