/** @file Unit tests for the direct-mapped DRAM cache (memory mode). */

#include <gtest/gtest.h>

#include "mem/dram_cache.hh"

using namespace ppa;

namespace
{

DramCacheParams
smallDramCache()
{
    DramCacheParams p;
    p.sizeBytes = 64 * 1024; // 1024 lines
    p.lineBytes = 64;
    p.hitLatency = 100;
    return p;
}

} // namespace

TEST(DramCache, WarmStartAbsorbsFirstTouch)
{
    // Default warmStart: a never-allocated set counts as a hit (the
    // 5B-instruction fast-forward warmed the DRAM cache).
    DramCache d(smallDramCache());
    EXPECT_TRUE(d.access(0x1000, false).hit);
    EXPECT_TRUE(d.access(0x1000, false).hit);
    EXPECT_EQ(d.hits(), 2u);
    EXPECT_EQ(d.misses(), 0u);
}

TEST(DramCache, ColdMissThenHitWithoutWarmStart)
{
    DramCacheParams p = smallDramCache();
    p.warmStart = false;
    DramCache d(p);
    EXPECT_FALSE(d.access(0x1000, false).hit);
    EXPECT_TRUE(d.access(0x1000, false).hit);
    EXPECT_EQ(d.hits(), 1u);
    EXPECT_EQ(d.misses(), 1u);
}

TEST(DramCache, DirectMappedConflict)
{
    DramCache d(smallDramCache());
    Addr a = 0x0;
    Addr b = 64 * 1024; // same set, different tag
    d.access(a, true);
    auto r = d.access(b, false);
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.dirtyVictim.has_value());
    EXPECT_EQ(*r.dirtyVictim, a);
    EXPECT_FALSE(d.contains(a));
    EXPECT_TRUE(d.contains(b));
}

TEST(DramCache, CleanVictimNotReported)
{
    DramCache d(smallDramCache());
    d.access(0x0, false);
    auto r = d.access(64 * 1024, false);
    EXPECT_FALSE(r.dirtyVictim.has_value());
}

TEST(DramCache, UpdateIfPresentCleansLine)
{
    DramCache d(smallDramCache());
    d.access(0x40, true);
    EXPECT_EQ(d.dirtyLines().size(), 1u);
    d.updateIfPresent(0x48); // persist wrote NVM: copy now clean
    EXPECT_TRUE(d.dirtyLines().empty());
    EXPECT_TRUE(d.contains(0x40));
}

TEST(DramCache, UpdateIfPresentIgnoresAbsentLine)
{
    DramCache d(smallDramCache());
    d.updateIfPresent(0x40);
    EXPECT_FALSE(d.contains(0x40));
}

TEST(DramCache, InvalidateAllDropsEverything)
{
    DramCache d(smallDramCache());
    d.access(0x0, true);
    d.access(0x40, false);
    d.invalidateAll();
    EXPECT_FALSE(d.contains(0x0));
    EXPECT_FALSE(d.contains(0x40));
    EXPECT_TRUE(d.dirtyLines().empty());
}

TEST(DramCache, HitLatencyConfigured)
{
    DramCache d(smallDramCache());
    EXPECT_EQ(d.hitLatency(), 100u);
}
