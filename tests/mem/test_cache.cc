/** @file Unit tests for the set-associative cache tag model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace ppa;

namespace
{

CacheParams
smallCache()
{
    // 4 KiB, 2-way, 64 B lines -> 32 sets.
    return CacheParams{4 * 1024, 2, 64, 3};
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    auto r1 = c.access(0x1000, false);
    EXPECT_FALSE(r1.hit);
    auto r2 = c.access(0x1000, false);
    EXPECT_TRUE(r2.hit);
    auto r3 = c.access(0x1038, false); // same line
    EXPECT_TRUE(r3.hit);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(smallCache());
    // Three lines mapping to the same set (stride = 32 sets * 64 B).
    Addr a = 0x0000, b = 0x0800, d = 0x1000;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);      // a more recent than b
    auto r = c.access(d, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.dirtyVictim.has_value()); // b was clean
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyVictimReported)
{
    Cache c(smallCache());
    Addr a = 0x0000, b = 0x0800, d = 0x1000;
    c.access(a, true); // dirty
    c.access(b, false);
    auto r = c.access(d, false); // evicts a (LRU)
    ASSERT_TRUE(r.dirtyVictim.has_value());
    EXPECT_EQ(*r.dirtyVictim, a);
}

TEST(Cache, WriteMarksDirtyOnHit)
{
    Cache c(smallCache());
    c.access(0x40, false);
    c.access(0x40, true);
    auto dirty = c.dirtyLines();
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0], 0x40u);
}

TEST(Cache, CleanLineClearsDirtyBit)
{
    Cache c(smallCache());
    c.access(0x40, true);
    c.cleanLine(0x47); // any address within the line
    EXPECT_TRUE(c.dirtyLines().empty());
}

TEST(Cache, InsertWritebackAllocates)
{
    Cache c(smallCache());
    auto victim = c.insertWriteback(0x2000, true);
    EXPECT_FALSE(victim.has_value());
    EXPECT_TRUE(c.contains(0x2000));
    auto dirty = c.dirtyLines();
    ASSERT_EQ(dirty.size(), 1u);
}

TEST(Cache, InsertWritebackMergesDirtyBit)
{
    Cache c(smallCache());
    c.access(0x2000, false); // clean resident line
    c.insertWriteback(0x2000, true);
    EXPECT_EQ(c.dirtyLines().size(), 1u);
}

TEST(Cache, InvalidateAllReturnsDirtyLines)
{
    Cache c(smallCache());
    // Distinct sets so nothing evicts anything.
    c.access(0x0, true);
    c.access(0x40, true);
    c.access(0x80, false);
    auto dirty = c.invalidateAll();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x80));
}

TEST(Cache, LineAlign)
{
    Cache c(smallCache());
    EXPECT_EQ(c.lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(Cache, MissRatio)
{
    Cache c(smallCache());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.25);
}

TEST(Cache, Table2Geometries)
{
    // The paper's caches must construct: 64 KB 8-way L1D, 1 MB (16 MB
    // scaled) 16-way L2.
    Cache l1(CacheParams{64 * 1024, 8, 64, 4});
    Cache l2(CacheParams{1024 * 1024, 16, 64, 44});
    EXPECT_EQ(l1.hitLatency(), 4u);
    EXPECT_EQ(l2.hitLatency(), 44u);
}
