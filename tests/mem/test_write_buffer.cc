/** @file Unit tests for the L1D write buffer with persist coalescing. */

#include <gtest/gtest.h>

#include "mem/write_buffer.hh"

using namespace ppa;

namespace
{

struct WbFixture : ::testing::Test
{
    ClockDomain clk{2e9};
    NvmParams nvmParams{};
    Nvm nvm{nvmParams, clk};
    MemImage nvmImage;
    /** Window 0: issue immediately (windowed behaviour is tested
     *  separately below). */
    WriteBuffer wb{4, 64, 0};
};

} // namespace

TEST_F(WbFixture, StoreIsOutstandingUntilAcked)
{
    ASSERT_TRUE(wb.addStore(0x1000, 7, 0));
    EXPECT_EQ(wb.outstandingStores(0), 1u);
    Cycle t = wb.drainAll(0, nvm, nvmImage);
    EXPECT_EQ(wb.outstandingStores(t), 0u);
    EXPECT_EQ(nvmImage.read(0x1000), 7u);
}

TEST_F(WbFixture, SameLineStoresCoalesce)
{
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    ASSERT_TRUE(wb.addStore(0x1008, 2, 0));
    ASSERT_TRUE(wb.addStore(0x1010, 3, 0));
    EXPECT_EQ(wb.coalescedStores(), 2u);
    EXPECT_EQ(wb.outstandingStores(0), 3u);

    wb.drainAll(0, nvm, nvmImage);
    // One persist op carried all three words.
    EXPECT_EQ(wb.persistOps(), 1u);
    EXPECT_EQ(nvm.writeCount(), 1u);
    EXPECT_EQ(nvmImage.read(0x1000), 1u);
    EXPECT_EQ(nvmImage.read(0x1008), 2u);
    EXPECT_EQ(nvmImage.read(0x1010), 3u);
}

TEST_F(WbFixture, CoalescingKeepsYoungestValue)
{
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    ASSERT_TRUE(wb.addStore(0x1000, 2, 0));
    wb.drainAll(0, nvm, nvmImage);
    EXPECT_EQ(nvmImage.read(0x1000), 2u);
}

TEST_F(WbFixture, DifferentLinesUseSeparateEntries)
{
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    ASSERT_TRUE(wb.addStore(0x2000, 2, 0));
    EXPECT_EQ(wb.coalescedStores(), 0u);
    wb.drainAll(0, nvm, nvmImage);
    EXPECT_EQ(wb.persistOps(), 2u);
}

TEST_F(WbFixture, FullBufferRejectsNewLine)
{
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(wb.addStore(0x1000 + 0x40 * i, i, 0));
    EXPECT_FALSE(wb.addStore(0x9000, 9, 0));
    EXPECT_EQ(wb.fullStalls(), 1u);
    // Same-line store still coalesces even when "full".
    EXPECT_TRUE(wb.addStore(0x1008, 42, 0));
}

TEST_F(WbFixture, TickIssuesOldestFirst)
{
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    ASSERT_TRUE(wb.addStore(0x2000, 2, 0));
    wb.tick(0, nvm, nvmImage);
    // Only the oldest issued this tick.
    EXPECT_EQ(wb.persistOps(), 1u);
    EXPECT_EQ(nvmImage.read(0x1000), 1u);
    EXPECT_EQ(nvmImage.read(0x2000), 0u);
    wb.tick(1, nvm, nvmImage);
    EXPECT_EQ(wb.persistOps(), 2u);
}

TEST_F(WbFixture, WpqAcceptanceIsPersistence)
{
    // ADR semantics: once the WPQ accepts the write it is inside the
    // persistence domain, so the L1D counter drops immediately.
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    EXPECT_EQ(wb.outstandingStores(0), 1u);
    wb.tick(0, nvm, nvmImage); // issued into WPQ
    EXPECT_EQ(wb.persistOps(), 1u);
    EXPECT_EQ(wb.outstandingStores(1), 0u);
    EXPECT_EQ(nvmImage.read(0x1000), 1u);
}

TEST_F(WbFixture, EmptyAfterDrain)
{
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    Cycle t = wb.drainAll(0, nvm, nvmImage);
    EXPECT_TRUE(wb.empty(t));
}

TEST(WriteBufferWindow, HoldsEntryForCombining)
{
    ClockDomain clk(2e9);
    Nvm nvm(NvmParams{}, clk);
    MemImage img;
    WriteBuffer wb(8, 64, 16);
    ASSERT_TRUE(wb.addStore(0x1000, 1, 0));
    for (Cycle t = 0; t < 16; ++t)
        wb.tick(t, nvm, img);
    // Still combining: nothing issued during the window.
    EXPECT_EQ(wb.persistOps(), 0u);
    wb.tick(16, nvm, img);
    EXPECT_EQ(wb.persistOps(), 1u);
}

TEST(WriteBufferWindow, BurstCoalescesIntoOneOp)
{
    ClockDomain clk(2e9);
    Nvm nvm(NvmParams{}, clk);
    MemImage img;
    WriteBuffer wb(8, 64, 16);
    // A burst of 8 sequential-word stores spread over 8 cycles.
    for (Cycle t = 0; t < 8; ++t) {
        ASSERT_TRUE(wb.addStore(0x1000 + t * 8, t, t));
        wb.tick(t, nvm, img);
    }
    Cycle t = wb.drainAll(8, nvm, img);
    EXPECT_EQ(wb.persistOps(), 1u);
    EXPECT_EQ(wb.coalescedStores(), 7u);
    EXPECT_TRUE(wb.empty(t));
    for (Cycle i = 0; i < 8; ++i)
        EXPECT_EQ(img.read(0x1000 + i * 8), i);
}

TEST(WriteBufferWindow, PressureFlushesEarly)
{
    ClockDomain clk(2e9);
    Nvm nvm(NvmParams{}, clk);
    MemImage img;
    WriteBuffer wb(16, 64, 1000);
    // More than 3 open lines trips the streaming-issue pressure path
    // (only a handful of lines stay open for combining).
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(wb.addStore(0x1000 + 0x40 * i, i, 0));
    wb.tick(0, nvm, img);
    EXPECT_EQ(wb.persistOps(), 1u); // flushed despite the long window
    // With only 3 open lines, nothing flushes inside the window.
    WriteBuffer calm(16, 64, 1000);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(calm.addStore(0x1000 + 0x40 * i, i, 0));
    calm.tick(0, nvm, img);
    EXPECT_EQ(calm.persistOps(), 0u);
}
