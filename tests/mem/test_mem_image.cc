/** @file Unit tests for the word-granularity memory image. */

#include <gtest/gtest.h>

#include "mem/mem_image.hh"

using namespace ppa;

TEST(MemImage, UnwrittenWordsReadZero)
{
    MemImage m;
    EXPECT_EQ(m.read(0x1234), 0u);
    EXPECT_EQ(m.footprintWords(), 0u);
}

TEST(MemImage, WordAlignment)
{
    EXPECT_EQ(MemImage::wordAlign(0x1007), 0x1000u);
    EXPECT_EQ(MemImage::wordAlign(0x1008), 0x1008u);
    MemImage m;
    m.write(0x1001, 5);
    EXPECT_EQ(m.read(0x1000), 5u);
    EXPECT_EQ(m.read(0x1007), 5u);
    EXPECT_EQ(m.read(0x1008), 0u);
}

TEST(MemImage, OverwriteKeepsLatest)
{
    MemImage m;
    m.write(0x10, 1);
    m.write(0x10, 2);
    EXPECT_EQ(m.read(0x10), 2u);
    EXPECT_EQ(m.footprintWords(), 1u);
}

TEST(MemImage, CopyLineFromTransfersWholeLine)
{
    MemImage src, dst;
    for (Addr off = 0; off < 64; off += 8)
        src.write(0x1000 + off, off + 1);
    src.write(0x1040, 99); // next line: must not copy

    dst.copyLineFrom(src, 0x1010, 63);
    for (Addr off = 0; off < 64; off += 8)
        EXPECT_EQ(dst.read(0x1000 + off), off + 1);
    EXPECT_EQ(dst.read(0x1040), 0u);
}

TEST(MemImage, SameContentsTreatsMissingAsZero)
{
    MemImage a, b;
    a.write(0x8, 0);
    EXPECT_TRUE(a.sameContents(b));
    b.write(0x10, 3);
    EXPECT_FALSE(a.sameContents(b));
    a.write(0x10, 3);
    EXPECT_TRUE(a.sameContents(b));
}

TEST(MemImage, DiffAddrsReportsMismatches)
{
    MemImage a, b;
    a.write(0x20, 1);
    b.write(0x20, 2);
    b.write(0x30, 9);
    auto diffs = a.diffAddrs(b);
    EXPECT_EQ(diffs.size(), 2u);
}

TEST(MemImage, ForEachWordVisitsAll)
{
    MemImage m;
    m.write(0x8, 1);
    m.write(0x10, 2);
    std::size_t n = 0;
    Word sum = 0;
    m.forEachWord([&](Addr, Word v) {
        ++n;
        sum += v;
    });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(sum, 3u);
}

TEST(MemImage, ClearEmptiesImage)
{
    MemImage m;
    m.write(0x8, 1);
    m.clear();
    EXPECT_EQ(m.footprintWords(), 0u);
    EXPECT_EQ(m.read(0x8), 0u);
}
