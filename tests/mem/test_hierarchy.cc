/** @file Integration tests for the full memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace ppa;

namespace
{

MemSystemParams
testMemParams()
{
    MemSystemParams p;
    // Shrink for tests: 4 KiB L1D, 64 KiB L2, 256 KiB DRAM cache.
    p.l1d = CacheParams{4 * 1024, 8, 64, 4};
    p.l2 = CacheParams{64 * 1024, 16, 64, 44};
    p.dramCache.sizeBytes = 256 * 1024;
    return p;
}

struct HierFixture : ::testing::Test
{
    ClockDomain clk{2e9};
    MemHierarchy mem{testMemParams(), 2, clk};
};

} // namespace

TEST_F(HierFixture, ColdLoadHitsWarmDramCache)
{
    // warmStart (default): the fast-forwarded DRAM cache absorbs the
    // first touch; the access pays L1 (4) + L2 (44) + DRAM$ (100).
    Cycle done = mem.load(0, 0x10000, 0);
    EXPECT_EQ(done, 4u + 44u + 100u);
    EXPECT_EQ(mem.nvm().readCount(), 0u);
}

TEST(HierarchyCold, ColdLoadGoesToNvmWithoutWarmStart)
{
    MemSystemParams p = testMemParams();
    p.dramCache.warmStart = false;
    ClockDomain clk(2e9);
    MemHierarchy mem(p, 1, clk);
    Cycle done = mem.load(0, 0x10000, 0);
    // L1 (4) + L2 (44) + DRAM$ (100) + NVM read (350).
    EXPECT_GE(done, 350u);
    EXPECT_EQ(mem.nvm().readCount(), 1u);
}

TEST(HierarchyCold, WarmStartStillConflictMisses)
{
    MemSystemParams p = testMemParams();
    ClockDomain clk(2e9);
    MemHierarchy mem(p, 1, clk);
    // Two addresses aliasing in the 256 KiB direct-mapped DRAM$.
    mem.load(0, 0x10000, 0);
    Cycle done = mem.load(0, 0x10000 + 256 * 1024, 10);
    EXPECT_GE(done - 10, 350u); // conflict miss -> NVM read
    EXPECT_EQ(mem.nvm().readCount(), 1u);
}

TEST_F(HierFixture, WarmLoadHitsL1)
{
    mem.load(0, 0x10000, 0);
    Cycle done = mem.load(0, 0x10000, 1000);
    EXPECT_EQ(done, 1004u);
}

TEST_F(HierFixture, PrivateL1sSharedL2)
{
    mem.load(0, 0x10000, 0);
    // Core 1 misses its own L1 but hits the shared L2.
    Cycle done = mem.load(1, 0x10000, 1000);
    EXPECT_EQ(done, 1000u + 4 + 44);
}

TEST_F(HierFixture, BaselineStoreDirtiesLine)
{
    auto r = mem.storeMerge(0, 0x20000, 42, 0, /*persist=*/false);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(mem.committed().read(0x20000), 42u);
    EXPECT_EQ(mem.l1d(0).dirtyLines().size(), 1u);
    // Nothing persisted yet.
    EXPECT_EQ(mem.nvmImage().read(0x20000), 0u);
}

TEST_F(HierFixture, PpaStoreLeavesLineCleanAndPersists)
{
    auto r = mem.storeMerge(0, 0x20000, 42, 0, /*persist=*/true);
    EXPECT_TRUE(r.accepted);
    EXPECT_TRUE(mem.l1d(0).dirtyLines().empty());
    EXPECT_GT(mem.outstandingPersists(0, 0), 0u);

    // Tick until the persist drains.
    Cycle t = 0;
    while (mem.outstandingPersists(0, t) > 0) {
        mem.tick(t);
        ++t;
        ASSERT_LT(t, 100000u);
    }
    EXPECT_EQ(mem.nvmImage().read(0x20000), 42u);
}

TEST_F(HierFixture, DrainAllFlushesBaselineDirtyData)
{
    mem.storeMerge(0, 0x20000, 7, 0, false);
    mem.storeMerge(1, 0x30000, 8, 0, false);
    mem.drainAll(10);
    EXPECT_EQ(mem.nvmImage().read(0x20000), 7u);
    EXPECT_EQ(mem.nvmImage().read(0x30000), 8u);
}

TEST_F(HierFixture, PowerFailLosesVolatileState)
{
    mem.storeMerge(0, 0x20000, 7, 0, false); // dirty in L1D only
    mem.powerFail();
    EXPECT_FALSE(mem.l1d(0).contains(0x20000));
    // The dirty data never reached NVM: lost, as in real hardware.
    EXPECT_EQ(mem.nvmImage().read(0x20000), 0u);
}

TEST_F(HierFixture, RecoveryWriteUpdatesBothImages)
{
    mem.recoveryWrite(0x1234, 99);
    EXPECT_EQ(mem.nvmImage().read(0x1234), 99u);
    EXPECT_EQ(mem.committed().read(0x1234), 99u);
}

TEST_F(HierFixture, InitializeSeedsBothImages)
{
    mem.initializeWord(0x10, 5);
    EXPECT_EQ(mem.committed().read(0x10), 5u);
    EXPECT_EQ(mem.nvmImage().read(0x10), 5u);
}

TEST_F(HierFixture, ClwbPersistsTheLine)
{
    mem.storeMerge(0, 0x20000, 7, 0, false);
    Cycle ack = mem.clwbLine(0, 0x20000, 10);
    EXPECT_GT(ack, 10u);
    EXPECT_EQ(mem.nvmImage().read(0x20000), 7u);
    EXPECT_TRUE(mem.l1d(0).dirtyLines().empty());
}

TEST_F(HierFixture, AtomicPersistWriteIsImmediatelyDurable)
{
    Cycle ack = mem.atomicPersistWrite(0, 0x40000, 77, 5);
    EXPECT_GT(ack, 5u);
    EXPECT_EQ(mem.nvmImage().read(0x40000), 77u);
    EXPECT_EQ(mem.committed().read(0x40000), 77u);
}

TEST(Hierarchy, DramOnlyNeverTouchesNvm)
{
    MemSystemParams p = testMemParams();
    p.dramOnly = true;
    ClockDomain clk(2e9);
    MemHierarchy mem(p, 1, clk);
    mem.load(0, 0x10000, 0);
    mem.storeMerge(0, 0x20000, 1, 0, false);
    mem.drainAll(100);
    EXPECT_EQ(mem.nvm().readCount(), 0u);
    EXPECT_EQ(mem.nvm().writeCount(), 0u);
}

TEST(Hierarchy, AppDirectSkipsDramCache)
{
    MemSystemParams p = testMemParams();
    p.dramCache.enabled = false; // eADR/BBB ideal-PSP configuration
    ClockDomain clk(2e9);
    MemHierarchy mem(p, 1, clk);
    Cycle done = mem.load(0, 0x10000, 0);
    // L1 (4) + L2 (44) + NVM (350) but no DRAM-cache 100 cycles.
    EXPECT_GE(done, 350u);
    EXPECT_LT(done, 440u);
}

TEST(Hierarchy, L3AddsALevel)
{
    MemSystemParams p = testMemParams();
    p.l3Enabled = true;
    p.l3 = CacheParams{128 * 1024, 16, 64, 44};
    p.l2 = CacheParams{32 * 1024, 16, 64, 14};
    ClockDomain clk(2e9);
    MemHierarchy mem(p, 1, clk);
    mem.load(0, 0x10000, 0); // cold fill through all levels
    // Evict from L1+L2 by thrashing, then re-access: should hit L3.
    for (Addr a = 0; a < 96 * 1024; a += 64)
        mem.load(0, 0x100000 + a, 1);
    Cycle before_reads = mem.nvm().readCount();
    mem.load(0, 0x10000, 2);
    EXPECT_EQ(mem.nvm().readCount(), before_reads);
}
