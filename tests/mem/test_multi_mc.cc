/** @file
 * Multiple-memory-controller tests (paper Section 6, "Multiple Memory
 * Controller (MC) Support"): region-level persistence makes crash
 * consistency independent of how lines interleave across controllers
 * — a younger store to a near MC cannot out-persist an older store to
 * a far MC across a region boundary, and stores within one region are
 * replayed together anyway.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/system.hh"

using namespace ppa;

namespace
{

/**
 * Alternate stores across two lines that map to different memory
 * controllers (line-interleaved), with data dependencies forcing a
 * strict program order.
 */
Program
crossMcStores(std::uint64_t pairs)
{
    ProgramBuilder b;
    b.movi(0, pairs);
    b.movi(1, 0x10000); // line 0 -> MC0
    b.movi(2, 0x10040); // line 1 -> MC1
    b.movi(3, 1);
    auto loop = b.label();
    b.place(loop);
    b.st(3, 1, 0);      // older store, MC0
    b.addi(3, 3, 1);
    b.st(3, 2, 0);      // younger store, MC1
    b.addi(3, 3, 1);
    b.subi(0, 0, 1);
    b.brnz(0, loop);
    b.halt();
    return b.program();
}

} // namespace

TEST(MultiMc, LinesInterleaveAcrossControllers)
{
    ClockDomain clk(2e9);
    NvmParams p;
    p.numControllers = 4;
    Nvm nvm(p, clk);
    EXPECT_EQ(nvm.controllerOf(0x0), 0u);
    EXPECT_EQ(nvm.controllerOf(0x40), 1u);
    EXPECT_EQ(nvm.controllerOf(0x80), 2u);
    EXPECT_EQ(nvm.controllerOf(0xC0), 3u);
    EXPECT_EQ(nvm.controllerOf(0x100), 0u);
}

TEST(MultiMc, ControllersServeIndependently)
{
    ClockDomain clk(2e9);
    NvmParams p;
    p.numControllers = 2;
    Nvm nvm(p, clk);
    auto t0 = nvm.enqueueWrite(0x0, 64, 0);
    auto t1 = nvm.enqueueWrite(0x40, 64, 0); // other controller
    // Different controllers do not serialize against each other.
    EXPECT_EQ(t0.ackCycle, t1.ackCycle);
    auto t2 = nvm.enqueueWrite(0x0, 64, 0); // same controller as t0
    EXPECT_GT(t2.ackCycle, t0.ackCycle);
}

TEST(MultiMc, RecoveryCorrectAcrossControllerCounts)
{
    Program prog = crossMcStores(60);
    ProgramExecutor golden(prog);
    golden.totalLength();

    for (unsigned mcs : {1u, 2u, 4u, 8u}) {
        for (Cycle fail : {300u, 1200u, 5000u}) {
            SystemConfig sc;
            sc.core.mode = PersistMode::Ppa;
            sc.mem.nvm.numControllers = mcs;
            System system(sc);
            system.seedMemory(prog.initialMemory());
            ProgramExecutor source(prog);
            system.bindSource(0, &source);
            system.runUntilCycle(fail);
            if (!system.allDone()) {
                auto images = system.powerFail();
                system.recover(images);
            }
            system.run(40'000'000);
            ASSERT_TRUE(system.allDone())
                << "mcs=" << mcs << " fail=" << fail;
            EXPECT_TRUE(system.memory().nvmImage().sameContents(
                golden.goldenMemory()))
                << "mcs=" << mcs << " fail=" << fail;
        }
    }
}

TEST(MultiMc, OlderFarStoreNeverLostBehindYoungNearStore)
{
    // The Section 6 scenario: after any failure + recovery, whenever
    // the younger (MC1) store's latest value is present, the older
    // (MC0) value from the same iteration is too.
    Program prog = crossMcStores(400);
    SystemConfig sc;
    sc.core.mode = PersistMode::Ppa;
    System system(sc);
    system.seedMemory(prog.initialMemory());
    ProgramExecutor source(prog);
    system.bindSource(0, &source);
    system.runUntilCycle(600);
    ASSERT_FALSE(system.allDone());
    auto images = system.powerFail();
    system.recover(images);

    const MemImage &nvm = system.memory().nvmImage();
    Word near_val = nvm.read(0x10040); // younger (2,4,6,...)
    Word far_val = nvm.read(0x10000);  // older   (1,3,5,...)
    if (near_val != 0) {
        // The recovered image reflects a consistent prefix: the older
        // store of the same pair (value = younger-1) must be present.
        EXPECT_EQ(far_val, near_val - 1);
    }
}
