/**
 * @file
 * Narrow telemetry hook for the in-run observability layer.
 *
 * Mirrors src/check/observer.hh: the interface lives here, below every
 * model library, so core headers can include it without depending on
 * the telemetry implementation (src/obs/telemetry.*, library ppa_obs).
 * The hook is null by default and nothing in simulated behaviour may
 * depend on it being attached — with telemetry off the only cost in
 * the hot loop is one null-pointer test per callback site.
 *
 * Unlike the audit observer (one callback per pipeline event), this
 * hook is cycle-oriented: the core reports one end-of-cycle callback
 * plus at most one structural-stall attribution per cycle, which is
 * what the stall-accounting contract (docs/TELEMETRY.md) requires.
 */

#ifndef PPA_OBS_HOOKS_HH
#define PPA_OBS_HOOKS_HH

#include <cstdint>

#include "common/types.hh"
#include "ppa/region_stats.hh"

namespace ppa
{
namespace obs
{

/**
 * Structural reasons a core cycle can stall on. At most one fires per
 * cycle per core (Core asserts this): commit-side persist backpressure
 * is attributed first, and the rename-side ROB-full symptom is only
 * reported when no commit-side cause claimed the cycle.
 */
enum class StallReason : std::uint8_t
{
    /** Rename blocked: ROB at capacity (and commit is not draining a
     *  region — otherwise the drain cause owns the cycle). */
    RobFull,
    /** Commit blocked draining an implicit region boundary forced by
     *  a full committed store queue (Section 4.2). */
    CsqFull,
    /** Commit blocked on the persist path with the write buffer or an
     *  NVM write pending queue at capacity (structural backpressure). */
    WpqFull,
    /** Commit blocked waiting for persist acknowledgments while the
     *  WB/WPQ have room: the drain is paced by NVM write bandwidth. */
    NvmBandwidth,
};

/** Telemetry hook attached to one Core (see obs::Telemetry). */
class TelemetryHook
{
  public:
    virtual ~TelemetryHook() = default;

    /**
     * End of Core::tick for cycle @p cycle. @p committed is the number
     * of instructions retired this cycle; the hook classifies the
     * cycle and advances the sampling clock here.
     */
    virtual void onCycleEnd(Cycle cycle, unsigned committed) = 0;

    /**
     * A structural stall fired this cycle. Core guarantees (and
     * PPA_ASSERTs) at most one call per cycle.
     */
    virtual void onStructuralStall(StallReason reason) = 0;

    /** A region boundary completed at @p cycle with cause @p cause. */
    virtual void onRegionBoundaryComplete(Cycle cycle,
                                          RegionEndCause cause) = 0;

    /** Power failure captured at @p cycle. */
    virtual void onPowerFail(Cycle cycle) = 0;

    /** Recovery finished at @p cycle. */
    virtual void onRecover(Cycle cycle) = 0;
};

} // namespace obs
} // namespace ppa

#endif // PPA_OBS_HOOKS_HH
