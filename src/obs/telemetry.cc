#include "obs/telemetry.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"

namespace ppa
{
namespace obs
{

const char *
cycleClassKey(CycleClass c)
{
    switch (c) {
      case CycleClass::Active:
        return "active";
      case CycleClass::FetchStarved:
        return "fetchStarved";
      case CycleClass::RobFull:
        return "robFull";
      case CycleClass::CsqFull:
        return "csqFull";
      case CycleClass::WpqFull:
        return "wpqFull";
      case CycleClass::NvmBandwidth:
        return "nvmBandwidth";
      case CycleClass::Other:
        return "other";
      case CycleClass::Idle:
        return "idle";
    }
    return "?";
}

const char *
cycleClassLabel(CycleClass c)
{
    switch (c) {
      case CycleClass::Active:
        return "active (committing)";
      case CycleClass::FetchStarved:
        return "fetch-starved";
      case CycleClass::RobFull:
        return "ROB-full";
      case CycleClass::CsqFull:
        return "CSQ-full";
      case CycleClass::WpqFull:
        return "WPQ-full";
      case CycleClass::NvmBandwidth:
        return "NVM-bandwidth";
      case CycleClass::Other:
        return "other (exec/mem latency)";
      case CycleClass::Idle:
        return "idle (stream done)";
    }
    return "?";
}

namespace
{

CycleClass
classOf(StallReason r)
{
    switch (r) {
      case StallReason::RobFull:
        return CycleClass::RobFull;
      case StallReason::CsqFull:
        return CycleClass::CsqFull;
      case StallReason::WpqFull:
        return CycleClass::WpqFull;
      case StallReason::NvmBandwidth:
        return CycleClass::NvmBandwidth;
    }
    return CycleClass::Other;
}

bool
isDrainReason(StallReason r)
{
    return r == StallReason::CsqFull || r == StallReason::WpqFull ||
           r == StallReason::NvmBandwidth;
}

} // namespace

// --------------------------------------------------------------------
// TelemetrySeries
// --------------------------------------------------------------------

std::uint64_t
TelemetrySeries::samples() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : counts)
        n += c;
    return n;
}

std::uint64_t
TelemetrySeries::total() const
{
    std::uint64_t n = 0;
    for (std::uint64_t s : sums)
        n += s;
    return n;
}

double
TelemetrySeries::mean() const
{
    std::uint64_t n = samples();
    return n ? static_cast<double>(total()) / static_cast<double>(n)
             : 0.0;
}

double
TelemetrySeries::percentile(double frac) const
{
    std::uint64_t n = samples();
    if (n == 0)
        return 0.0;
    // Ceil-rank percentile over bucket means, weighted by each
    // bucket's raw-sample count (the Histogram convention).
    std::vector<std::pair<double, std::uint64_t>> buckets;
    buckets.reserve(sums.size());
    for (std::size_t i = 0; i < sums.size(); ++i) {
        if (counts[i] == 0)
            continue;
        buckets.emplace_back(static_cast<double>(sums[i]) /
                                 static_cast<double>(counts[i]),
                             counts[i]);
    }
    std::sort(buckets.begin(), buckets.end());
    std::uint64_t rank = static_cast<std::uint64_t>(
        frac * static_cast<double>(n));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    std::uint64_t seen = 0;
    for (const auto &[value, count] : buckets) {
        seen += count;
        if (seen >= rank)
            return value;
    }
    return buckets.empty() ? 0.0 : buckets.back().first;
}

double
TelemetrySeries::maxBucketMean() const
{
    double best = 0.0;
    for (std::size_t i = 0; i < sums.size(); ++i) {
        if (counts[i] == 0)
            continue;
        best = std::max(best, static_cast<double>(sums[i]) /
                                  static_cast<double>(counts[i]));
    }
    return best;
}

// --------------------------------------------------------------------
// TelemetryResult
// --------------------------------------------------------------------

std::uint64_t
TelemetryResult::classCycles(CycleClass c) const
{
    std::uint64_t n = 0;
    for (const auto &row : stallCycles)
        n += row[static_cast<std::size_t>(c)];
    return n;
}

const TelemetrySeries *
TelemetryResult::findSeries(const std::string &name, int core) const
{
    for (const TelemetrySeries &s : series) {
        if (s.core == core && s.name == name)
            return &s;
    }
    return nullptr;
}

namespace
{

/** Halve a materialized series in place (pairwise bucket merge). */
void
mergeSeriesPairs(TelemetrySeries &s)
{
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < s.cycles.size(); i += 2, ++out) {
        s.cycles[out] = s.cycles[i];
        s.counts[out] = s.counts[i] + s.counts[i + 1];
        s.sums[out] = s.sums[i] + s.sums[i + 1];
    }
    if (s.cycles.size() % 2) { // odd tail carries over unmerged
        s.cycles[out] = s.cycles.back();
        s.counts[out] = s.counts.back();
        s.sums[out] = s.sums.back();
        ++out;
    }
    s.cycles.resize(out);
    s.counts.resize(out);
    s.sums.resize(out);
}

} // namespace

void
appendTelemetry(TelemetryResult &dst, const TelemetryResult &seg,
                std::uint64_t cycle_offset)
{
    if (!seg.enabled)
        return;
    dst.enabled = true;
    if (dst.sampleCycles == 0)
        dst.sampleCycles = seg.sampleCycles;
    if (dst.seriesCap == 0)
        dst.seriesCap = seg.seriesCap;
    if (dst.stallCycles.size() < seg.stallCycles.size())
        dst.stallCycles.resize(seg.stallCycles.size());
    for (std::size_t c = 0; c < seg.stallCycles.size(); ++c) {
        for (unsigned k = 0; k < kCycleClassCount; ++k)
            dst.stallCycles[c][k] += seg.stallCycles[c][k];
    }
    dst.coveredCycles += seg.coveredCycles;

    for (const TelemetrySeries &in : seg.series) {
        TelemetrySeries *out = nullptr;
        for (TelemetrySeries &s : dst.series) {
            if (s.core == in.core && s.name == in.name) {
                out = &s;
                break;
            }
        }
        if (!out) {
            dst.series.push_back(TelemetrySeries{in.name, in.core,
                                                 {}, {}, {}});
            out = &dst.series.back();
        }
        for (std::size_t i = 0; i < in.cycles.size(); ++i) {
            out->cycles.push_back(in.cycles[i] + cycle_offset);
            out->counts.push_back(in.counts[i]);
            out->sums.push_back(in.sums[i]);
        }
        while (dst.seriesCap && out->cycles.size() > dst.seriesCap)
            mergeSeriesPairs(*out);
    }

    for (const TelemetryRegionEvent &e : seg.regionEvents) {
        if (dst.regionEvents.size() >= kRegionEventCap) {
            ++dst.droppedRegionEvents;
            continue;
        }
        TelemetryRegionEvent shifted = e;
        shifted.start += cycle_offset;
        shifted.drainStart += cycle_offset;
        shifted.end += cycle_offset;
        dst.regionEvents.push_back(shifted);
    }
    dst.droppedRegionEvents += seg.droppedRegionEvents;

    for (const TelemetryPowerEvent &e : seg.powerEvents) {
        TelemetryPowerEvent shifted = e;
        shifted.fail += cycle_offset;
        if (shifted.recovered)
            shifted.recover += cycle_offset;
        dst.powerEvents.push_back(shifted);
    }

    for (const TelemetryRequestSpan &e : seg.requestSpans) {
        if (dst.requestSpans.size() >= kRequestSpanCap) {
            ++dst.droppedRequestSpans;
            continue;
        }
        TelemetryRequestSpan shifted = e;
        shifted.arrival += cycle_offset;
        shifted.start += cycle_offset;
        shifted.finish += cycle_offset;
        dst.requestSpans.push_back(shifted);
    }
    dst.droppedRequestSpans += seg.droppedRequestSpans;
}

// --------------------------------------------------------------------
// Collector
// --------------------------------------------------------------------

/**
 * Per-core hook. The designated system sampler (core 0) additionally
 * records WPQ occupancy and interval NVM read/write bytes. All reads
 * go through const-safe accessors: sampling never perturbs the
 * simulated machine.
 */
class Telemetry::CoreTelemetry final : public TelemetryHook
{
  public:
    CoreTelemetry(const TelemetryConfig &config, unsigned core_index,
                  bool system_sampler)
        : cfg(config), coreIndex(core_index),
          systemSampler(system_sampler)
    {
        // Pairwise merging needs an even bucket capacity >= 2.
        cfg.seriesCap = std::max<std::size_t>(2, cfg.seriesCap) &
                        ~std::size_t{1};
        if (cfg.sampleCycles == 0)
            cfg.sampleCycles = 1;
    }

    void
    bind(Core &core_ref, MemHierarchy &mem_ref)
    {
        core = &core_ref;
        mem = &mem_ref;
        baseCycle = core->cycle();
        nextSample = baseCycle;
        regionStart = baseCycle;
        if (systemSampler) {
            lastWriteBytes = mem->nvm().bytesWritten();
            lastReadBytes = readBytesNow();
        }
        core->attachTelemetry(this);
    }

    void
    onCycleEnd(Cycle cycle, unsigned committed) override
    {
        CycleClass c;
        if (committed > 0) {
            c = CycleClass::Active;
        } else if (haveReason) {
            c = classOf(pendingReason);
        } else if (core->done()) {
            c = CycleClass::Idle;
        } else if (core->robOccupancy() == 0 &&
                   core->fetchQueueDepth() == 0) {
            c = CycleClass::FetchStarved;
        } else {
            c = CycleClass::Other;
        }
        ++classCycles[static_cast<std::size_t>(c)];
        ++covered;
        haveReason = false;
        if (cycle == nextSample) {
            sampleNow(cycle);
            nextSample += cfg.sampleCycles;
        }
    }

    void
    onStructuralStall(StallReason reason) override
    {
        pendingReason = reason;
        haveReason = true;
        if (!haveDrainStart && isDrainReason(reason)) {
            haveDrainStart = true;
            drainStart = core->cycle();
        }
    }

    void
    onRegionBoundaryComplete(Cycle cycle, RegionEndCause cause) override
    {
        if (regionEvents.size() < kRegionEventCap) {
            TelemetryRegionEvent e;
            e.core = coreIndex;
            e.start = regionStart;
            e.drainStart = haveDrainStart ? drainStart : cycle;
            e.end = cycle;
            e.cause = cause;
            regionEvents.push_back(e);
        } else {
            ++droppedRegionEvents;
        }
        regionStart = cycle;
        haveDrainStart = false;
    }

    void
    onPowerFail(Cycle cycle) override
    {
        TelemetryPowerEvent e;
        e.core = coreIndex;
        e.fail = cycle;
        powerEvents.push_back(e);
    }

    void
    onRecover(Cycle cycle) override
    {
        if (!powerEvents.empty() && !powerEvents.back().recovered) {
            powerEvents.back().recover = cycle;
            powerEvents.back().recovered = true;
        }
    }

    void
    harvestInto(TelemetryResult &out)
    {
        // Flush the residual interval-counter deltas so the series
        // sums equal the end-of-run aggregates (the downsampling
        // invariant) even for writes issued by the final drain.
        if (systemSampler) {
            std::uint64_t wr = mem->nvm().bytesWritten();
            nvmWriteB.push(wr - lastWriteBytes, cfg.seriesCap);
            lastWriteBytes = wr;
            std::uint64_t rd = readBytesNow();
            nvmReadB.push(rd - lastReadBytes, cfg.seriesCap);
            lastReadBytes = rd;
        }

        if (out.stallCycles.size() <= coreIndex)
            out.stallCycles.resize(coreIndex + 1);
        for (unsigned k = 0; k < kCycleClassCount; ++k)
            out.stallCycles[coreIndex][k] = classCycles[k];
        out.coveredCycles = covered;

        int cid = static_cast<int>(coreIndex);
        materialize(out, "rob", cid, robAcc);
        materialize(out, "fetchQ", cid, fetchAcc);
        materialize(out, "readyQ", cid, readyAcc);
        materialize(out, "csq", cid, csqAcc);
        materialize(out, "wb", cid, wbAcc);
        materialize(out, "freePrf", cid, freePrfAcc);
        if (systemSampler) {
            materialize(out, "wpq", -1, wpqAcc);
            materialize(out, "nvmReadBytes", -1, nvmReadB);
            materialize(out, "nvmWriteBytes", -1, nvmWriteB);
        }

        for (TelemetryRegionEvent e : regionEvents) {
            e.start -= baseCycle;
            e.drainStart -= baseCycle;
            e.end -= baseCycle;
            if (out.regionEvents.size() < kRegionEventCap)
                out.regionEvents.push_back(e);
            else
                ++out.droppedRegionEvents;
        }
        out.droppedRegionEvents += droppedRegionEvents;
        for (TelemetryPowerEvent e : powerEvents) {
            e.fail -= baseCycle;
            if (e.recovered)
                e.recover -= baseCycle;
            out.powerEvents.push_back(e);
        }
    }

  private:
    /**
     * Bounded accumulator: buckets of `strideSamples` raw samples;
     * when `cap` buckets fill, adjacent pairs merge and the stride
     * doubles — O(cap) memory for any run length, and bucket sums are
     * preserved exactly across every merge.
     */
    struct Accum
    {
        std::uint64_t strideSamples = 1;
        std::uint64_t lastCount = 0;
        std::vector<std::uint64_t> sums;

        void
        push(std::uint64_t v, std::size_t cap)
        {
            if (sums.empty() || lastCount == strideSamples) {
                if (sums.size() == cap) {
                    // Every bucket is full here (a new bucket is only
                    // opened when the last one filled), so the merge
                    // yields cap/2 full buckets of twice the stride.
                    for (std::size_t i = 0; i < cap / 2; ++i)
                        sums[i] = sums[2 * i] + sums[2 * i + 1];
                    sums.resize(cap / 2);
                    strideSamples *= 2;
                }
                sums.push_back(0);
                lastCount = 0;
            }
            sums.back() += v;
            ++lastCount;
        }
    };

    std::uint64_t
    readBytesNow() const
    {
        return mem->nvm().readCount() * mem->params().l1d.lineBytes;
    }

    void
    sampleNow(Cycle cycle)
    {
        robAcc.push(core->robOccupancy(), cfg.seriesCap);
        fetchAcc.push(core->fetchQueueDepth(), cfg.seriesCap);
        readyAcc.push(core->readyQueueDepth(), cfg.seriesCap);
        csqAcc.push(core->csqRef().size(), cfg.seriesCap);
        wbAcc.push(mem->writeBuffer(coreIndex).queuedEntries(),
                   cfg.seriesCap);
        freePrfAcc.push(core->freeIntRegs() + core->freeFpRegs(),
                        cfg.seriesCap);
        if (systemSampler) {
            const NvmParams &np = mem->nvm().params();
            std::uint64_t occ = 0;
            for (unsigned mc = 0; mc < np.numControllers; ++mc)
                occ += mem->nvm().wpqOccupancy(mc, cycle);
            wpqAcc.push(occ, cfg.seriesCap);
            std::uint64_t wr = mem->nvm().bytesWritten();
            nvmWriteB.push(wr - lastWriteBytes, cfg.seriesCap);
            lastWriteBytes = wr;
            std::uint64_t rd = readBytesNow();
            nvmReadB.push(rd - lastReadBytes, cfg.seriesCap);
            lastReadBytes = rd;
        }
    }

    void
    materialize(TelemetryResult &out, const char *name, int cid,
                const Accum &acc) const
    {
        TelemetrySeries s;
        s.name = name;
        s.core = cid;
        std::size_t n = acc.sums.size();
        s.cycles.reserve(n);
        s.counts.reserve(n);
        s.sums.reserve(n);
        std::uint64_t bucket_cycles =
            acc.strideSamples * cfg.sampleCycles;
        for (std::size_t i = 0; i < n; ++i) {
            s.cycles.push_back(i * bucket_cycles);
            s.counts.push_back(i + 1 < n ? acc.strideSamples
                                         : acc.lastCount);
            s.sums.push_back(acc.sums[i]);
        }
        out.series.push_back(std::move(s));
    }

    TelemetryConfig cfg;
    unsigned coreIndex;
    bool systemSampler;

    Core *core = nullptr;
    MemHierarchy *mem = nullptr;
    Cycle baseCycle = 0;
    Cycle nextSample = 0;

    // Cycle classification.
    std::uint64_t classCycles[kCycleClassCount] = {};
    std::uint64_t covered = 0;
    StallReason pendingReason = StallReason::RobFull;
    bool haveReason = false;

    // Counter series.
    Accum robAcc, fetchAcc, readyAcc, csqAcc, wbAcc, freePrfAcc;
    Accum wpqAcc, nvmReadB, nvmWriteB;
    std::uint64_t lastWriteBytes = 0;
    std::uint64_t lastReadBytes = 0;

    // Timelines (raw cycles; rebased to baseCycle at harvest).
    Cycle regionStart = 0;
    Cycle drainStart = 0;
    bool haveDrainStart = false;
    std::vector<TelemetryRegionEvent> regionEvents;
    std::uint64_t droppedRegionEvents = 0;
    std::vector<TelemetryPowerEvent> powerEvents;
};

Telemetry::Telemetry(const TelemetryConfig &config, unsigned num_cores)
    : cfg(config)
{
    hooks.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c) {
        hooks.push_back(std::make_unique<CoreTelemetry>(
            cfg, c, /*system_sampler=*/c == 0));
    }
}

Telemetry::~Telemetry() = default;

void
Telemetry::attach(Core &core, MemHierarchy &mem)
{
    unsigned c = core.id();
    PPA_ASSERT(c < hooks.size(), "telemetry attach: bad core id");
    hooks[c]->bind(core, mem);
}

TelemetryResult
Telemetry::harvest()
{
    TelemetryResult out;
    out.enabled = true;
    out.sampleCycles = cfg.sampleCycles;
    out.seriesCap = cfg.seriesCap;
    out.stallCycles.resize(hooks.size());
    for (auto &hook : hooks)
        hook->harvestInto(out);
    return out;
}

} // namespace obs
} // namespace ppa
