/**
 * @file
 * In-run telemetry: sampled counter time-series, region/power-failure
 * timelines, and per-cycle stall attribution (docs/TELEMETRY.md).
 *
 * The collector (obs::Telemetry) attaches one TelemetryHook per core
 * through the same narrow-observer pattern as the audit layer. Every
 * telemetrySampleCycles cycles it records the occupancy of the ROB,
 * fetch and ready queues, CSQ, write buffer, free PRF, plus
 * system-wide WPQ occupancy and interval NVM read/write bytes, into
 * bounded series that downsample on the fly (adjacent-bucket merging)
 * so memory stays O(seriesCap) on arbitrarily long runs. Every cycle
 * it attributes the core's progress to exactly one CycleClass bucket.
 *
 * Determinism: everything recorded is a pure function of simulated
 * cycles and machine state, so telemetry joins the repo's bitwise
 * contracts (serial == parallel sweeps, time-parallel worker-count
 * invariance). The harvested TelemetryResult is a value type carried
 * inside RunStats and serialized additively as `stats.telemetry`.
 */

#ifndef PPA_OBS_TELEMETRY_HH
#define PPA_OBS_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/hooks.hh"

namespace ppa
{

class Core;
class MemHierarchy;

namespace obs
{

/**
 * Exactly-one-per-cycle attribution buckets. The first six mirror the
 * structural StallReason taxonomy; Active/Other/Idle make the
 * partition total: per core, the bucket counts sum to the number of
 * covered cycles (the acceptance check `ppa_cli profile` prints).
 */
enum class CycleClass : std::uint8_t
{
    Active,       ///< >= 1 instruction committed this cycle
    FetchStarved, ///< nothing committed, pipeline empty, stream dry/slow
    RobFull,      ///< StallReason::RobFull
    CsqFull,      ///< StallReason::CsqFull
    WpqFull,      ///< StallReason::WpqFull
    NvmBandwidth, ///< StallReason::NvmBandwidth
    Other,        ///< no commit, no structural cause (exec/mem latency)
    Idle,         ///< core finished its stream
};

inline constexpr unsigned kCycleClassCount = 8;

/** Stable serialization key for a CycleClass ("active", "robFull", ...). */
const char *cycleClassKey(CycleClass c);

/** Human-readable label ("ROB-full", "NVM-bandwidth", ...). */
const char *cycleClassLabel(CycleClass c);

/** Configuration for one collector (wired from ExperimentKnobs). */
struct TelemetryConfig
{
    /** Sampling period for the counter series, in cycles. */
    std::uint64_t sampleCycles = 256;
    /** Bucket capacity per series; when a series fills, adjacent
     *  buckets merge (stride doubles) so memory stays bounded. */
    std::size_t seriesCap = 1024;
};

/** Hard cap on recorded region-boundary events per run; completions
 *  past the cap are counted, not stored. */
inline constexpr std::size_t kRegionEventCap = 4096;

/**
 * One sampled counter series as bounded buckets. Each bucket covers a
 * contiguous cycle window and stores the count of raw samples that
 * landed in it and their sum — so bucket means survive downsampling
 * and interval-counter series (NVM bytes) keep their exact total
 * (the downsampling invariant tests/obs/test_telemetry.cc pins).
 */
struct TelemetrySeries
{
    std::string name; ///< "rob", "fetchQ", ..., "nvmWriteBytes"
    int core = -1;    ///< owning core, or -1 for system-wide series
    /** Bucket start cycles, rebased to the run's covered window
     *  (time-parallel stitching offsets them per segment). */
    std::vector<std::uint64_t> cycles;
    /** Raw samples aggregated into each bucket. */
    std::vector<std::uint64_t> counts;
    /** Sum of the sampled values in each bucket. */
    std::vector<std::uint64_t> sums;

    /** Total raw samples across all buckets. */
    std::uint64_t samples() const;
    /** Sum over all buckets (for interval counters: the aggregate). */
    std::uint64_t total() const;
    /** Mean of the raw samples (0 when empty). */
    double mean() const;
    /** Percentile over bucket means, sample-count weighted;
     *  @p frac in [0,1]. */
    double percentile(double frac) const;
    /** Largest bucket mean. */
    double maxBucketMean() const;
};

/** One completed region with its drain span (cycles are rebased). */
struct TelemetryRegionEvent
{
    unsigned core = 0;
    std::uint64_t start = 0;      ///< first cycle of the region
    std::uint64_t drainStart = 0; ///< first boundary-stalled cycle
    std::uint64_t end = 0;        ///< boundary completion cycle
    RegionEndCause cause = RegionEndCause::PrfExhausted;
};

/** One power-failure/recovery span (cycles are rebased). */
struct TelemetryPowerEvent
{
    unsigned core = 0;
    std::uint64_t fail = 0;
    std::uint64_t recover = 0;
    bool recovered = false;
};

/** Hard cap on recorded per-request spans per run; requests past the
 *  cap are counted, not stored. */
inline constexpr std::size_t kRequestSpanCap = 4096;

/**
 * One served request on the open-loop timeline (docs/SERVING.md):
 * arrival from the arrival process, start/finish from the Lindley
 * remapping of simulated ack-commit service times. Only the serving
 * harness fills these; classic runs leave the list empty.
 */
struct TelemetryRequestSpan
{
    unsigned core = 0;
    std::uint64_t seq = 0; ///< request sequence number (from 1)
    std::uint64_t arrival = 0;
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
};

/**
 * Harvested telemetry for one run: a value type inside RunStats,
 * serialized as the additive `stats.telemetry` block.
 */
struct TelemetryResult
{
    bool enabled = false;
    std::uint64_t sampleCycles = 0;
    std::uint64_t seriesCap = 0;
    /** Cycles classified per core (== stall-bucket row sums). */
    std::uint64_t coveredCycles = 0;
    /** Per-core cycle counts, indexed [core][CycleClass]. */
    std::vector<std::array<std::uint64_t, kCycleClassCount>> stallCycles;
    std::vector<TelemetrySeries> series;
    std::vector<TelemetryRegionEvent> regionEvents;
    std::uint64_t droppedRegionEvents = 0;
    std::vector<TelemetryPowerEvent> powerEvents;
    /** Request spans (serving harness only; empty elsewhere). */
    std::vector<TelemetryRequestSpan> requestSpans;
    std::uint64_t droppedRequestSpans = 0;

    /** Cycles in @p c summed across cores. */
    std::uint64_t classCycles(CycleClass c) const;
    /** Find a series by (name, core); nullptr when absent. */
    const TelemetrySeries *findSeries(const std::string &name,
                                      int core) const;
};

/**
 * Append @p seg to @p dst with every cycle shifted by @p cycle_offset
 * — the time-parallel stitcher's rebasing concatenation. Series are
 * matched by (name, core) and re-downsampled to dst.seriesCap after
 * appending; stall buckets and event lists accumulate.
 */
void appendTelemetry(TelemetryResult &dst, const TelemetryResult &seg,
                     std::uint64_t cycle_offset);

/**
 * The per-run collector. Construct, attach() each core in id order
 * (cores attach at their current cycle — the classic runner attaches
 * at cycle 0, the segment runner after its warmup prefix), run the
 * simulation, then harvest().
 */
class Telemetry
{
  public:
    Telemetry(const TelemetryConfig &config, unsigned num_cores);
    ~Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /**
     * Create and attach the hook for @p core. Core 0 additionally
     * samples the system-wide series through @p mem. Sampling is
     * strictly read-only: it must not (and does not) perturb any
     * simulated state.
     */
    void attach(Core &core, MemHierarchy &mem);

    /**
     * Materialize the result: flushes the residual interval-counter
     * deltas (so interval sums equal the end-of-run aggregates) and
     * rebases all cycles to each core's attach cycle.
     */
    TelemetryResult harvest();

  private:
    class CoreTelemetry;

    TelemetryConfig cfg;
    std::vector<std::unique_ptr<CoreTelemetry>> hooks;
};

} // namespace obs
} // namespace ppa

#endif // PPA_OBS_TELEMETRY_HH
