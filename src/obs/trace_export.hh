/**
 * @file
 * Chrome trace-event / Perfetto JSON exporter for harvested telemetry
 * (`ppa_cli ... --telemetry-trace out.json`; format notes in
 * docs/TELEMETRY.md, validated by tools/trace_check.py).
 */

#ifndef PPA_OBS_TRACE_EXPORT_HH
#define PPA_OBS_TRACE_EXPORT_HH

#include <string>

#include "obs/telemetry.hh"

namespace ppa
{
namespace obs
{

/**
 * Write @p t as a Chrome trace-event JSON object ({"traceEvents":
 * [...]}): one thread track per core carrying region/drain and
 * power-outage spans (B/E pairs), plus one counter track ("C" events)
 * per telemetry series, with ts = simulated cycle. Events are sorted
 * by timestamp. Returns false if the file cannot be written.
 */
bool writeChromeTrace(const TelemetryResult &t, const std::string &path);

} // namespace obs
} // namespace ppa

#endif // PPA_OBS_TRACE_EXPORT_HH
