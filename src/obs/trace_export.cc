#include "obs/trace_export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <vector>

namespace ppa
{
namespace obs
{

namespace
{

const char *
causeName(RegionEndCause cause)
{
    switch (cause) {
      case RegionEndCause::PrfExhausted:
        return "prf-exhausted";
      case RegionEndCause::CsqFull:
        return "csq-full";
      case RegionEndCause::SyncPrimitive:
        return "sync";
      case RegionEndCause::EndOfRun:
        return "end-of-run";
    }
    return "?";
}

/** One trace event, staged so the file can be emitted sorted by ts. */
struct Event
{
    std::uint64_t ts = 0;
    std::uint64_t seq = 0; ///< emission order; tie-break for equal ts
    std::string json;      ///< fully rendered event object
};

class EventSink
{
  public:
    void
    add(std::uint64_t ts, std::string json)
    {
        events.push_back(Event{ts, seq++, std::move(json)});
    }

    void
    span(unsigned tid, std::uint64_t begin, std::uint64_t end,
         const std::string &name)
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      R"({"name":"%s","ph":"B","ts":%)" PRIu64
                      R"(,"pid":0,"tid":%u})",
                      name.c_str(), begin, tid);
        add(begin, buf);
        std::snprintf(buf, sizeof(buf),
                      R"({"name":"%s","ph":"E","ts":%)" PRIu64
                      R"(,"pid":0,"tid":%u})",
                      name.c_str(), end, tid);
        add(end, buf);
    }

    void
    counter(const std::string &name, std::uint64_t ts, double value)
    {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      R"({"name":"%s","ph":"C","ts":%)" PRIu64
                      R"(,"pid":0,"tid":0,"args":{"value":%.6g}})",
                      name.c_str(), ts, value);
        add(ts, buf);
    }

    std::vector<Event> events;

  private:
    std::uint64_t seq = 0;
};

} // namespace

bool
writeChromeTrace(const TelemetryResult &t, const std::string &path)
{
    EventSink sink;

    // Thread-name metadata so Perfetto labels each core's track.
    unsigned cores = static_cast<unsigned>(t.stallCycles.size());
    for (unsigned c = 0; c < cores; ++c) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      R"({"name":"thread_name","ph":"M","pid":0,)"
                      R"("tid":%u,"args":{"name":"core %u"}})",
                      c, c);
        sink.add(0, buf);
    }

    // Region spans: the region body [start, drainStart) nests the
    // boundary drain [drainStart, end) named by its end cause.
    for (const TelemetryRegionEvent &e : t.regionEvents) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      R"({"name":"region","ph":"B","ts":%)" PRIu64
                      R"(,"pid":0,"tid":%u})",
                      e.start, e.core);
        sink.add(e.start, buf);
        std::string drain = std::string("drain:") + causeName(e.cause);
        sink.span(e.core, e.drainStart, e.end, drain);
        std::snprintf(buf, sizeof(buf),
                      R"({"name":"region","ph":"E","ts":%)" PRIu64
                      R"(,"pid":0,"tid":%u})",
                      e.end, e.core);
        sink.add(e.end, buf);
    }

    // Power spans live on their own per-core tracks (tid 1000+core):
    // an outage can straddle a region-span boundary, which would break
    // B/E nesting if both shared a track.
    bool power_track[64] = {};
    for (const TelemetryPowerEvent &e : t.powerEvents) {
        unsigned tid = 1000 + e.core;
        if (e.core < 64 && !power_track[e.core]) {
            power_track[e.core] = true;
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          R"({"name":"thread_name","ph":"M","pid":0,)"
                          R"("tid":%u,"args":{"name":"core %u power"}})",
                          tid, e.core);
            sink.add(0, buf);
        }
        std::uint64_t end = e.recovered ? e.recover : e.fail;
        sink.span(tid, e.fail, end, "power-outage");
    }

    // Request spans (serving harness) on per-core tracks (tid
    // 2000+core). Spans are [start, finish) on the open-loop
    // timeline; the Lindley recursion guarantees start_{i+1} >=
    // finish_i per core, so B/E pairs never overlap within a track.
    bool request_track[64] = {};
    for (const TelemetryRequestSpan &e : t.requestSpans) {
        unsigned tid = 2000 + e.core;
        if (e.core < 64 && !request_track[e.core]) {
            request_track[e.core] = true;
            char buf[192];
            std::snprintf(
                buf, sizeof(buf),
                R"({"name":"thread_name","ph":"M","pid":0,)"
                R"("tid":%u,"args":{"name":"core %u requests"}})",
                tid, e.core);
            sink.add(0, buf);
        }
        std::uint64_t end = std::max(e.finish, e.start + 1);
        sink.span(tid, e.start, end, "req " + std::to_string(e.seq));
    }

    // Counter tracks: one "C" stream per series, bucket means at
    // bucket start cycles.
    for (const TelemetrySeries &s : t.series) {
        std::string name = s.name;
        if (s.core >= 0)
            name += "/c" + std::to_string(s.core);
        for (std::size_t i = 0; i < s.cycles.size(); ++i) {
            if (s.counts[i] == 0)
                continue;
            double mean = static_cast<double>(s.sums[i]) /
                          static_cast<double>(s.counts[i]);
            sink.counter(name, s.cycles[i], mean);
        }
    }

    std::sort(sink.events.begin(), sink.events.end(),
              [](const Event &a, const Event &b) {
                  return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
              });

    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < sink.events.size(); ++i) {
        out << sink.events[i].json;
        if (i + 1 < sink.events.size())
            out << ',';
        out << '\n';
    }
    out << "]}\n";
    out.flush();
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace ppa
