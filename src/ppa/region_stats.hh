/**
 * @file
 * Per-region statistics (paper Sections 7.3, 7.5).
 *
 * Tracks the size of each dynamically formed region (split into store
 * and non-store instructions, as Figure 13 reports), what caused its
 * boundary, and how many cycles the pipeline stalled at the boundary
 * waiting for the region's stores to persist (Figure 11).
 */

#ifndef PPA_PPA_REGION_STATS_HH
#define PPA_PPA_REGION_STATS_HH

#include <cstdint>

#include "common/stats.hh"

namespace ppa
{

/** Why a region ended. */
enum class RegionEndCause : std::uint8_t
{
    PrfExhausted,  ///< no free physical register at rename (Section 4.2)
    CsqFull,       ///< implicit boundary on CSQ overflow
    SyncPrimitive, ///< atomic/fence treated as a boundary (Section 6)
    EndOfRun,      ///< final drain at program end
};

/**
 * Aggregated dynamic region characteristics for one core.
 */
class RegionStats
{
  public:
    /** Called when an instruction commits inside the current region. */
    void
    onCommit(bool is_store)
    {
        if (is_store)
            ++curStores;
        else
            ++curOthers;
    }

    /** Called for every cycle the pipeline stalls at a boundary. */
    void onBoundaryStall() { boundaryStallCycles.inc(); }

    /** Called when the current region's boundary completes. */
    void
    onRegionEnd(RegionEndCause cause)
    {
        regionStoreCount.sample(static_cast<double>(curStores));
        regionOtherCount.sample(static_cast<double>(curOthers));
        curStores = 0;
        curOthers = 0;
        regions.inc();
        switch (cause) {
          case RegionEndCause::PrfExhausted:
            endPrf.inc();
            break;
          case RegionEndCause::CsqFull:
            endCsq.inc();
            break;
          case RegionEndCause::SyncPrimitive:
            endSync.inc();
            break;
          case RegionEndCause::EndOfRun:
            endRun.inc();
            break;
        }
    }

    std::uint64_t regionCount() const { return regions.value(); }
    double avgStoresPerRegion() const { return regionStoreCount.mean(); }
    double avgOthersPerRegion() const { return regionOtherCount.mean(); }
    std::uint64_t stallCycles() const
    {
        return boundaryStallCycles.value();
    }
    std::uint64_t endedByPrf() const { return endPrf.value(); }
    std::uint64_t endedByCsq() const { return endCsq.value(); }
    std::uint64_t endedBySync() const { return endSync.value(); }

  private:
    std::uint64_t curStores = 0;
    std::uint64_t curOthers = 0;

    stats::Counter regions;
    stats::Counter boundaryStallCycles;
    stats::Average regionStoreCount;
    stats::Average regionOtherCount;
    stats::Counter endPrf;
    stats::Counter endCsq;
    stats::Counter endSync;
    stats::Counter endRun;
};

} // namespace ppa

#endif // PPA_PPA_REGION_STATS_HH
