/**
 * @file
 * Checkpoint serialization: the NVM layout of the JIT checkpoint.
 *
 * Section 4.5: the controller checkpoints the five structures
 * sequentially, one 8-byte entry at a time, through the existing
 * non-temporal path; the Source Index Generator picks what to read
 * and the NVM Address Generator where to write. This module defines
 * that designated checkpoint area's byte layout and implements the
 * (de)serialization the hardware walk performs, so a checkpoint can
 * be stored in, and recovered from, raw NVM bytes.
 *
 * Layout (all fields little-endian 64-bit entries; the magic and
 * format-version words use the shared common/binary_format.hh
 * helpers, same as the trace shards):
 *
 *   [0]  magic 'PPACKPT1'
 *   [1]  format version
 *   [2]  flags (bit0: valid, bit1: anyCommitted)
 *   [3]  LCPC
 *   [4]  counts: csqEntries | crtInt<<16 | crtFp<<32 | maskWords<<48
 *   [5]  MaskReg bit count
 *   ...  CSQ entries   (2 words each: meta, addr; meta bit63 set =>
 *        the entry carries an inline value in a third word)
 *   ...  CRT INT entries (1 word each, ~0 = invalid mapping)
 *   ...  CRT FP entries
 *   ...  MaskReg words
 *   ...  register values (2 words each: global index, value)
 *   [n]  trailer: register-value count
 */

#ifndef PPA_PPA_CHECKPOINT_IO_HH
#define PPA_PPA_CHECKPOINT_IO_HH

#include <cstdint>
#include <vector>

#include "ppa/checkpoint.hh"

namespace ppa
{

/** Serialize @p image into the checkpoint area's 8-byte entries. */
std::vector<std::uint64_t> serializeCheckpoint(
    const CheckpointImage &image);

/**
 * Reconstruct a checkpoint image from the checkpoint area.
 * Fatal on a malformed area (bad magic, wrong format version, or
 * truncation): recovery from a corrupt or foreign checkpoint region
 * must not proceed silently.
 */
CheckpointImage deserializeCheckpoint(
    const std::vector<std::uint64_t> &words);

} // namespace ppa

#endif // PPA_PPA_CHECKPOINT_IO_HH
