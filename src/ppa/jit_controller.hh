/**
 * @file
 * JIT checkpointing controller timing/energy model (paper Section 4.5).
 *
 * The controller is a simple FSM (Idle -> Stop_Pipeline -> Read ->
 * Write -> ... -> Idle) driving a Source Index Generator and an NVM
 * Address Generator. It checkpoints the five structures sequentially,
 * one 8-byte entry per cycle, through the existing non-temporal path.
 * Because it only runs on power failure, it is off the critical path
 * and deliberately unoptimized; the paper's RTL synthesis puts it at
 * 144 D flip-flops and 88 two-input gates.
 *
 * This model reproduces the controller's externally visible behavior:
 * the number of cycles to read all entries and the time to flush the
 * resulting bytes at the PMEM write bandwidth (Section 7.13 reports
 * 114.9 ns to read 1838 bytes and 0.91 us to flush them at 2.3 GB/s).
 */

#ifndef PPA_PPA_JIT_CONTROLLER_HH
#define PPA_PPA_JIT_CONTROLLER_HH

#include <cstdint>

#include "common/units.hh"
#include "ppa/checkpoint.hh"

namespace ppa
{

/** Controller FSM states, as in Figure 7 of the paper. */
enum class JitFsmState : std::uint8_t
{
    Idle,
    StopPipeline,
    Read,
    Write,
};

/**
 * Timing model of the sequential JIT checkpoint controller.
 */
class JitController
{
  public:
    /**
     * @param clock        the core clock domain
     * @param pmem_write_gbps sustained PMEM write bandwidth (GB/s)
     */
    JitController(const ClockDomain &clock, double pmem_write_gbps)
        : clockDomain(clock), pmemWriteGbps(pmem_write_gbps)
    {}

    /** 8-byte entries needed for @p image (non-temporal granularity). */
    static std::uint64_t
    entryCount(const CheckpointImage &image)
    {
        return (image.sizeBytes() + 7) / 8;
    }

    /** Cycles to sequentially read all entries (one per cycle). */
    std::uint64_t
    readCycles(const CheckpointImage &image) const
    {
        // Stop_Pipeline consumes one transition cycle, then one read
        // per 8-byte entry.
        return 1 + entryCount(image);
    }

    /** Nanoseconds for the controller to read all entries. */
    double
    readTimeNs(const CheckpointImage &image) const
    {
        return clockDomain.cyclesToNs(readCycles(image));
    }

    /** Nanoseconds to flush the image to PMEM at write bandwidth. */
    double
    flushTimeNs(const CheckpointImage &image) const
    {
        return static_cast<double>(image.sizeBytes()) /
               (pmemWriteGbps * 1e9) * 1e9;
    }

    /** Total checkpoint duration: read + flush (pipelined reads would
     *  overlap, but the paper reports the two phases additively). */
    double
    totalTimeNs(const CheckpointImage &image) const
    {
        return readTimeNs(image) + flushTimeNs(image);
    }

  private:
    ClockDomain clockDomain;
    double pmemWriteGbps;
};

} // namespace ppa

#endif // PPA_PPA_JIT_CONTROLLER_HH
