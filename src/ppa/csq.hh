/**
 * @file
 * CSQ — the Committed Store Queue (paper Sections 4 and 4.4).
 *
 * A circular FIFO of (source physical register index, destination
 * physical address) pairs, one per committed store of the current
 * region, in program order. It is cleared at every region boundary
 * once all the region's stores are acknowledged persistent; if it
 * fills up mid-region, the pipeline treats that as an implicit region
 * boundary (Section 4.2, "Full CSQ as an Implicit Region Boundary").
 *
 * On power failure the CSQ is JIT-checkpointed; recovery scans it
 * front to rear and re-executes the stores (idempotent replay).
 */

#ifndef PPA_PPA_CSQ_HH
#define PPA_PPA_CSQ_HH

#include <cstdint>
#include <deque>

#include "check/observer.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace ppa
{

/**
 * Sentinel physical register index: the store's data operand was an
 * architectural register that had never been defined, so its value is
 * architecturally zero and nothing in the PRF needs preserving.
 */
constexpr unsigned csqZeroRegIndex = ~0u;

/** One committed-store record. */
struct CsqEntry
{
    /** Global physical register index of the store's data operand
     *  (csqZeroRegIndex when the value is architecturally zero, or
     *  when the entry carries the value inline). */
    unsigned physRegIndex = 0;
    /** Destination physical address of the store. */
    Addr addr = 0;
    /**
     * Inline data value. Used by the paper's Section 6 extension for
     * in-order cores and ROB-style renaming, where the CSQ stores
     * data *values* rather than PRF indexes; ignored in the default
     * (unified-PRF) design.
     */
    Word value = 0;
    /** True when @ref value (not the PRF) carries the data. */
    bool carriesValue = false;
};

/**
 * The committed store queue. Modeled as a bounded FIFO; the single
 * read/write port of the hardware design is reflected in the pipeline
 * pushing at most commit-width entries per cycle, which the structure
 * itself does not need to enforce.
 */
class Csq
{
  public:
    Csq() = default;

    explicit Csq(unsigned num_entries) : capacity(num_entries) {}

    bool full() const { return entries.size() >= capacity; }
    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }
    unsigned entryCapacity() const { return capacity; }

    /** Record a committing store; the queue must not be full. */
    void
    push(unsigned phys_reg_index, Addr addr)
    {
        PPA_ASSERT(!full(), "CSQ overflow must be handled as a region "
                            "boundary before pushing");
        entries.push_back({phys_reg_index, addr, 0, false});
        if (obs)
            obs->onCsqPush(entries.back());
    }

    /** Record a committing store with an inline data value (the
     *  Section 6 in-order / ROB-renaming extension). */
    void
    pushValue(Addr addr, Word value)
    {
        PPA_ASSERT(!full(), "CSQ overflow must be handled as a region "
                            "boundary before pushing");
        entries.push_back({csqZeroRegIndex, addr, value, true});
        if (obs)
            obs->onCsqPush(entries.back());
    }

    /** Region boundary: drop all entries. */
    void
    clear()
    {
        if (obs)
            obs->onCsqClear(entries.size());
        entries.clear();
    }

    /** Front-to-rear iteration for checkpoint and replay. */
    const std::deque<CsqEntry> &contents() const { return entries; }

    void
    restore(const std::deque<CsqEntry> &saved)
    {
        PPA_ASSERT(saved.size() <= capacity, "restoring oversized CSQ");
        entries = saved;
    }

    /** Audit hook; restore() fires no events (recovery resyncs). */
    void setObserver(check::CsqObserver *observer) { obs = observer; }

  private:
    unsigned capacity = 40;
    std::deque<CsqEntry> entries;
    check::CsqObserver *obs = nullptr;
};

} // namespace ppa

#endif // PPA_PPA_CSQ_HH
