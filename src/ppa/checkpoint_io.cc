#include "ppa/checkpoint_io.hh"

#include "common/binary_format.hh"
#include "common/logging.hh"

namespace ppa
{

namespace
{

/** 'PPACKPT1' in a little-endian hex dump of the NVM words. */
constexpr std::uint64_t checkpointMagic = binfmt::packMagic("PPACKPT1");
/**
 * Checkpoint-area layout version; bump on ANY layout change. Version 2
 * is the first layout carrying the version word itself (the original,
 * unversioned layout is retroactively version 1 and is rejected by the
 * magic check: its magic packed the tag in the opposite byte order).
 */
constexpr std::uint64_t checkpointVersion = 2;
constexpr std::uint64_t inlineValueBit = std::uint64_t{1} << 63;
constexpr std::uint64_t invalidMapping = ~std::uint64_t{0};

} // namespace

std::vector<std::uint64_t>
serializeCheckpoint(const CheckpointImage &image)
{
    std::vector<std::uint64_t> out;
    out.push_back(checkpointMagic);
    out.push_back(checkpointVersion);
    std::uint64_t flags = (image.valid ? 1u : 0u) |
                          (image.anyCommitted ? 2u : 0u);
    out.push_back(flags);
    out.push_back(image.lcpc);

    const auto &mask_words = image.maskBits.raw();
    std::uint64_t counts =
        static_cast<std::uint64_t>(image.csq.size()) |
        (static_cast<std::uint64_t>(image.crtInt.size()) << 16) |
        (static_cast<std::uint64_t>(image.crtFp.size()) << 32) |
        (static_cast<std::uint64_t>(mask_words.size()) << 48);
    out.push_back(counts);
    out.push_back(image.maskBits.size()); // exact MaskReg bit count

    for (const auto &e : image.csq) {
        std::uint64_t meta = e.physRegIndex;
        if (e.carriesValue)
            meta |= inlineValueBit;
        out.push_back(meta);
        out.push_back(e.addr);
        if (e.carriesValue)
            out.push_back(e.value);
    }
    for (PhysReg p : image.crtInt) {
        out.push_back(p == invalidPhysReg
                          ? invalidMapping
                          : static_cast<std::uint64_t>(p));
    }
    for (PhysReg p : image.crtFp) {
        out.push_back(p == invalidPhysReg
                          ? invalidMapping
                          : static_cast<std::uint64_t>(p));
    }
    for (std::uint64_t w : mask_words)
        out.push_back(w);
    for (const auto &[g, v] : image.physRegValues) {
        out.push_back(g);
        out.push_back(v);
    }
    out.push_back(image.physRegValues.size());
    return out;
}

CheckpointImage
deserializeCheckpoint(const std::vector<std::uint64_t> &words)
{
    auto need = [&](std::size_t pos, std::size_t n) {
        if (pos + n > words.size()) {
            fatal("checkpoint area truncated at entry ", pos,
                  " (need ", n, " more of ", words.size(), ")");
        }
    };

    need(0, 5);
    binfmt::requireMagic(words[0], checkpointMagic, "checkpoint area");
    binfmt::requireVersion(words[1], checkpointVersion,
                           "checkpoint area");

    CheckpointImage image;
    image.valid = (words[2] & 1) != 0;
    image.anyCommitted = (words[2] & 2) != 0;
    image.lcpc = words[3];

    std::uint64_t counts = words[4];
    std::size_t n_csq = counts & 0xFFFF;
    std::size_t n_crt_int = (counts >> 16) & 0xFFFF;
    std::size_t n_crt_fp = (counts >> 32) & 0xFFFF;
    std::size_t n_mask = (counts >> 48) & 0xFFFF;

    need(5, 1);
    std::uint64_t mask_bits = words[5];
    std::size_t pos = 6;
    for (std::size_t i = 0; i < n_csq; ++i) {
        need(pos, 2);
        std::uint64_t meta = words[pos++];
        CsqEntry e;
        e.carriesValue = (meta & inlineValueBit) != 0;
        e.physRegIndex = static_cast<unsigned>(meta & 0xFFFFFFFFu);
        e.addr = words[pos++];
        if (e.carriesValue) {
            need(pos, 1);
            e.value = words[pos++];
        }
        image.csq.push_back(e);
    }

    auto read_crt = [&](std::size_t n) {
        std::vector<PhysReg> v;
        for (std::size_t i = 0; i < n; ++i) {
            need(pos, 1);
            std::uint64_t w = words[pos++];
            v.push_back(w == invalidMapping
                            ? invalidPhysReg
                            : static_cast<PhysReg>(w));
        }
        return v;
    };
    image.crtInt = read_crt(n_crt_int);
    image.crtFp = read_crt(n_crt_fp);

    need(pos, n_mask);
    std::vector<std::uint64_t> mask_words(
        words.begin() + static_cast<std::ptrdiff_t>(pos),
        words.begin() + static_cast<std::ptrdiff_t>(pos + n_mask));
    PPA_ASSERT((mask_bits + 63) / 64 == n_mask,
               "MaskReg word count inconsistent with bit count");
    image.maskBits = BitVector(mask_bits);
    image.maskBits.restoreRaw(mask_words);
    pos += n_mask;

    // Register values run until the trailer (their count).
    need(words.size() - 1, 1);
    std::uint64_t n_regs = words.back();
    need(pos, n_regs * 2 + 1);
    for (std::uint64_t i = 0; i < n_regs; ++i) {
        std::uint64_t g = words[pos++];
        std::uint64_t v = words[pos++];
        image.physRegValues[static_cast<unsigned>(g)] = v;
    }
    if (pos + 1 != words.size())
        fatal("checkpoint area has trailing garbage");
    return image;
}

} // namespace ppa
