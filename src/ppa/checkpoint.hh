/**
 * @file
 * JIT checkpoint image (paper Sections 3.4, 4.5).
 *
 * On the Power_Fail signal, PPA saves exactly five structures to a
 * designated checkpoint area in NVM: the CSQ, the last committed PC
 * (LCPC), the commit rename table (CRT), the MaskReg, and the physical
 * registers referenced by CSQ or CRT entries. Free registers and
 * registers belonging to in-flight (uncommitted) instructions are NOT
 * checkpointed — recovery resumes from the latest uncommitted
 * instruction after LCPC, so speculative state is irrelevant.
 *
 * The image also reports its own size in bytes (rounded to 8-byte
 * entries like the hardware's non-temporal path), which the energy
 * model uses to size the backup capacitor (Section 7.13).
 */

#ifndef PPA_PPA_CHECKPOINT_HH
#define PPA_PPA_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"
#include "ppa/csq.hh"

namespace ppa
{

/**
 * The five JIT-checkpointed structures, plus bookkeeping for sizing.
 */
struct CheckpointImage
{
    bool valid = false;

    /** (1) Committed store queue contents, front to rear. */
    std::deque<CsqEntry> csq;

    /** (2) Last committed PC (committed-stream index). */
    std::uint64_t lcpc = 0;
    /** True once at least one instruction has committed. */
    bool anyCommitted = false;

    /** (3) Commit rename table: arch -> phys, per register class. */
    std::vector<PhysReg> crtInt;
    std::vector<PhysReg> crtFp;

    /** (4) MaskReg raw bits. */
    BitVector maskBits;

    /** (5) Values of the physical registers marked by CRT or CSQ,
     *      keyed by global physical register index. */
    std::map<unsigned, Word> physRegValues;

    /**
     * Checkpointed bytes at 8-byte granularity: each CSQ entry, each
     * CRT entry, each register value, the LCPC, and the MaskReg words
     * round to 8-byte units (Section 7.12).
     */
    std::uint64_t
    sizeBytes() const
    {
        std::uint64_t bytes = 0;
        bytes += csq.size() * 8;            // (reg index, addr) per entry
        bytes += 8;                         // LCPC
        bytes += (crtInt.size() + crtFp.size()) * 8;
        bytes += maskBits.storageBytes();
        // The paper's worst case assumes 128-bit physical registers
        // (vector-capable); we account 16 bytes per register to match.
        bytes += physRegValues.size() * 16;
        return bytes;
    }
};

} // namespace ppa

#endif // PPA_PPA_CHECKPOINT_HH
