/**
 * @file
 * MaskReg — the Store Operands Mask Register (paper Section 4).
 *
 * One bit per physical register of the unified PRF (integer bank
 * followed by FP bank). A set bit means the register is used as the
 * data operand of a committed store in the current region and must not
 * be reclaimed until the region's stores are acknowledged persistent.
 * Per the paper's Section 4.2 optimization, only the *data* register
 * of each store is masked; store addresses are captured directly in
 * the CSQ entries.
 */

#ifndef PPA_PPA_MASK_REG_HH
#define PPA_PPA_MASK_REG_HH

#include "check/observer.hh"
#include "common/bitvector.hh"
#include "common/types.hh"

namespace ppa
{

/**
 * Global physical register numbering: the INT bank occupies
 * [0, numIntRegs) and the FP bank [numIntRegs, numIntRegs+numFpRegs).
 */
class PhysRegIndexer
{
  public:
    PhysRegIndexer() = default;

    PhysRegIndexer(unsigned num_int, unsigned num_fp)
        : intCount(num_int), fpCount(num_fp)
    {}

    unsigned total() const { return intCount + fpCount; }

    /** Flatten (class, index) into the global numbering. */
    unsigned
    flatten(RegClass cls, PhysReg reg) const
    {
        PPA_ASSERT(reg >= 0, "flattening invalid phys reg");
        if (cls == RegClass::Int) {
            PPA_ASSERT(static_cast<unsigned>(reg) < intCount,
                       "int phys reg out of range");
            return static_cast<unsigned>(reg);
        }
        PPA_ASSERT(static_cast<unsigned>(reg) < fpCount,
                   "fp phys reg out of range");
        return intCount + static_cast<unsigned>(reg);
    }

    /** Recover the class of a global index. */
    RegClass
    classOf(unsigned global) const
    {
        return global < intCount ? RegClass::Int : RegClass::Fp;
    }

    /** Recover the per-class index of a global index. */
    PhysReg
    indexOf(unsigned global) const
    {
        return global < intCount
                   ? static_cast<PhysReg>(global)
                   : static_cast<PhysReg>(global - intCount);
    }

  private:
    unsigned intCount = 0;
    unsigned fpCount = 0;
};

/**
 * The MaskReg bit vector. A thin wrapper over BitVector that exposes
 * the operations the pipeline performs and the checkpoint needs.
 */
class MaskReg
{
  public:
    MaskReg() = default;

    explicit MaskReg(const PhysRegIndexer &indexer)
        : idx(indexer), bits(indexer.total())
    {}

    /** Mask the data register of a committing store. */
    void
    mask(RegClass cls, PhysReg reg)
    {
        unsigned global = idx.flatten(cls, reg);
        bits.set(global);
        if (obs)
            obs->onMaskSet(global);
    }

    /** Is @p reg masked (reclamation must be deferred)? */
    bool
    isMasked(RegClass cls, PhysReg reg) const
    {
        return bits.test(idx.flatten(cls, reg));
    }

    /** Region boundary: clear every mask bit. */
    void
    clearAll()
    {
        if (obs)
            obs->onMaskClearAll(bits.count());
        bits.clearAll();
    }

    std::size_t maskedCount() const { return bits.count(); }
    bool empty() const { return bits.none(); }

    /** Iterate set bits as (class, per-class phys index). */
    template <typename Fn>
    void
    forEachMasked(Fn &&fn) const
    {
        bits.forEachSet([&](std::size_t g) {
            fn(idx.classOf(static_cast<unsigned>(g)),
               idx.indexOf(static_cast<unsigned>(g)));
        });
    }

    /** Size in bits (the paper rounds 348 up to 384 for checkpoints). */
    std::size_t sizeBits() const { return bits.size(); }

    const BitVector &raw() const { return bits; }
    void restore(const BitVector &v) { bits = v; }

    const PhysRegIndexer &indexer() const { return idx; }

    /** Audit hook; restore() fires no events (recovery resyncs). */
    void setObserver(check::MaskRegObserver *observer) { obs = observer; }

  private:
    PhysRegIndexer idx;
    BitVector bits;
    check::MaskRegObserver *obs = nullptr;
};

} // namespace ppa

#endif // PPA_PPA_MASK_REG_HH
