/**
 * @file
 * Battery-backed I/O buffer (paper Section 5, "Handling I/O
 * Operations").
 *
 * Irrevocable operations such as device I/O cannot be replayed: a
 * packet must leave exactly once. The paper proposes extending PPA
 * with a small battery-backed buffer so that any store into the
 * buffer counts as persisted the moment it commits — it is neither
 * CSQ-tracked nor replayed, and its contents survive power failure on
 * the battery.
 *
 * The model exposes the resulting exactly-once property: the buffer
 * records the committed I/O stores in program order; a power failure
 * preserves the records; recovery resumes after LCPC, so no committed
 * I/O store is ever re-executed and no uncommitted one ever appears.
 */

#ifndef PPA_PPA_IO_BUFFER_HH
#define PPA_PPA_IO_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ppa
{

/** One committed I/O write as a device would observe it. */
struct IoRecord
{
    Addr addr = 0;
    Word value = 0;

    bool operator==(const IoRecord &other) const = default;
};

/**
 * The battery-backed I/O window: a physical address range whose
 * stores are irrevocable device writes.
 */
class IoBuffer
{
  public:
    IoBuffer() = default;

    /** @param base start of the I/O window; @param bytes its size
     *  (0 disables the window). */
    IoBuffer(Addr base, std::uint64_t bytes)
        : windowBase(base), windowBytes(bytes)
    {}

    /** Is @p addr a device address inside the window? */
    bool
    inRange(Addr addr) const
    {
        return windowBytes != 0 && addr >= windowBase &&
               addr < windowBase + windowBytes;
    }

    /** A store to the window commits: the device sees it now. */
    void
    write(Addr addr, Word value)
    {
        records.push_back({addr, value});
    }

    /**
     * Power failure: nothing to do — the buffer is battery-backed,
     * so the device-visible history survives. (Method kept explicit
     * so call sites document the property.)
     */
    void powerFail() {}

    /** The device-visible write history, in commit order. */
    const std::vector<IoRecord> &history() const { return records; }

    std::uint64_t writeCount() const { return records.size(); }

    bool enabled() const { return windowBytes != 0; }
    Addr base() const { return windowBase; }

  private:
    Addr windowBase = 0;
    std::uint64_t windowBytes = 0;
    std::vector<IoRecord> records;
};

} // namespace ppa

#endif // PPA_PPA_IO_BUFFER_HH
