#include "fuzz/shrink.hh"

#include <memory>
#include <utility>

namespace ppa
{
namespace fuzz
{

namespace
{

/** Static model of a lowered spec; false when outside the fragment. */
bool
buildModel(const check::LitmusTest &test,
           std::unique_ptr<check::PersistModel> &model)
{
    std::vector<const Program *> progs;
    progs.reserve(test.threads.size());
    for (const Program &p : test.threads)
        progs.push_back(&p);
    model = std::make_unique<check::PersistModel>(progs);
    return model->racyAddresses().empty() &&
           model->crossThreadReads().empty();
}

/**
 * Is the candidate spec structurally runnable? Thread blocks must be
 * non-empty (thread removal is its own reduction) and something must
 * still be observed.
 */
bool
specUsable(const FuzzSpec &spec)
{
    if (spec.threads.empty() || spec.observed.empty())
        return false;
    for (const ThreadSpec &ts : spec.threads)
        if (ts.actions.empty())
            return false;
    return true;
}

} // namespace

bool
findEarliestViolation(const FuzzSpec &spec, SystemVariant variant,
                      check::PersistFlavor flavor,
                      const ShrinkLimits &limits, std::uint64_t &judged,
                      Violation &out)
{
    if (!specUsable(spec))
        return false;
    check::LitmusTest test = lowerSpec(spec);
    std::unique_ptr<check::PersistModel> model;
    if (!buildModel(test, model))
        return false;

    check::ReferenceSummary ref =
        check::runReference(test, variant, limits.maxCycles);
    if (!ref.completed)
        return false;

    for (Cycle c = 1; c <= ref.endCycle; ++c) {
        if (judged >= limits.maxCrashSims)
            return false;
        ++judged;
        check::CrashObservation obs =
            check::crashObserve(test, variant, c);
        if (!model->outcomeAllowed(flavor, obs.cut, test.observed,
                                   obs.outcome)) {
            out.spec = spec;
            out.variant = variant;
            out.flavor = flavor;
            out.cycle = c;
            out.cut = std::move(obs.cut);
            out.outcome = std::move(obs.outcome);
            return true;
        }
    }
    return false;
}

std::vector<FuzzSpec>
enumerateReductions(const FuzzSpec &spec)
{
    std::vector<FuzzSpec> candidates;
    // 1. Drop one whole thread.
    if (spec.threads.size() > 1) {
        for (std::size_t t = 0; t < spec.threads.size(); ++t) {
            FuzzSpec c = spec;
            c.threads.erase(c.threads.begin() +
                            static_cast<std::ptrdiff_t>(t));
            candidates.push_back(std::move(c));
        }
    }
    // 2. Drop one action.
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        for (std::size_t i = 0; i < spec.threads[t].actions.size();
             ++i) {
            FuzzSpec c = spec;
            auto &as = c.threads[t].actions;
            as.erase(as.begin() + static_cast<std::ptrdiff_t>(i));
            candidates.push_back(std::move(c));
        }
    }
    // 3. Drop one observed address (keep at least one).
    if (spec.observed.size() > 1) {
        for (std::size_t i = 0; i < spec.observed.size(); ++i) {
            FuzzSpec c = spec;
            c.observed.erase(c.observed.begin() +
                             static_cast<std::ptrdiff_t>(i));
            candidates.push_back(std::move(c));
        }
    }
    return candidates;
}

bool
isOneMinimal(const Violation &v, const ShrinkLimits &limits,
             std::uint64_t &judged)
{
    for (const FuzzSpec &c : enumerateReductions(v.spec)) {
        Violation cand;
        if (findEarliestViolation(c, v.variant, v.flavor, limits,
                                  judged, cand))
            return false;
    }
    return true;
}

ShrinkResult
shrinkViolation(const Violation &v, const ShrinkLimits &limits)
{
    ShrinkResult res;
    res.min = v;

    // Schedule shrink: the earliest violating cycle of the current
    // program. (Also re-anchors cut/outcome if the caller's came from
    // a biased sample.)
    {
        Violation earliest;
        if (findEarliestViolation(v.spec, v.variant, v.flavor, limits,
                                  res.judged, earliest))
            res.min = std::move(earliest);
        else if (res.judged >= limits.maxCrashSims)
            res.budgetExhausted = true;
    }

    // Program shrink: greedy first-accepted 1-step reductions, in a
    // fixed order, until a full pass accepts nothing.
    bool reduced = true;
    while (reduced && !res.budgetExhausted) {
        reduced = false;
        std::vector<FuzzSpec> candidates =
            enumerateReductions(res.min.spec);
        for (FuzzSpec &c : candidates) {
            if (res.judged >= limits.maxCrashSims) {
                res.budgetExhausted = true;
                break;
            }
            Violation cand;
            if (findEarliestViolation(c, res.min.variant, res.min.flavor,
                                      limits, res.judged, cand)) {
                res.min = std::move(cand);
                ++res.steps;
                reduced = true;
                break; // restart candidate enumeration on the new min
            }
        }
    }
    return res;
}

} // namespace fuzz
} // namespace ppa
