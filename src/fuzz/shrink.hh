/**
 * @file
 * Model-checked shrinking of fuzzer-found persistency violations.
 *
 * A Violation is one crash observation the persist model forbids:
 * spec, variant, the flavor that forbids it, the crash cycle, and the
 * observed (cut, outcome). The shrinker minimizes first the schedule
 * (earliest violating cycle) and then the program (greedy 1-step
 * reductions: drop a thread, drop an action, drop an observed
 * address), accepting a reduction only when the reduced program still
 * exhibits *some* crash cycle whose outcome `PersistModel::
 * outcomeAllowed` rejects under the same flavor. The search over
 * crash cycles is exhaustive over the reduced program's reference
 * run, so "the reduction passes" is a definite verdict, not a
 * sampling artifact — and the result is 1-minimal by construction:
 * every further single reduction is violation-free.
 *
 * Shrinking is RNG-free and deterministic: candidates are enumerated
 * in a fixed order and judged by exhaustive cycle scan. Termination
 * is structural (every accepted step strictly shrinks the spec) with
 * a crash-simulation budget as a belt-and-braces cap.
 */

#ifndef PPA_FUZZ_SHRINK_HH
#define PPA_FUZZ_SHRINK_HH

#include <cstdint>

#include "fuzz/spec.hh"

namespace ppa
{
namespace fuzz
{

/** One model-forbidden crash observation. */
struct Violation
{
    FuzzSpec spec;
    SystemVariant variant = SystemVariant::MemoryMode;
    /** The flavor whose allowed set rejects the outcome. */
    check::PersistFlavor flavor = check::PersistFlavor::Strict;
    Cycle cycle = 0;
    check::PersistModel::StoreCut cut;
    check::PersistModel::Outcome outcome;
};

/** Limits for one search/shrink invocation. */
struct ShrinkLimits
{
    /** Reference runs longer than this reject the candidate. */
    Cycle maxCycles = 20'000;
    /** Cap on crash simulations across the whole shrink. */
    std::uint64_t maxCrashSims = 500'000;
};

/**
 * Exhaustively scan every crash cycle of @p spec's reference run for
 * an outcome @p flavor forbids; earliest hit wins. @p judged is
 * incremented per crash simulation.
 * @return true with @p out filled when a violation exists within the
 *         limits.
 */
bool findEarliestViolation(const FuzzSpec &spec, SystemVariant variant,
                           check::PersistFlavor flavor,
                           const ShrinkLimits &limits,
                           std::uint64_t &judged, Violation &out);

/** What a shrink did, plus the minimized violation. */
struct ShrinkResult
{
    Violation min;
    /** Accepted 1-step reductions. */
    unsigned steps = 0;
    /** Crash simulations spent (search + candidate judging). */
    std::uint64_t judged = 0;
    /** True when the budget stopped shrinking early; `min` is still a
     *  genuine violation, just not necessarily 1-minimal. */
    bool budgetExhausted = false;
};

/** Minimize @p v. @p v itself must be a real violation. */
ShrinkResult shrinkViolation(const Violation &v,
                             const ShrinkLimits &limits = {});

/**
 * Every 1-step reduction of @p spec, in the shrinker's candidate
 * order: drop a thread, drop an action, drop an observed address.
 */
std::vector<FuzzSpec> enumerateReductions(const FuzzSpec &spec);

/**
 * Is @p v 1-minimal — does every single reduction of its spec pass
 * (no crash cycle violates @p v.flavor)? This is exactly the
 * shrinker's fixpoint condition, exposed for reproducer checking.
 */
bool isOneMinimal(const Violation &v, const ShrinkLimits &limits,
                  std::uint64_t &judged);

} // namespace fuzz
} // namespace ppa

#endif // PPA_FUZZ_SHRINK_HH
