/**
 * @file
 * Crash-consistency fuzzing campaign driver.
 *
 * One campaign generates N random DRF programs (fuzz/spec.hh), runs
 * each on a simulated variant, samples M auditor-biased power-failure
 * cycles per program (reusing the litmus engine's bias machinery),
 * and judges every observed post-crash state against the declarative
 * persist model — both under the variant's own flavor (violations)
 * and under Strict (divergences).
 *
 * The first offending crash of a program becomes a finding: its run
 * is recorded through the trace subsystem and replayed from disk to
 * the same crash cycle (confirming the simulator reproduces the
 * observation from the recorded committed stream, with the PPA
 * auditors attached where the variant supports them), then the
 * violation is shrunk (fuzz/shrink.hh) and the minimal reproducer is
 * written to the corpus directory in the litmus text format.
 *
 * Everything is deterministic from (options, seed): results carry no
 * timestamps and `campaignJson` is bitwise reproducible.
 */

#ifndef PPA_FUZZ_CAMPAIGN_HH
#define PPA_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/shrink.hh"
#include "fuzz/spec.hh"

namespace ppa
{
namespace fuzz
{

/** One campaign's configuration. */
struct CampaignOptions
{
    SystemVariant variant = SystemVariant::Ppa;
    std::uint64_t programs = 200;
    /** Biased crash schedules sampled per program. */
    unsigned schedules = 16;
    std::uint64_t seed = 1;
    GeneratorConfig gen;
    /** Directory for minimal reproducers; empty disables writing. */
    std::string corpusDir;
    /** Scratch directory for trace record/replay of findings; empty
     *  disables the replay confirmation step. */
    std::string traceDir;
    /** Findings to record/shrink before only counting further ones. */
    unsigned maxFindings = 4;
    /** Reference-run cycle budget per program. */
    Cycle maxCycles = 200'000;
    ShrinkLimits shrink;
};

/** One recorded, replayed, and shrunk offending program. */
struct CampaignFinding
{
    std::string program;
    std::uint64_t index = 0;
    /** The flavor the minimal reproducer is judged against. */
    check::PersistFlavor flavor = check::PersistFlavor::Strict;
    /** Forbidden by Strict but allowed by the variant's own flavor. */
    bool strictOnly = false;
    Cycle cycle = 0;       ///< offending cycle as first observed
    Cycle shrunkCycle = 0; ///< earliest violating cycle after shrink
    unsigned threadsBefore = 0, threadsAfter = 0;
    std::uint64_t actionsBefore = 0, actionsAfter = 0;
    unsigned shrinkSteps = 0;
    std::uint64_t shrinkJudged = 0;
    bool shrinkBudgetExhausted = false;
    bool replayAttempted = false;
    /** Replay from the recorded trace reproduced cut and outcome. */
    bool replayConfirmed = false;
    std::uint64_t replayAuditViolations = 0;
    std::string reproducerFile; ///< path written, or empty
    std::string detail;
};

/** Aggregate verdict of one campaign. */
struct CampaignResult
{
    SystemVariant variant = SystemVariant::Ppa;
    check::PersistFlavor flavor = check::PersistFlavor::Strict;
    std::uint64_t programs = 0;
    std::uint64_t crashPoints = 0;
    /** Crash observations the variant's own flavor forbids. */
    std::uint64_t violations = 0;
    /** Crash observations Strict forbids. */
    std::uint64_t strictDivergences = 0;
    /** Programs that could not be judged (outside the model fragment
     *  or reference run incomplete). Nonzero means a generator bug. */
    std::uint64_t skipped = 0;
    std::vector<CampaignFinding> findings;
    std::vector<std::string> notes;

    /** A variant conforms when its own flavor is never violated. */
    bool pass() const { return violations == 0 && skipped == 0; }
};

/** Run one campaign. The variant must support crash observation. */
CampaignResult runCampaign(const CampaignOptions &opts);

/** Serialize one campaign as a schemaVersion-1 JSON document. */
std::string campaignJson(const CampaignResult &res,
                         const CampaignOptions &opts);

/** Reproducer text: judge header plus the spec serialization. */
std::string reproducerText(const Violation &v);

/**
 * Parse a reproducer produced by reproducerText. Only spec, variant,
 * flavor, and cycle are recorded; cut/outcome are re-derived by
 * running the reproducer.
 */
bool parseReproducerText(const std::string &text, Violation &out,
                         std::string &error);

} // namespace fuzz
} // namespace ppa

#endif // PPA_FUZZ_CAMPAIGN_HH
