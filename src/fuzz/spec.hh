/**
 * @file
 * Random-program IR for the crash-consistency fuzzer.
 *
 * A FuzzSpec is a tiny multi-threaded program in a deliberately
 * restricted shape: each thread owns a private region of cache lines
 * and performs a sequence of actions (store, load, fence, atomic,
 * delay) against its own region only. Threads never touch another
 * thread's lines, so every generated program is inside the persist
 * model's sound fragment (data-race-free, disjoint write sets) by
 * construction — `PersistModel` can judge any crash state of it.
 *
 * The IR, not the lowered isa::Program, is what the shrinker edits:
 * removing a thread or an action from a FuzzSpec yields another valid
 * FuzzSpec, while editing lowered instruction streams would have to
 * re-discover the dependence-chain scaffolding. Lowering reuses the
 * litmus corpus conventions (value-carrying divide chains between
 * actions) so that consecutive stores retire on distinct cycles and
 * crash cuts can land between any two of them.
 *
 * Specs serialize to a line-oriented text format (`specText` /
 * `parseSpecText`) used for the minimal reproducers checked into
 * tests/fuzz/corpus/.
 */

#ifndef PPA_FUZZ_SPEC_HH
#define PPA_FUZZ_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/litmus.hh"
#include "isa/program.hh"

namespace ppa
{
namespace fuzz
{

/** What one step of a fuzzed thread does to its own region. */
enum class ActionKind : std::uint8_t
{
    Store,  ///< chained store of `value` to line `line`
    Load,   ///< load from line `line` (own region, DRF-safe)
    Fence,  ///< epoch/region boundary
    Atomic, ///< amoadd of `value` to line `line` (sync boundary)
    Delay,  ///< one 20-cycle divide on the retire-spacing chain
};

/** Token for @p kind in the reproducer text format. */
const char *actionKindName(ActionKind kind);

struct Action
{
    ActionKind kind = ActionKind::Store;
    unsigned line = 0; ///< line index within the thread's region
    Word value = 0;    ///< store/atomic data; >= 1, unique per thread
};

/** One thread: a private base address plus its action sequence. */
struct ThreadSpec
{
    Addr base = 0;
    std::vector<Action> actions;
};

/**
 * A complete fuzzed program. Observed addresses are absolute so that
 * removing a thread during shrinking never re-labels the outcome
 * vector of the remaining ones.
 */
struct FuzzSpec
{
    std::string name;
    std::vector<ThreadSpec> threads;
    std::vector<Addr> observed;
    unsigned linesPerThread = 4;
};

/** Generator tuning knobs; defaults match the campaign driver. */
struct GeneratorConfig
{
    unsigned minThreads = 1;
    unsigned maxThreads = 3;
    /** Actions per thread (inclusive range). */
    unsigned minActions = 3;
    unsigned maxActions = 12;
    /** Region size: lines a thread may touch (line = 256 B). */
    unsigned linesPerThread = 4;
    /** Per-action kind weights; renormalized internally. */
    double storeWeight = 0.50;
    double loadWeight = 0.08;
    double fenceWeight = 0.14;
    double atomicWeight = 0.08;
    double delayWeight = 0.20;
    /** Chance a store opens a back-to-back burst (CSQ/WPQ pressure). */
    double burstChance = 0.25;
    unsigned burstMax = 6;
    /** Cap on observed addresses per program. */
    unsigned maxObserved = 4;
};

/**
 * Deterministically generate program @p index of a campaign seeded
 * with @p seed. The draw depends only on (cfg, seed, index) — never
 * on previously generated programs — so any program of a campaign
 * can be regenerated in isolation.
 */
FuzzSpec generateSpec(const GeneratorConfig &cfg, std::uint64_t seed,
                      std::uint64_t index);

/**
 * Lower @p spec to a litmus test runnable by the check engine. Uses
 * the corpus register conventions: stores hang off a value-preserving
 * divide chain so each one retires on its own cycle.
 */
check::LitmusTest lowerSpec(const FuzzSpec &spec);

/** Serialize @p spec in the reproducer text format. */
std::string specText(const FuzzSpec &spec);

/**
 * Parse the text format back into @p out.
 * @return false with a diagnostic in @p error on malformed input.
 */
bool parseSpecText(const std::string &text, FuzzSpec &out,
                   std::string &error);

} // namespace fuzz
} // namespace ppa

#endif // PPA_FUZZ_SPEC_HH
