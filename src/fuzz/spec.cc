#include "fuzz/spec.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "isa/builder.hh"

namespace ppa
{
namespace fuzz
{

namespace
{

// Same register conventions as the litmus corpus (check/litmus.cc).
constexpr ArchReg rBase = 1;  ///< base pointer of the thread's lines
constexpr ArchReg rOne = 2;   ///< constant 1 (divisor of the chain)
constexpr ArchReg rChain = 3; ///< head of the retire-spacing chain
constexpr ArchReg rVal = 4;   ///< store data, derived from the chain
constexpr ArchReg rAmo = 5;   ///< AtomicRmw old-value destination
constexpr ArchReg rLd = 6;    ///< load destination (never store data)

constexpr Addr fuzzBase = 0x40000; ///< clear of the litmus range
constexpr Addr lineBytes = 0x100;  ///< one cache line per spec line

} // namespace

const char *
actionKindName(ActionKind kind)
{
    switch (kind) {
      case ActionKind::Store:
        return "store";
      case ActionKind::Load:
        return "load";
      case ActionKind::Fence:
        return "fence";
      case ActionKind::Atomic:
        return "atomic";
      case ActionKind::Delay:
        return "delay";
    }
    return "?";
}

FuzzSpec
generateSpec(const GeneratorConfig &cfg, std::uint64_t seed,
             std::uint64_t index)
{
    // Mix (seed, index) through the test-identity hash so programs of
    // one campaign draw from unrelated streams and any single program
    // can be regenerated without replaying the campaign.
    Rng rng(seed ^ check::fnv64("fuzz-program-" + std::to_string(index)));

    FuzzSpec spec;
    spec.name = "fz-" + std::to_string(seed) + "-" +
                std::to_string(index);
    spec.linesPerThread = std::max(1u, cfg.linesPerThread);

    const unsigned threads = static_cast<unsigned>(
        rng.range(std::max(1u, cfg.minThreads),
                  std::max(1u, cfg.maxThreads)));

    const double wsum = cfg.storeWeight + cfg.loadWeight +
                        cfg.fenceWeight + cfg.atomicWeight +
                        cfg.delayWeight;

    for (unsigned t = 0; t < threads; ++t) {
        ThreadSpec ts;
        ts.base = fuzzBase +
                  static_cast<Addr>(t) * spec.linesPerThread * lineBytes;
        const unsigned actions = static_cast<unsigned>(
            rng.range(std::max(1u, cfg.minActions),
                      std::max(1u, cfg.maxActions)));
        Word nextValue = 1;
        while (ts.actions.size() < actions) {
            double u = rng.uniform() * wsum;
            Action a;
            if ((u -= cfg.storeWeight) < 0)
                a.kind = ActionKind::Store;
            else if ((u -= cfg.loadWeight) < 0)
                a.kind = ActionKind::Load;
            else if ((u -= cfg.fenceWeight) < 0)
                a.kind = ActionKind::Fence;
            else if ((u -= cfg.atomicWeight) < 0)
                a.kind = ActionKind::Atomic;
            else
                a.kind = ActionKind::Delay;

            unsigned burst = 1;
            if (a.kind == ActionKind::Store && cfg.burstMax > 1 &&
                rng.chance(cfg.burstChance))
                burst = static_cast<unsigned>(
                    rng.range(2, std::max(2u, cfg.burstMax)));
            for (unsigned k = 0;
                 k < burst && ts.actions.size() < actions; ++k) {
                a.line = static_cast<unsigned>(
                    rng.below(spec.linesPerThread));
                a.value = (a.kind == ActionKind::Store ||
                           a.kind == ActionKind::Atomic)
                              ? nextValue++
                              : 0;
                ts.actions.push_back(a);
            }
        }
        // Keep every thread relevant to the persistency question: a
        // thread with no write would only add scheduling noise.
        bool writes = std::any_of(
            ts.actions.begin(), ts.actions.end(), [](const Action &a) {
                return a.kind == ActionKind::Store ||
                       a.kind == ActionKind::Atomic;
            });
        if (!writes) {
            ts.actions.back().kind = ActionKind::Store;
            ts.actions.back().line = static_cast<unsigned>(
                rng.below(spec.linesPerThread));
            ts.actions.back().value = nextValue++;
        }
        spec.threads.push_back(std::move(ts));
    }

    // Observe a subset of the lines that were actually written.
    std::set<Addr> written;
    for (const ThreadSpec &ts : spec.threads)
        for (const Action &a : ts.actions)
            if (a.kind == ActionKind::Store ||
                a.kind == ActionKind::Atomic)
                written.insert(ts.base + a.line * lineBytes);
    std::vector<Addr> pool(written.begin(), written.end());
    const unsigned observe = static_cast<unsigned>(std::min<std::size_t>(
        pool.size(), std::max(1u, cfg.maxObserved)));
    for (unsigned k = 0; k < observe; ++k) {
        std::size_t pick = static_cast<std::size_t>(
            rng.below(pool.size()));
        spec.observed.push_back(pool[pick]);
        pool.erase(pool.begin() +
                   static_cast<std::ptrdiff_t>(pick));
    }
    std::sort(spec.observed.begin(), spec.observed.end());
    return spec;
}

check::LitmusTest
lowerSpec(const FuzzSpec &spec)
{
    check::LitmusTest test;
    test.name = spec.name;
    test.description = "fuzz-generated program";
    test.observed = spec.observed;
    test.prefixCoverage = false;

    for (const ThreadSpec &ts : spec.threads) {
        ProgramBuilder b;
        b.movi(rBase, ts.base);
        b.movi(rOne, 1);
        b.movi(rChain, 1);
        for (const Action &a : ts.actions) {
            const Word off = a.line * lineBytes;
            switch (a.kind) {
              case ActionKind::Store:
                // Data hangs off the chain (rChain stays 1), so the
                // store cannot retire before the preceding divides.
                b.addi(rVal, rChain, a.value - 1);
                b.st(rVal, rBase, off);
                break;
              case ActionKind::Load:
                b.ld(rLd, rBase, off);
                break;
              case ActionKind::Fence:
                b.fence();
                break;
              case ActionKind::Atomic:
                b.addi(rVal, rChain, a.value - 1);
                b.amoadd(rAmo, rVal, rBase, off);
                break;
              case ActionKind::Delay:
                b.div(rChain, rChain, rOne);
                break;
            }
        }
        b.halt();
        test.threads.push_back(b.program());
    }
    return test;
}

std::string
specText(const FuzzSpec &spec)
{
    std::ostringstream os;
    os << "name " << spec.name << "\n";
    os << "linesPerThread " << spec.linesPerThread << "\n";
    for (const ThreadSpec &ts : spec.threads) {
        os << "thread 0x" << std::hex << ts.base << std::dec << "\n";
        for (const Action &a : ts.actions) {
            os << "  " << actionKindName(a.kind);
            if (a.kind == ActionKind::Store ||
                a.kind == ActionKind::Atomic)
                os << " " << a.line << " " << a.value;
            else if (a.kind == ActionKind::Load)
                os << " " << a.line;
            os << "\n";
        }
        os << "end-thread\n";
    }
    for (Addr a : spec.observed)
        os << "observe 0x" << std::hex << a << std::dec << "\n";
    return os.str();
}

namespace
{

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    int base = tok.size() > 2 && tok[0] == '0' &&
                       (tok[1] == 'x' || tok[1] == 'X')
                   ? 16
                   : 10;
    out = std::strtoull(tok.c_str(), &end, base);
    return errno != ERANGE && end == tok.c_str() + tok.size();
}

} // namespace

bool
parseSpecText(const std::string &text, FuzzSpec &out, std::string &error)
{
    out = FuzzSpec{};
    std::istringstream is(text);
    std::string line;
    ThreadSpec *cur = nullptr;
    int lineno = 0;
    auto fail = [&](const std::string &what) {
        error = "spec line " + std::to_string(lineno) + ": " + what;
        return false;
    };
    while (std::getline(is, line)) {
        ++lineno;
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue; // blank
        if (key == "name") {
            if (!(ls >> out.name))
                return fail("missing name");
        } else if (key == "linesPerThread") {
            std::string tok;
            std::uint64_t v = 0;
            if (!(ls >> tok) || !parseU64(tok, v) || v == 0)
                return fail("bad linesPerThread");
            out.linesPerThread = static_cast<unsigned>(v);
        } else if (key == "thread") {
            std::string tok;
            std::uint64_t base = 0;
            if (!(ls >> tok) || !parseU64(tok, base))
                return fail("bad thread base");
            out.threads.push_back(ThreadSpec{});
            cur = &out.threads.back();
            cur->base = base;
        } else if (key == "end-thread") {
            if (!cur)
                return fail("end-thread outside a thread block");
            if (cur->actions.empty())
                return fail("thread with no actions");
            cur = nullptr;
        } else if (key == "observe") {
            std::string tok;
            std::uint64_t a = 0;
            if (!(ls >> tok) || !parseU64(tok, a))
                return fail("bad observe address");
            out.observed.push_back(a);
        } else if (key == "store" || key == "load" || key == "fence" ||
                   key == "atomic" || key == "delay") {
            if (!cur)
                return fail("action outside a thread block");
            Action a;
            if (key == "store")
                a.kind = ActionKind::Store;
            else if (key == "load")
                a.kind = ActionKind::Load;
            else if (key == "fence")
                a.kind = ActionKind::Fence;
            else if (key == "atomic")
                a.kind = ActionKind::Atomic;
            else
                a.kind = ActionKind::Delay;
            if (a.kind == ActionKind::Store ||
                a.kind == ActionKind::Atomic) {
                std::string ltok, vtok;
                std::uint64_t l = 0, v = 0;
                if (!(ls >> ltok >> vtok) || !parseU64(ltok, l) ||
                    !parseU64(vtok, v) || v == 0)
                    return fail("bad " + key + " operands");
                a.line = static_cast<unsigned>(l);
                a.value = v;
            } else if (a.kind == ActionKind::Load) {
                std::string ltok;
                std::uint64_t l = 0;
                if (!(ls >> ltok) || !parseU64(ltok, l))
                    return fail("bad load operand");
                a.line = static_cast<unsigned>(l);
            }
            if (a.line >= out.linesPerThread)
                return fail("line index out of region");
            cur->actions.push_back(a);
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (cur)
        return fail("unterminated thread block");
    if (out.threads.empty())
        return fail("no threads");
    if (out.observed.empty())
        return fail("no observed addresses");
    error.clear();
    return true;
}

} // namespace fuzz
} // namespace ppa
