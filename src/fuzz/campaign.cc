#include "fuzz/campaign.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "baselines/replaycache.hh"
#include "check/auditor.hh"
#include "common/logging.hh"
#include "sim/report.hh"
#include "sim/system.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace ppa
{
namespace fuzz
{

namespace
{

bool
flavorFromName(const std::string &name, check::PersistFlavor &out)
{
    if (name == "strict")
        out = check::PersistFlavor::Strict;
    else if (name == "epoch")
        out = check::PersistFlavor::Epoch;
    else if (name == "relaxed")
        out = check::PersistFlavor::Relaxed;
    else
        return false;
    return true;
}

std::string
valuesStr(const std::vector<Word> &values)
{
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << values[i];
    os << ")";
    return os.str();
}

std::string
cutStr(const std::vector<std::uint64_t> &cut)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < cut.size(); ++i)
        os << (i ? ", " : "") << cut[i];
    os << "]";
    return os.str();
}

/**
 * Record the committed-path streams of @p test to @p dir, then replay
 * them from disk into a fresh system crashed at @p v.cycle, checking
 * that the trace-driven run reproduces the original observation. PPA
 * runs carry the full invariant auditors.
 */
void
recordAndReplay(const check::LitmusTest &test, const Violation &v,
                const std::string &dir, CampaignFinding &finding)
{
    const auto n = static_cast<unsigned>(test.threads.size());

    // Record: the committed path of a fuzz program is straight-line,
    // so the executor stream IS what any crash-free run commits.
    std::vector<std::unique_ptr<ProgramExecutor>> execs;
    std::uint64_t maxLen = 0;
    for (unsigned t = 0; t < n; ++t) {
        execs.push_back(
            std::make_unique<ProgramExecutor>(test.threads[t]));
        maxLen = std::max(maxLen, execs.back()->totalLength());
    }

    trace::TraceMeta meta;
    meta.app = "fuzz:" + test.name;
    meta.seed = 0;
    meta.threads = n;
    // The manifest requires equal per-thread lengths; shorter threads
    // are padded with trailing nops the core never reaches (fetch
    // stops at source exhaustion, and the pad sits after halt).
    meta.instsPerThread = maxLen;
    trace::TraceWriter writer(dir, meta);
    for (unsigned t = 0; t < n; ++t) {
        DynInst d;
        std::uint64_t count = 0;
        Addr lastPc = 0;
        execs[t]->seekTo(0);
        while (execs[t]->next(d)) {
            writer.append(t, d);
            lastPc = d.pc;
            ++count;
        }
        for (; count < maxLen; ++count) {
            DynInst pad;
            pad.index = count;
            pad.pc = lastPc;
            pad.op = Opcode::Nop;
            writer.append(t, pad);
        }
    }
    writer.finish();

    finding.replayAttempted = true;

    // Replay from disk and crash at the same cycle.
    std::string error;
    trace::TraceSet set;
    if (!set.load(dir, error)) {
        finding.detail += "; trace reload failed: " + error;
        return;
    }
    std::vector<std::unique_ptr<trace::TraceReplaySource>> sources;
    std::vector<std::unique_ptr<ReplayCacheTransform>> transforms;

    ExperimentKnobs knobs;
    knobs.threads = n;
    SystemConfig sc = makeSystemConfig(v.variant, knobs, n);
    System system(sc);
    for (unsigned t = 0; t < n; ++t)
        system.seedMemory(test.threads[t].initialMemory());
    for (unsigned t = 0; t < n; ++t) {
        sources.push_back(
            std::make_unique<trace::TraceReplaySource>(set, t));
        if (v.variant == SystemVariant::ReplayCache) {
            transforms.push_back(std::make_unique<ReplayCacheTransform>(
                *sources.back(), ReplayCacheParams{}));
            system.bindSource(t, transforms.back().get());
        } else {
            system.bindSource(t, sources.back().get());
        }
    }

    std::vector<std::unique_ptr<check::Auditor>> auditors;
    if (v.variant == SystemVariant::Ppa) {
        auto oracle = std::make_shared<check::StoreOracle>();
        for (unsigned t = 0; t < n; ++t) {
            auditors.push_back(std::make_unique<check::Auditor>(
                system.core(t), system.memory(), oracle));
            auditors.back()->attach();
        }
    }

    system.runUntilCycle(v.cycle);
    check::PersistModel::StoreCut cut;
    for (unsigned t = 0; t < n; ++t)
        cut.push_back(system.core(t).committedStores());
    auto images = system.powerFail();
    if (v.variant == SystemVariant::Ppa) {
        system.recover(images);
        for (auto &auditor : auditors) {
            finding.replayAuditViolations += auditor->violationCount();
            auto replay = auditor->verifyReplay();
            finding.replayAuditViolations += replay.mismatches;
        }
    }
    check::PersistModel::Outcome outcome;
    for (Addr a : test.observed)
        outcome.push_back(
            system.memory().nvmImage().read(MemImage::wordAlign(a)));

    finding.replayConfirmed = cut == v.cut && outcome == v.outcome;
    if (!finding.replayConfirmed)
        finding.detail += "; replay diverged: cut " + cutStr(cut) +
                          " outcome " + valuesStr(outcome);
}

std::uint64_t
countActions(const FuzzSpec &spec)
{
    std::uint64_t a = 0;
    for (const ThreadSpec &ts : spec.threads)
        a += ts.actions.size();
    return a;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            out.push_back('\\');
        out.push_back(ch);
    }
    return out;
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &opts)
{
    CampaignResult res;
    res.variant = opts.variant;
    res.flavor = check::flavorForVariant(opts.variant);

    std::string why;
    if (!check::variantSupportsLitmus(opts.variant, &why)) {
        res.skipped = opts.programs;
        res.notes.push_back("variant unsupported: " + why);
        return res;
    }

    for (std::uint64_t i = 0; i < opts.programs; ++i) {
        FuzzSpec spec = generateSpec(opts.gen, opts.seed, i);
        check::LitmusTest test = lowerSpec(spec);

        std::vector<const Program *> progs;
        for (const Program &p : test.threads)
            progs.push_back(&p);
        check::PersistModel model(progs);
        if (!model.racyAddresses().empty() ||
            !model.crossThreadReads().empty()) {
            ++res.skipped;
            res.notes.push_back(spec.name +
                                ": outside the model fragment "
                                "(generator bug)");
            continue;
        }

        check::ReferenceSummary ref =
            check::runReference(test, opts.variant, opts.maxCycles);
        if (!ref.completed) {
            ++res.skipped;
            res.notes.push_back(spec.name +
                                ": reference run incomplete");
            continue;
        }

        std::vector<Cycle> crashes = check::biasedCrashSchedule(
            ref, opts.schedules, opts.seed ^ check::fnv64(spec.name));

        // First offending observation of this program, if any.
        bool haveOffender = false;
        Violation offender;
        bool offenderStrictOnly = false;

        for (Cycle c : crashes) {
            check::CrashObservation obs =
                check::crashObserve(test, opts.variant, c);
            ++res.crashPoints;
            bool allowed = model.outcomeAllowed(
                res.flavor, obs.cut, test.observed, obs.outcome);
            bool strictAllowed =
                res.flavor == check::PersistFlavor::Strict
                    ? allowed
                    : model.outcomeAllowed(check::PersistFlavor::Strict,
                                           obs.cut, test.observed,
                                           obs.outcome);
            if (!allowed)
                ++res.violations;
            if (!strictAllowed)
                ++res.strictDivergences;
            bool offends = !allowed || !strictAllowed;
            if (offends && !haveOffender) {
                haveOffender = true;
                offenderStrictOnly = allowed;
                offender.spec = spec;
                offender.variant = opts.variant;
                offender.flavor = !allowed
                                      ? res.flavor
                                      : check::PersistFlavor::Strict;
                offender.cycle = c;
                offender.cut = obs.cut;
                offender.outcome = obs.outcome;
            }
        }

        if (!haveOffender || res.findings.size() >= opts.maxFindings)
            continue;

        CampaignFinding finding;
        finding.program = spec.name;
        finding.index = i;
        finding.flavor = offender.flavor;
        finding.strictOnly = offenderStrictOnly;
        finding.cycle = offender.cycle;
        finding.threadsBefore =
            static_cast<unsigned>(spec.threads.size());
        finding.actionsBefore = countActions(spec);
        finding.detail = "outcome " + valuesStr(offender.outcome) +
                         " forbidden under " +
                         check::flavorName(offender.flavor) +
                         " at cut " + cutStr(offender.cut) + " cycle " +
                         std::to_string(offender.cycle);

        if (!opts.traceDir.empty())
            recordAndReplay(test, offender,
                            opts.traceDir + "/" + spec.name, finding);

        ShrinkResult shrunk = shrinkViolation(offender, opts.shrink);
        finding.shrunkCycle = shrunk.min.cycle;
        finding.threadsAfter =
            static_cast<unsigned>(shrunk.min.spec.threads.size());
        finding.actionsAfter = countActions(shrunk.min.spec);
        finding.shrinkSteps = shrunk.steps;
        finding.shrinkJudged = shrunk.judged;
        finding.shrinkBudgetExhausted = shrunk.budgetExhausted;

        if (!opts.corpusDir.empty()) {
            std::string path =
                opts.corpusDir + "/" + spec.name + ".litmus";
            std::string text = reproducerText(shrunk.min);
            metrics::writeFile(path, text);
            finding.reproducerFile = path;
        }
        res.findings.push_back(std::move(finding));
    }
    res.programs = opts.programs;
    return res;
}

std::string
reproducerText(const Violation &v)
{
    std::ostringstream os;
    os << "ppa-fuzz-reproducer v1\n";
    os << "variant " << variantToken(v.variant) << "\n";
    os << "flavor " << check::flavorName(v.flavor) << "\n";
    os << "cycle " << v.cycle << "\n";
    os << "# cut " << cutStr(v.cut) << " outcome "
       << valuesStr(v.outcome) << "\n";
    os << specText(v.spec);
    os << "end\n";
    return os.str();
}

bool
parseReproducerText(const std::string &text, Violation &out,
                    std::string &error)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "ppa-fuzz-reproducer v1") {
        error = "missing 'ppa-fuzz-reproducer v1' header";
        return false;
    }
    std::ostringstream spec;
    bool sawEnd = false;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key) || key[0] == '#')
            continue;
        if (key == "variant") {
            std::string tok;
            if (!(ls >> tok) || !variantFromToken(tok, out.variant)) {
                error = "bad variant line";
                return false;
            }
        } else if (key == "flavor") {
            std::string tok;
            if (!(ls >> tok) || !flavorFromName(tok, out.flavor)) {
                error = "bad flavor line";
                return false;
            }
        } else if (key == "cycle") {
            std::uint64_t c = 0;
            if (!(ls >> c)) {
                error = "bad cycle line";
                return false;
            }
            out.cycle = c;
        } else if (key == "end") {
            sawEnd = true;
            break;
        } else {
            spec << line << "\n";
        }
    }
    if (!sawEnd) {
        error = "missing 'end' sentinel";
        return false;
    }
    return parseSpecText(spec.str(), out.spec, error);
}

std::string
campaignJson(const CampaignResult &res, const CampaignOptions &opts)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schemaVersion\": 1,\n";
    os << "  \"variant\": \"" << variantToken(res.variant) << "\",\n";
    os << "  \"flavor\": \"" << check::flavorName(res.flavor)
       << "\",\n";
    os << "  \"seed\": " << opts.seed << ",\n";
    os << "  \"programs\": " << res.programs << ",\n";
    os << "  \"schedulesPerProgram\": " << opts.schedules << ",\n";
    os << "  \"crashPoints\": " << res.crashPoints << ",\n";
    os << "  \"violations\": " << res.violations << ",\n";
    os << "  \"strictDivergences\": " << res.strictDivergences << ",\n";
    os << "  \"skipped\": " << res.skipped << ",\n";
    os << "  \"pass\": " << (res.pass() ? "true" : "false") << ",\n";
    os << "  \"findings\": [\n";
    for (std::size_t i = 0; i < res.findings.size(); ++i) {
        const CampaignFinding &f = res.findings[i];
        os << "    {\"program\": \"" << jsonEscape(f.program) << "\","
           << " \"index\": " << f.index << ","
           << " \"flavor\": \"" << check::flavorName(f.flavor) << "\","
           << " \"strictOnly\": " << (f.strictOnly ? "true" : "false")
           << "," << " \"cycle\": " << f.cycle << ","
           << " \"shrunkCycle\": " << f.shrunkCycle << ","
           << " \"threadsBefore\": " << f.threadsBefore << ","
           << " \"threadsAfter\": " << f.threadsAfter << ","
           << " \"actionsBefore\": " << f.actionsBefore << ","
           << " \"actionsAfter\": " << f.actionsAfter << ","
           << " \"shrinkSteps\": " << f.shrinkSteps << ","
           << " \"shrinkJudged\": " << f.shrinkJudged << ","
           << " \"shrinkBudgetExhausted\": "
           << (f.shrinkBudgetExhausted ? "true" : "false") << ","
           << " \"replayAttempted\": "
           << (f.replayAttempted ? "true" : "false") << ","
           << " \"replayConfirmed\": "
           << (f.replayConfirmed ? "true" : "false") << ","
           << " \"replayAuditViolations\": " << f.replayAuditViolations
           << "," << " \"reproducer\": \""
           << jsonEscape(f.reproducerFile) << "\","
           << " \"detail\": \"" << jsonEscape(f.detail) << "\"}"
           << (i + 1 < res.findings.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"notes\": [";
    for (std::size_t i = 0; i < res.notes.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(res.notes[i])
           << "\"";
    os << "]\n";
    os << "}\n";
    return os.str();
}

} // namespace fuzz
} // namespace ppa
