#include "baselines/durability.hh"

#include "common/logging.hh"

namespace ppa
{

namespace
{

/** Is @p inst the transaction-ending store to the publish word? */
bool
isPublish(const DynInst &inst, const DurabilityParams &cfg)
{
    return inst.isStore() &&
           inst.memAddr == MemImage::wordAlign(cfg.publishAddr);
}

DynInst
makeClwb(const DynInst &after, Addr addr)
{
    DynInst clwb;
    clwb.index = after.index;
    clwb.op = Opcode::Clwb;
    clwb.memAddr = MemImage::wordAlign(addr);
    return clwb;
}

DynInst
makeFence(const DynInst &at)
{
    DynInst fence;
    fence.index = at.index;
    fence.op = Opcode::Fence;
    return fence;
}

/**
 * A copy of store @p s redirected to @p addr: same opcode and data
 * register (the core re-executes real dataflow, so the copy persists
 * the same value), new effective address.
 */
DynInst
redirectStore(const DynInst &s, Addr addr)
{
    DynInst copy = s;
    copy.memAddr = MemImage::wordAlign(addr);
    return copy;
}

} // namespace

UndoRedoLogTransform::UndoRedoLogTransform(DynInstSource &inner,
                                           const DurabilityParams &p)
    : src(inner), cfg(p)
{
    PPA_ASSERT(cfg.logWords && (cfg.logWords & (cfg.logWords - 1)) == 0,
               "log ring size must be a power of two, got ",
               cfg.logWords);
}

bool
UndoRedoLogTransform::next(DynInst &out)
{
    if (!pending.empty()) {
        out = pending.front();
        pending.pop_front();
        return true;
    }

    DynInst inst;
    if (!src.next(inst))
        return false;

    if (isPublish(inst, cfg)) {
        // Commit point: fence (log durable), publish, commit record,
        // clwb of the record, fence (record durable).
        out = makeFence(inst);
        pending.push_back(inst);
        DynInst record = redirectStore(inst, cfg.commitAddr);
        pending.push_back(record);
        pending.push_back(makeClwb(inst, cfg.commitAddr));
        pending.push_back(makeFence(inst));
        fenceCount += 2;
        ++clwbCount;
        ++txnCount;
        txnStores = 0;
        return true;
    }

    out = inst;
    if (inst.isStore()) {
        // Shadow the store into the log ring and write the line back.
        Addr slot = cfg.logBase + (logCursor & (cfg.logWords - 1)) * 8;
        ++logCursor;
        pending.push_back(redirectStore(inst, slot));
        pending.push_back(makeClwb(inst, slot));
        ++logStoreCount;
        ++clwbCount;
        ++txnStores;
    }
    return true;
}

void
UndoRedoLogTransform::seekTo(std::uint64_t index)
{
    pending.clear();
    txnStores = 0;
    src.seekTo(index);
}

DelayFreeTransform::DelayFreeTransform(DynInstSource &inner,
                                       const DurabilityParams &p)
    : src(inner), cfg(p)
{
}

bool
DelayFreeTransform::next(DynInst &out)
{
    if (!pending.empty()) {
        out = pending.front();
        pending.pop_front();
        return true;
    }

    DynInst inst;
    if (!src.next(inst))
        return false;

    if (isPublish(inst, cfg)) {
        // Publish barrier: all prior writebacks acknowledged, then the
        // publish store and its (asynchronous) writeback.
        out = makeFence(inst);
        pending.push_back(inst);
        pending.push_back(makeClwb(inst, inst.memAddr));
        ++fenceCount;
        ++clwbCount;
        ++txnCount;
        return true;
    }

    out = inst;
    if (inst.isStore()) {
        pending.push_back(makeClwb(inst, inst.memAddr));
        ++clwbCount;
    }
    return true;
}

void
DelayFreeTransform::seekTo(std::uint64_t index)
{
    pending.clear();
    src.seekTo(index);
}

} // namespace ppa
