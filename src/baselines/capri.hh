/**
 * @file
 * Capri-style WSP baseline (paper Sections 7.1 and 8).
 *
 * Capri [Jeong et al., HPDC'22] attaches a battery-backed redo buffer
 * (54 KB per core) to each core and drains the data being stored over
 * a *dedicated* FIFO persist path to NVM, bypassing the cache
 * hierarchy. Its compiler partitions the program into recoverable
 * regions (~29 instructions, Section 7.5) sized so their stores never
 * overflow the buffer; each region boundary waits for the buffer to
 * drain. The paper evaluates Capri with a realistic 4 GB/s persist
 * path (its artifact's default of 32 GB/s being "unrealistic").
 *
 * This model reproduces those externally visible properties: a
 * bounded buffer, a bandwidth-limited drain, and region-boundary
 * waits. The area/energy side (the 54 KB capacitor-backed SRAM) is
 * accounted in src/energy.
 */

#ifndef PPA_BASELINES_CAPRI_HH
#define PPA_BASELINES_CAPRI_HH

#include <deque>

#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace ppa
{

/**
 * The Capri redo buffers and their persist path. The path bandwidth
 * is a chip-level resource shared by all cores (the paper evaluates
 * Capri with a realistic 4 GB/s path); the buffers themselves are
 * per-core 54 KB arrays, approximated here as pooled capacity.
 */
class CapriChannel
{
  public:
    /**
     * @param clock          core clock domain
     * @param path_gbps      shared persist path bandwidth (GB/s)
     * @param buffer_bytes   pooled redo-buffer capacity
     * @param base_latency_ns end-to-end drain latency of one entry
     *        through the non-temporal path to the NVM's ADR domain
     */
    CapriChannel(const ClockDomain &clock, double path_gbps = 4.0,
                 std::uint64_t buffer_bytes = 54 * KiB,
                 double base_latency_ns = 38.0)
        : clockDomain(clock), pathGbps(path_gbps),
          capacityEntries(static_cast<unsigned>(buffer_bytes /
                                                entryBytes)),
          baseLatency(clock.nsToCycles(base_latency_ns))
    {}

    /**
     * A committed store enters the redo buffer.
     * @return false when the buffer is full (the commit must stall).
     */
    bool
    onStoreCommit(Cycle now)
    {
        retire(now);
        if (inflight.size() >= capacityEntries) {
            statFullStalls.inc();
            return false;
        }
        // FIFO drain limited by the shared path bandwidth, never
        // faster than the path's end-to-end latency.
        Cycle service = clockDomain.bandwidthCycles(entryBytes, pathGbps);
        Cycle completion = std::max(lastCompletion, now) +
                           std::max<Cycle>(service, 1);
        completion = std::max(completion, now + baseLatency);
        lastCompletion = completion;
        inflight.push_back(completion);
        statEntries.inc();
        return true;
    }

    /** True when every buffered entry has drained to NVM. */
    bool
    empty(Cycle now)
    {
        retire(now);
        return inflight.empty();
    }

    std::uint64_t totalEntries() const { return statEntries.value(); }
    std::uint64_t fullStalls() const { return statFullStalls.value(); }

    /** Redo-buffer entry footprint: 8B data + 8B address/metadata. */
    static constexpr unsigned entryBytes = 16;

  private:
    void
    retire(Cycle now)
    {
        while (!inflight.empty() && inflight.front() <= now)
            inflight.pop_front();
    }

    ClockDomain clockDomain;
    double pathGbps;
    unsigned capacityEntries;
    Cycle baseLatency;
    std::deque<Cycle> inflight;
    Cycle lastCompletion = 0;

    stats::Counter statEntries;
    stats::Counter statFullStalls;
};

} // namespace ppa

#endif // PPA_BASELINES_CAPRI_HH
