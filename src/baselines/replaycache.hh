/**
 * @file
 * ReplayCache-style WSP baseline (paper Sections 2.4 and 7.1).
 *
 * ReplayCache [Zeng et al., MICRO'21] enforces store integrity with a
 * compiler: a special register allocator keeps store operands live
 * within short compiler-formed regions (~12 instructions on average —
 * limited by architectural register scarcity, function calls/loops,
 * and EHS energy constraints), inserts a clwb after every store (which
 * occupies a store queue entry), and a persist barrier at every region
 * end that stalls the pipeline until all the region's writebacks are
 * acknowledged.
 *
 * We reproduce this as a committed-stream transformation: each store
 * is followed by a clwb to its line, and a fence terminates each
 * region. The core's PersistMode::ReplayCache makes the fence wait on
 * outstanding clwb acknowledgments, reproducing the two slowdown
 * mechanisms the paper identifies (doubled store-queue pressure and
 * frequent synchronous barriers).
 */

#ifndef PPA_BASELINES_REPLAYCACHE_HH
#define PPA_BASELINES_REPLAYCACHE_HH

#include <cstdint>
#include <deque>

#include "isa/source.hh"

namespace ppa
{

/** Parameters of the modeled ReplayCache compiler. */
struct ReplayCacheParams
{
    /**
     * Average region length in original instructions. The paper
     * reports ~12 for the EHS-tuned compiler; with energy-aware
     * splitting disabled (as the paper's comparison does) regions
     * remain architectural-register-bound.
     */
    unsigned regionInsts = 12;
};

/**
 * Wraps an instruction source, inserting clwb after each store and a
 * fence (persist barrier) at each compiler region boundary.
 *
 * Injected instructions reuse the index of the preceding original
 * instruction so that LCPC-style bookkeeping remains monotonic; the
 * transformation is only used for performance comparison, never for
 * recovery.
 */
class ReplayCacheTransform : public DynInstSource
{
  public:
    ReplayCacheTransform(DynInstSource &inner,
                         const ReplayCacheParams &params);

    bool next(DynInst &out) override;
    void seekTo(std::uint64_t index) override;

    /** Number of clwb instructions injected so far. */
    std::uint64_t injectedClwbs() const { return clwbCount; }
    /** Number of barrier fences injected so far. */
    std::uint64_t injectedFences() const { return fenceCount; }

  private:
    DynInstSource &src;
    ReplayCacheParams cfg;

    /** Pending injected instructions to emit before the next pull. */
    std::deque<DynInst> pending;
    unsigned instsInRegion = 0;
    std::uint64_t clwbCount = 0;
    std::uint64_t fenceCount = 0;
};

} // namespace ppa

#endif // PPA_BASELINES_REPLAYCACHE_HH
