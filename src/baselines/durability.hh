/**
 * @file
 * Software-durability baselines for the serving study (docs/SERVING.md).
 *
 * Two committed-stream transformations in the mold of the ReplayCache
 * baseline, modeling what software must add per transaction to obtain
 * failure atomicity on an eADR-less persistent-memory system:
 *
 *  - UndoRedoLogTransform: a logging software transaction a la
 *    *Persistent Memory Transactions* [Marathe et al.]: every data
 *    store is shadowed by a log-ring store plus a clwb of the log
 *    line; the transaction commit point is a fence (log durable), a
 *    commit-record store, a clwb of the commit record, and a second
 *    fence. Recovery can redo committed transactions from the log, so
 *    the durable frontier is the last persisted commit record.
 *
 *  - DelayFreeTransform: a flush-on-publish scheme a la *Delay-Free
 *    Concurrency on Faulty Persistent Memory* [Ben-David et al.]:
 *    every data store is followed by a clwb of its line, and a single
 *    fence precedes the publish store so that a published value is
 *    never observable before the data it advertises is durable. No
 *    log and no post-publish fence: recovery is constant-time, at the
 *    cost of a wider data-loss window (the publish itself persists
 *    asynchronously).
 *
 * Both transforms detect transaction boundaries structurally: the
 * caller nominates one word address per stream (the "publish" or
 * "ack" word); a store to that address ends the transaction. Injected
 * instructions reuse the index of the preceding original instruction
 * so LCPC-style bookkeeping stays monotonic (same convention as
 * ReplayCacheTransform); the transforms are performance/durability
 * models, not functional recovery implementations.
 */

#ifndef PPA_BASELINES_DURABILITY_HH
#define PPA_BASELINES_DURABILITY_HH

#include <cstdint>
#include <deque>

#include "isa/source.hh"
#include "mem/mem_image.hh"

namespace ppa
{

/** Shared configuration of the software-durability transforms. */
struct DurabilityParams
{
    /** Word address whose stores mark transaction ends (the request
     *  acknowledgement / publish word). Word-aligned. */
    Addr publishAddr = 0;
    /** Commit-record word (undo/redo logging only); must be disjoint
     *  from data and publish addresses. */
    Addr commitAddr = 0;
    /** Base of the per-stream redo-log ring (undo/redo logging only). */
    Addr logBase = 0;
    /** Log ring size in words; must be a power of two. */
    std::uint64_t logWords = 4096;
};

/**
 * Undo/redo-logging software transaction, as a committed-stream
 * transformation. Per data store: a log-ring store (same data
 * register, log address) and a clwb of the log line. Per transaction
 * end: fence, the publish store, a commit-record copy of it, clwb of
 * the commit record, fence.
 */
class UndoRedoLogTransform : public DynInstSource
{
  public:
    UndoRedoLogTransform(DynInstSource &inner,
                         const DurabilityParams &params);

    bool next(DynInst &out) override;
    void seekTo(std::uint64_t index) override;

    /** Log-ring stores injected so far. */
    std::uint64_t injectedLogStores() const { return logStoreCount; }
    /** clwb instructions injected so far. */
    std::uint64_t injectedClwbs() const { return clwbCount; }
    /** Commit fences injected so far. */
    std::uint64_t injectedFences() const { return fenceCount; }
    /** Transactions committed (publish stores seen) so far. */
    std::uint64_t committedTxns() const { return txnCount; }
    /** Data stores logged since the last commit record — what
     *  software recovery would have to undo after a crash here. */
    std::uint64_t openTxnStores() const { return txnStores; }

  private:
    DynInstSource &src;
    DurabilityParams cfg;

    std::deque<DynInst> pending;
    std::uint64_t logCursor = 0;
    std::uint64_t txnStores = 0;
    std::uint64_t logStoreCount = 0;
    std::uint64_t clwbCount = 0;
    std::uint64_t fenceCount = 0;
    std::uint64_t txnCount = 0;
};

/**
 * Flush-on-publish durable structure, as a committed-stream
 * transformation. Per data store: a clwb of its line. Per transaction
 * end: fence, the publish store, a clwb of the publish line (no
 * trailing fence — the publish persists asynchronously).
 */
class DelayFreeTransform : public DynInstSource
{
  public:
    DelayFreeTransform(DynInstSource &inner,
                       const DurabilityParams &params);

    bool next(DynInst &out) override;
    void seekTo(std::uint64_t index) override;

    /** clwb instructions injected so far. */
    std::uint64_t injectedClwbs() const { return clwbCount; }
    /** Publish fences injected so far. */
    std::uint64_t injectedFences() const { return fenceCount; }
    /** Transactions published so far. */
    std::uint64_t committedTxns() const { return txnCount; }

  private:
    DynInstSource &src;
    DurabilityParams cfg;

    std::deque<DynInst> pending;
    std::uint64_t clwbCount = 0;
    std::uint64_t fenceCount = 0;
    std::uint64_t txnCount = 0;
};

} // namespace ppa

#endif // PPA_BASELINES_DURABILITY_HH
