#include "baselines/replaycache.hh"

namespace ppa
{

ReplayCacheTransform::ReplayCacheTransform(DynInstSource &inner,
                                           const ReplayCacheParams &p)
    : src(inner), cfg(p)
{
}

bool
ReplayCacheTransform::next(DynInst &out)
{
    if (!pending.empty()) {
        out = pending.front();
        pending.pop_front();
        return true;
    }

    DynInst inst;
    if (!src.next(inst))
        return false;
    out = inst;

    if (inst.isStore()) {
        // The compiler writes every store back immediately.
        DynInst clwb;
        clwb.index = inst.index;
        clwb.op = Opcode::Clwb;
        clwb.memAddr = inst.memAddr;
        pending.push_back(clwb);
        ++clwbCount;
    }

    ++instsInRegion;
    if (instsInRegion >= cfg.regionInsts || inst.isSync()) {
        // Persist barrier at the compiler region boundary.
        if (!inst.isSync()) {
            DynInst fence;
            fence.index = inst.index;
            fence.op = Opcode::Fence;
            pending.push_back(fence);
            ++fenceCount;
        }
        instsInRegion = 0;
    }
    return true;
}

void
ReplayCacheTransform::seekTo(std::uint64_t index)
{
    pending.clear();
    instsInRegion = 0;
    src.seekTo(index);
}

} // namespace ppa
