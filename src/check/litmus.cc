#include "check/litmus.hh"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "baselines/replaycache.hh"
#include "check/observer.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace ppa
{
namespace check
{

namespace
{

// ---- corpus construction ------------------------------------------

// Register conventions shared by every litmus thread.
constexpr ArchReg rBase = 1;  ///< base pointer of the thread's lines
constexpr ArchReg rOne = 2;   ///< constant 1 (divisor of the chain)
constexpr ArchReg rChain = 3; ///< head of the retire-spacing chain
constexpr ArchReg rVal = 4;   ///< store data, derived from the chain
constexpr ArchReg rAmo = 5;   ///< AtomicRmw old-value destination

constexpr Addr litBase = 0x10000;
constexpr Addr line = 0x100; ///< one cache line per observed word

void
prologue(ProgramBuilder &b, Addr base = litBase)
{
    b.movi(rBase, base);
    b.movi(rOne, 1);
    b.movi(rChain, 1);
}

/**
 * Extend the value-preserving dependence chain by one unpipelined
 * 20-cycle divide (rChain stays 1). A store whose data hangs off the
 * chain cannot perform — and therefore cannot retire — until the
 * divide completes, so consecutive chained stores retire on distinct
 * cycles and exhaustive crash enumeration observes every prefix.
 */
void
delay(ProgramBuilder &b)
{
    b.div(rChain, rChain, rOne);
}

/** Store @p value (>= 1) to rBase + @p off, data fed by the chain. */
void
chainedStore(ProgramBuilder &b, Word value, Addr off)
{
    b.addi(rVal, rChain, value - 1);
    b.st(rVal, rBase, off);
}

LitmusTest
makeTest(std::string name, std::string description,
         std::vector<Program> threads, std::vector<Addr> observed,
         bool prefix_coverage,
         std::vector<std::vector<Word>> extra_required = {})
{
    LitmusTest t;
    t.name = std::move(name);
    t.description = std::move(description);
    t.threads = std::move(threads);
    t.observed = std::move(observed);
    t.prefixCoverage = prefix_coverage;
    t.extraRequired = std::move(extra_required);
    return t;
}

std::vector<LitmusTest>
buildCorpus()
{
    std::vector<LitmusTest> corpus;

    {
        // Message passing, one thread: data then flag. Strict forbids
        // flag-without-data at every cut.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 41, 0 * line);
        delay(b);
        chainedStore(b, 1, 1 * line);
        b.halt();
        corpus.push_back(makeTest(
            "mp", "message passing: flag persists only after data",
            {b.program()}, {litBase, litBase + line}, true));
    }
    {
        // Message passing across an explicit epoch boundary: even the
        // Epoch flavor forbids flag-without-data here.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 41, 0 * line);
        b.fence();
        delay(b);
        chainedStore(b, 1, 1 * line);
        b.halt();
        corpus.push_back(makeTest(
            "mp-epoch",
            "message passing with a fence between data and flag",
            {b.program()}, {litBase, litBase + line}, true));
    }
    {
        // Store buffering: two independent single-store threads. All
        // four outcomes are reachable; conformance is per-cut only.
        ProgramBuilder t0;
        prologue(t0);
        chainedStore(t0, 1, 0);
        t0.halt();
        ProgramBuilder t1;
        prologue(t1, litBase + 16 * line);
        chainedStore(t1, 1, 0);
        t1.halt();
        corpus.push_back(makeTest(
            "sb", "store buffering: one store per thread",
            {t0.program(), t1.program()},
            {litBase, litBase + 16 * line}, false));
    }
    {
        // Same-address coherence: the persisted value must be some
        // program-order prefix value, never a resurrected older one
        // at a newer cut under Strict.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 1, 0);
        delay(b);
        chainedStore(b, 2, 0);
        delay(b);
        chainedStore(b, 3, 0);
        b.halt();
        corpus.push_back(makeTest(
            "coherence", "three stores to one address", {b.program()},
            {litBase}, true));
    }
    {
        // Epoch chain: one store per epoch; later epochs persist only
        // after earlier ones.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 1, 0 * line);
        b.fence();
        delay(b);
        chainedStore(b, 2, 1 * line);
        b.fence();
        delay(b);
        chainedStore(b, 3, 2 * line);
        b.halt();
        corpus.push_back(makeTest(
            "epoch-chain", "one store per epoch across two fences",
            {b.program()},
            {litBase, litBase + line, litBase + 2 * line}, true));
    }
    {
        // Two stores inside one epoch (unordered there), one after
        // the fence.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 1, 0 * line);
        delay(b);
        chainedStore(b, 2, 1 * line);
        b.fence();
        delay(b);
        chainedStore(b, 3, 2 * line);
        b.halt();
        corpus.push_back(makeTest(
            "epoch-pair", "intra-epoch pair then a fenced store",
            {b.program()},
            {litBase, litBase + line, litBase + 2 * line}, true));
    }
    {
        // AtomicRmw is a synchronization point and a store: it ends
        // the region and persists synchronously at commit.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 1, 0 * line);
        delay(b);
        b.addi(rVal, rChain, 0);
        b.amoadd(rAmo, rVal, rBase, 1 * line);
        delay(b);
        chainedStore(b, 2, 2 * line);
        b.halt();
        corpus.push_back(makeTest(
            "atomic-sync", "store, amoadd region boundary, store",
            {b.program()},
            {litBase, litBase + line, litBase + 2 * line}, true));
    }
    {
        // Back-to-back fences form zero-length regions; the boundary
        // machinery must stay consistent through all of them.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 1, 0 * line);
        b.fence();
        b.fence();
        b.fence();
        delay(b);
        chainedStore(b, 2, 1 * line);
        b.halt();
        corpus.push_back(makeTest(
            "zero-regions", "three back-to-back zero-length regions",
            {b.program()}, {litBase, litBase + line}, true));
    }
    {
        // Two threads with disjoint write sets making independent
        // progress.
        ProgramBuilder t0;
        prologue(t0);
        chainedStore(t0, 1, 0 * line);
        delay(t0);
        chainedStore(t0, 2, 1 * line);
        delay(t0);
        chainedStore(t0, 3, 2 * line);
        t0.halt();
        ProgramBuilder t1;
        prologue(t1, litBase + 16 * line);
        chainedStore(t1, 4, 0 * line);
        delay(t1);
        chainedStore(t1, 5, 1 * line);
        delay(t1);
        chainedStore(t1, 6, 2 * line);
        t1.halt();
        corpus.push_back(makeTest(
            "2t-disjoint", "two threads, three stores each, disjoint",
            {t0.program(), t1.program()},
            {litBase + 2 * line, litBase + 16 * line + 2 * line},
            false));
    }
    {
        // Message passing on thread 0 while thread 1 generates noise
        // traffic; the MP invariant must hold regardless.
        ProgramBuilder t0;
        prologue(t0);
        chainedStore(t0, 41, 0 * line);
        delay(t0);
        chainedStore(t0, 1, 1 * line);
        t0.halt();
        ProgramBuilder t1;
        prologue(t1, litBase + 16 * line);
        t1.movi(rVal, 7);
        for (unsigned k = 0; k < 4; ++k)
            t1.st(rVal, rBase, k * line);
        t1.halt();
        corpus.push_back(makeTest(
            "mp-2t", "message passing under cross-core noise stores",
            {t0.program(), t1.program()}, {litBase, litBase + line},
            false, {{41, 0}}));
    }
    {
        // 44 stores over 6 lines: the 40-entry CSQ fills inside the
        // region and forces an implicit (CsqFull) boundary.
        ProgramBuilder b;
        prologue(b, 0x20000);
        for (unsigned k = 0; k < 44; ++k) {
            if (k == 39 || k == 40) {
                delay(b);
                chainedStore(b, k + 1, (k % 6) * line);
            } else {
                b.movi(rVal, k + 1);
                b.st(rVal, rBase, (k % 6) * line);
            }
        }
        b.halt();
        corpus.push_back(makeTest(
            "csq-overflow",
            "44 stores force a CSQ-full implicit region boundary",
            {b.program()},
            {Addr{0x20000}, Addr{0x20000} + 5 * line}, false));
    }
    {
        // A burst of distinct-line stores drained by one fence: write
        // buffer and WPQ under pressure at the barrier.
        ProgramBuilder b;
        prologue(b, 0x30000);
        for (unsigned k = 0; k < 20; ++k) {
            b.movi(rVal, k + 1);
            b.st(rVal, rBase, k * line);
        }
        b.fence();
        delay(b);
        chainedStore(b, 99, 20 * line);
        b.halt();
        corpus.push_back(makeTest(
            "wpq-pressure",
            "20-line store burst drained by a persist barrier",
            {b.program()},
            {Addr{0x30000}, Addr{0x30000} + 19 * line,
             Addr{0x30000} + 20 * line},
            false));
    }
    {
        // Three explicit regions with two, two, and one stores.
        ProgramBuilder b;
        prologue(b);
        chainedStore(b, 1, 0 * line);
        delay(b);
        chainedStore(b, 2, 1 * line);
        b.fence();
        delay(b);
        chainedStore(b, 3, 2 * line);
        delay(b);
        chainedStore(b, 4, 3 * line);
        b.fence();
        delay(b);
        chainedStore(b, 5, 4 * line);
        b.halt();
        corpus.push_back(makeTest(
            "multi-region", "three regions: 2 + 2 + 1 stores",
            {b.program()},
            {litBase + line, litBase + 3 * line, litBase + 4 * line},
            true));
    }

    return corpus;
}

// ---- engine helpers -----------------------------------------------

/**
 * Records the cycles at which the audit observers saw persistency
 * action; the randomized explorer biases crash points toward them.
 */
class CrashBiasObserver : public PipelineObserver
{
  public:
    explicit CrashBiasObserver(std::set<Cycle> &out) : out(out) {}

    void onCycle(Cycle cycle) override { now = cycle; }
    void
    onRegionBoundaryStart(RegionEndCause cause) override
    {
        (void)cause;
        out.insert(now);
    }
    void onRegionBoundaryComplete() override { out.insert(now); }
    void
    onPersistEnqueue(Addr addr, Word value, bool coalesced) override
    {
        (void)addr;
        (void)value;
        (void)coalesced;
        out.insert(now);
    }
    void
    onPersistIssue(Addr line_addr, unsigned store_count) override
    {
        (void)line_addr;
        (void)store_count;
        out.insert(now);
    }

  private:
    std::set<Cycle> &out;
    Cycle now = 0;
};

/** One simulated instance of a litmus test: system plus sources. */
struct EngineRun
{
    explicit EngineRun(const SystemConfig &sc) : system(sc) {}

    System system;
    std::vector<std::unique_ptr<ProgramExecutor>> execs;
    std::vector<std::unique_ptr<ReplayCacheTransform>> transforms;
};

std::unique_ptr<EngineRun>
makeRun(const LitmusTest &test, SystemVariant variant)
{
    const auto n = static_cast<unsigned>(test.threads.size());
    ExperimentKnobs knobs;
    knobs.threads = n;
    SystemConfig sc = makeSystemConfig(variant, knobs, n);
    auto run = std::make_unique<EngineRun>(sc);
    for (unsigned t = 0; t < n; ++t)
        run->system.seedMemory(test.threads[t].initialMemory());
    for (unsigned t = 0; t < n; ++t) {
        run->execs.push_back(
            std::make_unique<ProgramExecutor>(test.threads[t]));
        if (variant == SystemVariant::ReplayCache) {
            run->transforms.push_back(
                std::make_unique<ReplayCacheTransform>(
                    *run->execs.back(), ReplayCacheParams{}));
            run->system.bindSource(t, run->transforms.back().get());
        } else {
            run->system.bindSource(t, run->execs.back().get());
        }
    }
    return run;
}

std::string
valuesStr(const std::vector<Word> &values)
{
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << values[i];
    os << ")";
    return os.str();
}

std::string
cutStr(const std::vector<std::uint64_t> &cut)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < cut.size(); ++i)
        os << (i ? ", " : "") << cut[i];
    os << "]";
    return os.str();
}

constexpr std::size_t maxSamples = 5;

} // namespace

std::uint64_t
fnv64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ull;
    }
    return h;
}

ReferenceSummary
runReference(const LitmusTest &test, SystemVariant variant,
             Cycle maxCycles)
{
    ReferenceSummary ref;
    std::set<Cycle> interesting;
    auto run = makeRun(test, variant);
    std::vector<std::unique_ptr<CrashBiasObserver>> observers;
    for (unsigned t = 0; t < run->system.numCores(); ++t) {
        observers.push_back(
            std::make_unique<CrashBiasObserver>(interesting));
        run->system.core(t).attachAuditObserver(observers.back().get());
    }
    while (!run->system.allDone() && run->system.cycle() < maxCycles)
        run->system.tick();
    ref.completed = run->system.allDone();
    ref.endCycle = run->system.cycle();
    ref.interesting.assign(interesting.begin(), interesting.end());
    return ref;
}

std::vector<Cycle>
biasedCrashSchedule(const ReferenceSummary &ref, unsigned schedules,
                    std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Cycle> crashes;
    crashes.reserve(schedules);
    const std::vector<Cycle> &hot = ref.interesting;
    for (unsigned k = 0; k < schedules; ++k) {
        Cycle c;
        if (k % 2 == 0 && !hot.empty()) {
            c = hot[rng.below(hot.size())];
            // +/-2 cycle jitter around the hot spot.
            c += rng.range(0, 4);
            c = c > 2 ? c - 2 : 1;
        } else {
            c = rng.range(1, ref.endCycle);
        }
        crashes.push_back(
            std::min<Cycle>(std::max<Cycle>(c, 1), ref.endCycle));
    }
    return crashes;
}

CrashObservation
crashObserve(const LitmusTest &test, SystemVariant variant, Cycle cycle)
{
    auto run = makeRun(test, variant);
    run->system.runUntilCycle(cycle);

    CrashObservation obs;
    obs.cut.reserve(run->system.numCores());
    for (unsigned t = 0; t < run->system.numCores(); ++t)
        obs.cut.push_back(run->system.core(t).committedStores());

    auto images = run->system.powerFail();
    if (variant == SystemVariant::Ppa)
        run->system.recover(images);

    obs.outcome.reserve(test.observed.size());
    for (Addr a : test.observed)
        obs.outcome.push_back(run->system.memory().nvmImage().read(
            MemImage::wordAlign(a)));
    return obs;
}

const std::vector<LitmusTest> &
litmusCorpus()
{
    static const std::vector<LitmusTest> corpus = buildCorpus();
    return corpus;
}

const LitmusTest *
findLitmusTest(const std::string &name)
{
    for (const LitmusTest &t : litmusCorpus())
        if (t.name == name)
            return &t;
    return nullptr;
}

PersistFlavor
flavorForVariant(SystemVariant variant)
{
    switch (variant) {
      case SystemVariant::Ppa:
        return PersistFlavor::Strict;
      case SystemVariant::ReplayCache:
        return PersistFlavor::Epoch;
      default:
        return PersistFlavor::Relaxed;
    }
}

bool
variantSupportsLitmus(SystemVariant variant, std::string *why)
{
    const char *reason = nullptr;
    switch (variant) {
      case SystemVariant::Ppa:
      case SystemVariant::MemoryMode:
      case SystemVariant::ReplayCache:
        break;
      case SystemVariant::Capri:
        reason = "capri cores have no JIT checkpoint/recovery path "
                 "to observe a post-crash state through";
        break;
      case SystemVariant::EadrBbb:
        reason = "eadr-bbb's battery-backed guarantee is priced, not "
                 "modeled, so a simulated crash would under-report it";
        break;
      case SystemVariant::DramOnly:
        reason = "dram-only has no persistent memory to observe";
        break;
    }
    if (why && reason)
        *why = reason;
    return reason == nullptr;
}

LitmusResult
runLitmusTest(const LitmusTest &test, const LitmusOptions &opts)
{
    LitmusResult res;
    res.test = test.name;
    res.variant = opts.variant;
    res.flavor = flavorForVariant(opts.variant);
    res.mode = opts.mode;
    res.coverageRequired = opts.mode == ExploreMode::Exhaustive &&
                           res.flavor == PersistFlavor::Strict;

    std::string why;
    if (!variantSupportsLitmus(opts.variant, &why)) {
        res.corpusError = true;
        res.notes.push_back("variant unsupported: " + why);
        return res;
    }

    // Static model of the program; reject anything outside the
    // analyzable (data-race-free, disjoint-writes) fragment.
    std::vector<const Program *> progs;
    progs.reserve(test.threads.size());
    for (const Program &p : test.threads)
        progs.push_back(&p);
    PersistModel model(progs);
    if (!model.racyAddresses().empty()) {
        res.corpusError = true;
        res.notes.push_back("cross-thread write/write race on " +
                            std::to_string(model.racyAddresses().size()) +
                            " address(es)");
        return res;
    }
    if (!model.crossThreadReads().empty()) {
        res.corpusError = true;
        res.notes.push_back("cross-thread read of another thread's "
                            "write set");
        return res;
    }

    // Required outcomes: initial, final, every single-thread prefix
    // state when the test guarantees one retire per cycle, plus the
    // test's own extras (validated against the Strict model).
    std::set<PersistModel::Outcome> required;
    required.insert(model.committedState(
        PersistModel::StoreCut(model.threadCount(), 0), test.observed));
    required.insert(model.committedState(model.fullCut(), test.observed));
    if (test.prefixCoverage && model.threadCount() == 1) {
        for (std::uint64_t k = 0; k <= model.storeCount(0); ++k)
            required.insert(
                model.committedState({k}, test.observed));
    }
    if (!test.extraRequired.empty()) {
        auto reachable = model.reachableOutcomes(PersistFlavor::Strict,
                                                 test.observed);
        for (const auto &extra : test.extraRequired) {
            if (std::find(reachable.begin(), reachable.end(), extra) ==
                reachable.end()) {
                res.corpusError = true;
                res.notes.push_back(
                    "declared required outcome " + valuesStr(extra) +
                    " is not Strict-reachable: corpus bug");
                return res;
            }
            required.insert(extra);
        }
    }
    res.requiredTotal = required.size();

    // Reference run: discover the completion cycle and the cycles
    // with persistency action (for crash-point biasing).
    ReferenceSummary ref = runReference(test, opts.variant,
                                        opts.maxCycles);
    if (!ref.completed) {
        res.corpusError = true;
        res.notes.push_back("reference run did not complete in " +
                            std::to_string(opts.maxCycles) + " cycles");
        return res;
    }

    // Crash-point schedule.
    std::vector<Cycle> crashes;
    if (opts.mode == ExploreMode::Exhaustive) {
        if (ref.endCycle > opts.exhaustiveCap) {
            res.corpusError = true;
            res.notes.push_back(
                "run is " + std::to_string(ref.endCycle) +
                " cycles, over the exhaustive cap of " +
                std::to_string(opts.exhaustiveCap) +
                "; use the randomized explorer");
            return res;
        }
        crashes.reserve(ref.endCycle);
        for (Cycle c = 1; c <= ref.endCycle; ++c)
            crashes.push_back(c);
    } else {
        crashes = biasedCrashSchedule(ref, opts.schedules,
                                      opts.seed ^ fnv64(test.name));
    }

    // Crash, observe, and judge.
    std::set<PersistModel::Outcome> seen;
    for (Cycle c : crashes) {
        CrashObservation obs = crashObserve(test, opts.variant, c);
        seen.insert(obs.outcome);

        bool allowed = model.outcomeAllowed(res.flavor, obs.cut,
                                            test.observed, obs.outcome);
        bool strict_allowed =
            res.flavor == PersistFlavor::Strict
                ? allowed
                : model.outcomeAllowed(PersistFlavor::Strict, obs.cut,
                                       test.observed, obs.outcome);
        if (!allowed) {
            ++res.violations;
            if (res.samples.size() < maxSamples) {
                LitmusSample s;
                s.cycle = c;
                s.cut = obs.cut;
                s.outcome = obs.outcome;
                s.detail = "outcome " + valuesStr(obs.outcome) +
                           " forbidden under " +
                           flavorName(res.flavor) + " at cut " +
                           cutStr(obs.cut);
                res.samples.push_back(std::move(s));
            }
        }
        if (!strict_allowed)
            ++res.strictDivergences;
        ++res.crashPoints;
    }

    res.distinctOutcomes = seen.size();
    for (const auto &r : required) {
        if (seen.count(r))
            continue;
        ++res.vacuous;
        if (res.notes.size() < maxSamples)
            res.notes.push_back("required outcome " + valuesStr(r) +
                                " never observed");
    }
    res.requiredSeen = res.requiredTotal - res.vacuous;
    return res;
}

std::string
litmusResultsJson(const std::vector<LitmusResult> &results,
                  const LitmusOptions &opts)
{
    auto esc = [](const std::string &s) {
        std::string out;
        for (char ch : s) {
            if (ch == '"' || ch == '\\')
                out.push_back('\\');
            out.push_back(ch);
        }
        return out;
    };

    std::ostringstream os;
    os << "{\n";
    os << "  \"schemaVersion\": 1,\n";
    os << "  \"variant\": \"" << variantToken(opts.variant) << "\",\n";
    os << "  \"flavor\": \""
       << flavorName(flavorForVariant(opts.variant)) << "\",\n";
    os << "  \"mode\": \""
       << (opts.mode == ExploreMode::Exhaustive ? "exhaustive"
                                                : "randomized")
       << "\",\n";
    os << "  \"seed\": " << opts.seed << ",\n";
    os << "  \"tests\": [\n";
    std::uint64_t violations = 0;
    std::uint64_t divergences = 0;
    std::uint64_t vacuous = 0;
    bool pass = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const LitmusResult &r = results[i];
        violations += r.violations;
        divergences += r.strictDivergences;
        vacuous += r.vacuous;
        pass = pass && r.pass();
        os << "    {\"name\": \"" << esc(r.test) << "\","
           << " \"crashPoints\": " << r.crashPoints << ","
           << " \"violations\": " << r.violations << ","
           << " \"strictDivergences\": " << r.strictDivergences << ","
           << " \"vacuous\": " << r.vacuous << ","
           << " \"requiredTotal\": " << r.requiredTotal << ","
           << " \"requiredSeen\": " << r.requiredSeen << ","
           << " \"distinctOutcomes\": " << r.distinctOutcomes << ","
           << " \"corpusError\": "
           << (r.corpusError ? "true" : "false") << ","
           << " \"pass\": " << (r.pass() ? "true" : "false") << ","
           << " \"notes\": [";
        for (std::size_t n = 0; n < r.notes.size(); ++n)
            os << (n ? ", " : "") << "\"" << esc(r.notes[n]) << "\"";
        os << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"totals\": {\"violations\": " << violations
       << ", \"strictDivergences\": " << divergences
       << ", \"vacuous\": " << vacuous
       << ", \"pass\": " << (pass ? "true" : "false") << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace check
} // namespace ppa
