/**
 * @file
 * Narrow observer interfaces for the persistence-invariant audit layer.
 *
 * The pipeline structures whose interplay carries PPA's crash
 * consistency (Core commit/retire, the CSQ, the MaskReg, and the L1D
 * write buffer) each expose a tiny observer hook. All callbacks are
 * no-ops by default, the hooks are null by default, and nothing in the
 * simulator's behavior may depend on an observer being attached — the
 * audit layer (ppa::check::Auditor) is strictly read-only
 * instrumentation.
 *
 * The interfaces live here, below every model library, so that
 * core/ppa/mem headers can include them without creating a dependency
 * on the audit implementation (src/check/auditor.*, library
 * ppa_check).
 */

#ifndef PPA_CHECK_OBSERVER_HH
#define PPA_CHECK_OBSERVER_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "ppa/region_stats.hh"

namespace ppa
{

struct CsqEntry;
struct CheckpointImage;

namespace check
{

/** Observes commit-pipeline events of one Core. */
class CoreObserver
{
  public:
    virtual ~CoreObserver() = default;

    /** Start of Core::tick for cycle @p cycle. */
    virtual void onCycle(Cycle cycle) { (void)cycle; }

    /** An instruction retired (after all bookkeeping succeeded). */
    virtual void
    onCommit(std::uint64_t stream_index, bool is_store)
    {
        (void)stream_index;
        (void)is_store;
    }

    /**
     * A store retired. Fired *before* the store's CSQ/MaskReg
     * bookkeeping so the auditor can pair the structure events that
     * follow with this store.
     *
     * @param global_data_reg global PRF index of the data operand, or
     *        csqZeroRegIndex when the value is architecturally zero or
     *        carried inline
     * @param carries_value  Section 6 variant: the CSQ records the
     *        value, not a register index
     * @param to_io_buffer   the store targets the battery-backed I/O
     *        window and bypasses CSQ/NVM entirely
     */
    virtual void
    onStoreCommit(Addr addr, Word value, unsigned global_data_reg,
                  bool carries_value, bool to_io_buffer)
    {
        (void)addr;
        (void)value;
        (void)global_data_reg;
        (void)carries_value;
        (void)to_io_buffer;
    }

    /** An atomic RMW performed its synchronous persistent write. */
    virtual void
    onAtomicCommit(Addr addr, Word value)
    {
        (void)addr;
        (void)value;
    }

    /** A physical register returned to the free list. */
    virtual void onRegFree(unsigned global_reg) { (void)global_reg; }

    /** A physical register was written back (newly produced value). */
    virtual void onRegWrite(unsigned global_reg) { (void)global_reg; }

    /**
     * A region boundary is about to complete: the persist barrier's
     * conditions are met, but deferred frees / MaskReg / CSQ clears
     * have not happened yet. The auditor runs its end-of-region checks
     * here, against the still-intact structures.
     */
    virtual void onRegionBoundaryStart(RegionEndCause cause)
    {
        (void)cause;
    }

    /** The region boundary finished (structures cleared). */
    virtual void onRegionBoundaryComplete() {}

    /** A power failure captured @p image (before volatile state drops). */
    virtual void onPowerFail(const CheckpointImage &image)
    {
        (void)image;
    }

    /** Recovery from @p image finished (RAT/CRT/CSQ/PRF restored). */
    virtual void onRecover(const CheckpointImage &image) { (void)image; }
};

/** Observes one Csq. */
class CsqObserver
{
  public:
    virtual ~CsqObserver() = default;

    /** @p entry was appended (committing store, in commit order). */
    virtual void onCsqPush(const CsqEntry &entry) { (void)entry; }

    /** The CSQ dropped all @p entries entries (region boundary). */
    virtual void onCsqClear(std::size_t entries) { (void)entries; }
};

/** Observes one MaskReg. */
class MaskRegObserver
{
  public:
    virtual ~MaskRegObserver() = default;

    /** Bit @p global_reg was set (committed-store data operand). */
    virtual void onMaskSet(unsigned global_reg) { (void)global_reg; }

    /** All @p masked set bits cleared (region boundary). */
    virtual void onMaskClearAll(std::size_t masked) { (void)masked; }
};

/** Observes one per-core WriteBuffer's persist path. */
class WriteBufferObserver
{
  public:
    virtual ~WriteBufferObserver() = default;

    /**
     * A committed store's persist operation entered the buffer.
     * @param coalesced merged into an existing same-line entry
     */
    virtual void
    onPersistEnqueue(Addr addr, Word value, bool coalesced)
    {
        (void)addr;
        (void)value;
        (void)coalesced;
    }

    /**
     * An entry carrying @p store_count stores entered the NVM WPQ and
     * is now inside the persistence domain (its words were applied to
     * the NVM image).
     */
    virtual void
    onPersistIssue(Addr line_addr, unsigned store_count)
    {
        (void)line_addr;
        (void)store_count;
    }
};

/**
 * Convenience aggregate: one object observing a core and all of its
 * persistence structures. Core::attachAuditObserver takes this and
 * fans it out to the structure hooks.
 */
class PipelineObserver : public CoreObserver,
                         public CsqObserver,
                         public MaskRegObserver,
                         public WriteBufferObserver
{
};

} // namespace check
} // namespace ppa

#endif // PPA_CHECK_OBSERVER_HH
