#include "check/model.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"

namespace ppa
{
namespace check
{

const char *
flavorName(PersistFlavor flavor)
{
    switch (flavor) {
      case PersistFlavor::Strict:
        return "strict";
      case PersistFlavor::Epoch:
        return "epoch";
      case PersistFlavor::Relaxed:
        return "relaxed";
    }
    return "?";
}

PersistModel::PersistModel(const std::vector<const Program *> &threads)
{
    const auto nthreads = static_cast<unsigned>(threads.size());
    threadStores.resize(nthreads);
    threadInsts.resize(nthreads, 0);

    // Merge initial images in thread order, mirroring the engine's
    // per-program System::seedMemory calls (later threads override).
    for (const Program *prog : threads) {
        prog->initialMemory().forEachWord(
            [&](Addr a, Word v) { initial.write(a, v); });
    }

    // Shared-address bookkeeping for the race diagnostics.
    std::map<Addr, unsigned> writerOf;
    std::set<Addr> racy;
    std::map<Addr, std::set<unsigned>> readers;

    for (unsigned t = 0; t < nthreads; ++t) {
        // Functional architectural execution: after each next() the
        // executor's golden memory holds exactly the effects of the
        // instructions generated so far, so reading the store's word
        // right after generating it yields the committed value (for
        // AtomicRmw, the post-RMW value).
        ProgramExecutor ex(*threads[t]);
        DynInst di;
        std::uint64_t epoch = 0;
        while (ex.next(di)) {
            if (di.isLoad())
                readers[di.memAddr].insert(t);
            if (di.isStore()) {
                auto it = writerOf.find(di.memAddr);
                if (it == writerOf.end())
                    writerOf.emplace(di.memAddr, t);
                else if (it->second != t)
                    racy.insert(di.memAddr);

                ModelStore ms;
                ms.thread = t;
                ms.seq = threadStores[t].size();
                ms.instIndex = di.index;
                ms.addr = di.memAddr;
                ms.value = ex.goldenMemory().read(di.memAddr);
                ms.epoch = epoch;
                ms.sync = di.isSync();
                threadStores[t].push_back(ms);
            }
            if (di.isSync())
                ++epoch;
        }
        threadInsts[t] = ex.generated().size();
    }

    // Clocks: component t = own store count so far; all cross-thread
    // components zero (no static synchronization edges — see the
    // header comment on conservatism).
    for (unsigned t = 0; t < nthreads; ++t) {
        for (ModelStore &ms : threadStores[t]) {
            ms.clock.c.assign(nthreads, 0);
            ms.clock.c[t] = ms.seq + 1;
        }
    }

    racyAddrs.assign(racy.begin(), racy.end());
    for (const auto &[addr, who] : readers) {
        auto it = writerOf.find(addr);
        if (it == writerOf.end())
            continue;
        for (unsigned r : who)
            if (r != it->second) {
                crossReadAddrs.push_back(addr);
                break;
            }
    }
}

std::uint64_t
PersistModel::totalStores() const
{
    std::uint64_t n = 0;
    for (const auto &ts : threadStores)
        n += ts.size();
    return n;
}

Word
PersistModel::initialValue(Addr addr) const
{
    return initial.read(MemImage::wordAlign(addr));
}

bool
PersistModel::persistBefore(PersistFlavor flavor, const ModelStore &a,
                            const ModelStore &b) const
{
    // Happens-before via vector clocks; a == b never qualifies.
    if (!a.clock.leq(b.clock) || (a.thread == b.thread && a.seq == b.seq))
        return false;
    switch (flavor) {
      case PersistFlavor::Strict:
        return true;
      case PersistFlavor::Epoch:
        return a.epoch < b.epoch || a.addr == b.addr;
      case PersistFlavor::Relaxed:
        return a.addr == b.addr;
    }
    return false;
}

std::vector<const ModelStore *>
PersistModel::includedStoresTo(Addr addr, const StoreCut &cut) const
{
    std::vector<const ModelStore *> out;
    for (unsigned t = 0; t < threadCount(); ++t) {
        std::uint64_t n = std::min<std::uint64_t>(
            cut[t], threadStores[t].size());
        for (std::uint64_t s = 0; s < n; ++s)
            if (threadStores[t][s].addr == addr)
                out.push_back(&threadStores[t][s]);
    }
    return out;
}

std::vector<const ModelStore *>
PersistModel::includedStores(const StoreCut &cut) const
{
    std::vector<const ModelStore *> out;
    for (unsigned t = 0; t < threadCount(); ++t) {
        std::uint64_t n = std::min<std::uint64_t>(
            cut[t], threadStores[t].size());
        for (std::uint64_t s = 0; s < n; ++s)
            out.push_back(&threadStores[t][s]);
    }
    return out;
}

PersistModel::Outcome
PersistModel::committedState(const StoreCut &cut,
                             const std::vector<Addr> &addrs) const
{
    PPA_ASSERT(cut.size() == threadCount(), "cut arity mismatch");
    Outcome out;
    out.reserve(addrs.size());
    for (Addr a : addrs) {
        Addr wa = MemImage::wordAlign(a);
        auto included = includedStoresTo(wa, cut);
        // Writes to one address come from one thread (the racy case
        // is rejected upstream), so program order totally orders them
        // and the last one is the committed value.
        out.push_back(included.empty() ? initialValue(wa)
                                       : included.back()->value);
    }
    return out;
}

bool
PersistModel::outcomeAllowed(PersistFlavor flavor, const StoreCut &cut,
                             const std::vector<Addr> &addrs,
                             const Outcome &outcome) const
{
    PPA_ASSERT(cut.size() == threadCount(), "cut arity mismatch");
    PPA_ASSERT(outcome.size() == addrs.size(), "outcome arity mismatch");

    // Per observed address, the candidate "last persisted store"
    // choices that produce the observed value: nullptr stands for
    // "no store to this address persisted" (initial value).
    std::vector<std::vector<const ModelStore *>> candidates(addrs.size());
    std::vector<std::vector<const ModelStore *>> perAddr(addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        Addr wa = MemImage::wordAlign(addrs[i]);
        perAddr[i] = includedStoresTo(wa, cut);
        if (outcome[i] == initialValue(wa))
            candidates[i].push_back(nullptr);
        for (const ModelStore *s : perAddr[i])
            if (s->value == outcome[i])
                candidates[i].push_back(s);
        if (candidates[i].empty())
            return false;
    }

    const auto included = includedStores(cut);

    // Try every combination of per-address choices (values can
    // repeat, so a value may name several stores). A combination is
    // allowed iff the persist-set P it forces — the chosen stores,
    // plus everything Strict mandates, closed downward under
    // persist-before — avoids every store that would overwrite a
    // chosen address past its chosen value.
    std::vector<std::size_t> pick(addrs.size(), 0);
    for (;;) {
        std::vector<const ModelStore *> required;
        for (std::size_t i = 0; i < addrs.size(); ++i)
            if (candidates[i][pick[i]] != nullptr)
                required.push_back(candidates[i][pick[i]]);
        if (flavor == PersistFlavor::Strict)
            required = included;

        // Downward closure under persist-before, within the cut.
        std::vector<const ModelStore *> closure = required;
        for (std::size_t head = 0; head < closure.size(); ++head) {
            const ModelStore *r = closure[head];
            for (const ModelStore *p : included) {
                if (persistBefore(flavor, *p, *r) &&
                    std::find(closure.begin(), closure.end(), p) ==
                        closure.end()) {
                    closure.push_back(p);
                }
            }
        }

        bool ok = true;
        for (std::size_t i = 0; i < addrs.size() && ok; ++i) {
            const ModelStore *chosen = candidates[i][pick[i]];
            for (const ModelStore *s : perAddr[i]) {
                bool later = chosen == nullptr || s->seq > chosen->seq;
                if (later && std::find(closure.begin(), closure.end(),
                                       s) != closure.end()) {
                    ok = false;
                    break;
                }
            }
        }
        if (ok)
            return true;

        // Next combination.
        std::size_t i = 0;
        while (i < pick.size() && ++pick[i] == candidates[i].size()) {
            pick[i] = 0;
            ++i;
        }
        if (i == pick.size())
            return false;
    }
}

std::vector<PersistModel::Outcome>
PersistModel::allowedOutcomes(PersistFlavor flavor, const StoreCut &cut,
                              const std::vector<Addr> &addrs) const
{
    // Candidate values per address: initial plus every included
    // store's value.
    std::vector<std::vector<Word>> values(addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        Addr wa = MemImage::wordAlign(addrs[i]);
        std::set<Word> vs;
        vs.insert(initialValue(wa));
        for (const ModelStore *s : includedStoresTo(wa, cut))
            vs.insert(s->value);
        values[i].assign(vs.begin(), vs.end());
    }

    std::set<Outcome> out;
    std::vector<std::size_t> pick(addrs.size(), 0);
    for (;;) {
        Outcome candidate;
        candidate.reserve(addrs.size());
        for (std::size_t i = 0; i < addrs.size(); ++i)
            candidate.push_back(values[i][pick[i]]);
        if (outcomeAllowed(flavor, cut, addrs, candidate))
            out.insert(candidate);

        std::size_t i = 0;
        while (i < pick.size() && ++pick[i] == values[i].size()) {
            pick[i] = 0;
            ++i;
        }
        if (i == pick.size())
            break;
    }
    return {out.begin(), out.end()};
}

std::vector<PersistModel::Outcome>
PersistModel::reachableOutcomes(PersistFlavor flavor,
                                const std::vector<Addr> &addrs) const
{
    std::set<Outcome> out;
    StoreCut cut(threadCount(), 0);
    for (;;) {
        for (const Outcome &o : allowedOutcomes(flavor, cut, addrs))
            out.insert(o);

        unsigned t = 0;
        while (t < threadCount() &&
               ++cut[t] > threadStores[t].size()) {
            cut[t] = 0;
            ++t;
        }
        if (t == threadCount())
            break;
    }
    return {out.begin(), out.end()};
}

PersistModel::StoreCut
PersistModel::fullCut() const
{
    StoreCut cut(threadCount());
    for (unsigned t = 0; t < threadCount(); ++t)
        cut[t] = threadStores[t].size();
    return cut;
}

} // namespace check
} // namespace ppa
