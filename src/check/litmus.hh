/**
 * @file
 * Persistency litmus tests and the crash-point conformance engine.
 *
 * A LitmusTest is a tiny multi-threaded program (isa::Program per
 * thread) plus the addresses whose post-crash values are observed.
 * The engine runs a test on a real simulated system variant, injects
 * a power failure at chosen crash points, recovers where the variant
 * supports it, and diffs each observed post-crash NVM state against
 * what the declarative persistency model (check/model.hh) allows at
 * the observed crash cut. Two findings matter:
 *
 *  - violation: an outcome the variant's own model flavor forbids at
 *    its cut — a persistency race in the implementation;
 *  - vacuity: a model-allowed outcome the engine declared *required*
 *    that no crash point ever exposed — the test isn't actually
 *    exercising the states it claims to.
 *
 * Every crash is additionally judged against the Strict flavor (the
 * PPA guarantee); strictDivergences counts outcomes Strict forbids.
 * For PPA that equals the violation count; for software-durable
 * baselines a nonzero count is the demonstration that the checker
 * discriminates between genuinely different allowed sets.
 *
 * Crash points come from exhaustive per-cycle enumeration (small
 * programs) or auditor-biased randomized sampling: half the draws
 * land near cycles where the audit observers saw persistency action —
 * region-boundary starts/completions (including CSQ-full implicit
 * boundaries) and write-buffer persist traffic (WPQ pressure) — and
 * half are uniform over the run.
 *
 * The corpus (litmusCorpus) covers the classic shapes: message
 * passing, store buffering, epoch boundaries, same-address
 * coherence, CSQ overflow, WPQ pressure, zero-length regions, and
 * multi-region variants. See docs/CHECKING.md for the DSL.
 */

#ifndef PPA_CHECK_LITMUS_HH
#define PPA_CHECK_LITMUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/model.hh"
#include "isa/program.hh"
#include "sim/experiment.hh"

namespace ppa
{
namespace check
{

/** One litmus program: threads, observed addresses, coverage goals. */
struct LitmusTest
{
    std::string name;
    std::string description;
    /** One committed-path program per thread. Must halt, be DRF, and
     *  keep every observed address on its own cache line. */
    std::vector<Program> threads;
    /** Addresses whose post-crash NVM values form the outcome. */
    std::vector<Addr> observed;
    /**
     * Single-thread tests whose consecutive stores are separated by
     * long dependence chains retire at most one store per cycle, so
     * exhaustive crash enumeration must witness *every* store-prefix
     * state; such tests require all of them (vacuity otherwise).
     * Multi-thread tests require only the initial and final states.
     */
    bool prefixCoverage = false;
    /** Extra outcomes the exploration must witness (beyond the
     *  initial/final/prefix defaults). Must be Strict-reachable. */
    std::vector<std::vector<Word>> extraRequired;
};

/** The built-in corpus, in a stable order. */
const std::vector<LitmusTest> &litmusCorpus();

/** Find a corpus test by name; nullptr when absent. */
const LitmusTest *findLitmusTest(const std::string &name);

/** The model flavor a system variant promises to implement. */
PersistFlavor flavorForVariant(SystemVariant variant);

/**
 * Can the engine crash-observe @p variant? False (with a reason in
 * @p why when non-null) for variants without an observable
 * persistence story: capri (no checkpoint images), eadr-bbb (its
 * battery-backed guarantee is priced, not modeled, so a simulated
 * crash under-reports it) and dram-only (nothing persistent at all).
 */
bool variantSupportsLitmus(SystemVariant variant, std::string *why);

/** FNV-1a 64-bit string hash; mixes test identity into crash seeds. */
std::uint64_t fnv64(const std::string &s);

/**
 * What one full (failure-free) reference execution of a test showed:
 * whether it completed within the cycle budget, the cycle it halted
 * on, and the sorted cycles at which the audit observers saw
 * persistency action (region boundaries, persist enqueue/issue).
 */
struct ReferenceSummary
{
    bool completed = false;
    Cycle endCycle = 0;
    std::vector<Cycle> interesting;
};

/** Run @p test failure-free on @p variant for at most @p maxCycles. */
ReferenceSummary runReference(const LitmusTest &test,
                              SystemVariant variant, Cycle maxCycles);

/**
 * Sample @p schedules crash cycles in [1, ref.endCycle]: half jittered
 * around the auditor-reported hot cycles, half uniform. @p seed is
 * used as-is — callers mix in any per-test identity themselves.
 */
std::vector<Cycle> biasedCrashSchedule(const ReferenceSummary &ref,
                                       unsigned schedules,
                                       std::uint64_t seed);

/** What one injected crash exposed: the cut and the observed NVM. */
struct CrashObservation
{
    PersistModel::StoreCut cut;
    PersistModel::Outcome outcome;
};

/**
 * Run @p test on @p variant, power-fail at @p cycle, recover where
 * the variant supports it, and read back the observed addresses.
 */
CrashObservation crashObserve(const LitmusTest &test,
                              SystemVariant variant, Cycle cycle);

/** How crash points are chosen. */
enum class ExploreMode : std::uint8_t
{
    Exhaustive, ///< every cycle of the reference run
    Randomized, ///< auditor-biased random sampling
};

/** Engine options for one test run. */
struct LitmusOptions
{
    SystemVariant variant = SystemVariant::Ppa;
    ExploreMode mode = ExploreMode::Exhaustive;
    /** Randomized mode: number of crash points to sample. */
    unsigned schedules = 64;
    /** Randomized mode: RNG seed. */
    std::uint64_t seed = 1;
    /** Safety cap on the reference run length in cycles. */
    Cycle maxCycles = 200'000;
    /** Exhaustive mode refuses runs longer than this many cycles. */
    Cycle exhaustiveCap = 20'000;
};

/** One offending crash observation, kept for reporting. */
struct LitmusSample
{
    Cycle cycle = 0;
    /** Committed stores per thread at the crash. */
    std::vector<std::uint64_t> cut;
    std::vector<Word> outcome;
    std::string detail;
};

/** Conformance verdict of one (test, variant, mode) run. */
struct LitmusResult
{
    std::string test;
    SystemVariant variant = SystemVariant::Ppa;
    PersistFlavor flavor = PersistFlavor::Strict;
    ExploreMode mode = ExploreMode::Exhaustive;

    std::uint64_t crashPoints = 0;
    /** Outcomes the variant's own flavor forbids at their cut. */
    std::uint64_t violations = 0;
    /** Outcomes the Strict (PPA) flavor forbids at their cut. */
    std::uint64_t strictDivergences = 0;
    /** Required outcomes never observed. */
    std::uint64_t vacuous = 0;
    std::uint64_t requiredTotal = 0;
    std::uint64_t requiredSeen = 0;
    /** Distinct outcomes observed across all crash points. */
    std::uint64_t distinctOutcomes = 0;

    /** Whether vacuity counts against pass() for this run. */
    bool coverageRequired = false;
    /** The test/corpus itself is unusable (racy, non-halting, ...). */
    bool corpusError = false;

    std::vector<LitmusSample> samples; ///< capped offending crashes
    std::vector<std::string> notes;

    bool
    pass() const
    {
        return !corpusError && violations == 0 &&
               (!coverageRequired || vacuous == 0);
    }
};

/** Run one litmus test under @p opts. */
LitmusResult runLitmusTest(const LitmusTest &test,
                           const LitmusOptions &opts);

/** Serialize results of one engine invocation as a JSON document. */
std::string litmusResultsJson(const std::vector<LitmusResult> &results,
                              const LitmusOptions &opts);

} // namespace check
} // namespace ppa

#endif // PPA_CHECK_LITMUS_HH
