#include "check/auditor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "ppa/checkpoint.hh"
#include "ppa/csq.hh"

namespace ppa
{
namespace check
{

std::string
AuditContext::describe() const
{
    return detail::composeMessage("audit core ", core, " cycle ", cycle,
                                  " region ", region);
}

Auditor::Auditor(Core &audited_core, MemHierarchy &mem,
                 std::shared_ptr<StoreOracle> oracle)
    : core(audited_core), memory(mem), shared(std::move(oracle))
{
    PPA_ASSERT(shared != nullptr, "auditor needs a store oracle");
    ctx.core = core.id();
}

void
Auditor::attach()
{
    core.attachAuditObserver(this);
    memory.writeBuffer(core.id()).setObserver(this);
}

void
Auditor::violation(const std::string &what)
{
    ++violationsSeen;
    PPA_AUDIT_ASSERT(!failFast, ctx, what);
    if (recorded.size() < maxRecorded)
        recorded.push_back({ctx, what});
}

void
Auditor::resetRegionShadow()
{
    regionStores.clear();
    liveRegs.clear();
    maskedRegs.clear();
    regionValues.clear();
    havePendingStore = false;
    pendingCsqPushSeen = false;
}

// ---------------------------------------------------------------------
// Core events
// ---------------------------------------------------------------------

void
Auditor::onCycle(Cycle cycle)
{
    ctx.cycle = cycle;
}

void
Auditor::onCommit(std::uint64_t stream_index, bool is_store)
{
    ++events;
    (void)is_store;
    if (haveLastIndex && stream_index <= lastStreamIndex) {
        violation(detail::composeMessage(
            "commit order violated: stream index ", stream_index,
            " after ", lastStreamIndex));
    }
    lastStreamIndex = stream_index;
    haveLastIndex = true;
    if (havePendingStore) {
        violation(detail::composeMessage(
            "store to 0x", std::hex, pendingStore.addr, std::dec,
            " committed without a CSQ record"));
        havePendingStore = false;
    }
}

void
Auditor::onStoreCommit(Addr addr, Word value, unsigned global_data_reg,
                       bool carries_value, bool to_io_buffer)
{
    ++events;
    if (to_io_buffer)
        return; // battery-backed device window: outside CSQ/NVM scope
    if (havePendingStore) {
        violation(detail::composeMessage(
            "store to 0x", std::hex, pendingStore.addr, std::dec,
            " committed without a CSQ record"));
    }
    pendingStore = {addr, value, global_data_reg, carries_value};
    havePendingStore = core.params().mode == PersistMode::Ppa;
    shared->record(ctx.core, MemImage::wordAlign(addr), value);
    regionValues[MemImage::wordAlign(addr)] = value;
}

void
Auditor::onAtomicCommit(Addr addr, Word value)
{
    ++events;
    // The RMW's region boundary already completed; its write persists
    // synchronously and never enters the CSQ.
    shared->record(ctx.core, MemImage::wordAlign(addr), value);
}

void
Auditor::onRegFree(unsigned global_reg)
{
    ++events;
    if (inBoundary)
        return; // deferred reclamation at the boundary is the point
    auto it = liveRegs.find(global_reg);
    if ((it != liveRegs.end() && it->second > 0) ||
        maskedRegs.count(global_reg)) {
        violation(detail::composeMessage(
            "store integrity: phys reg ", global_reg,
            " freed while pinned by the current region's CSQ"));
    }
}

void
Auditor::onRegWrite(unsigned global_reg)
{
    ++events;
    auto it = liveRegs.find(global_reg);
    if (it != liveRegs.end() && it->second > 0) {
        violation(detail::composeMessage(
            "store integrity: phys reg ", global_reg,
            " overwritten while referenced by the CSQ"));
    }
}

// ---------------------------------------------------------------------
// CSQ / MaskReg events
// ---------------------------------------------------------------------

void
Auditor::onCsqPush(const CsqEntry &entry)
{
    ++events;
    if (!havePendingStore) {
        violation("CSQ push without a committing store");
        return;
    }
    havePendingStore = false;
    if (entry.addr != pendingStore.addr ||
        entry.carriesValue != pendingStore.carriesValue) {
        violation(detail::composeMessage(
            "CSQ entry mismatches the committing store: entry addr 0x",
            std::hex, entry.addr, " vs store addr 0x",
            pendingStore.addr, std::dec));
    } else if (entry.carriesValue && entry.value != pendingStore.value) {
        violation(detail::composeMessage(
            "CSQ inline value ", entry.value,
            " mismatches the committed store value ",
            pendingStore.value));
    } else if (!entry.carriesValue &&
               entry.physRegIndex != pendingStore.globalReg) {
        violation(detail::composeMessage(
            "CSQ entry register ", entry.physRegIndex,
            " mismatches the store's data register ",
            pendingStore.globalReg));
    }
    regionStores.push_back(pendingStore);
    if (!pendingStore.carriesValue &&
        pendingStore.globalReg != csqZeroRegIndex) {
        ++liveRegs[pendingStore.globalReg];
        pendingCsqPushSeen = true; // expect the matching mask next
    }
    if (core.csqRef().size() != regionStores.size()) {
        violation(detail::composeMessage(
            "CSQ occupancy ", core.csqRef().size(),
            " diverged from the audited commit stream (",
            regionStores.size(), " stores this region)"));
    }
}

void
Auditor::onCsqClear(std::size_t entries)
{
    ++events;
    if (!inBoundary)
        violation("CSQ cleared outside a region boundary");
    if (entries != regionStores.size()) {
        violation(detail::composeMessage(
            "CSQ cleared ", entries, " entries but the region committed ",
            regionStores.size(), " stores"));
    }
}

void
Auditor::onMaskSet(unsigned global_reg)
{
    ++events;
    if (!pendingCsqPushSeen) {
        violation(detail::composeMessage(
            "MaskReg bit ", global_reg,
            " set outside a committing store's bookkeeping"));
        return;
    }
    pendingCsqPushSeen = false;
    const ShadowStore &last = regionStores.back();
    if (global_reg != last.globalReg) {
        violation(detail::composeMessage(
            "masked reg ", global_reg,
            " is not the committing store's data register ",
            last.globalReg));
    }
    maskedRegs.emplace(global_reg, true);
}

void
Auditor::onMaskClearAll(std::size_t masked)
{
    ++events;
    if (!inBoundary)
        violation("MaskReg cleared outside a region boundary");
    if (masked != maskedRegs.size()) {
        violation(detail::composeMessage(
            "MaskReg cleared ", masked, " bits but the shadow holds ",
            maskedRegs.size()));
    }
}

// ---------------------------------------------------------------------
// Region boundary
// ---------------------------------------------------------------------

void
Auditor::checkBoundaryInvariants()
{
    if (havePendingStore || pendingCsqPushSeen) {
        violation("region boundary reached with an incomplete "
                  "store-commit event sequence");
    }

    // (1) Persist-barrier condition: every persist op of the region
    // must have entered the WPQ (the L1D counter reads zero).
    if (wbOutstanding != 0) {
        violation(detail::composeMessage(
            "region boundary with ", wbOutstanding,
            " store persists not yet accepted by the WPQ"));
    }

    // (2) Mask/CSQ consistency: the masked set and the CSQ-referenced
    // set must coincide, in the shadow and in the real structures.
    for (const auto &[reg, count] : liveRegs) {
        if (count > 0 && !maskedRegs.count(reg)) {
            violation(detail::composeMessage(
                "CSQ references phys reg ", reg,
                " that is not masked at the boundary"));
        }
    }
    for (const auto &[reg, set] : maskedRegs) {
        (void)set;
        auto it = liveRegs.find(reg);
        if (it == liveRegs.end() || it->second == 0) {
            violation(detail::composeMessage(
                "masked phys reg ", reg,
                " is not referenced by any CSQ entry"));
        }
    }
    if (core.csqRef().size() != regionStores.size()) {
        violation(detail::composeMessage(
            "boundary CSQ occupancy ", core.csqRef().size(),
            " != audited region store count ", regionStores.size()));
    }
    if (core.maskRegRef().maskedCount() != maskedRegs.size()) {
        violation(detail::composeMessage(
            "boundary MaskReg population ",
            core.maskRegRef().maskedCount(), " != audited mask count ",
            maskedRegs.size()));
    }

    // (3) Value-exact persistence: every address the region stored
    // must read back its committed value from the NVM image (skipping
    // addresses another core wrote since — no single expected value).
    for (const auto &[addr, value] : regionValues) {
        (void)value;
        auto it = shared->contents().find(addr);
        if (it == shared->contents().end())
            continue;
        const StoreOracle::Rec &rec = it->second;
        if (rec.conflicted || rec.core != ctx.core)
            continue;
        Word persisted = memory.nvmImage().read(addr);
        if (persisted != rec.value) {
            violation(detail::composeMessage(
                "persisted value 0x", std::hex, persisted,
                " at address 0x", addr,
                " mismatches the committed value 0x", rec.value,
                std::dec, " at the region boundary"));
        }
    }
}

void
Auditor::onRegionBoundaryStart(RegionEndCause cause)
{
    ++events;
    (void)cause;
    checkBoundaryInvariants();
    inBoundary = true;
}

void
Auditor::onRegionBoundaryComplete()
{
    ++events;
    PPA_AUDIT_ASSERT(inBoundary, ctx,
                     "boundary completion without a boundary start");
    if (!core.csqRef().empty())
        violation("CSQ not empty after the region boundary");
    if (!core.maskRegRef().empty())
        violation("MaskReg not empty after the region boundary");
    resetRegionShadow();
    inBoundary = false;
    ++ctx.region;
}

// ---------------------------------------------------------------------
// Write buffer events
// ---------------------------------------------------------------------

void
Auditor::onPersistEnqueue(Addr addr, Word value, bool coalesced)
{
    ++events;
    (void)addr;
    (void)value;
    (void)coalesced;
    ++wbOutstanding;
}

void
Auditor::onPersistIssue(Addr line_addr, unsigned store_count)
{
    ++events;
    (void)line_addr;
    PPA_AUDIT_ASSERT(store_count <= wbOutstanding, ctx,
                     "write buffer issued ", store_count,
                     " stores with only ", wbOutstanding,
                     " outstanding");
    wbOutstanding -= store_count;
}

// ---------------------------------------------------------------------
// Checkpoint / recovery
// ---------------------------------------------------------------------

void
Auditor::auditCheckpointImage(const CheckpointImage &image)
{
    if (!image.valid) {
        violation("power failure captured an invalid checkpoint image");
        return;
    }
    if (image.anyCommitted != haveLastIndex ||
        (haveLastIndex && image.lcpc != lastStreamIndex)) {
        violation(detail::composeMessage(
            "checkpoint LCPC ", image.lcpc,
            " mismatches the last committed stream index ",
            lastStreamIndex));
    }
    if (image.csq.size() != regionStores.size()) {
        violation(detail::composeMessage(
            "checkpoint CSQ holds ", image.csq.size(),
            " entries; the current region committed ",
            regionStores.size(), " stores"));
        return;
    }
    if (image.maskBits.count() != maskedRegs.size()) {
        violation(detail::composeMessage(
            "checkpoint MaskReg population ", image.maskBits.count(),
            " != audited mask count ", maskedRegs.size()));
    }
    for (std::size_t i = 0; i < image.csq.size(); ++i) {
        const CsqEntry &entry = image.csq[i];
        const ShadowStore &shadow = regionStores[i];
        if (entry.addr != shadow.addr ||
            entry.carriesValue != shadow.carriesValue ||
            (!entry.carriesValue &&
             entry.physRegIndex != shadow.globalReg)) {
            violation(detail::composeMessage(
                "checkpoint CSQ entry ", i,
                " mismatches the audited commit order"));
            continue;
        }
        // Store integrity, materialized: the checkpoint must carry the
        // exact committed value for every register-carried entry.
        if (entry.carriesValue) {
            if (entry.value != shadow.value) {
                violation(detail::composeMessage(
                    "checkpoint CSQ entry ", i, " inline value ",
                    entry.value, " != committed value ", shadow.value));
            }
            continue;
        }
        if (entry.physRegIndex == csqZeroRegIndex) {
            if (shadow.value != 0) {
                violation(detail::composeMessage(
                    "checkpoint CSQ entry ", i,
                    " claims an architectural zero for committed value ",
                    shadow.value));
            }
            continue;
        }
        if (!image.maskBits.test(entry.physRegIndex)) {
            violation(detail::composeMessage(
                "checkpointed CSQ entry ", i, " references phys reg ",
                entry.physRegIndex, " that is not masked"));
        }
        auto it = image.physRegValues.find(entry.physRegIndex);
        if (it == image.physRegValues.end()) {
            violation(detail::composeMessage(
                "checkpoint lacks the value of CSQ-referenced phys "
                "reg ",
                entry.physRegIndex));
        } else if (it->second != shadow.value) {
            violation(detail::composeMessage(
                "store integrity lost before the checkpoint: phys "
                "reg ",
                entry.physRegIndex, " holds 0x", std::hex, it->second,
                ", store committed 0x", shadow.value, std::dec));
        }
    }
}

void
Auditor::onPowerFail(const CheckpointImage &image)
{
    ++events;
    auditCheckpointImage(image);
}

void
Auditor::resyncFromImage(const CheckpointImage &image)
{
    resetRegionShadow();
    inBoundary = false;
    wbOutstanding = 0;
    haveLastIndex = image.anyCommitted;
    lastStreamIndex = image.lcpc;
    image.maskBits.forEachSet([&](std::size_t g) {
        maskedRegs.emplace(static_cast<unsigned>(g), true);
    });
    for (const CsqEntry &entry : image.csq) {
        ShadowStore s;
        s.addr = entry.addr;
        s.carriesValue = entry.carriesValue;
        s.globalReg = entry.physRegIndex;
        if (entry.carriesValue) {
            s.value = entry.value;
        } else if (entry.physRegIndex == csqZeroRegIndex) {
            s.value = 0;
        } else {
            auto it = image.physRegValues.find(entry.physRegIndex);
            s.value = it == image.physRegValues.end() ? 0 : it->second;
            ++liveRegs[entry.physRegIndex];
        }
        regionStores.push_back(s);
        regionValues[MemImage::wordAlign(s.addr)] = s.value;
    }
}

void
Auditor::onRecover(const CheckpointImage &image)
{
    ++events;
    resyncFromImage(image);
}

ReplayAuditResult
Auditor::verifyReplay() const
{
    ReplayAuditResult res;
    for (const auto &[addr, rec] : shared->contents()) {
        if (rec.conflicted || rec.core != ctx.core)
            continue;
        ++res.addrsChecked;
        Word replayed = memory.nvmImage().read(addr);
        if (replayed != rec.value) {
            ++res.mismatches;
            if (res.mismatchedAddrs.size() < 16)
                res.mismatchedAddrs.push_back(addr);
        }
    }
    return res;
}

} // namespace check
} // namespace ppa
