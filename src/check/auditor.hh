/**
 * @file
 * Persistence-invariant auditor (opt-in, read-only instrumentation).
 *
 * The Auditor implements every check::* observer interface and mirrors
 * the commit/persist pipeline of one core in shadow state of its own.
 * Each event is validated against the invariants PPA's crash
 * consistency rests on:
 *
 *  - store integrity (paper Section 4): a physical register referenced
 *    by a CSQ entry of the current region is masked, is never freed,
 *    and is never overwritten until the region's stores are
 *    acknowledged persistent;
 *  - commit-order CSQ drain (Section 4.4, x86-TSO persistency): CSQ
 *    entries are appended in commit order, one per committed store,
 *    and only drop wholesale at a region boundary whose persist
 *    barrier has seen the write buffer drain;
 *  - region-boundary consistency (Sections 4.2/4.3): at a boundary the
 *    masked-register set equals the CSQ-referenced set, the write
 *    buffer holds no un-issued persist, and the NVM image matches the
 *    committed values of every address the region stored;
 *  - JIT checkpoint/replay equivalence (Sections 4.5/4.6, 7.13): a
 *    checkpoint image taken at any cycle carries exactly the current
 *    region's stores with their committed values, and replaying it
 *    reproduces the committed memory image.
 *
 * Violations are recorded (with cycle/region context) rather than
 * thrown, so a sweep can aggregate them; failFast mode upgrades them
 * to PPA_AUDIT_ASSERT panics for pinpoint debugging. Internal
 * event-protocol inconsistencies (impossible orderings that indicate
 * broken hook wiring, not a broken simulator) always panic.
 */

#ifndef PPA_CHECK_AUDITOR_HH
#define PPA_CHECK_AUDITOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/observer.hh"
#include "common/types.hh"

namespace ppa
{

class Core;
class MemHierarchy;

namespace check
{

/** Where the auditor currently is; PPA_AUDIT_ASSERT prints this. */
struct AuditContext
{
    unsigned core = 0;
    Cycle cycle = 0;
    std::uint64_t region = 0;

    std::string describe() const;
};

/** One recorded invariant violation. */
struct AuditViolation
{
    AuditContext where;
    std::string what;
};

/**
 * Shared across the auditors of one system: the last committed value
 * of every persistent address, with its writing core. Addresses
 * written by more than one core are flagged and excluded from
 * image diffs (the audit targets DRF programs; cross-core conflicts
 * have no single expected persist value).
 */
class StoreOracle
{
  public:
    struct Rec
    {
        unsigned core = 0;
        Word value = 0;
        bool conflicted = false;
    };

    void
    record(unsigned core, Addr addr, Word value)
    {
        auto [it, inserted] = map.try_emplace(addr, Rec{core, value});
        if (!inserted) {
            if (it->second.core != core)
                it->second.conflicted = true;
            it->second.core = core;
            it->second.value = value;
        }
    }

    const std::unordered_map<Addr, Rec> &contents() const { return map; }

  private:
    std::unordered_map<Addr, Rec> map;
};

/** Outcome of a replay-equivalence check after recovery. */
struct ReplayAuditResult
{
    /** Addresses whose replayed NVM value diverged (capped sample). */
    std::vector<Addr> mismatchedAddrs;
    std::uint64_t mismatches = 0;
    std::uint64_t addrsChecked = 0;

    bool ok() const { return mismatches == 0; }
};

/**
 * The per-core invariant auditor. Construct one per core, attach, and
 * read violations()/counters at the end of the run.
 */
class Auditor : public PipelineObserver
{
  public:
    /**
     * @param core   the audited core (used for read-only cross-checks
     *               of the real CSQ/MaskReg against the shadow state)
     * @param memory the hierarchy (NVM image reads at boundaries)
     * @param oracle committed-store oracle shared among the system's
     *               auditors (one per system; may be shared by one)
     */
    Auditor(Core &core, MemHierarchy &memory,
            std::shared_ptr<StoreOracle> oracle);

    /**
     * Hook this auditor into its core's commit pipeline, CSQ, MaskReg,
     * and write buffer. Call again after MemHierarchy::powerFail(),
     * which reconstructs the write buffers (Core re-attachment is
     * idempotent).
     */
    void attach();

    /** Fail hard (PPA_AUDIT_ASSERT) on the first violation. */
    void setFailFast(bool on) { failFast = on; }

    /**
     * Diff the post-recovery NVM image against the committed-store
     * oracle for every address owned by this core. Call immediately
     * after System::recover(); at that point every completed region
     * has persisted and the CSQ replay has re-written the current
     * region, so each owned address must read back its last committed
     * value exactly.
     */
    ReplayAuditResult verifyReplay() const;

    // ---- results ------------------------------------------------------
    const std::vector<AuditViolation> &violations() const
    {
        return recorded;
    }
    std::uint64_t violationCount() const { return violationsSeen; }
    std::uint64_t eventCount() const { return events; }
    std::uint64_t regionsAudited() const { return ctx.region; }
    const AuditContext &context() const { return ctx; }
    const StoreOracle &oracle() const { return *shared; }

    // ---- CoreObserver -------------------------------------------------
    void onCycle(Cycle cycle) override;
    void onCommit(std::uint64_t stream_index, bool is_store) override;
    void onStoreCommit(Addr addr, Word value, unsigned global_data_reg,
                       bool carries_value, bool to_io_buffer) override;
    void onAtomicCommit(Addr addr, Word value) override;
    void onRegFree(unsigned global_reg) override;
    void onRegWrite(unsigned global_reg) override;
    void onRegionBoundaryStart(RegionEndCause cause) override;
    void onRegionBoundaryComplete() override;
    void onPowerFail(const CheckpointImage &image) override;
    void onRecover(const CheckpointImage &image) override;

    // ---- CsqObserver --------------------------------------------------
    void onCsqPush(const CsqEntry &entry) override;
    void onCsqClear(std::size_t entries) override;

    // ---- MaskRegObserver ----------------------------------------------
    void onMaskSet(unsigned global_reg) override;
    void onMaskClearAll(std::size_t masked) override;

    // ---- WriteBufferObserver ------------------------------------------
    void onPersistEnqueue(Addr addr, Word value, bool coalesced) override;
    void onPersistIssue(Addr line_addr, unsigned store_count) override;

  private:
    /** Shadow of one committed store of the current region. */
    struct ShadowStore
    {
        Addr addr = 0;
        Word value = 0;
        unsigned globalReg = 0; ///< csqZeroRegIndex when value-carried
        bool carriesValue = false;
    };

    void violation(const std::string &what);
    void checkBoundaryInvariants();
    void resetRegionShadow();
    void auditCheckpointImage(const CheckpointImage &image);
    /** Rebuild the region shadow from a restored checkpoint image. */
    void resyncFromImage(const CheckpointImage &image);

    Core &core;
    MemHierarchy &memory;
    std::shared_ptr<StoreOracle> shared;

    AuditContext ctx;
    bool failFast = false;

    // Region shadow state (cleared at every boundary).
    std::vector<ShadowStore> regionStores;
    /** Reference counts of CSQ-referenced global registers. */
    std::unordered_map<unsigned, unsigned> liveRegs;
    /** Global registers currently masked (mirror of MaskReg). */
    std::unordered_map<unsigned, bool> maskedRegs;
    /** Latest committed value per address stored this region. */
    std::unordered_map<Addr, Word> regionValues;

    // Event-pairing state.
    bool havePendingStore = false;
    ShadowStore pendingStore;
    bool pendingCsqPushSeen = false;
    bool inBoundary = false;

    // Commit-order tracking.
    bool haveLastIndex = false;
    std::uint64_t lastStreamIndex = 0;

    // Write-buffer mirror (un-issued persist stores).
    std::uint64_t wbOutstanding = 0;

    // Counters.
    std::uint64_t events = 0;
    std::uint64_t violationsSeen = 0;
    std::vector<AuditViolation> recorded;

    static constexpr std::size_t maxRecorded = 64;
};

} // namespace check
} // namespace ppa

#endif // PPA_CHECK_AUDITOR_HH
