/**
 * @file
 * Declarative persistency model over static litmus programs.
 *
 * This layer answers "what post-crash NVM states does the persistency
 * semantics *allow*?" from the program text alone — it performs no
 * simulation (the library ppa_check_model links only against ppa_isa
 * and ppa_common, which makes the claim compile-checked). A
 * PersistModel statically analyzes one isa::Program per thread,
 * extracting every store on the committed path with its value, its
 * per-thread program-order position, its persist epoch (the count of
 * preceding synchronization points: Fence and AtomicRmw, the ops that
 * end PPA regions), and a vector clock. From those it derives the
 * persist-before constraint graph and decides, for any crash cut and
 * any candidate outcome, whether the outcome is allowed.
 *
 * Three model flavors cover the repo's system variants
 * (docs/CHECKING.md "Persistency model and litmus tests"):
 *
 *  - Strict: whole-system persistence (PPA). The post-crash state at
 *    a cut is exactly the committed memory state at that cut — every
 *    committed store persists, none may be lost or reordered.
 *  - Epoch: epoch persistency (ReplayCache-style software WSP).
 *    Stores separated by a synchronization point persist in epoch
 *    order; stores within one epoch may persist in any subset.
 *  - Relaxed: no persistency guarantees (memory-mode / volatile
 *    baselines). Per address, NVM may hold the initial value or any
 *    committed value (cache eviction persists at arbitrary times);
 *    there is no cross-address ordering at all.
 *
 * The allowed-outcome decision is the classic persist-set
 * formulation: an outcome is allowed at a cut iff there exists a set
 * P of committed stores, downward-closed under persist-before, whose
 * per-address maxima produce exactly the observed values. Strict
 * additionally requires P to contain every committed store.
 *
 * Cross-thread ordering is carried by vector clocks. Static analysis
 * cannot witness runtime communication, so two stores from different
 * threads have incomparable clocks and are never persist-ordered —
 * the conservative union of all interleavings. What the analysis
 * *can* decide statically is whether that conservatism is sound: if
 * two threads write (or one writes and another reads) the same
 * address, the per-thread functional execution no longer predicts
 * values, and the program is reported as racy rather than analyzed
 * incorrectly. Litmus programs must be data-race-free with disjoint
 * write sets; the racyAddresses() / crossThreadReads() diagnostics
 * enforce that.
 */

#ifndef PPA_CHECK_MODEL_HH
#define PPA_CHECK_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"
#include "mem/mem_image.hh"

namespace ppa
{
namespace check
{

/** Which persistency guarantees a system variant promises. */
enum class PersistFlavor : std::uint8_t
{
    Strict,  ///< every committed store is persistent (PPA)
    Epoch,   ///< epoch-ordered persists (software WSP baselines)
    Relaxed, ///< per-address best effort only (volatile baselines)
};

/** Human-readable flavor name ("strict", "epoch", "relaxed"). */
const char *flavorName(PersistFlavor flavor);

/**
 * Per-thread logical time. Component t counts thread t's stores that
 * happen-before the clock's owner. Static analysis establishes no
 * cross-thread synchronization edges, so clocks from different
 * threads are incomparable and leq() reduces to per-thread program
 * order — exactly the conservative constraint graph the model wants.
 */
struct VectorClock
{
    std::vector<std::uint64_t> c;

    /** Pointwise <=: this clock happens-before-or-equals @p other. */
    bool
    leq(const VectorClock &other) const
    {
        for (std::size_t t = 0; t < c.size(); ++t)
            if (c[t] > other.c[t])
                return false;
        return true;
    }
};

/** One store on a thread's committed path, with model metadata. */
struct ModelStore
{
    unsigned thread = 0;
    /** Store sequence number within the thread (0-based). */
    std::uint64_t seq = 0;
    /** Committed-path instruction index of the store. */
    std::uint64_t instIndex = 0;
    Addr addr = 0;
    Word value = 0;
    /** Persist epoch: synchronization points preceding this store. */
    std::uint64_t epoch = 0;
    /** AtomicRmw: a synchronization point that is itself a store. */
    bool sync = false;
    /** Program-order clock immediately after this store. */
    VectorClock clock;
};

/**
 * The declarative persistency model of one multi-threaded litmus
 * program. Construction runs each thread's Program functionally
 * (architectural semantics only — no pipeline, no memory hierarchy)
 * to extract the committed store sequences; every query below is
 * answered from that static summary.
 */
class PersistModel
{
  public:
    /** Per-thread committed-store counts describing a crash cut. */
    using StoreCut = std::vector<std::uint64_t>;

    /** Values of the observed addresses, in observation order. */
    using Outcome = std::vector<Word>;

    /** @param threads one committed-path program per thread */
    explicit PersistModel(const std::vector<const Program *> &threads);

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threadStores.size());
    }

    /** Thread @p t's stores in program order. */
    const std::vector<ModelStore> &
    stores(unsigned t) const
    {
        return threadStores[t];
    }

    std::uint64_t
    storeCount(unsigned t) const
    {
        return threadStores[t].size();
    }

    /** Total stores over all threads. */
    std::uint64_t totalStores() const;

    /** Committed-path instruction count of thread @p t. */
    std::uint64_t threadInstCount(unsigned t) const
    {
        return threadInsts[t];
    }

    /** Merged initial memory value of the word containing @p addr. */
    Word initialValue(Addr addr) const;

    /**
     * Addresses written by more than one thread. Non-empty means the
     * program is outside the model's sound fragment.
     */
    const std::vector<Addr> &racyAddresses() const { return racyAddrs; }

    /**
     * Addresses read by a thread other than their (unique) writer.
     * Cross-thread reads make per-thread functional values
     * unpredictable, so these are rejected too.
     */
    const std::vector<Addr> &
    crossThreadReads() const
    {
        return crossReadAddrs;
    }

    /**
     * Does @p a persist-before @p b under @p flavor? Requires a's
     * clock to happen-before b's (cross-thread pairs never qualify),
     * then applies the flavor's edge rule: Strict orders everything,
     * Epoch orders across epochs and per-address, Relaxed orders
     * per-address only.
     */
    bool persistBefore(PersistFlavor flavor, const ModelStore &a,
                       const ModelStore &b) const;

    /**
     * The exact committed memory state at @p cut projected onto
     * @p addrs — the one outcome Strict allows there.
     */
    Outcome committedState(const StoreCut &cut,
                           const std::vector<Addr> &addrs) const;

    /** Is @p outcome allowed at @p cut under @p flavor? */
    bool outcomeAllowed(PersistFlavor flavor, const StoreCut &cut,
                        const std::vector<Addr> &addrs,
                        const Outcome &outcome) const;

    /**
     * Every outcome allowed at @p cut under @p flavor, sorted and
     * deduplicated. Cost is the product of per-address candidate
     * value counts — fine for litmus-sized programs.
     */
    std::vector<Outcome>
    allowedOutcomes(PersistFlavor flavor, const StoreCut &cut,
                    const std::vector<Addr> &addrs) const;

    /**
     * Union of allowedOutcomes over every store cut: everything the
     * flavor allows some crash to expose. Enumerates the full
     * per-thread prefix product; litmus-sized only.
     */
    std::vector<Outcome>
    reachableOutcomes(PersistFlavor flavor,
                      const std::vector<Addr> &addrs) const;

    /** The cut covering every store of every thread. */
    StoreCut fullCut() const;

  private:
    /** Stores to @p addr included in @p cut, in persist order. */
    std::vector<const ModelStore *>
    includedStoresTo(Addr addr, const StoreCut &cut) const;

    /** All included stores at @p cut, any order. */
    std::vector<const ModelStore *>
    includedStores(const StoreCut &cut) const;

    std::vector<std::vector<ModelStore>> threadStores;
    std::vector<std::uint64_t> threadInsts;
    MemImage initial;
    std::vector<Addr> racyAddrs;
    std::vector<Addr> crossReadAddrs;
};

} // namespace check
} // namespace ppa

#endif // PPA_CHECK_MODEL_HH
