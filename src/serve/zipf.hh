/**
 * @file
 * Zipfian key-popularity generator for the serving harness
 * (docs/SERVING.md).
 *
 * YCSB-style rejection-free Zipfian sampling: the zeta normalization
 * constant is precomputed once per (n, theta), after which each draw
 * costs one uniform and a pow(). Rank 0 is the most popular item; the
 * request source scrambles ranks over the key space with a bijective
 * multiplicative mix so hot keys do not sit on adjacent cache lines.
 *
 * theta = 0 degenerates to the uniform distribution; theta = 1 (the
 * harmonic singularity of the closed form) is nudged by 1e-9, which
 * is far below any observable difference at realistic key counts.
 */

#ifndef PPA_SERVE_ZIPF_HH
#define PPA_SERVE_ZIPF_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ppa
{
namespace serve
{

/** Draws ranks in [0, n) with P(rank = k) proportional to
 *  1 / (k+1)^theta. Stateless after construction: all randomness
 *  comes from the caller's Rng, so streams snapshot/replay freely. */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta_in)
        : items(n), theta(theta_in)
    {
        PPA_ASSERT(n > 0, "zipf needs a non-empty key space");
        PPA_ASSERT(theta >= 0.0, "zipf skew must be non-negative");
        if (theta == 0.0)
            return; // uniform fast path; no zeta needed
        if (std::fabs(theta - 1.0) < 1e-9)
            theta = 1.0 - 1e-9;
        double zeta2 = 0.0;
        double zetan = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i) {
            zetan += 1.0 / std::pow(static_cast<double>(i), theta);
            if (i == 2)
                zeta2 = zetan;
        }
        if (n == 1)
            zeta2 = zetan;
        zetaN = zetan;
        alpha = 1.0 / (1.0 - theta);
        eta = (1.0 -
               std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
              (1.0 - zeta2 / zetan);
        halfPowTheta = std::pow(0.5, theta);
    }

    std::uint64_t size() const { return items; }
    double skew() const { return theta; }

    /** Draw one rank; 0 is the most popular. */
    std::uint64_t
    sample(Rng &rng) const
    {
        if (theta == 0.0)
            return rng.below(items);
        double u = rng.uniform();
        double uz = u * zetaN;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + halfPowTheta)
            return items > 1 ? 1 : 0;
        auto rank = static_cast<std::uint64_t>(
            static_cast<double>(items) *
            std::pow(eta * u - eta + 1.0, alpha));
        return rank >= items ? items - 1 : rank;
    }

  private:
    std::uint64_t items;
    double theta;
    double zetaN = 0.0;
    double alpha = 0.0;
    double eta = 0.0;
    double halfPowTheta = 0.0;
};

/**
 * Bijectively scramble @p rank over a power-of-two key space of
 * @p pow2_keys: multiplication by an odd constant is invertible mod
 * 2^k, so the popularity *distribution* is preserved while popular
 * keys scatter across the table instead of clustering at index 0.
 */
inline std::uint64_t
scrambleRank(std::uint64_t rank, std::uint64_t pow2_keys)
{
    PPA_ASSERT(pow2_keys && (pow2_keys & (pow2_keys - 1)) == 0,
               "scrambleRank needs a power-of-two key space");
    return (rank * 0x9E3779B97F4A7C15ull) & (pow2_keys - 1);
}

} // namespace serve
} // namespace ppa

#endif // PPA_SERVE_ZIPF_HH
