#include "serve/arrival.hh"

#include <cmath>

#include "common/logging.hh"

namespace ppa
{
namespace serve
{

const char *
arrivalToken(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
    }
    return "?";
}

bool
arrivalFromToken(const std::string &token, ArrivalKind &out)
{
    if (token == "poisson") {
        out = ArrivalKind::Poisson;
        return true;
    }
    if (token == "bursty") {
        out = ArrivalKind::Bursty;
        return true;
    }
    return false;
}

ArrivalProcess::ArrivalProcess(const ArrivalParams &params,
                               std::uint64_t seed)
    : cfg(params), rng(seed)
{
    PPA_ASSERT(cfg.meanGap > 0.0, "arrival mean gap must be positive");
    if (cfg.kind == ArrivalKind::Bursty) {
        PPA_ASSERT(cfg.period > 0.0, "burst period must be positive");
        PPA_ASSERT(cfg.onFraction > 0.0 && cfg.onFraction < 1.0,
                   "on-fraction must lie in (0, 1)");
        PPA_ASSERT(cfg.burstFactor > 0.0,
                   "burst factor must be positive");
        PPA_ASSERT(cfg.burstFactor * cfg.onFraction <= 1.0,
                   "burst factor times on-fraction must be <= 1 "
                   "(the off-period rate would be negative)");
        double base = 1.0 / cfg.meanGap;
        rateOn = base * cfg.burstFactor;
        rateOff = base * (1.0 - cfg.burstFactor * cfg.onFraction) /
                  (1.0 - cfg.onFraction);
    }
}

double
ArrivalProcess::rateAt(double t) const
{
    double phase = std::fmod(t, cfg.period);
    return phase < cfg.onFraction * cfg.period ? rateOn : rateOff;
}

double
ArrivalProcess::segmentEnd(double t) const
{
    double cycleStart = std::floor(t / cfg.period) * cfg.period;
    double onEnd = cycleStart + cfg.onFraction * cfg.period;
    return t < onEnd ? onEnd : cycleStart + cfg.period;
}

double
ArrivalProcess::next()
{
    double u = rng.uniform();
    if (u <= 0.0)
        u = 0x1.0p-53; // uniform() can return exactly 0
    double e = -std::log(u); // unit-rate exponential

    if (cfg.kind == ArrivalKind::Poisson) {
        now += e * cfg.meanGap;
        return now;
    }

    // Integrate the exponential over the piecewise-constant rate.
    for (;;) {
        double rate = rateAt(now);
        double end = segmentEnd(now);
        double capacity = rate * (end - now);
        if (rate > 0.0 && e <= capacity) {
            now += e / rate;
            return now;
        }
        e -= capacity;
        now = end;
    }
}

} // namespace serve
} // namespace ppa
