/**
 * @file
 * Log-bucketed latency histogram (HDR-histogram style).
 *
 * Request latencies span many orders of magnitude (a lightly loaded
 * server answers in hundreds of cycles; an overloaded open-loop queue
 * grows without bound), so the dense unit-bin stats::Histogram is the
 * wrong shape. This one uses log-linear buckets: values below
 * 2^subBits land in exact unit buckets, larger values in 2^subBits
 * sub-buckets per power of two — constant ~0.1% relative resolution
 * in ~1 KiB of state, deterministic, and mergeable.
 *
 * percentile() uses the same ceil-rank convention as
 * stats::Histogram::percentile and returns the bucket's lower bound
 * (a value <= the true order statistic, within one sub-bucket).
 */

#ifndef PPA_SERVE_LATENCY_HH
#define PPA_SERVE_LATENCY_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace ppa
{
namespace serve
{

class LogHistogram
{
  public:
    static constexpr unsigned subBits = 4;
    static constexpr std::uint64_t subBuckets = 1u << subBits;
    /** 64-bit values occupy groups 0..(64 - subBits); sized with
     *  headroom to a round power of two. */
    static constexpr std::size_t bucketCount = (64 - subBits + 1)
                                               << subBits;

    LogHistogram() : bins(bucketCount, 0) {}

    /** Bucket index of value @p v. */
    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < subBuckets)
            return static_cast<std::size_t>(v);
        unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
        unsigned shift = msb - subBits;
        return ((static_cast<std::size_t>(shift) + 1) << subBits) +
               static_cast<std::size_t>((v >> shift) &
                                        (subBuckets - 1));
    }

    /** Smallest value mapping to bucket @p idx. */
    static std::uint64_t
    bucketLo(std::size_t idx)
    {
        std::uint64_t group = idx >> subBits;
        std::uint64_t offset = idx & (subBuckets - 1);
        if (group == 0)
            return offset;
        return (subBuckets + offset) << (group - 1);
    }

    void
    sample(std::uint64_t v)
    {
        ++bins[bucketIndex(v)];
        ++n;
        sum += static_cast<double>(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    std::uint64_t count() const { return n; }
    std::uint64_t min() const { return n ? lo : 0; }
    std::uint64_t max() const { return n ? hi : 0; }
    double mean() const
    {
        return n ? sum / static_cast<double>(n) : 0.0;
    }

    /**
     * Lower bound of the bucket holding the ceil-rank order statistic
     * for @p frac in [0, 1] (see stats::Histogram::percentile for the
     * rounding rationale).
     */
    std::uint64_t
    percentile(double frac) const
    {
        if (n == 0)
            return 0;
        auto target = static_cast<std::uint64_t>(
            std::ceil(frac * static_cast<double>(n)));
        target = std::max<std::uint64_t>(target, 1);
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < bins.size(); ++i) {
            acc += bins[i];
            if (acc >= target)
                return bucketLo(i);
        }
        return bucketLo(bins.size() - 1);
    }

    void
    merge(const LogHistogram &other)
    {
        PPA_ASSERT(bins.size() == other.bins.size(),
                   "log-histogram size mismatch in merge");
        for (std::size_t i = 0; i < bins.size(); ++i)
            bins[i] += other.bins[i];
        n += other.n;
        sum += other.sum;
        if (other.n) {
            lo = std::min(lo, other.lo);
            hi = std::max(hi, other.hi);
        }
    }

    /** (bucket index, count) pairs for every non-empty bucket —
     *  the sparse serialization the serve JSON emits. */
    std::vector<std::pair<std::size_t, std::uint64_t>>
    nonZeroBuckets() const
    {
        std::vector<std::pair<std::size_t, std::uint64_t>> out;
        for (std::size_t i = 0; i < bins.size(); ++i) {
            if (bins[i])
                out.emplace_back(i, bins[i]);
        }
        return out;
    }

  private:
    std::vector<std::uint64_t> bins;
    std::uint64_t n = 0;
    double sum = 0.0;
    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
};

} // namespace serve
} // namespace ppa

#endif // PPA_SERVE_LATENCY_HH
