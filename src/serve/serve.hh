/**
 * @file
 * Open-loop transaction-serving study (docs/SERVING.md).
 *
 * runServeVariant() drives one system variant with per-core request
 * streams (serve/request_source.hh) and measures:
 *
 *  - per-request latency on the open-loop timeline: arrival times
 *    come from the stream's ArrivalProcess, service times from the
 *    simulated commit cycles of consecutive ack stores, and the two
 *    are combined with the Lindley recursion (start_i = max(arrival_i,
 *    finish_{i-1}), finish_i = start_i + service_i), which is exact
 *    for a FIFO single-server queue per core;
 *  - offered vs achieved throughput (requests per kilocycle);
 *  - under injected whole-system power failures at many deterministic
 *    points of the service timeline: the data-loss window (crash
 *    cycle minus completion cycle of the last *durable* request, read
 *    from the post-crash NVM image), lost-but-completed request
 *    counts, and a modeled software/hardware recovery time.
 *
 * Every run is a pure function of (config, variant); failure branches
 * execute on a host worker pool whose size never changes any result
 * (results are stored by branch index — the serial==parallel bitwise
 * contract the serve tests pin).
 */

#ifndef PPA_SERVE_SERVE_HH
#define PPA_SERVE_SERVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "serve/arrival.hh"
#include "serve/latency.hh"
#include "serve/request_source.hh"

namespace ppa
{
namespace serve
{

/** The durability schemes the serving study compares. */
enum class ServeVariant : std::uint8_t
{
    /** Whole-system persistence in hardware (the paper's design). */
    Ppa,
    /** Software undo/redo-logging transactions
     *  (baselines/durability.hh, UndoRedoLogTransform). */
    UndoRedoLog,
    /** Software flush-on-publish durable structures
     *  (baselines/durability.hh, DelayFreeTransform). */
    DelayFree,
};

/** CLI/serialization token ("ppa", "undo-redo-log", "delay-free"). */
const char *serveVariantToken(ServeVariant v);

/** Parse a serve-variant token; false for unknown tokens. */
bool serveVariantFromToken(const std::string &token, ServeVariant &out);

/** All serve variants, in comparison order. */
std::vector<ServeVariant> allServeVariants();

/** Configuration of one serving study (shared by all variants). */
struct ServeConfig
{
    ServeWorkload workload = ServeWorkload::Tatp;
    /** Total requests across all threads. */
    std::uint64_t requests = 1'000'000;
    unsigned threads = 2;
    /** Key-space size per thread; power of two. */
    std::uint64_t keys = 4096;
    /** Zipfian skew theta (0 = uniform). */
    double skew = 0.99;
    /** kv GET percentage, 0..100. */
    unsigned readPct = 50;
    ArrivalParams arrival;
    /** Injected power-failure points per variant (0 = skip). */
    unsigned failures = 8;
    std::uint64_t seed = 42;
    /** Host threads for failure branches; 0 = hardware. Scheduling
     *  metadata only — results are identical for any value. */
    unsigned workers = 0;
    /** Collect obs::Telemetry (and request spans) on the
     *  measurement run. */
    bool telemetry = false;
    std::uint64_t telemetrySampleCycles = 256;
    std::uint64_t telemetrySeriesCap = 1024;
};

/** One injected power failure and what it cost. */
struct FailurePoint
{
    Cycle cycle = 0;          ///< crash cycle (service timeline)
    Cycle recoveryCycles = 0; ///< modeled recovery time
    /** Span from the first lost request's completion to the crash —
     *  how far back acknowledged work can disappear; 0 when every
     *  completed request survived. Max over threads. */
    Cycle lossWindow = 0;
    std::uint64_t completedRequests = 0; ///< acked by the crash
    std::uint64_t durableRequests = 0;   ///< survive the crash
    std::uint64_t lostRequests = 0;      ///< completed - durable
};

/** Results for one variant of the study. */
struct ServeVariantStats
{
    ServeVariant variant = ServeVariant::Ppa;
    std::uint64_t requests = 0;  ///< configured
    std::uint64_t completed = 0; ///< acks committed
    /** Last ack commit cycle (the service timeline's length). */
    Cycle serviceCycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedStores = 0;
    /** Configured arrival rate, requests per 1000 cycles. */
    double offeredPerKcycle = 0.0;
    /** Completed / open-loop makespan, requests per 1000 cycles. */
    double achievedPerKcycle = 0.0;
    /** Open-loop request latency, cycles (all threads merged). */
    LogHistogram latency;
    /** Instructions the durability transform injected (0 for ppa). */
    std::uint64_t injectedClwbs = 0;
    std::uint64_t injectedFences = 0;
    std::uint64_t injectedLogStores = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmBytesWritten = 0;
    std::vector<FailurePoint> failures;
    /** Populated when ServeConfig::telemetry is set. */
    obs::TelemetryResult telemetry;
};

/** A whole study: the shared config plus one entry per variant. */
struct ServeStats
{
    ServeConfig config;
    std::vector<ServeVariantStats> variants;
};

/** Run one variant of the study. */
ServeVariantStats runServeVariant(const ServeConfig &config,
                                  ServeVariant variant);

/** Run the study for @p variants (in order). */
ServeStats runServeStudy(const ServeConfig &config,
                         const std::vector<ServeVariant> &variants);

/** Serialize a study as a schema-v1 JSON document (kind "serve");
 *  per-variant metrics live under each variant's `stats.serve`. */
std::string serveToJson(const ServeStats &stats);

} // namespace serve
} // namespace ppa

#endif // PPA_SERVE_SERVE_HH
