#include "serve/request_source.hh"

#include "common/logging.hh"
#include "isa/semantics.hh"

namespace ppa
{
namespace serve
{

namespace
{

// Register conventions inside a request block. Blocks are
// self-contained: every register is defined by a movi before use, so
// consecutive requests carry no register dependencies between them.
constexpr ArchReg rKey = 2;
constexpr ArchReg rAddr = 1;
constexpr ArchReg rTmp0 = 3;
constexpr ArchReg rTmp1 = 4;
constexpr ArchReg rTmp2 = 5;
constexpr ArchReg rTmp3 = 6;
constexpr ArchReg rTmp4 = 7;
constexpr ArchReg rVal = 8;
constexpr ArchReg rFold = 9;
constexpr ArchReg rSeq = 10;
constexpr ArchReg rAck = 11;

} // namespace

const char *
serveWorkloadToken(ServeWorkload w)
{
    switch (w) {
      case ServeWorkload::Tatp:
        return "tatp";
      case ServeWorkload::Tpcc:
        return "tpcc";
      case ServeWorkload::Kv:
        return "kv";
    }
    return "?";
}

bool
serveWorkloadFromToken(const std::string &token, ServeWorkload &out)
{
    if (token == "tatp") {
        out = ServeWorkload::Tatp;
        return true;
    }
    if (token == "tpcc") {
        out = ServeWorkload::Tpcc;
        return true;
    }
    if (token == "kv") {
        out = ServeWorkload::Kv;
        return true;
    }
    return false;
}

RequestSource::RequestSource(const RequestStreamConfig &config)
    : cfg(config), zipf(config.keys, config.skew), rng(config.seed)
{
    PPA_ASSERT(cfg.keys && (cfg.keys & (cfg.keys - 1)) == 0,
               "serve key space must be a power of two, got ",
               cfg.keys);
    PPA_ASSERT(cfg.readPct <= 100, "read_pct must be 0..100");
    PPA_ASSERT(cfg.ackAddr != 0, "serve stream needs an ack word");
    hist.resize(historyCap);
}

void
RequestSource::push(DynInst inst)
{
    inst.index = frontier;
    applyDynInst(inst, state, mem);
    hist[frontier & (historyCap - 1)] = inst;
    ++frontier;
}

void
RequestSource::movi(ArchReg rd, Word imm)
{
    DynInst di;
    di.op = Opcode::IntMov;
    di.dst = RegRef::intReg(rd);
    di.imm = imm;
    push(di);
}

void
RequestSource::alu(Opcode op, ArchReg rd, ArchReg ra, ArchReg rb,
                   Word imm)
{
    DynInst di;
    di.op = op;
    di.dst = RegRef::intReg(rd);
    di.srcs[0] = RegRef::intReg(ra);
    if (rb != invalidArchReg)
        di.srcs[1] = RegRef::intReg(rb);
    di.imm = imm;
    push(di);
}

void
RequestSource::ld(ArchReg rd, ArchReg rbase, Word off)
{
    DynInst di;
    di.op = Opcode::Load;
    di.dst = RegRef::intReg(rd);
    di.srcs[0] = RegRef::intReg(rbase);
    di.imm = off;
    di.memAddr = MemImage::wordAlign(
        state.read(RegClass::Int, rbase) + off);
    push(di);
}

void
RequestSource::st(ArchReg rdata, ArchReg rbase, Word off)
{
    DynInst di;
    di.op = Opcode::Store;
    di.srcs[0] = RegRef::intReg(rdata);
    di.srcs[1] = RegRef::intReg(rbase);
    di.imm = off;
    di.memAddr = MemImage::wordAlign(
        state.read(RegClass::Int, rbase) + off);
    push(di);
}

void
RequestSource::emitAck()
{
    // Sequence numbers start at 1 so "0" in the NVM ack word reads
    // unambiguously as "no request durable yet".
    movi(rSeq, reqCount + 1);
    movi(rAck, cfg.ackAddr);
    st(rSeq, rAck, 0);
}

void
RequestSource::emitTatp(std::uint64_t key)
{
    Word location = rng.next();
    // Subscriber records are 32 B: [id, location, version, pad].
    movi(rKey, key);
    alu(Opcode::IntShl, rTmp0, rKey, invalidArchReg, 5); // *32
    movi(rAddr, cfg.dataBase);
    alu(Opcode::IntAdd, rAddr, rAddr, rTmp0, 0);
    movi(rVal, location);
    st(rVal, rAddr, 8);  // location = fresh value
    ld(rTmp1, rAddr, 16);
    alu(Opcode::IntAdd, rTmp1, rTmp1, invalidArchReg, 1);
    st(rTmp1, rAddr, 16); // version++
}

void
RequestSource::emitTpcc(std::uint64_t key)
{
    // District records are 16 B: [next order id, order counter];
    // each thread owns one 1024-slot ring of 32 B order records.
    constexpr std::uint64_t orderSlots = 1024;
    movi(rKey, key);
    alu(Opcode::IntShl, rTmp0, rKey, invalidArchReg, 4); // *16
    movi(rAddr, cfg.dataBase);
    alu(Opcode::IntAdd, rAddr, rAddr, rTmp0, 0);
    ld(rTmp1, rAddr, 0);                                 // o_id
    alu(Opcode::IntAdd, rTmp2, rTmp1, invalidArchReg, 1);
    st(rTmp2, rAddr, 0);                                 // o_id++
    alu(Opcode::IntShl, rTmp3, rTmp1, invalidArchReg, 5);
    movi(rTmp4, (orderSlots - 1) * 32);
    alu(Opcode::IntAnd, rTmp3, rTmp3, rTmp4, 0);
    movi(rVal, ordersBase());
    alu(Opcode::IntAdd, rVal, rVal, rTmp3, 0);           // order slot
    st(rTmp1, rVal, 0);                                  // o_id
    movi(rFold, 42);
    st(rFold, rVal, 8);                                  // c_id
    st(rTmp1, rVal, 16);                                 // entry_d
    movi(rFold, 5);
    st(rFold, rVal, 24);                                 // ol_cnt
    ld(rFold, rAddr, 8);
    alu(Opcode::IntAdd, rFold, rFold, invalidArchReg, 1);
    st(rFold, rAddr, 8);                                 // counter++
}

void
RequestSource::emitKv(std::uint64_t key)
{
    bool get = rng.below(100) < cfg.readPct;
    Word value = rng.next();
    // Buckets are 128 B: [key, value x8, pad x7].
    movi(rKey, key);
    alu(Opcode::IntShl, rTmp0, rKey, invalidArchReg, 7); // *128
    movi(rAddr, cfg.dataBase);
    alu(Opcode::IntAdd, rAddr, rAddr, rTmp0, 0);
    if (get) {
        ld(rTmp1, rAddr, 0);
        ld(rTmp2, rAddr, 8);
        ld(rTmp3, rAddr, 16);
        alu(Opcode::IntAdd, rTmp1, rTmp1, rTmp2, 0);
        alu(Opcode::IntAdd, rTmp1, rTmp1, rTmp3, 0);
        movi(rFold, cfg.scratchAddr);
        st(rTmp1, rFold, 0); // publish the fold: keeps loads live
    } else {
        movi(rVal, value);
        st(rKey, rAddr, 0);  // key word
        for (Word off = 8; off <= 64; off += 8)
            st(rVal, rAddr, off);
    }
}

void
RequestSource::emitRequest()
{
    std::uint64_t key = scrambleRank(zipf.sample(rng), cfg.keys);
    switch (cfg.workload) {
      case ServeWorkload::Tatp:
        emitTatp(key);
        break;
      case ServeWorkload::Tpcc:
        emitTpcc(key);
        break;
      case ServeWorkload::Kv:
        emitKv(key);
        break;
    }
    emitAck();
    ++reqCount;
}

bool
RequestSource::next(DynInst &out)
{
    while (readPos >= frontier) {
        if (reqCount >= cfg.requests)
            return false;
        emitRequest();
    }
    PPA_ASSERT(frontier - readPos <= historyCap,
               "request stream read fell behind the history window "
               "(readPos ", readPos, ", frontier ", frontier, ")");
    out = hist[readPos & (historyCap - 1)];
    ++readPos;
    return true;
}

void
RequestSource::seekTo(std::uint64_t index)
{
    PPA_ASSERT(index <= frontier,
               "seek past the generated frontier (", index, " > ",
               frontier, ")");
    PPA_ASSERT(frontier < historyCap || index >= frontier - historyCap,
               "seek beyond the bounded history window (", index,
               " < ", frontier - historyCap, ")");
    readPos = index;
}

} // namespace serve
} // namespace ppa
