/**
 * @file
 * Streaming transaction-request source for the serving harness
 * (docs/SERVING.md).
 *
 * Each simulated core is fed by one RequestSource: an unbounded
 * committed-path DynInst stream synthesized one request at a time.
 * Request parameters (Zipfian key, kv GET/SET choice, payload values)
 * are drawn host-side from a per-stream Rng, then expanded into a
 * short straight-line instruction block that performs the transaction
 * against the thread-private data region and finally stores the
 * request sequence number to the stream's ack word — the commit of
 * that ack store is the request's completion event.
 *
 * Generation is functional: the source maintains the golden
 * (ArchState, MemImage) pair and resolves every effective address
 * through isa/semantics.hh exactly like ProgramExecutor, so the core
 * re-executes real dataflow. Unlike ProgramExecutor the source does
 * not memoize millions of instructions; it keeps a bounded history
 * ring so that power-failure recovery's bounded backward seekTo
 * (LCPC + 1) replays from the ring. Blocks are straight-line — no
 * branches — so streams contain no mispredictions by construction.
 */

#ifndef PPA_SERVE_REQUEST_SOURCE_HH
#define PPA_SERVE_REQUEST_SOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "isa/arch.hh"
#include "isa/source.hh"
#include "mem/mem_image.hh"
#include "serve/zipf.hh"

namespace ppa
{
namespace serve
{

/** The transaction kernels the server dispatches. */
enum class ServeWorkload : std::uint8_t
{
    Tatp, ///< TATP location update: 2 record stores + version RMW
    Tpcc, ///< TPC-C new-order: district counters + order-record fill
    Kv,   ///< Key-value store: GET (loads+fold) / SET (9-word write)
};

/** CLI/serialization token ("tatp", "tpcc", "kv"). */
const char *serveWorkloadToken(ServeWorkload w);

/** Parse a workload token; false for unknown tokens. */
bool serveWorkloadFromToken(const std::string &token, ServeWorkload &out);

/** Configuration of one per-thread request stream. */
struct RequestStreamConfig
{
    ServeWorkload workload = ServeWorkload::Tatp;
    /** Requests this stream issues. */
    std::uint64_t requests = 0;
    /** Key-space size (records / districts / buckets); power of two. */
    std::uint64_t keys = 4096;
    /** Zipfian skew theta (0 = uniform). */
    double skew = 0.99;
    /** kv GET percentage, 0..100. */
    unsigned readPct = 50;
    /** Per-stream seed (already mixed with the thread id). */
    std::uint64_t seed = 42;
    /** Base of this stream's private data region. */
    Addr dataBase = 0;
    /** Word receiving the per-request completion (ack) store. */
    Addr ackAddr = 0;
    /** Word receiving kv GET fold results (keeps loads live). */
    Addr scratchAddr = 0;
};

class RequestSource : public DynInstSource
{
  public:
    /** Committed-stream instructions retained for backward seeks. */
    static constexpr std::uint64_t historyCap = 1u << 15;

    explicit RequestSource(const RequestStreamConfig &config);

    bool next(DynInst &out) override;
    void seekTo(std::uint64_t index) override;

    /** Requests fully generated so far. */
    std::uint64_t generatedRequests() const { return reqCount; }
    /** Instructions generated so far (the stream frontier). */
    std::uint64_t generatedInsts() const { return frontier; }
    /** Golden memory after every generated instruction. */
    const MemImage &goldenMemory() const { return mem; }
    const RequestStreamConfig &config() const { return cfg; }
    /** TPC-C order-ring base (derived from the data layout). */
    Addr ordersBase() const
    {
        return cfg.dataBase + cfg.keys * 16;
    }

  private:
    void emitRequest();

    // ---- functional emit helpers (mirror ProgramExecutor) ----------
    void push(DynInst inst);
    void movi(ArchReg rd, Word imm);
    void alu(Opcode op, ArchReg rd, ArchReg ra, ArchReg rb, Word imm);
    void ld(ArchReg rd, ArchReg rbase, Word off);
    void st(ArchReg rdata, ArchReg rbase, Word off);

    void emitTatp(std::uint64_t key);
    void emitTpcc(std::uint64_t key);
    void emitKv(std::uint64_t key);
    void emitAck();

    RequestStreamConfig cfg;
    ZipfGenerator zipf;
    Rng rng;

    ArchState state;
    MemImage mem;

    /** Circular history of the last historyCap instructions. */
    std::vector<DynInst> hist;
    std::uint64_t frontier = 0; ///< total instructions generated
    std::uint64_t readPos = 0;  ///< next index next() returns
    std::uint64_t reqCount = 0; ///< requests generated
};

} // namespace serve
} // namespace ppa

#endif // PPA_SERVE_REQUEST_SOURCE_HH
