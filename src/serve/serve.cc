#include "serve/serve.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/durability.hh"
#include "check/observer.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ppa
{
namespace serve
{

namespace
{

// ---------------------------------------------------------------------
// Address-space layout. Every region is thread-private (the streams
// are DRF by construction) and all regions are pairwise disjoint:
// control words live below 0x1000'0000, data regions above it.
// ---------------------------------------------------------------------

constexpr Addr kAckBase = 0x0800'0000;     ///< per-thread ack word
constexpr Addr kScratchBase = 0x0804'0000; ///< kv GET fold sink
constexpr Addr kCommitBase = 0x0808'0000;  ///< undo/redo commit record
constexpr Addr kLogBase = 0x0900'0000;     ///< undo/redo log rings
constexpr Addr kLogStride = 0x1'0000;      ///< 64 KiB per thread
constexpr Addr kDataBase = 0x1000'0000;    ///< per-thread data region
constexpr Addr kDataStride = 0x100'0000;   ///< 16 MiB per thread

Addr ackAddr(unsigned t) { return kAckBase + Addr{t} * 64; }
Addr scratchAddr(unsigned t) { return kScratchBase + Addr{t} * 64; }
Addr commitAddr(unsigned t) { return kCommitBase + Addr{t} * 64; }
Addr logBase(unsigned t) { return kLogBase + Addr{t} * kLogStride; }
Addr dataBase(unsigned t) { return kDataBase + Addr{t} * kDataStride; }

// ---------------------------------------------------------------------
// Modeled recovery costs (docs/SERVING.md). Constants, not measured:
// recovery is not simulated cycle-by-cycle, it is priced from state
// the crash leaves behind.
// ---------------------------------------------------------------------

/** PPA: power-on handshake before CSQ replay starts. */
constexpr Cycle kRecoverPpaBase = 1000;
/** PPA: replay one checkpointed CSQ entry to NVM. */
constexpr Cycle kRecoverPpaPerCsqEntry = 64;
/** Software schemes: process restart plus recovery-code entry. */
constexpr Cycle kRecoverSwBase = 2000;
/** Undo/redo logging: read and apply one log entry. */
constexpr Cycle kRecoverSwPerLogEntry = 128;

/** Data stores the undo/redo transform logs per request (the fence
 *  and ack/commit machinery is txn overhead, not logged data). */
double
storesLoggedPerRequest(const ServeConfig &cfg)
{
    switch (cfg.workload) {
      case ServeWorkload::Tatp:
        return 2.0;
      case ServeWorkload::Tpcc:
        return 7.0;
      case ServeWorkload::Kv:
        // GET folds into one scratch store; SET writes 9 words.
        return (static_cast<double>(cfg.readPct) * 1.0 +
                static_cast<double>(100 - cfg.readPct) * 9.0) /
               100.0;
    }
    return 0.0;
}

/** Splitmix64-style (seed, thread, salt) mixer so every stream and
 *  arrival process draws from an independent, reproducible sequence. */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned t, std::uint64_t salt)
{
    std::uint64_t x = seed + 0x9E3779B97F4A7C15ull * (salt + 1) +
                      (static_cast<std::uint64_t>(t) << 32);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

constexpr std::uint64_t kStreamSalt = 1;
constexpr std::uint64_t kArrivalSalt = 2;

std::uint64_t
requestsForThread(const ServeConfig &cfg, unsigned t)
{
    std::uint64_t base = cfg.requests / cfg.threads;
    std::uint64_t rem = cfg.requests % cfg.threads;
    return base + (t < rem ? 1 : 0);
}

/** Hang guard for System::run — same worst-case cycles-per-inst
 *  allowance runWorkload uses. 64 bounds the per-request instruction
 *  count across all workloads including transform inflation. */
Cycle
cycleCap(const ServeConfig &cfg)
{
    std::uint64_t per_thread = requestsForThread(cfg, 0);
    return (per_thread * 64 + 1024) * 400;
}

SystemVariant
systemVariantFor(ServeVariant v)
{
    // The software schemes rely on clwb/fence ordering, which the
    // ReplayCache persist mode implements (fences retire only after
    // outstanding clwb acknowledgements).
    return v == ServeVariant::Ppa ? SystemVariant::Ppa
                                  : SystemVariant::ReplayCache;
}

/**
 * Records the commit cycle of every ack store — the completion event
 * of each request. Uses the audit-observer slot (telemetry has its
 * own hook slot, so both coexist).
 */
class AckTracker : public check::PipelineObserver
{
  public:
    explicit AckTracker(Addr ack) : ackWord(MemImage::wordAlign(ack)) {}

    void onCycle(Cycle cycle) override { now = cycle; }

    void
    onStoreCommit(Addr addr, Word value, unsigned global_data_reg,
                  bool carries_value, bool to_io_buffer) override
    {
        (void)global_data_reg;
        (void)carries_value;
        (void)to_io_buffer;
        if (addr != ackWord)
            return;
        PPA_ASSERT(value == ackCycles.size() + 1,
                   "ack sequence out of order: store carries ", value,
                   " but ", ackCycles.size(), " requests completed");
        ackCycles.push_back(now);
    }

    /** Commit cycle of request i (0-based; sequence number i + 1). */
    std::vector<Cycle> ackCycles;

  private:
    Addr ackWord;
    Cycle now = 0;
};

/** One fully wired simulation instance (system, streams, transforms,
 *  trackers). Fresh per measurement run and per failure branch. */
struct ServeRun
{
    std::unique_ptr<System> system;
    std::vector<std::unique_ptr<RequestSource>> sources;
    std::vector<std::unique_ptr<UndoRedoLogTransform>> undoRedo;
    std::vector<std::unique_ptr<DelayFreeTransform>> delayFree;
    std::vector<std::unique_ptr<AckTracker>> trackers;
};

ServeRun
makeRun(const ServeConfig &cfg, ServeVariant variant)
{
    PPA_ASSERT(cfg.threads > 0, "serve needs at least one thread");
    ExperimentKnobs knobs;
    knobs.threads = cfg.threads;
    SystemConfig sc =
        makeSystemConfig(systemVariantFor(variant), knobs, cfg.threads);

    ServeRun run;
    run.system = std::make_unique<System>(sc);
    for (unsigned t = 0; t < cfg.threads; ++t) {
        RequestStreamConfig rc;
        rc.workload = cfg.workload;
        rc.requests = requestsForThread(cfg, t);
        rc.keys = cfg.keys;
        rc.skew = cfg.skew;
        rc.readPct = cfg.readPct;
        rc.seed = mixSeed(cfg.seed, t, kStreamSalt);
        rc.dataBase = dataBase(t);
        rc.ackAddr = ackAddr(t);
        rc.scratchAddr = scratchAddr(t);
        run.sources.push_back(std::make_unique<RequestSource>(rc));

        DynInstSource *src = run.sources.back().get();
        DurabilityParams dp;
        dp.publishAddr = ackAddr(t);
        dp.commitAddr = commitAddr(t);
        dp.logBase = logBase(t);
        if (variant == ServeVariant::UndoRedoLog) {
            run.undoRedo.push_back(
                std::make_unique<UndoRedoLogTransform>(*src, dp));
            src = run.undoRedo.back().get();
        } else if (variant == ServeVariant::DelayFree) {
            run.delayFree.push_back(
                std::make_unique<DelayFreeTransform>(*src, dp));
            src = run.delayFree.back().get();
        }
        run.system->bindSource(t, src);

        run.trackers.push_back(
            std::make_unique<AckTracker>(ackAddr(t)));
        run.system->core(t).attachAuditObserver(
            run.trackers.back().get());
    }
    return run;
}

/**
 * Run @p fn(0..jobs-1) on a pool of @p workers host threads. Results
 * must be written to per-index slots; any worker count (including 1)
 * produces identical results because scheduling only decides who
 * computes each independent index.
 */
void
runIndexed(unsigned workers, std::size_t jobs,
           const std::function<void(std::size_t)> &fn)
{
    if (jobs == 0)
        return;
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw ? hw : 1;
    }
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, jobs));
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= jobs)
                    return;
                fn(i);
            }
        });
    }
    for (std::thread &th : pool)
        th.join();
}

Cycle
modelRecovery(const ServeConfig &cfg, ServeVariant variant,
              const std::vector<CheckpointImage> &images,
              std::uint64_t lost_requests)
{
    switch (variant) {
      case ServeVariant::Ppa: {
        std::uint64_t entries = 0;
        for (const CheckpointImage &im : images)
            entries += im.csq.size();
        return kRecoverPpaBase + entries * kRecoverPpaPerCsqEntry;
      }
      case ServeVariant::UndoRedoLog: {
        // Recovery scans the log tail past the last durable commit
        // record: the entries of every completed-but-lost request.
        double entries = static_cast<double>(lost_requests) *
                         storesLoggedPerRequest(cfg);
        auto n = static_cast<std::uint64_t>(std::ceil(entries));
        return kRecoverSwBase + n * kRecoverSwPerLogEntry;
      }
      case ServeVariant::DelayFree:
        // No log to scan; published state is usable as-is.
        return kRecoverSwBase;
    }
    return 0;
}

FailurePoint
crashBranch(const ServeConfig &cfg, ServeVariant variant, Cycle crash)
{
    ServeRun run = makeRun(cfg, variant);
    run.system->runUntilCycle(crash);

    // Snapshot completion counts before power-fail/recovery: PPA
    // recovery replays the CSQ, and nothing replayed may be
    // double-counted as newly completed work.
    std::vector<std::uint64_t> completed(cfg.threads);
    for (unsigned t = 0; t < cfg.threads; ++t)
        completed[t] = run.trackers[t]->ackCycles.size();

    std::vector<CheckpointImage> images = run.system->powerFail();
    if (variant == ServeVariant::Ppa)
        run.system->recover(images);

    FailurePoint fp;
    fp.cycle = crash;
    for (unsigned t = 0; t < cfg.threads; ++t) {
        // The durable frontier is read from the post-crash NVM image:
        // the last sequence number whose ack (PPA, delay-free) or
        // commit record (undo/redo logging) actually persisted.
        Addr word = variant == ServeVariant::UndoRedoLog
                        ? MemImage::wordAlign(commitAddr(t))
                        : MemImage::wordAlign(ackAddr(t));
        std::uint64_t durable =
            run.system->memory().nvmImage().read(word);
        durable = std::min(durable, completed[t]);

        fp.completedRequests += completed[t];
        fp.durableRequests += durable;
        fp.lostRequests += completed[t] - durable;

        // Data-loss window: how far back acknowledged work can
        // disappear — from the completion of the first lost request
        // to the crash. Zero when every completed request survived.
        Cycle window =
            durable < completed[t]
                ? crash - run.trackers[t]->ackCycles[durable]
                : 0;
        fp.lossWindow = std::max(fp.lossWindow, window);
    }
    fp.recoveryCycles =
        modelRecovery(cfg, variant, images, fp.lostRequests);
    return fp;
}

} // namespace

const char *
serveVariantToken(ServeVariant v)
{
    switch (v) {
      case ServeVariant::Ppa:
        return "ppa";
      case ServeVariant::UndoRedoLog:
        return "undo-redo-log";
      case ServeVariant::DelayFree:
        return "delay-free";
    }
    return "?";
}

bool
serveVariantFromToken(const std::string &token, ServeVariant &out)
{
    if (token == "ppa") {
        out = ServeVariant::Ppa;
        return true;
    }
    if (token == "undo-redo-log") {
        out = ServeVariant::UndoRedoLog;
        return true;
    }
    if (token == "delay-free") {
        out = ServeVariant::DelayFree;
        return true;
    }
    return false;
}

std::vector<ServeVariant>
allServeVariants()
{
    return {ServeVariant::Ppa, ServeVariant::UndoRedoLog,
            ServeVariant::DelayFree};
}

ServeVariantStats
runServeVariant(const ServeConfig &cfg, ServeVariant variant)
{
    ServeVariantStats out;
    out.variant = variant;
    out.requests = cfg.requests;

    ServeRun run = makeRun(cfg, variant);

    std::unique_ptr<obs::Telemetry> telem;
    if (cfg.telemetry) {
        obs::TelemetryConfig tc;
        tc.sampleCycles = cfg.telemetrySampleCycles;
        tc.seriesCap = cfg.telemetrySeriesCap;
        telem = std::make_unique<obs::Telemetry>(tc, cfg.threads);
        for (unsigned t = 0; t < cfg.threads; ++t)
            telem->attach(run.system->core(t), run.system->memory());
    }

    run.system->run(cycleCap(cfg));

    for (unsigned t = 0; t < cfg.threads; ++t) {
        const AckTracker &tr = *run.trackers[t];
        out.completed += tr.ackCycles.size();
        if (!tr.ackCycles.empty())
            out.serviceCycles =
                std::max(out.serviceCycles, tr.ackCycles.back());
        out.committedInsts += run.system->core(t).committedInsts();
        out.committedStores += run.system->core(t).committedStores();
    }
    for (const auto &tf : run.undoRedo) {
        out.injectedClwbs += tf->injectedClwbs();
        out.injectedFences += tf->injectedFences();
        out.injectedLogStores += tf->injectedLogStores();
    }
    for (const auto &tf : run.delayFree) {
        out.injectedClwbs += tf->injectedClwbs();
        out.injectedFences += tf->injectedFences();
    }
    out.nvmWrites = run.system->memory().nvm().writeCount();
    out.nvmBytesWritten = run.system->memory().nvm().bytesWritten();

    if (telem)
        out.telemetry = telem->harvest();

    // Open-loop latency: remap the simulated service timeline onto
    // the arrival process with the Lindley recursion (see serve.hh).
    double makespan = 0.0;
    for (unsigned t = 0; t < cfg.threads; ++t) {
        const AckTracker &tr = *run.trackers[t];
        ArrivalProcess arrivals(cfg.arrival,
                                mixSeed(cfg.seed, t, kArrivalSalt));
        Cycle prev_ack = 0;
        double prev_finish = 0.0;
        for (std::size_t i = 0; i < tr.ackCycles.size(); ++i) {
            double arrival = arrivals.next();
            auto service =
                static_cast<double>(tr.ackCycles[i] - prev_ack);
            prev_ack = tr.ackCycles[i];
            double start = std::max(arrival, prev_finish);
            double finish = start + service;
            prev_finish = finish;
            out.latency.sample(
                static_cast<std::uint64_t>(std::llround(
                    finish - arrival)));
            if (telem) {
                if (out.telemetry.requestSpans.size() <
                    obs::kRequestSpanCap) {
                    obs::TelemetryRequestSpan span;
                    span.core = t;
                    span.seq = i + 1;
                    span.arrival = static_cast<std::uint64_t>(
                        std::llround(arrival));
                    span.start = static_cast<std::uint64_t>(
                        std::llround(start));
                    span.finish = static_cast<std::uint64_t>(
                        std::llround(finish));
                    out.telemetry.requestSpans.push_back(span);
                } else {
                    ++out.telemetry.droppedRequestSpans;
                }
            }
        }
        makespan = std::max(makespan, prev_finish);
    }
    out.offeredPerKcycle =
        static_cast<double>(cfg.threads) * 1000.0 / cfg.arrival.meanGap;
    out.achievedPerKcycle =
        makespan > 0.0
            ? static_cast<double>(out.completed) * 1000.0 / makespan
            : 0.0;

    // Failure study: crash fresh branches at evenly spaced points of
    // the measured service timeline. Branches are independent, so a
    // worker pool may compute them in any order into indexed slots.
    if (cfg.failures > 0 && out.serviceCycles > 0) {
        std::vector<Cycle> points;
        points.reserve(cfg.failures);
        for (unsigned k = 1; k <= cfg.failures; ++k) {
            Cycle c = out.serviceCycles *
                      static_cast<Cycle>(k) / (cfg.failures + 1);
            points.push_back(std::max<Cycle>(c, 1));
        }
        out.failures.resize(points.size());
        runIndexed(cfg.workers, points.size(), [&](std::size_t i) {
            out.failures[i] = crashBranch(cfg, variant, points[i]);
        });
    }
    return out;
}

ServeStats
runServeStudy(const ServeConfig &cfg,
              const std::vector<ServeVariant> &variants)
{
    ServeStats stats;
    stats.config = cfg;
    stats.variants.reserve(variants.size());
    for (ServeVariant v : variants)
        stats.variants.push_back(runServeVariant(cfg, v));
    return stats;
}

// ---------------------------------------------------------------------
// JSON emission.
// ---------------------------------------------------------------------

namespace
{

double
vecMean(const std::vector<std::uint64_t> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (std::uint64_t x : v)
        sum += static_cast<double>(x);
    return sum / static_cast<double>(v.size());
}

std::uint64_t
vecP50(std::vector<std::uint64_t> v)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    // Same ceil-rank convention as stats::Histogram::percentile.
    std::size_t rank = (v.size() + 1) / 2;
    return v[rank - 1];
}

std::uint64_t
vecMax(const std::vector<std::uint64_t> &v)
{
    std::uint64_t m = 0;
    for (std::uint64_t x : v)
        m = std::max(m, x);
    return m;
}

void
summaryToJson(std::ostringstream &os, const char *name,
              const std::vector<std::uint64_t> &v)
{
    os << "\"" << name << "\": {\"mean\": "
       << metrics::formatDouble(vecMean(v)) << ", \"p50\": " << vecP50(v)
       << ", \"max\": " << vecMax(v) << "}";
}

void
latencyToJson(std::ostringstream &os, const LogHistogram &h)
{
    os << "{\"count\": " << h.count()
       << ", \"mean\": " << metrics::formatDouble(h.mean())
       << ", \"min\": " << h.min() << ", \"max\": " << h.max()
       << ", \"p50\": " << h.percentile(0.50)
       << ", \"p95\": " << h.percentile(0.95)
       << ", \"p99\": " << h.percentile(0.99)
       << ", \"p999\": " << h.percentile(0.999)
       << ", \"p9999\": " << h.percentile(0.9999)
       << ", \"scheme\": \"log16\", \"buckets\": [";
    auto buckets = h.nonZeroBuckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        os << (i ? ", " : "") << "[" << buckets[i].first << ", "
           << buckets[i].second << "]";
    }
    os << "]}";
}

void
variantToJson(std::ostringstream &os, const ServeVariantStats &vs)
{
    os << "{\"variant\": \"" << serveVariantToken(vs.variant)
       << "\", \"stats\": {\"serve\": {";
    os << "\"requests\": " << vs.requests
       << ", \"completed\": " << vs.completed
       << ", \"serviceCycles\": " << vs.serviceCycles
       << ", \"committedInsts\": " << vs.committedInsts
       << ", \"committedStores\": " << vs.committedStores
       << ", \"offeredPerKcycle\": "
       << metrics::formatDouble(vs.offeredPerKcycle)
       << ", \"achievedPerKcycle\": "
       << metrics::formatDouble(vs.achievedPerKcycle);
    os << ", \"latency\": ";
    latencyToJson(os, vs.latency);
    os << ", \"injected\": {\"clwbs\": " << vs.injectedClwbs
       << ", \"fences\": " << vs.injectedFences
       << ", \"logStores\": " << vs.injectedLogStores << "}";
    os << ", \"nvm\": {\"writes\": " << vs.nvmWrites
       << ", \"bytesWritten\": " << vs.nvmBytesWritten << "}";

    std::vector<std::uint64_t> recovery, loss, lost;
    os << ", \"failures\": {\"points\": [";
    for (std::size_t i = 0; i < vs.failures.size(); ++i) {
        const FailurePoint &fp = vs.failures[i];
        os << (i ? ", " : "") << "{\"cycle\": " << fp.cycle
           << ", \"recoveryCycles\": " << fp.recoveryCycles
           << ", \"lossWindow\": " << fp.lossWindow
           << ", \"completedRequests\": " << fp.completedRequests
           << ", \"durableRequests\": " << fp.durableRequests
           << ", \"lostRequests\": " << fp.lostRequests << "}";
        recovery.push_back(fp.recoveryCycles);
        loss.push_back(fp.lossWindow);
        lost.push_back(fp.lostRequests);
    }
    os << "], ";
    summaryToJson(os, "recovery", recovery);
    os << ", ";
    summaryToJson(os, "lossWindow", loss);
    os << ", ";
    summaryToJson(os, "lostRequests", lost);
    os << "}";
    os << "}";
    if (vs.telemetry.enabled)
        os << ", \"telemetry\": "
           << metrics::telemetryToJson(vs.telemetry);
    os << "}}";
}

} // namespace

std::string
serveToJson(const ServeStats &stats)
{
    const ServeConfig &cfg = stats.config;
    std::ostringstream os;
    os << "{\"schemaVersion\": " << metrics::schemaVersion
       << ", \"kind\": \"serve\", \"serve\": {";
    os << "\"config\": {\"workload\": \""
       << serveWorkloadToken(cfg.workload)
       << "\", \"requests\": " << cfg.requests
       << ", \"threads\": " << cfg.threads << ", \"keys\": " << cfg.keys
       << ", \"skew\": " << metrics::formatDouble(cfg.skew)
       << ", \"readPct\": " << cfg.readPct
       << ", \"arrival\": {\"kind\": \""
       << arrivalToken(cfg.arrival.kind) << "\", \"meanGap\": "
       << metrics::formatDouble(cfg.arrival.meanGap)
       << ", \"burstFactor\": "
       << metrics::formatDouble(cfg.arrival.burstFactor)
       << ", \"period\": " << metrics::formatDouble(cfg.arrival.period)
       << ", \"onFraction\": "
       << metrics::formatDouble(cfg.arrival.onFraction) << "}"
       << ", \"failures\": " << cfg.failures
       << ", \"seed\": " << cfg.seed << "}";
    os << ", \"variants\": [";
    for (std::size_t i = 0; i < stats.variants.size(); ++i) {
        if (i)
            os << ", ";
        variantToJson(os, stats.variants[i]);
    }
    os << "]}}";
    return os.str();
}

} // namespace serve
} // namespace ppa
