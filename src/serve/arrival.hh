/**
 * @file
 * Open-loop request arrival processes (docs/SERVING.md).
 *
 * The serving harness models arrival in *simulated cycles*: each
 * per-thread stream owns one ArrivalProcess that emits a monotone
 * sequence of arrival timestamps, deterministic from its Rng seed.
 *
 * Two processes:
 *  - Poisson: exponential interarrivals at rate 1 / meanGap.
 *  - Bursty on-off (MMPP-2): a square-wave rate function with period
 *    `period`, ON for `onFraction` of it at `burstFactor` times the
 *    base rate and OFF at the complementary rate, chosen so the
 *    long-run mean rate still equals 1 / meanGap. Sampling integrates
 *    the exponential over the piecewise-constant rate, so the process
 *    is exact, not thinned.
 */

#ifndef PPA_SERVE_ARRIVAL_HH
#define PPA_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"

namespace ppa
{
namespace serve
{

enum class ArrivalKind : std::uint8_t
{
    Poisson,
    Bursty,
};

/** CLI/serialization token ("poisson", "bursty"). */
const char *arrivalToken(ArrivalKind kind);

/** Parse an arrival token; false for unknown tokens. */
bool arrivalFromToken(const std::string &token, ArrivalKind &out);

struct ArrivalParams
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Long-run mean interarrival gap per stream, in cycles (> 0).
     *  The default keeps a PPA server under capacity while the
     *  software-durability baselines saturate — the regime the
     *  serving study is about. */
    double meanGap = 256.0;
    /** ON-period rate multiplier (bursty only); burstFactor *
     *  onFraction must be <= 1 so the OFF rate stays non-negative. */
    double burstFactor = 4.0;
    /** ON/OFF square-wave period in cycles (bursty only). */
    double period = 65536.0;
    /** Fraction of each period spent ON, in (0, 1) (bursty only). */
    double onFraction = 0.25;
};

/**
 * Generates one monotone arrival-timestamp stream. Owns its Rng so a
 * process can be reconstructed bit-identically from (params, seed).
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalParams &params, std::uint64_t seed);

    /** Timestamp (cycles) of the next arrival; strictly advances the
     *  internal clock by at least an infinitesimal gap. */
    double next();

  private:
    /** Instantaneous rate at absolute time @p t (bursty only). */
    double rateAt(double t) const;
    /** End of the constant-rate segment containing @p t. */
    double segmentEnd(double t) const;

    ArrivalParams cfg;
    Rng rng;
    double now = 0.0;
    double rateOn = 0.0;
    double rateOff = 0.0;
};

} // namespace serve
} // namespace ppa

#endif // PPA_SERVE_ARRIVAL_HH
