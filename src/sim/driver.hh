/**
 * @file
 * Parallel experiment driver.
 *
 * Every figure/table of the evaluation is a sweep: a grid of
 * (workload profile, system variant, knobs) triples, each simulated
 * independently by runWorkload(). The driver fans such a grid across
 * hardware threads with a simple job queue.
 *
 * Determinism contract: a job's RunStats is a pure function of its
 * (profile, variant, knobs) triple — all randomness inside
 * runWorkload() derives from ExperimentKnobs::seed and the per-core
 * stream index, never from the host (no wall clock, no address-space
 * layout, no scheduler state). The driver adds no entropy of its own:
 * jobs carry their seed in their knobs, workers pull jobs from an
 * atomic cursor, and each result is stored at its submission index.
 * Consequently a parallel run is bitwise-identical to a serial run of
 * the same job list, in the same order (tests/sim/test_driver.cc
 * asserts this). Only JobResult::wallSeconds — host-side metadata —
 * differs between runs.
 */

#ifndef PPA_SIM_DRIVER_HH
#define PPA_SIM_DRIVER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace ppa
{

/** One point of a sweep grid: everything runWorkload() needs. */
struct SweepJob
{
    WorkloadProfile profile;
    SystemVariant variant = SystemVariant::MemoryMode;
    ExperimentKnobs knobs;
};

/** A completed job: the spec echoed back, its stats, and timing. */
struct JobResult
{
    SweepJob job;
    RunStats stats;
    /** Host wall-clock seconds this job's simulation took (metadata;
     *  excluded from the determinism contract). */
    double wallSeconds = 0.0;
};

/**
 * Called after each job completes, with the finished result and the
 * completed/total progress counters. Invoked under the driver's
 * progress mutex, so implementations may print without interleaving;
 * completion order is nondeterministic under parallelism (the results
 * vector, by contrast, is always in submission order).
 */
using ProgressFn = std::function<void(
    const JobResult &result, std::size_t completed, std::size_t total)>;

/**
 * Job-queue scheduler for sweep grids.
 *
 * run() executes the submitted jobs on a pool of worker threads and
 * returns the results in submission order. With workers == 1 the jobs
 * run inline on the calling thread; the results are identical either
 * way (see the determinism contract above).
 */
class ExperimentDriver
{
  public:
    /** @param workers worker-thread count; 0 = hardware concurrency. */
    explicit ExperimentDriver(unsigned workers = 0);

    /** The worker-thread count run() will use. */
    unsigned workers() const { return numWorkers; }

    /** Run @p jobs; results come back in submission order. */
    std::vector<JobResult> run(const std::vector<SweepJob> &jobs,
                               const ProgressFn &progress = {}) const;

  private:
    unsigned numWorkers;
};

} // namespace ppa

#endif // PPA_SIM_DRIVER_HH
