#include "sim/driver.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace ppa
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ExperimentDriver::ExperimentDriver(unsigned workers)
    : numWorkers(workers ? workers
                         : std::max(1u,
                                    std::thread::hardware_concurrency()))
{}

std::vector<JobResult>
ExperimentDriver::run(const std::vector<SweepJob> &jobs,
                      const ProgressFn &progress) const
{
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty())
        return results;

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> completed{0};
    std::mutex progressMutex;

    auto workOne = [&](std::size_t idx) {
        auto start = std::chrono::steady_clock::now();
        JobResult &r = results[idx];
        r.job = jobs[idx];
        r.stats =
            runWorkload(r.job.profile, r.job.variant, r.job.knobs);
        r.wallSeconds = secondsSince(start);
        std::size_t done = completed.fetch_add(1) + 1;
        if (progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            progress(r, done, jobs.size());
        }
    };

    unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(numWorkers, jobs.size()));
    if (pool <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            workOne(i);
        return results;
    }

    auto workerLoop = [&]() {
        for (;;) {
            std::size_t idx = cursor.fetch_add(1);
            if (idx >= jobs.size())
                return;
            workOne(idx);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (unsigned t = 0; t < pool; ++t)
        threads.emplace_back(workerLoop);
    for (auto &th : threads)
        th.join();
    return results;
}

} // namespace ppa
