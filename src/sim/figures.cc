#include "sim/figures.hh"

#include "common/logging.hh"

namespace ppa
{

namespace
{

constexpr std::uint64_t defaultInsts = 15'000;

/** Incremental grid builder shared by the figure definitions. */
struct GridBuilder
{
    std::uint64_t insts;
    std::uint64_t seed;
    std::vector<SweepJob> jobs;

    ExperimentKnobs
    baseKnobs() const
    {
        ExperimentKnobs k;
        k.instsPerCore = insts;
        k.seed = seed;
        return k;
    }

    void
    add(const WorkloadProfile &profile, SystemVariant variant,
        const ExperimentKnobs &knobs)
    {
        jobs.push_back({profile, variant, knobs});
    }

    /** profiles x variants at the base knobs. */
    void
    cross(const std::vector<WorkloadProfile> &profiles,
          std::initializer_list<SystemVariant> variants,
          const ExperimentKnobs &knobs)
    {
        for (const auto &p : profiles)
            for (SystemVariant v : variants)
                add(p, v, knobs);
    }
};

std::vector<WorkloadProfile>
sweepAppProfiles()
{
    std::vector<WorkloadProfile> out;
    for (const auto &name : sweepAppNames())
        out.push_back(profileByName(name));
    return out;
}

struct FigureDef
{
    const char *name;
    const char *description;
    void (*build)(GridBuilder &);
};

const FigureDef figureDefs[] = {
    {"fig01", "ReplayCache slowdown vs PMEM memory mode",
     [](GridBuilder &g) {
         g.cross(sweepAppProfiles(),
                 {SystemVariant::MemoryMode, SystemVariant::ReplayCache},
                 g.baseKnobs());
     }},
    {"fig05", "free INT/FP physical-register CDFs on the baseline",
     [](GridBuilder &g) {
         g.cross(allProfiles(), {SystemVariant::MemoryMode},
                 g.baseKnobs());
     }},
    {"fig08", "PPA and Capri slowdown vs memory mode, all 41 apps",
     [](GridBuilder &g) {
         g.cross(allProfiles(),
                 {SystemVariant::MemoryMode, SystemVariant::Ppa,
                  SystemVariant::Capri},
                 g.baseKnobs());
     }},
    {"fig09", "memory mode and PPA slowdown vs a DRAM-only system",
     [](GridBuilder &g) {
         g.cross(allProfiles(),
                 {SystemVariant::DramOnly, SystemVariant::MemoryMode,
                  SystemVariant::Ppa},
                 g.baseKnobs());
     }},
    {"fig10", "PPA vs ideal PSP (eADR/BBB) on memory-intensive apps",
     [](GridBuilder &g) {
         g.cross(memoryIntensiveProfiles(),
                 {SystemVariant::MemoryMode, SystemVariant::Ppa,
                  SystemVariant::EadrBbb},
                 g.baseKnobs());
     }},
    {"fig11", "region-end stall cycles as a fraction of execution",
     [](GridBuilder &g) {
         g.cross(allProfiles(), {SystemVariant::Ppa}, g.baseKnobs());
     }},
    {"fig12", "extra rename stalls (no free phys reg) under PPA",
     [](GridBuilder &g) {
         g.cross(allProfiles(),
                 {SystemVariant::MemoryMode, SystemVariant::Ppa},
                 g.baseKnobs());
     }},
    {"fig13", "dynamic region size (stores/others per region)",
     [](GridBuilder &g) {
         g.cross(allProfiles(), {SystemVariant::Ppa}, g.baseKnobs());
     }},
    {"fig14", "PPA slowdown with a shared L3 atop the DRAM cache",
     [](GridBuilder &g) {
         ExperimentKnobs k = g.baseKnobs();
         k.l3Cache = true;
         g.cross(allProfiles(),
                 {SystemVariant::MemoryMode, SystemVariant::Ppa}, k);
     }},
    {"fig15", "PPA slowdown vs WPQ size (8/16/24 entries)",
     [](GridBuilder &g) {
         for (unsigned wpq : {8u, 16u, 24u}) {
             ExperimentKnobs k = g.baseKnobs();
             k.wpqEntries = wpq;
             g.cross(sweepAppProfiles(),
                     {SystemVariant::MemoryMode, SystemVariant::Ppa},
                     k);
         }
     }},
    {"fig16", "PPA slowdown vs PRF size (80/80 .. 280/224)",
     [](GridBuilder &g) {
         constexpr unsigned prf[][2] = {{80, 80},   {100, 100},
                                        {120, 120}, {140, 140},
                                        {180, 168}, {280, 224}};
         for (const auto &p : prf) {
             ExperimentKnobs k = g.baseKnobs();
             k.intPrf = p[0];
             k.fpPrf = p[1];
             g.cross(sweepAppProfiles(),
                     {SystemVariant::MemoryMode, SystemVariant::Ppa},
                     k);
         }
     }},
    {"fig17", "PPA slowdown vs CSQ size (10..50 entries)",
     [](GridBuilder &g) {
         for (unsigned csq : {10u, 20u, 30u, 40u, 50u}) {
             ExperimentKnobs k = g.baseKnobs();
             k.csqEntries = csq;
             g.cross(sweepAppProfiles(),
                     {SystemVariant::MemoryMode, SystemVariant::Ppa},
                     k);
         }
     }},
    {"fig18", "PPA slowdown vs NVM write bandwidth (1..6 GB/s)",
     [](GridBuilder &g) {
         for (double bw : {1.0, 2.3, 4.0, 6.0}) {
             ExperimentKnobs k = g.baseKnobs();
             k.nvmWriteGbps = bw;
             g.cross(sweepAppProfiles(),
                     {SystemVariant::MemoryMode, SystemVariant::Ppa},
                     k);
         }
     }},
    {"fig19", "PPA slowdown vs thread count (MT suites, 8..64T)",
     [](GridBuilder &g) {
         std::vector<WorkloadProfile> mt;
         for (const char *name :
              {"rb", "tpcc", "r20w80", "water-ns", "ocean", "genome"})
             mt.push_back(profileByName(name));
         for (unsigned threads : {8u, 16u, 32u, 64u}) {
             ExperimentKnobs k = g.baseKnobs();
             k.threads = threads;
             // Keep total simulated work bounded as threads scale
             // (matches bench/fig19_thread_sweep.cc).
             k.instsPerCore = std::min<std::uint64_t>(k.instsPerCore,
                                                      8'000);
             g.cross(mt, {SystemVariant::MemoryMode, SystemVariant::Ppa},
                     k);
         }
     }},
    {"table01", "CLWB vs PPA store-queue pressure demonstration",
     [](GridBuilder &g) {
         g.cross({profileByName("hmmer")},
                 {SystemVariant::MemoryMode, SystemVariant::ReplayCache,
                  SystemVariant::Ppa},
                 g.baseKnobs());
     }},
    {"table06", "PPA vs prior WSP schemes, measured columns",
     [](GridBuilder &g) {
         g.cross({profileByName("gcc")},
                 {SystemVariant::MemoryMode, SystemVariant::Ppa,
                  SystemVariant::Capri, SystemVariant::ReplayCache},
                 g.baseKnobs());
     }},
    {"ablation", "PPA design-choice ablation grid",
     [](GridBuilder &g) {
         ExperimentKnobs base = g.baseKnobs();
         ExperimentKnobs nocoal = base;
         nocoal.wbCoalesceWindow = 0;
         ExperimentKnobs tiny = base;
         tiny.intPrf = 80;
         tiny.fpPrf = 80;
         for (const char *name :
              {"gcc", "hmmer", "lbm", "rb", "water-ns", "tpcc"}) {
             const auto &p = profileByName(name);
             g.add(p, SystemVariant::MemoryMode, base);
             g.add(p, SystemVariant::Ppa, base);
             g.add(p, SystemVariant::Ppa, nocoal);
             g.add(p, SystemVariant::MemoryMode, tiny);
             g.add(p, SystemVariant::Ppa, tiny);
             g.add(p, SystemVariant::ReplayCache, base);
         }
     }},
};

const FigureDef *
findFigure(const std::string &name)
{
    for (const FigureDef &def : figureDefs)
        if (name == def.name)
            return &def;
    return nullptr;
}

} // namespace

const std::vector<std::string> &
sweepAppNames()
{
    static const std::vector<std::string> apps{
        "gcc",  "hmmer",  "lbm",    "mcf",      "libquantum",
        "rb",   "tpcc",   "sps",    "water-ns", "ocean",
        "lulesh", "xsbench"};
    return apps;
}

std::vector<std::string>
figureNames()
{
    std::vector<std::string> names;
    for (const FigureDef &def : figureDefs)
        names.push_back(def.name);
    return names;
}

bool
figureExists(const std::string &name)
{
    return findFigure(name) != nullptr;
}

FigureSweep
figureSweep(const std::string &name, std::uint64_t instsPerCore,
            std::uint64_t seed)
{
    const FigureDef *def = findFigure(name);
    if (!def)
        fatal("unknown figure sweep '", name,
              "' (try `ppa_cli sweep --list`)");
    GridBuilder g{instsPerCore ? instsPerCore : defaultInsts, seed, {}};
    def->build(g);
    return {def->name, def->description, std::move(g.jobs)};
}

FigureSweep
throughputSweep(std::uint64_t instsPerCore, std::uint64_t seed)
{
    // Larger default budget than the figure sweeps: KIPS measurement
    // wants per-job simulation time to dominate per-job system
    // construction.
    constexpr std::uint64_t defaultThroughputInsts = 60'000;
    GridBuilder g{instsPerCore ? instsPerCore : defaultThroughputInsts,
                  seed, {}};
    g.cross(sweepAppProfiles(),
            {SystemVariant::Ppa, SystemVariant::Capri,
             SystemVariant::ReplayCache},
            g.baseKnobs());
    return {"BENCH_throughput",
            "simulated-KIPS host throughput, representative apps x "
            "persistence variants",
            std::move(g.jobs)};
}

} // namespace ppa
