#include "sim/report.hh"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace ppa
{
namespace metrics
{

std::string
formatDouble(double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    PPA_ASSERT(res.ec == std::errc{}, "double format failed");
    return std::string(buf, res.ptr);
}

namespace
{

std::string
histToJson(const stats::Histogram &h)
{
    std::ostringstream os;
    os << "{\"maxValue\": " << h.maxValue()
       << ", \"total\": " << h.count()
       << ", \"overflow\": " << h.overflowCount() << ", \"bins\": [";
    const auto &bins = h.binCounts();
    for (std::size_t i = 0; i < bins.size(); ++i) {
        if (i)
            os << ", ";
        os << bins[i];
    }
    os << "]}";
    return os.str();
}

stats::Histogram
histFromJson(const JsonValue &v)
{
    const JsonValue &bins = v.field("bins");
    std::vector<std::uint64_t> counts;
    counts.reserve(bins.size());
    for (std::size_t i = 0; i < bins.size(); ++i)
        counts.push_back(bins.at(i).asUint64());
    // "overflow" is absent in pre-v1.1 reports; treat it as zero.
    std::uint64_t overflow =
        v.hasField("overflow") ? v.field("overflow").asUint64() : 0;
    return stats::Histogram::fromBins(std::move(counts), overflow);
}

const char *
regionCauseToken(RegionEndCause cause)
{
    switch (cause) {
      case RegionEndCause::PrfExhausted:
        return "prfExhausted";
      case RegionEndCause::CsqFull:
        return "csqFull";
      case RegionEndCause::SyncPrimitive:
        return "syncPrimitive";
      case RegionEndCause::EndOfRun:
        return "endOfRun";
    }
    return "?";
}

RegionEndCause
regionCauseFromToken(const std::string &token)
{
    if (token == "prfExhausted")
        return RegionEndCause::PrfExhausted;
    if (token == "csqFull")
        return RegionEndCause::CsqFull;
    if (token == "syncPrimitive")
        return RegionEndCause::SyncPrimitive;
    if (token == "endOfRun")
        return RegionEndCause::EndOfRun;
    fatal("unknown region-end cause token '", token, "'");
}

void
uintArrayToJson(std::ostringstream &os,
                const std::vector<std::uint64_t> &values)
{
    os << "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << values[i];
    os << "]";
}

std::vector<std::uint64_t>
uintArrayFromJson(const JsonValue &v)
{
    std::vector<std::uint64_t> out;
    out.reserve(v.size());
    for (const JsonValue &e : v.items())
        out.push_back(e.asUint64());
    return out;
}

} // namespace

std::string
telemetryToJson(const obs::TelemetryResult &t)
{
    std::ostringstream os;
    os << "{\"sampleCycles\": " << t.sampleCycles
       << ", \"seriesCap\": " << t.seriesCap
       << ", \"coveredCycles\": " << t.coveredCycles;
    os << ", \"stallCycles\": [";
    for (std::size_t c = 0; c < t.stallCycles.size(); ++c) {
        os << (c ? ", " : "") << "{";
        for (unsigned k = 0; k < obs::kCycleClassCount; ++k) {
            os << (k ? ", " : "") << "\""
               << obs::cycleClassKey(static_cast<obs::CycleClass>(k))
               << "\": " << t.stallCycles[c][k];
        }
        os << "}";
    }
    os << "]";
    os << ", \"series\": [";
    for (std::size_t i = 0; i < t.series.size(); ++i) {
        const obs::TelemetrySeries &s = t.series[i];
        os << (i ? ", " : "") << "{\"name\": \"" << jsonEscape(s.name)
           << "\", \"core\": " << s.core << ", \"cycles\": ";
        uintArrayToJson(os, s.cycles);
        os << ", \"counts\": ";
        uintArrayToJson(os, s.counts);
        os << ", \"sums\": ";
        uintArrayToJson(os, s.sums);
        // Derived summary, re-emitted for plotting convenience; the
        // reader recomputes it from the buckets above.
        os << ", \"mean\": " << formatDouble(s.mean())
           << ", \"p50\": " << formatDouble(s.percentile(0.50))
           << ", \"p95\": " << formatDouble(s.percentile(0.95))
           << ", \"p99\": " << formatDouble(s.percentile(0.99))
           << ", \"p999\": " << formatDouble(s.percentile(0.999))
           << ", \"p9999\": " << formatDouble(s.percentile(0.9999))
           << ", \"max\": " << formatDouble(s.maxBucketMean()) << "}";
    }
    os << "]";
    os << ", \"regionEvents\": {\"dropped\": " << t.droppedRegionEvents
       << ", \"events\": [";
    for (std::size_t i = 0; i < t.regionEvents.size(); ++i) {
        const obs::TelemetryRegionEvent &e = t.regionEvents[i];
        os << (i ? ", " : "") << "[" << e.core << ", " << e.start
           << ", " << e.drainStart << ", " << e.end << ", \""
           << regionCauseToken(e.cause) << "\"]";
    }
    os << "]}";
    os << ", \"powerEvents\": [";
    for (std::size_t i = 0; i < t.powerEvents.size(); ++i) {
        const obs::TelemetryPowerEvent &e = t.powerEvents[i];
        os << (i ? ", " : "") << "[" << e.core << ", " << e.fail << ", "
           << e.recover << ", " << (e.recovered ? "true" : "false")
           << "]";
    }
    os << "]";
    // Request spans exist only for the serving harness; omitting the
    // member entirely elsewhere keeps classic documents byte-stable.
    if (!t.requestSpans.empty() || t.droppedRequestSpans) {
        os << ", \"requestSpans\": {\"dropped\": "
           << t.droppedRequestSpans << ", \"spans\": [";
        for (std::size_t i = 0; i < t.requestSpans.size(); ++i) {
            const obs::TelemetryRequestSpan &e = t.requestSpans[i];
            os << (i ? ", " : "") << "[" << e.core << ", " << e.seq
               << ", " << e.arrival << ", " << e.start << ", "
               << e.finish << "]";
        }
        os << "]}";
    }
    os << "}";
    return os.str();
}

namespace
{

obs::TelemetryResult
telemetryFromJson(const JsonValue &v)
{
    obs::TelemetryResult t;
    t.enabled = true;
    t.sampleCycles = v.field("sampleCycles").asUint64();
    t.seriesCap = v.field("seriesCap").asUint64();
    t.coveredCycles = v.field("coveredCycles").asUint64();
    for (const JsonValue &row : v.field("stallCycles").items()) {
        std::array<std::uint64_t, obs::kCycleClassCount> counts{};
        for (unsigned k = 0; k < obs::kCycleClassCount; ++k) {
            counts[k] =
                row.field(obs::cycleClassKey(
                              static_cast<obs::CycleClass>(k)))
                    .asUint64();
        }
        t.stallCycles.push_back(counts);
    }
    for (const JsonValue &sv : v.field("series").items()) {
        obs::TelemetrySeries s;
        s.name = sv.field("name").asString();
        s.core = static_cast<int>(sv.field("core").asDouble());
        s.cycles = uintArrayFromJson(sv.field("cycles"));
        s.counts = uintArrayFromJson(sv.field("counts"));
        s.sums = uintArrayFromJson(sv.field("sums"));
        t.series.push_back(std::move(s));
    }
    const JsonValue &re = v.field("regionEvents");
    t.droppedRegionEvents = re.field("dropped").asUint64();
    for (const JsonValue &ev : re.field("events").items()) {
        obs::TelemetryRegionEvent e;
        e.core = static_cast<unsigned>(ev.at(0).asUint64());
        e.start = ev.at(1).asUint64();
        e.drainStart = ev.at(2).asUint64();
        e.end = ev.at(3).asUint64();
        e.cause = regionCauseFromToken(ev.at(4).asString());
        t.regionEvents.push_back(e);
    }
    for (const JsonValue &ev : v.field("powerEvents").items()) {
        obs::TelemetryPowerEvent e;
        e.core = static_cast<unsigned>(ev.at(0).asUint64());
        e.fail = ev.at(1).asUint64();
        e.recover = ev.at(2).asUint64();
        e.recovered = ev.at(3).asBool();
        t.powerEvents.push_back(e);
    }
    // Absent in classic documents (and all pre-serve reports).
    if (v.hasField("requestSpans")) {
        const JsonValue &rs = v.field("requestSpans");
        t.droppedRequestSpans = rs.field("dropped").asUint64();
        for (const JsonValue &ev : rs.field("spans").items()) {
            obs::TelemetryRequestSpan e;
            e.core = static_cast<unsigned>(ev.at(0).asUint64());
            e.seq = ev.at(1).asUint64();
            e.arrival = ev.at(2).asUint64();
            e.start = ev.at(3).asUint64();
            e.finish = ev.at(4).asUint64();
            t.requestSpans.push_back(e);
        }
    }
    return t;
}

} // namespace

// ---------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------

bool
JsonValue::asBool() const
{
    PPA_ASSERT(k == Kind::Bool, "JSON value is not a bool");
    return boolVal;
}

double
JsonValue::asDouble() const
{
    PPA_ASSERT(k == Kind::Number, "JSON value is not a number");
    return std::strtod(text.c_str(), nullptr);
}

std::uint64_t
JsonValue::asUint64() const
{
    PPA_ASSERT(k == Kind::Number, "JSON value is not a number");
    // Integer counters are serialized without exponent/fraction, so
    // parsing the token text preserves all 64 bits.
    return std::strtoull(text.c_str(), nullptr, 10);
}

const std::string &
JsonValue::asString() const
{
    PPA_ASSERT(k == Kind::String, "JSON value is not a string");
    return text;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    PPA_ASSERT(k == Kind::Array, "JSON value is not an array");
    return children;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    const auto &arr = items();
    PPA_ASSERT(i < arr.size(), "JSON array index out of range");
    return arr[i];
}

bool
JsonValue::hasField(const std::string &key) const
{
    PPA_ASSERT(k == Kind::Object, "JSON value is not an object");
    for (const auto &[name, val] : members)
        if (name == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::field(const std::string &key) const
{
    PPA_ASSERT(k == Kind::Object, "JSON value is not an object");
    for (const auto &[name, val] : members)
        if (name == key)
            return val;
    fatal("JSON object has no field '", key, "'");
}

/** Recursive-descent parser for the JSON subset we emit. */
class JsonParser
{
  public:
    JsonParser(const std::string &src) : s(src) {}

    bool
    parse(JsonValue &out, std::string &error)
    {
        ok = true;
        err.clear();
        skipWs();
        out = parseValue();
        skipWs();
        if (ok && pos != s.size())
            fail("trailing characters after document");
        error = err;
        return ok;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (ok) {
            ok = false;
            err = what + " at offset " + std::to_string(pos);
        }
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::strlen(w);
        if (s.compare(pos, n, w) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        if (!ok || pos >= s.size()) {
            fail("unexpected end of input");
            return {};
        }
        char c = s[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            if (!consumeWord("null"))
                fail("bad literal");
            return {};
        }
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Object;
        consume('{');
        skipWs();
        if (consume('}'))
            return v;
        for (;;) {
            skipWs();
            JsonValue key = parseString();
            if (!ok)
                return v;
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return v;
            }
            skipWs();
            v.members.emplace_back(key.text, parseValue());
            skipWs();
            if (consume('}'))
                return v;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return v;
            }
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Array;
        consume('[');
        skipWs();
        if (consume(']'))
            return v;
        for (;;) {
            skipWs();
            v.children.push_back(parseValue());
            skipWs();
            if (consume(']'))
                return v;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return v;
            }
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.k = JsonValue::Kind::String;
        if (!consume('"')) {
            fail("expected string");
            return v;
        }
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                v.text += c;
                continue;
            }
            if (pos >= s.size())
                break;
            char esc = s[pos++];
            switch (esc) {
              case '"': v.text += '"'; break;
              case '\\': v.text += '\\'; break;
              case '/': v.text += '/'; break;
              case 'b': v.text += '\b'; break;
              case 'f': v.text += '\f'; break;
              case 'n': v.text += '\n'; break;
              case 'r': v.text += '\r'; break;
              case 't': v.text += '\t'; break;
              case 'u': {
                // We only emit \u00XX for control characters.
                if (pos + 4 > s.size()) {
                    fail("bad \\u escape");
                    return v;
                }
                unsigned code = static_cast<unsigned>(
                    std::strtoul(s.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                if (code > 0xff) {
                    fail("non-latin \\u escape unsupported");
                    return v;
                }
                v.text += static_cast<char>(code);
                break;
              }
              default:
                fail("bad escape");
                return v;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Bool;
        if (consumeWord("true"))
            v.boolVal = true;
        else if (consumeWord("false"))
            v.boolVal = false;
        else
            fail("bad literal");
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Number;
        std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        bool digits = false;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '-' || s[pos] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(s[pos])))
                digits = true;
            ++pos;
        }
        if (!digits) {
            fail("expected number");
            return v;
        }
        v.text = s.substr(start, pos - start);
        return v;
    }

    const std::string &s;
    std::size_t pos = 0;
    bool ok = true;
    std::string err;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string &error)
{
    return JsonParser(text).parse(out, error);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// RunStats / sweep serialization
// ---------------------------------------------------------------------

std::string
runStatsToJson(const RunStats &rs)
{
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << jsonEscape(rs.workload) << "\"";
    os << ", \"variant\": \"" << variantToken(rs.variant) << "\"";
    os << ", \"threads\": " << rs.threads;
    os << ", \"cycles\": " << rs.cycles;
    os << ", \"totalCycles\": " << rs.totalCycles;
    os << ", \"committedInsts\": " << rs.committedInsts;
    os << ", \"committedStores\": " << rs.committedStores;
    os << ", \"ipc\": " << formatDouble(rs.ipc);
    os << ", \"avgRegionStores\": " << formatDouble(rs.avgRegionStores);
    os << ", \"avgRegionOthers\": " << formatDouble(rs.avgRegionOthers);
    os << ", \"regionCount\": " << rs.regionCount;
    os << ", \"boundaryStallCycles\": " << rs.boundaryStallCycles;
    os << ", \"renameStallNoRegCycles\": " << rs.renameStallNoRegCycles;
    // Derived ratios, re-emitted for plotting convenience; the reader
    // recomputes them from the counters above.
    os << ", \"boundaryStallRatio\": "
       << formatDouble(rs.boundaryStallRatio());
    os << ", \"renameStallRatio\": "
       << formatDouble(rs.renameStallRatio());
    os << ", \"nvmWrites\": " << rs.nvmWrites;
    os << ", \"nvmReads\": " << rs.nvmReads;
    os << ", \"nvmBytesWritten\": " << rs.nvmBytesWritten;
    os << ", \"wpqStallCycles\": " << rs.wpqStallCycles;
    os << ", \"l2MissRatio\": " << formatDouble(rs.l2MissRatio);
    os << ", \"coalescedStores\": " << rs.coalescedStores;
    os << ", \"persistOps\": " << rs.persistOps;
    os << ", \"freeIntHist\": " << histToJson(rs.freeIntHist);
    os << ", \"freeFpHist\": " << histToJson(rs.freeFpHist);
    os << ", \"auditEvents\": " << rs.auditEvents;
    os << ", \"auditViolations\": " << rs.auditViolations;
    os << ", \"powerFailures\": " << rs.powerFailures;
    os << ", \"replayAudits\": " << rs.replayAudits;
    os << ", \"replayMismatches\": " << rs.replayMismatches;
    os << ", \"replayAddrsChecked\": " << rs.replayAddrsChecked;
    os << ", \"auditMessages\": [";
    for (std::size_t i = 0; i < rs.auditMessages.size(); ++i) {
        os << (i ? ", " : "") << "\"" << jsonEscape(rs.auditMessages[i])
           << "\"";
    }
    os << "]";
    // Trace provenance: emitted only for trace-driven runs, so
    // generator-driven results are unchanged (schema stays additive).
    if (!rs.traceDir.empty()) {
        char crc[16];
        std::snprintf(crc, sizeof(crc), "%08x", rs.traceCrc);
        os << ", \"trace\": {\"dir\": \"" << jsonEscape(rs.traceDir)
           << "\", \"shards\": " << rs.traceShards
           << ", \"insts\": " << rs.traceInsts << ", \"crc32\": \"" << crc
           << "\"}";
    }
    // Time-parallel provenance: emitted only for segmented runs, so
    // classic results are unchanged (schema stays additive).
    if (rs.tpSegments) {
        os << ", \"tp\": {\"segments\": " << rs.tpSegments
           << ", \"simulatedSegments\": " << rs.tpSimulatedSegments
           << ", \"warmupInsts\": " << rs.tpWarmupInsts
           << ", \"sampleStride\": " << rs.tpSampleStride
           << ", \"warmupCycles\": " << rs.tpWarmupCycles
           << ", \"cpiRelStderr\": "
           << formatDouble(rs.tpCpiRelStderr) << "}";
    }
    // Telemetry: emitted only for telemetry-enabled runs, so classic
    // results are unchanged (schema stays additive).
    if (rs.telemetry.enabled)
        os << ", \"telemetry\": " << telemetryToJson(rs.telemetry);
    os << "}";
    return os.str();
}

RunStats
runStatsFromJson(const JsonValue &v)
{
    RunStats rs;
    rs.workload = v.field("workload").asString();
    if (!variantFromToken(v.field("variant").asString(), rs.variant))
        fatal("unknown variant token '",
              v.field("variant").asString(), "'");
    rs.threads = static_cast<unsigned>(v.field("threads").asUint64());
    rs.cycles = v.field("cycles").asUint64();
    rs.totalCycles = v.field("totalCycles").asUint64();
    rs.committedInsts = v.field("committedInsts").asUint64();
    rs.committedStores = v.field("committedStores").asUint64();
    rs.ipc = v.field("ipc").asDouble();
    rs.avgRegionStores = v.field("avgRegionStores").asDouble();
    rs.avgRegionOthers = v.field("avgRegionOthers").asDouble();
    rs.regionCount = v.field("regionCount").asUint64();
    rs.boundaryStallCycles = v.field("boundaryStallCycles").asUint64();
    rs.renameStallNoRegCycles =
        v.field("renameStallNoRegCycles").asUint64();
    rs.nvmWrites = v.field("nvmWrites").asUint64();
    rs.nvmReads = v.field("nvmReads").asUint64();
    rs.nvmBytesWritten = v.field("nvmBytesWritten").asUint64();
    rs.wpqStallCycles = v.field("wpqStallCycles").asUint64();
    rs.l2MissRatio = v.field("l2MissRatio").asDouble();
    rs.coalescedStores = v.field("coalescedStores").asUint64();
    rs.persistOps = v.field("persistOps").asUint64();
    rs.freeIntHist = histFromJson(v.field("freeIntHist"));
    rs.freeFpHist = histFromJson(v.field("freeFpHist"));
    // Audit fields arrived with schema additions; older result files
    // simply lack them.
    if (v.hasField("auditEvents")) {
        rs.auditEvents = v.field("auditEvents").asUint64();
        rs.auditViolations = v.field("auditViolations").asUint64();
        rs.powerFailures = v.field("powerFailures").asUint64();
        rs.replayAudits = v.field("replayAudits").asUint64();
        rs.replayMismatches = v.field("replayMismatches").asUint64();
        rs.replayAddrsChecked =
            v.field("replayAddrsChecked").asUint64();
        for (const JsonValue &m : v.field("auditMessages").items())
            rs.auditMessages.push_back(m.asString());
    }
    if (v.hasField("trace")) {
        const JsonValue &t = v.field("trace");
        rs.traceDir = t.field("dir").asString();
        rs.traceShards =
            static_cast<unsigned>(t.field("shards").asUint64());
        rs.traceInsts = t.field("insts").asUint64();
        rs.traceCrc = static_cast<std::uint32_t>(
            std::stoul(t.field("crc32").asString(), nullptr, 16));
    }
    if (v.hasField("tp")) {
        const JsonValue &t = v.field("tp");
        rs.tpSegments =
            static_cast<unsigned>(t.field("segments").asUint64());
        rs.tpSimulatedSegments = static_cast<unsigned>(
            t.field("simulatedSegments").asUint64());
        rs.tpWarmupInsts = t.field("warmupInsts").asUint64();
        rs.tpSampleStride =
            static_cast<unsigned>(t.field("sampleStride").asUint64());
        rs.tpWarmupCycles = t.field("warmupCycles").asUint64();
        rs.tpCpiRelStderr = t.field("cpiRelStderr").asDouble();
    }
    if (v.hasField("telemetry"))
        rs.telemetry = telemetryFromJson(v.field("telemetry"));
    return rs;
}

std::string
knobsToJson(const ExperimentKnobs &k)
{
    std::ostringstream os;
    os << "{";
    os << "\"threads\": " << k.threads;
    os << ", \"wpqEntries\": " << k.wpqEntries;
    os << ", \"intPrf\": " << k.intPrf;
    os << ", \"fpPrf\": " << k.fpPrf;
    os << ", \"csqEntries\": " << k.csqEntries;
    os << ", \"nvmWriteGbps\": " << formatDouble(k.nvmWriteGbps);
    os << ", \"l3Cache\": " << (k.l3Cache ? "true" : "false");
    os << ", \"wbCoalesceWindow\": " << k.wbCoalesceWindow;
    os << ", \"instsPerCore\": " << k.instsPerCore;
    os << ", \"seed\": " << k.seed;
    os << ", \"warmupFraction\": " << formatDouble(k.warmupFraction);
    os << ", \"audit\": " << (k.audit ? "true" : "false");
    os << ", \"failAtCycles\": [";
    for (std::size_t i = 0; i < k.failAtCycles.size(); ++i)
        os << (i ? ", " : "") << k.failAtCycles[i];
    os << "]";
    if (!k.traceDir.empty())
        os << ", \"traceDir\": \"" << jsonEscape(k.traceDir) << "\"";
    // Time-parallel knobs: emitted only when segmentation is active,
    // keeping classic job documents byte-stable.
    if (k.timeParallel >= 2) {
        os << ", \"timeParallel\": " << k.timeParallel;
        os << ", \"tpWarmupInsts\": " << k.tpWarmupInsts;
        os << ", \"tpSampleStride\": " << k.tpSampleStride;
        os << ", \"tpFailAt\": [";
        for (std::size_t i = 0; i < k.tpFailAt.size(); ++i) {
            os << (i ? ", " : "") << "{\"segment\": "
               << k.tpFailAt[i].segment << ", \"cycle\": "
               << k.tpFailAt[i].cycle << "}";
        }
        os << "]";
    }
    // Telemetry knobs: emitted only when telemetry is on, keeping
    // classic job documents byte-stable.
    if (k.telemetry) {
        os << ", \"telemetry\": true";
        os << ", \"telemetrySampleCycles\": " << k.telemetrySampleCycles;
        os << ", \"telemetrySeriesCap\": " << k.telemetrySeriesCap;
    }
    os << "}";
    return os.str();
}

ExperimentKnobs
knobsFromJson(const JsonValue &v)
{
    ExperimentKnobs k;
    k.threads = static_cast<unsigned>(v.field("threads").asUint64());
    k.wpqEntries =
        static_cast<unsigned>(v.field("wpqEntries").asUint64());
    k.intPrf = static_cast<unsigned>(v.field("intPrf").asUint64());
    k.fpPrf = static_cast<unsigned>(v.field("fpPrf").asUint64());
    k.csqEntries =
        static_cast<unsigned>(v.field("csqEntries").asUint64());
    k.nvmWriteGbps = v.field("nvmWriteGbps").asDouble();
    k.l3Cache = v.field("l3Cache").asBool();
    k.wbCoalesceWindow =
        static_cast<unsigned>(v.field("wbCoalesceWindow").asUint64());
    k.instsPerCore = v.field("instsPerCore").asUint64();
    k.seed = v.field("seed").asUint64();
    k.warmupFraction = v.field("warmupFraction").asDouble();
    if (v.hasField("audit")) {
        k.audit = v.field("audit").asBool();
        for (const JsonValue &c : v.field("failAtCycles").items())
            k.failAtCycles.push_back(c.asUint64());
    }
    if (v.hasField("traceDir"))
        k.traceDir = v.field("traceDir").asString();
    // tpWorkers is deliberately absent: host scheduling metadata,
    // excluded from the determinism contract like driver workers.
    if (v.hasField("timeParallel")) {
        k.timeParallel =
            static_cast<unsigned>(v.field("timeParallel").asUint64());
        k.tpWarmupInsts = v.field("tpWarmupInsts").asUint64();
        k.tpSampleStride = static_cast<unsigned>(
            v.field("tpSampleStride").asUint64());
        for (const JsonValue &f : v.field("tpFailAt").items()) {
            ExperimentKnobs::SegmentFailure sf;
            sf.segment = static_cast<unsigned>(
                f.field("segment").asUint64());
            sf.cycle = f.field("cycle").asUint64();
            k.tpFailAt.push_back(sf);
        }
    }
    if (v.hasField("telemetry")) {
        k.telemetry = v.field("telemetry").asBool();
        k.telemetrySampleCycles =
            v.field("telemetrySampleCycles").asUint64();
        k.telemetrySeriesCap = v.field("telemetrySeriesCap").asUint64();
    }
    return k;
}

std::string
sweepToJson(const std::string &sweepName,
            const std::vector<JobResult> &results,
            const std::vector<std::pair<std::string, double>> &extra)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schemaVersion\": " << schemaVersion << ",\n";
    os << "  \"sweep\": \"" << jsonEscape(sweepName) << "\",\n";
    os << "  \"jobs\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"workload\": \"" << jsonEscape(r.job.profile.name)
           << "\", \"suite\": \"" << suiteName(r.job.profile.suite)
           << "\", \"variant\": \"" << variantToken(r.job.variant)
           << "\", \"knobs\": " << knobsToJson(r.job.knobs)
           << ", \"wallSeconds\": " << formatDouble(r.wallSeconds)
           << ", \"stats\": " << runStatsToJson(r.stats) << "}";
    }
    os << (results.empty() ? "]" : "\n  ]");
    if (!extra.empty()) {
        os << ",\n  \"extra\": {";
        for (std::size_t i = 0; i < extra.size(); ++i) {
            os << (i ? ", " : "") << "\"" << jsonEscape(extra[i].first)
               << "\": " << formatDouble(extra[i].second);
        }
        os << "}";
    }
    os << "\n}\n";
    return os.str();
}

std::string
sweepToCsv(const std::vector<JobResult> &results)
{
    std::ostringstream os;
    os << "workload,suite,variant,threads,wpqEntries,intPrf,fpPrf,"
          "csqEntries,nvmWriteGbps,l3Cache,wbCoalesceWindow,"
          "instsPerCore,seed,warmupFraction,cycles,totalCycles,"
          "committedInsts,committedStores,ipc,avgRegionStores,"
          "avgRegionOthers,regionCount,boundaryStallCycles,"
          "renameStallNoRegCycles,boundaryStallRatio,renameStallRatio,"
          "nvmWrites,nvmReads,nvmBytesWritten,wpqStallCycles,"
          "l2MissRatio,coalescedStores,persistOps,freeIntP25,"
          "freeIntMean,freeFpP25,freeFpMean,wallSeconds,"
          "auditEvents,auditViolations,powerFailures,replayAudits,"
          "replayMismatches\n";
    for (const JobResult &r : results) {
        const RunStats &rs = r.stats;
        const ExperimentKnobs &k = r.job.knobs;
        os << rs.workload << ',' << suiteName(r.job.profile.suite)
           << ',' << variantToken(r.job.variant) << ',' << rs.threads
           << ',' << k.wpqEntries << ',' << k.intPrf << ',' << k.fpPrf
           << ',' << k.csqEntries << ','
           << formatDouble(k.nvmWriteGbps) << ','
           << (k.l3Cache ? 1 : 0) << ',' << k.wbCoalesceWindow << ','
           << k.instsPerCore << ',' << k.seed << ','
           << formatDouble(k.warmupFraction) << ',' << rs.cycles << ','
           << rs.totalCycles << ',' << rs.committedInsts << ','
           << rs.committedStores << ',' << formatDouble(rs.ipc) << ','
           << formatDouble(rs.avgRegionStores) << ','
           << formatDouble(rs.avgRegionOthers) << ',' << rs.regionCount
           << ',' << rs.boundaryStallCycles << ','
           << rs.renameStallNoRegCycles << ','
           << formatDouble(rs.boundaryStallRatio()) << ','
           << formatDouble(rs.renameStallRatio()) << ','
           << rs.nvmWrites << ',' << rs.nvmReads << ','
           << rs.nvmBytesWritten << ',' << rs.wpqStallCycles << ','
           << formatDouble(rs.l2MissRatio) << ','
           << rs.coalescedStores << ',' << rs.persistOps << ','
           << rs.freeIntHist.percentile(0.25) << ','
           << formatDouble(rs.freeIntHist.mean()) << ','
           << rs.freeFpHist.percentile(0.25) << ','
           << formatDouble(rs.freeFpHist.mean()) << ','
           << formatDouble(r.wallSeconds) << ','
           << rs.auditEvents << ',' << rs.auditViolations << ','
           << rs.powerFailures << ',' << rs.replayAudits << ','
           << rs.replayMismatches << '\n';
    }
    return os.str();
}

// ---------------------------------------------------------------------
// File output
// ---------------------------------------------------------------------

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    out << contents;
    out.flush();
    if (!out) {
        warn("short write to '", path, "'");
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("cannot open '", path, "' for reading");
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        warn("read error on '", path, "'");
        return false;
    }
    out = ss.str();
    return true;
}

std::string
resultsDir()
{
    // Read once at startup, before any worker threads exist.
    if (const char *env = std::getenv("PPA_RESULTS_DIR")) // NOLINT(concurrency-mt-unsafe)
        return env;
    return "results";
}

} // namespace metrics
} // namespace ppa
