#include "sim/system.hh"

#include "common/logging.hh"

namespace ppa
{

System::System(const SystemConfig &config)
    : cfg(config), clockDomain(config.clockGhz * 1e9)
{
    PPA_ASSERT(cfg.numCores >= 1, "system needs at least one core");
    hierarchy = std::make_unique<MemHierarchy>(cfg.mem, cfg.numCores,
                                               clockDomain);
    if (cfg.core.mode == PersistMode::Capri) {
        // One chip-level persist path (4 GB/s) shared by all cores;
        // redo-buffer capacity pools the per-core 54 KB arrays.
        capriChannels.push_back(std::make_unique<CapriChannel>(
            clockDomain, 4.0, std::uint64_t{54} * KiB * cfg.numCores));
    }
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        cores.push_back(std::make_unique<Core>(cfg.core, c, *hierarchy));
        if (cfg.core.mode == PersistMode::Capri)
            cores.back()->bindCapriChannel(capriChannels.front().get());
    }
}

void
System::bindSource(unsigned core_id, DynInstSource *source)
{
    PPA_ASSERT(core_id < cores.size(), "bad core id");
    cores[core_id]->bindSource(source);
}

void
System::seedMemory(const MemImage &initial)
{
    initial.forEachWord([&](Addr a, Word v) {
        hierarchy->initializeWord(a, v);
    });
}

void
System::tick()
{
    hierarchy->tick(curCycle);
    for (auto &core : cores)
        core->tick();
    ++curCycle;
}

bool
System::allDone() const
{
    for (const auto &core : cores) {
        if (!core->done())
            return false;
    }
    return true;
}

Cycle
System::run(Cycle max_cycles)
{
    while (!allDone()) {
        if (max_cycles && curCycle >= max_cycles)
            break;
        tick();
    }
    // Orderly shutdown: flush dirty state so the NVM image is
    // complete. The flush happens off the measured clock — run-time
    // comparisons (the paper's methodology) do not charge the
    // baseline for a final whole-cache writeback.
    hierarchy->drainAll(curCycle);
    return curCycle;
}

void
System::runUntilCycle(Cycle target_cycle)
{
    while (curCycle < target_cycle && !allDone())
        tick();
}

std::vector<CheckpointImage>
System::powerFail()
{
    std::vector<CheckpointImage> images;
    images.reserve(cores.size());
    for (auto &core : cores)
        images.push_back(core->powerFail());
    hierarchy->powerFail();
    return images;
}

void
System::recover(const std::vector<CheckpointImage> &images)
{
    PPA_ASSERT(images.size() == cores.size(),
               "checkpoint count must match core count");
    // Arbitrary recovery order across cores is sound for DRF programs
    // (Section 6): each core's CSQ entries are disjoint.
    for (std::size_t c = 0; c < cores.size(); ++c)
        cores[c]->recover(images[c]);
}

std::uint64_t
System::totalCommitted() const
{
    std::uint64_t n = 0;
    for (const auto &core : cores)
        n += core->committedInsts();
    return n;
}

} // namespace ppa
