/**
 * @file
 * Structured export of experiment results.
 *
 * Serializes RunStats — including the free-register histograms — to a
 * versioned JSON schema (documented field by field in
 * docs/METRICS.md) and to flat CSV, so figure regeneration, plotting
 * scripts, and regression tooling can consume sweep output instead of
 * scraping stdout tables. A minimal JSON reader is included so
 * results round-trip (tests/sim/test_report.cc) and downstream tools
 * can load prior runs.
 */

#ifndef PPA_SIM_REPORT_HH
#define PPA_SIM_REPORT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "sim/experiment.hh"

namespace ppa
{
namespace metrics
{

/**
 * Version of the serialized document layout. Bump on any
 * field rename/removal or meaning change; additions of new fields are
 * backward compatible and do not require a bump. History in
 * docs/METRICS.md.
 */
constexpr int schemaVersion = 1;

// ---------------------------------------------------------------------
// Minimal JSON value model + parser (just enough for our own output).
// ---------------------------------------------------------------------

/** A parsed JSON value. Numbers keep their source text so 64-bit
 *  counters round-trip without double-precision loss. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }

    bool asBool() const;
    double asDouble() const;
    std::uint64_t asUint64() const;
    const std::string &asString() const;

    const std::vector<JsonValue> &items() const;
    std::size_t size() const { return items().size(); }
    const JsonValue &at(std::size_t i) const;

    /** Object field access; fatal() when @p key is absent. */
    const JsonValue &field(const std::string &key) const;
    bool hasField(const std::string &key) const;

    /**
     * Parse a JSON document. Returns false (and fills @p error) on
     * malformed input.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &error);

  private:
    friend class JsonParser;
    Kind k = Kind::Null;
    bool boolVal = false;
    std::string text;        // number token or string contents
    std::vector<JsonValue> children;
    std::vector<std::pair<std::string, JsonValue>> members;
};

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Shortest representation of @p v that parses back bitwise-equal
 *  (std::to_chars round-trip form). */
std::string formatDouble(double v);

/** Serialize a harvested telemetry result as the additive
 *  `stats.telemetry` JSON object (shared by run and serve reports). */
std::string telemetryToJson(const obs::TelemetryResult &t);

// ---------------------------------------------------------------------
// RunStats / sweep serialization.
// ---------------------------------------------------------------------

/** Serialize one RunStats (stats only, no knobs) as a JSON object. */
std::string runStatsToJson(const RunStats &stats);

/** Rebuild a RunStats from a JSON object parsed from runStatsToJson
 *  output. Derived ratio fields are recomputed, not read. */
RunStats runStatsFromJson(const JsonValue &v);

/** Serialize the knobs of one job as a JSON object. */
std::string knobsToJson(const ExperimentKnobs &knobs);

/** Rebuild knobs from a JSON object parsed from knobsToJson output. */
ExperimentKnobs knobsFromJson(const JsonValue &v);

/**
 * Full sweep document: schema version, sweep name, job array (spec +
 * stats + timing), and optional figure-specific scalars under
 * "extra" (used by the analytical-model tables that run no
 * simulations).
 */
std::string sweepToJson(
    const std::string &sweepName, const std::vector<JobResult> &results,
    const std::vector<std::pair<std::string, double>> &extra = {});

/**
 * Flat CSV of the same results: one row per job, scalar fields plus
 * histogram summary columns (bin-level data is JSON-only).
 */
std::string sweepToCsv(const std::vector<JobResult> &results);

// ---------------------------------------------------------------------
// File output.
// ---------------------------------------------------------------------

/** Write @p contents to @p path, creating parent directories.
 *  Returns false (with a warn()) on I/O failure. */
bool writeFile(const std::string &path, const std::string &contents);

/** Read @p path into @p out. Returns false (with a warn()) when the
 *  file is missing or unreadable. */
bool readFile(const std::string &path, std::string &out);

/** Directory sweep output lands in: $PPA_RESULTS_DIR or "results". */
std::string resultsDir();

} // namespace metrics
} // namespace ppa

#endif // PPA_SIM_REPORT_HH
