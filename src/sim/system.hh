/**
 * @file
 * A complete simulated system: N cores sharing a memory hierarchy.
 *
 * Owns the cores, the hierarchy, and (for the Capri baseline) the
 * per-core redo-buffer channels. Provides whole-system power-failure
 * injection and recovery: every core JIT-checkpoints independently and
 * recovery replays each core's CSQ in arbitrary core order, which is
 * safe for DRF programs because the cores' CSQ entries are disjoint
 * (paper Section 6).
 */

#ifndef PPA_SIM_SYSTEM_HH
#define PPA_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "baselines/capri.hh"
#include "core/core.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "mem/params.hh"

namespace ppa
{

/** Top-level configuration of a simulated system. */
struct SystemConfig
{
    CoreParams core;
    MemSystemParams mem;
    unsigned numCores = 1;
    double clockGhz = 2.0;
};

/**
 * The simulated machine.
 */
class System
{
  public:
    explicit System(const SystemConfig &config);

    /** Attach core @p core_id's committed-path source. */
    void bindSource(unsigned core_id, DynInstSource *source);

    /** Seed main memory (NVM + committed image) with initial data. */
    void seedMemory(const MemImage &initial);

    /** Advance the whole system one cycle. */
    void tick();

    /** True when every core has drained its pipeline. */
    bool allDone() const;

    /**
     * Run until all cores are done (or @p max_cycles elapse), then
     * drain the memory system. Returns the final cycle count.
     */
    Cycle run(Cycle max_cycles = 0);

    /** Run until the global cycle reaches @p target_cycle. */
    void runUntilCycle(Cycle target_cycle);

    /**
     * Inject a whole-system power failure: all cores JIT-checkpoint
     * (PPA) and the volatile memory hierarchy is wiped.
     */
    std::vector<CheckpointImage> powerFail();

    /** Restore after power-on from per-core checkpoint images. */
    void recover(const std::vector<CheckpointImage> &images);

    Core &core(unsigned i) { return *cores[i]; }
    const Core &core(unsigned i) const { return *cores[i]; }
    unsigned numCores() const { return static_cast<unsigned>(
        cores.size()); }
    MemHierarchy &memory() { return *hierarchy; }
    const MemHierarchy &memory() const { return *hierarchy; }
    Cycle cycle() const { return curCycle; }
    const ClockDomain &clock() const { return clockDomain; }

    /** Sum of committed instructions over all cores. */
    std::uint64_t totalCommitted() const;

  private:
    SystemConfig cfg;
    ClockDomain clockDomain;
    std::unique_ptr<MemHierarchy> hierarchy;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<std::unique_ptr<CapriChannel>> capriChannels;
    Cycle curCycle = 0;
};

} // namespace ppa

#endif // PPA_SIM_SYSTEM_HH
