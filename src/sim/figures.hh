/**
 * @file
 * Named sweep grids for the paper's figures and tables.
 *
 * Each evaluation figure is a grid of (workload, variant, knobs)
 * jobs. The grids live here — in the library, not in the bench
 * binaries — so `ppa_cli sweep <figure>` and the bench harness drive
 * the exact same points through the ExperimentDriver.
 */

#ifndef PPA_SIM_FIGURES_HH
#define PPA_SIM_FIGURES_HH

#include <string>
#include <vector>

#include "sim/driver.hh"

namespace ppa
{

/** A figure's full sweep grid plus its provenance. */
struct FigureSweep
{
    std::string name;        ///< e.g. "fig08"
    std::string description; ///< what the figure shows
    std::vector<SweepJob> jobs;
};

/** Names of all registered figure sweeps, in paper order. */
std::vector<std::string> figureNames();

/** True when @p name is a registered figure sweep. */
bool figureExists(const std::string &name);

/**
 * Build the sweep grid for @p name (fatal on unknown names; check
 * with figureExists() first for friendly handling).
 *
 * @param instsPerCore committed-instruction budget per core; 0 keeps
 *        each figure's default (the bench harness scale).
 * @param seed root workload seed for every job.
 */
FigureSweep figureSweep(const std::string &name,
                        std::uint64_t instsPerCore = 0,
                        std::uint64_t seed = 42);

/** The representative cross-suite app subset used by sweep figures
 *  (full-41 sweeps would multiply runtimes by the sweep depth). */
const std::vector<std::string> &sweepAppNames();

/**
 * The host-throughput benchmark grid: the representative app subset
 * crossed with the persistence variants (ppa, capri, replaycache).
 * `ppa_cli bench` and bench/throughput drive the same points so the
 * checked-in baseline gates both.
 *
 * @param instsPerCore committed-instruction budget per core; 0 uses
 *        the throughput default (larger than the figure default so
 *        per-job wall time dominates per-job setup).
 */
FigureSweep throughputSweep(std::uint64_t instsPerCore = 0,
                            std::uint64_t seed = 42);

} // namespace ppa

#endif // PPA_SIM_FIGURES_HH
