#include "sim/segment.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "check/auditor.hh"
#include "common/logging.hh"
#include "workload/generator.hh"

namespace ppa
{

namespace
{

/**
 * Snapshot of every monotonic counter the stitcher needs, taken twice
 * per segment (at warmup end and at segment end) so the measured
 * window's contribution is the difference. All fields are either
 * monotonically increasing counters or merged histograms of such, so
 * end - warm is exact.
 */
struct SegmentCounters
{
    std::uint64_t committedInsts = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t regionCount = 0;
    std::uint64_t boundaryStall = 0;
    std::uint64_t renameStall = 0;

    // Per-core region sums (Average only exposes mean/count, so the
    // additive sum is reconstructed as mean * count; both snapshots
    // reconstruct identically, keeping the delta deterministic).
    std::vector<std::uint64_t> coreRegionCount;
    std::vector<double> coreRegionStoreSum;
    std::vector<double> coreRegionOtherSum;

    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmBytes = 0;
    std::uint64_t wpqStall = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t persist = 0;

    stats::Histogram freeInt;
    stats::Histogram freeFp;
};

SegmentCounters
captureCounters(System &system, const SystemConfig &sc)
{
    SegmentCounters c;
    c.committedInsts = system.totalCommitted();
    c.freeInt = stats::Histogram(sc.core.intPrfEntries);
    c.freeFp = stats::Histogram(sc.core.fpPrfEntries);
    for (unsigned k = 0; k < system.numCores(); ++k) {
        const Core &core = system.core(k);
        c.committedStores += core.committedStores();
        const RegionStats &reg = core.regionStats();
        c.coreRegionCount.push_back(reg.regionCount());
        c.coreRegionStoreSum.push_back(
            reg.avgStoresPerRegion() *
            static_cast<double>(reg.regionCount()));
        c.coreRegionOtherSum.push_back(
            reg.avgOthersPerRegion() *
            static_cast<double>(reg.regionCount()));
        c.regionCount += reg.regionCount();
        c.boundaryStall += reg.stallCycles();
        c.renameStall += core.renameStallNoRegCycles();
        c.freeInt.merge(core.freeIntRegHistogram());
        c.freeFp.merge(core.freeFpRegHistogram());
        c.coalesced += system.memory().writeBuffer(k).coalescedStores();
        c.persist += system.memory().writeBuffer(k).persistOps();
    }
    c.nvmWrites = system.memory().nvm().writeCount();
    c.nvmReads = system.memory().nvm().readCount();
    c.nvmBytes = system.memory().nvm().bytesWritten();
    c.wpqStall = system.memory().nvm().wpqStallCycles();
    c.l2Hits = system.memory().l2().hits();
    c.l2Misses = system.memory().l2().misses();
    return c;
}

/** Per-bin difference of two snapshots of the same histogram. */
stats::Histogram
histDelta(const stats::Histogram &end, const stats::Histogram &warm)
{
    std::vector<std::uint64_t> bins = end.binCounts();
    const std::vector<std::uint64_t> &wb = warm.binCounts();
    PPA_ASSERT(bins.size() == wb.size(),
               "histogram size mismatch in segment delta");
    for (std::size_t i = 0; i < bins.size(); ++i) {
        PPA_ASSERT(bins[i] >= wb[i],
                   "histogram bin decreased across a segment");
        bins[i] -= wb[i];
    }
    return stats::Histogram::fromBins(
        std::move(bins), end.overflowCount() - warm.overflowCount());
}

/** Everything one segment's simulation produces. */
struct SegmentOutcome
{
    SegmentCounters warm;
    SegmentCounters end;
    Cycle warmEndCycle = 0;
    Cycle endCycle = 0;
    /** Failure/replay counters accumulated by injectPowerFailure. */
    RunStats failures;
    /** Whole-segment audit coverage (warmup included: the warmup
     *  prefix is extra simulated work and the auditor checks it too —
     *  audit counters are correctness instrumentation, not timing). */
    std::uint64_t auditEvents = 0;
    std::uint64_t auditViolations = 0;
    std::vector<std::string> auditMessages;
    /** Measured-window telemetry (attached after the warmup prefix);
     *  the stitcher rebases and concatenates it. */
    obs::TelemetryResult telemetry;
};

SegmentOutcome
runSegment(const WorkloadProfile &profile, SystemVariant variant,
           const ExperimentKnobs &knobs, unsigned threads,
           const SegmentPlan::Segment &seg,
           const trace::TraceSet *traceSet,
           const std::vector<DynInstSource *> &shared)
{
    SystemConfig sc = makeSystemConfig(variant, knobs, threads);
    System system(sc);

    // Same opt-in audit wiring as the classic runner; each segment
    // gets its own oracle because its System is its own machine.
    std::vector<std::unique_ptr<check::Auditor>> auditors;
    if (knobs.audit && sc.core.mode == PersistMode::Ppa) {
        auto oracle = std::make_shared<check::StoreOracle>();
        for (unsigned t = 0; t < threads; ++t) {
            auditors.push_back(std::make_unique<check::Auditor>(
                system.core(t), system.memory(), oracle));
            auditors.back()->attach();
        }
    }
    PPA_ASSERT(seg.failAt.empty() || sc.core.mode == PersistMode::Ppa,
               "power-failure injection requires the PPA variant");

    // Sources: reuse the caller's cached ones when given, else build
    // fresh ones. Either way each is repositioned to the warmup start
    // and bounded at the segment end; recovery seeks (backward) pass
    // through the window to the underlying source.
    std::vector<std::unique_ptr<DynInstSource>> owned;
    std::vector<std::unique_ptr<WindowedSource>> windows;
    for (unsigned t = 0; t < threads; ++t) {
        DynInstSource *src = nullptr;
        if (!shared.empty()) {
            src = shared[t];
        } else {
            if (traceSet) {
                owned.push_back(std::make_unique<trace::TraceReplaySource>(
                    *traceSet, t));
            } else {
                owned.push_back(std::make_unique<StreamGenerator>(
                    profile, t, knobs.seed, knobs.instsPerCore));
            }
            src = owned.back().get();
        }
        src->seekTo(seg.warmupBegin);
        windows.push_back(
            std::make_unique<WindowedSource>(*src, seg.end));
        system.bindSource(t, windows.back().get());
    }

    // Runaway envelope, mirroring the classic runner's insts * 400.
    Cycle cap = std::max<Cycle>((seg.end - seg.warmupBegin) * 400, 400);

    // Re-converge microarchitectural state over the warmup prefix,
    // then snapshot every counter so warmup work can be subtracted.
    std::uint64_t warmupTotal = (seg.begin - seg.warmupBegin) * threads;
    SegmentOutcome out;
    while (!system.allDone() && system.cycle() < cap &&
           system.totalCommitted() < warmupTotal) {
        system.tick();
    }
    out.warmEndCycle = system.cycle();
    out.warm = captureCounters(system, sc);

    // Telemetry covers only the measured window: attach after the
    // discarded warmup prefix so stitched series line up with the
    // stitched cycle axis.
    std::unique_ptr<obs::Telemetry> telemetry;
    if (knobs.telemetry) {
        obs::TelemetryConfig tc;
        tc.sampleCycles = knobs.telemetrySampleCycles;
        tc.seriesCap =
            static_cast<std::size_t>(knobs.telemetrySeriesCap);
        telemetry = std::make_unique<obs::Telemetry>(tc, threads);
        for (unsigned t = 0; t < threads; ++t)
            telemetry->attach(system.core(t), system.memory());
    }

    if (seg.failAt.empty()) {
        system.run(cap);
    } else {
        // Segment-relative failure schedule: cycle 0 fires before the
        // first measured tick, i.e. exactly at the segment join.
        std::size_t next_fail = 0;
        while (!system.allDone() && system.cycle() < cap) {
            if (next_fail < seg.failAt.size() &&
                system.cycle() - out.warmEndCycle >=
                    seg.failAt[next_fail]) {
                ++next_fail;
                detail::injectPowerFailure(system, auditors,
                                           out.failures);
            }
            system.tick();
        }
        system.run(cap);
    }
    out.endCycle = system.cycle();
    out.end = captureCounters(system, sc);
    if (telemetry)
        out.telemetry = telemetry->harvest();

    for (const auto &auditor : auditors) {
        out.auditEvents += auditor->eventCount();
        out.auditViolations += auditor->violationCount();
        for (const check::AuditViolation &v : auditor->violations()) {
            if (out.auditMessages.size() >= 16)
                break;
            out.auditMessages.push_back(
                v.where.describe() + ": " + v.what);
        }
    }
    return out;
}

} // namespace

SegmentPlan
planSegments(const ExperimentKnobs &knobs)
{
    PPA_ASSERT(knobs.timeParallel >= 2,
               "planSegments requires timeParallel >= 2");
    PPA_ASSERT(knobs.instsPerCore > 0,
               "time-parallel run needs instsPerCore > 0");
    std::uint64_t insts = knobs.instsPerCore;
    // More segments than instructions would leave empty measured
    // windows; clamp so every segment measures at least one.
    std::uint64_t k = std::min<std::uint64_t>(knobs.timeParallel, insts);
    unsigned stride = std::max(1u, knobs.tpSampleStride);

    SegmentPlan plan;
    plan.warmupInsts = knobs.tpWarmupInsts;
    plan.sampleStride = stride;
    std::uint64_t base = insts / k;
    std::uint64_t rem = insts % k;
    std::uint64_t begin = 0;
    for (std::uint64_t s = 0; s < k; ++s) {
        SegmentPlan::Segment seg;
        seg.begin = begin;
        seg.end = begin + base + (s < rem ? 1 : 0);
        seg.warmupBegin = seg.begin > knobs.tpWarmupInsts
                              ? seg.begin - knobs.tpWarmupInsts
                              : 0;
        seg.simulated = (s % stride) == 0;
        plan.segments.push_back(seg);
        begin = seg.end;
    }
    for (const ExperimentKnobs::SegmentFailure &f : knobs.tpFailAt) {
        if (f.segment >= plan.segments.size()) {
            fatal("tpFailAt names segment ", f.segment,
                  " but the plan has only ", plan.segments.size(),
                  " segment(s)");
        }
        if (!plan.segments[f.segment].simulated) {
            fatal("tpFailAt names segment ", f.segment,
                  ", which sampling stride ", stride, " skips");
        }
        plan.segments[f.segment].failAt.push_back(f.cycle);
    }
    for (SegmentPlan::Segment &seg : plan.segments)
        std::sort(seg.failAt.begin(), seg.failAt.end());
    return plan;
}

std::uint64_t
SegmentSourceCache::generatorReplayedInsts() const
{
    std::uint64_t n = 0;
    for (const auto &kv : sources) {
        if (auto *g = dynamic_cast<const StreamGenerator *>(
                kv.second.get()))
            n += g->replayedInsts();
    }
    return n;
}

std::uint64_t
SegmentSourceCache::sourceSeeks() const
{
    std::uint64_t n = 0;
    for (const auto &kv : sources) {
        if (auto *g = dynamic_cast<const StreamGenerator *>(
                kv.second.get())) {
            n += g->seekCount();
        } else if (auto *r =
                       dynamic_cast<const trace::TraceReplaySource *>(
                           kv.second.get())) {
            n += r->seekCount();
        }
    }
    return n;
}

RunStats
runWorkloadTimeParallel(const WorkloadProfile &profile,
                        SystemVariant variant,
                        const ExperimentKnobs &knobs,
                        SegmentSourceCache *cache)
{
    PPA_ASSERT(knobs.timeParallel >= 2,
               "runWorkloadTimeParallel requires timeParallel >= 2");
    PPA_ASSERT(knobs.failAtCycles.empty(),
               "failAtCycles is undefined under --time-parallel: "
               "absolute stitched cycles are not known up front; "
               "use tpFailAt (segment, cycle) pairs");
    if (variant == SystemVariant::ReplayCache) {
        fatal("--time-parallel does not support the replaycache "
              "variant: its stream transform inserts instructions, so "
              "segment boundaries no longer align with committed "
              "indices");
    }
    unsigned threads = knobs.threads ? knobs.threads
                                     : profile.defaultThreads;
    SegmentPlan plan = planSegments(knobs);

    RunStats rs;
    const trace::TraceSet *traceSet = nullptr;
    trace::TraceSet localTraces;
    if (!knobs.traceDir.empty()) {
        if (cache) {
            if (!cache->traceLoaded) {
                cache->traceSet =
                    trace::TraceSet::openOrDie(knobs.traceDir);
                cache->traceLoaded = true;
            }
            traceSet = &cache->traceSet;
        } else {
            localTraces = trace::TraceSet::openOrDie(knobs.traceDir);
            traceSet = &localTraces;
        }
        const trace::TraceMeta &meta = traceSet->metadata();
        if (meta.threads != threads) {
            fatal("trace '", knobs.traceDir, "' was recorded with ",
                  meta.threads, " thread(s) but the run wants ",
                  threads);
        }
        if (meta.instsPerThread != knobs.instsPerCore) {
            fatal("trace '", knobs.traceDir, "' holds ",
                  meta.instsPerThread, " insts per thread but the run ",
                  "wants ", knobs.instsPerCore,
                  " (pass matching --insts or re-record)");
        }
        rs.traceDir = knobs.traceDir;
        rs.traceShards =
            static_cast<unsigned>(traceSet->allShards().size());
        for (unsigned t = 0; t < threads; ++t)
            rs.traceInsts += traceSet->threadInsts(t);
        rs.traceCrc = traceSet->combinedCrc();
    }

    // Cached sources are looked up (and created) before the pool
    // starts, so the map never mutates concurrently and creation
    // order is deterministic.
    std::vector<std::vector<DynInstSource *>> shared(
        plan.segments.size());
    if (cache) {
        for (unsigned s = 0; s < plan.segments.size(); ++s) {
            if (!plan.segments[s].simulated)
                continue;
            shared[s].resize(threads);
            for (unsigned t = 0; t < threads; ++t) {
                auto key = std::make_pair(s, t);
                auto it = cache->sources.find(key);
                if (it == cache->sources.end()) {
                    std::unique_ptr<DynInstSource> src;
                    if (traceSet) {
                        src = std::make_unique<
                            trace::TraceReplaySource>(*traceSet, t);
                    } else {
                        src = std::make_unique<StreamGenerator>(
                            profile, t, knobs.seed,
                            knobs.instsPerCore);
                    }
                    it = cache->sources.emplace(key, std::move(src))
                             .first;
                }
                shared[s][t] = it->second.get();
            }
        }
    }

    std::vector<unsigned> simIdx;
    for (unsigned s = 0; s < plan.segments.size(); ++s) {
        if (plan.segments[s].simulated)
            simIdx.push_back(s);
    }

    // Segment fan-out, in the sweep driver's pool style: results land
    // in slots indexed by segment, so scheduling order is invisible —
    // the time-parallel determinism contract.
    std::vector<SegmentOutcome> outcomes(plan.segments.size());
    auto runOne = [&](unsigned s) {
        outcomes[s] = runSegment(profile, variant, knobs, threads,
                                 plan.segments[s], traceSet, shared[s]);
    };
    unsigned workers =
        knobs.tpWorkers
            ? knobs.tpWorkers
            : std::max(1u, std::thread::hardware_concurrency());
    workers = std::min<unsigned>(
        workers, static_cast<unsigned>(simIdx.size()));
    if (workers <= 1) {
        for (unsigned s : simIdx)
            runOne(s);
    } else {
        std::atomic<std::size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    std::size_t i = cursor.fetch_add(1);
                    if (i >= simIdx.size())
                        return;
                    runOne(simIdx[i]);
                }
            });
        }
        for (std::thread &th : pool)
            th.join();
    }

    // ---- Stitch: sum measured-window deltas in segment order. -------
    rs.workload = profile.name;
    rs.variant = variant;
    rs.threads = threads;
    rs.tpSegments = static_cast<unsigned>(plan.segments.size());
    rs.tpSimulatedSegments = static_cast<unsigned>(simIdx.size());
    rs.tpWarmupInsts = knobs.tpWarmupInsts;
    rs.tpSampleStride = plan.sampleStride;

    SystemConfig sc = makeSystemConfig(variant, knobs, threads);
    rs.freeIntHist = stats::Histogram(sc.core.intPrfEntries);
    rs.freeFpHist = stats::Histogram(sc.core.fpPrfEntries);

    std::vector<double> segCpi;
    std::vector<double> storeSum(threads, 0.0);
    std::vector<double> otherSum(threads, 0.0);
    std::vector<std::uint64_t> regCount(threads, 0);
    std::uint64_t l2h = 0;
    std::uint64_t l2m = 0;
    for (unsigned s : simIdx) {
        const SegmentOutcome &o = outcomes[s];
        Cycle seg_cycles = o.endCycle - o.warmEndCycle;
        // Telemetry cycles are segment-relative; rebase them onto the
        // stitched timeline at the cycles accumulated so far.
        appendTelemetry(rs.telemetry, o.telemetry, rs.cycles);
        rs.cycles += seg_cycles;
        rs.tpWarmupCycles += o.warmEndCycle;
        std::uint64_t seg_insts =
            o.end.committedInsts - o.warm.committedInsts;
        rs.committedInsts += seg_insts;
        if (seg_insts) {
            segCpi.push_back(static_cast<double>(seg_cycles) /
                             static_cast<double>(seg_insts));
        }
        rs.committedStores +=
            o.end.committedStores - o.warm.committedStores;
        rs.regionCount += o.end.regionCount - o.warm.regionCount;
        rs.boundaryStallCycles +=
            o.end.boundaryStall - o.warm.boundaryStall;
        rs.renameStallNoRegCycles +=
            o.end.renameStall - o.warm.renameStall;
        for (unsigned t = 0; t < threads; ++t) {
            regCount[t] +=
                o.end.coreRegionCount[t] - o.warm.coreRegionCount[t];
            storeSum[t] += o.end.coreRegionStoreSum[t] -
                           o.warm.coreRegionStoreSum[t];
            otherSum[t] += o.end.coreRegionOtherSum[t] -
                           o.warm.coreRegionOtherSum[t];
        }
        rs.nvmWrites += o.end.nvmWrites - o.warm.nvmWrites;
        rs.nvmReads += o.end.nvmReads - o.warm.nvmReads;
        rs.nvmBytesWritten += o.end.nvmBytes - o.warm.nvmBytes;
        rs.wpqStallCycles += o.end.wpqStall - o.warm.wpqStall;
        l2h += o.end.l2Hits - o.warm.l2Hits;
        l2m += o.end.l2Misses - o.warm.l2Misses;
        rs.coalescedStores += o.end.coalesced - o.warm.coalesced;
        rs.persistOps += o.end.persist - o.warm.persist;
        rs.freeIntHist.merge(histDelta(o.end.freeInt, o.warm.freeInt));
        rs.freeFpHist.merge(histDelta(o.end.freeFp, o.warm.freeFp));
        rs.auditEvents += o.auditEvents;
        rs.auditViolations += o.auditViolations;
        rs.powerFailures += o.failures.powerFailures;
        rs.replayAudits += o.failures.replayAudits;
        rs.replayMismatches += o.failures.replayMismatches;
        rs.replayAddrsChecked += o.failures.replayAddrsChecked;
        for (const std::string &m : o.failures.auditMessages) {
            if (rs.auditMessages.size() < 16)
                rs.auditMessages.push_back(m);
        }
        for (const std::string &m : o.auditMessages) {
            if (rs.auditMessages.size() < 16)
                rs.auditMessages.push_back(m);
        }
    }
    // Drain-boundary semantics: every stitched cycle is post-warmup
    // (per-segment warmup is discarded overlap work, reported via
    // tpWarmupCycles), so the measured window IS the whole run.
    rs.totalCycles = rs.cycles;

    double region_stores = 0.0;
    double region_others = 0.0;
    unsigned cores_with_regions = 0;
    for (unsigned t = 0; t < threads; ++t) {
        if (regCount[t] > 0) {
            region_stores +=
                storeSum[t] / static_cast<double>(regCount[t]);
            region_others +=
                otherSum[t] / static_cast<double>(regCount[t]);
            ++cores_with_regions;
        }
    }
    if (cores_with_regions) {
        rs.avgRegionStores = region_stores / cores_with_regions;
        rs.avgRegionOthers = region_others / cores_with_regions;
    }
    // Per-core stall counters vs wall-clock cycles, as in the classic
    // runner: normalize to per-core stalls.
    rs.boundaryStallCycles /= threads;
    rs.renameStallNoRegCycles /= threads;

    rs.l2MissRatio = (l2h + l2m)
                         ? static_cast<double>(l2m) /
                               static_cast<double>(l2h + l2m)
                         : 0.0;

    if (plan.sampleStride > 1) {
        // SimPoint-style extrapolation: scale additive counters by
        // planned-instructions / simulated-planned-instructions.
        // Ratios and histograms stay as measured; audit and failure
        // counters are facts about what actually ran, never scaled.
        std::uint64_t planned = 0;
        std::uint64_t sim_planned = 0;
        for (const SegmentPlan::Segment &seg : plan.segments) {
            std::uint64_t window = (seg.end - seg.begin) * threads;
            planned += window;
            if (seg.simulated)
                sim_planned += window;
        }
        double scale = sim_planned
                           ? static_cast<double>(planned) /
                                 static_cast<double>(sim_planned)
                           : 1.0;
        auto scaled = [scale](std::uint64_t v) {
            return static_cast<std::uint64_t>(
                std::llround(static_cast<double>(v) * scale));
        };
        rs.cycles = scaled(rs.cycles);
        rs.totalCycles = rs.cycles;
        rs.committedInsts = scaled(rs.committedInsts);
        rs.committedStores = scaled(rs.committedStores);
        rs.regionCount = scaled(rs.regionCount);
        rs.boundaryStallCycles = scaled(rs.boundaryStallCycles);
        rs.renameStallNoRegCycles = scaled(rs.renameStallNoRegCycles);
        rs.nvmWrites = scaled(rs.nvmWrites);
        rs.nvmReads = scaled(rs.nvmReads);
        rs.nvmBytesWritten = scaled(rs.nvmBytesWritten);
        rs.wpqStallCycles = scaled(rs.wpqStallCycles);
        rs.coalescedStores = scaled(rs.coalescedStores);
        rs.persistOps = scaled(rs.persistOps);

        // Confidence: relative standard error of per-segment CPI
        // across the simulated subset.
        if (segCpi.size() >= 2) {
            double mean = 0.0;
            for (double v : segCpi)
                mean += v;
            mean /= static_cast<double>(segCpi.size());
            double var = 0.0;
            for (double v : segCpi)
                var += (v - mean) * (v - mean);
            var /= static_cast<double>(segCpi.size() - 1);
            if (mean > 0.0) {
                rs.tpCpiRelStderr =
                    std::sqrt(var /
                              static_cast<double>(segCpi.size())) /
                    mean;
            }
        }
    }

    rs.ipc = rs.totalCycles
                 ? static_cast<double>(rs.committedInsts) /
                       static_cast<double>(rs.totalCycles)
                 : 0.0;
    return rs;
}

std::vector<StatDelta>
statDeltas(const RunStats &serial, const RunStats &segmented)
{
    // Whole-run counters only: the classic runner's `cycles` excludes
    // its warmupFraction window while a segmented run measures the
    // whole stream, so totalCycles (whole run in both) is the
    // comparable time axis.
    auto u = [](std::uint64_t v) { return static_cast<double>(v); };
    return {
        {"totalCycles", u(serial.totalCycles), u(segmented.totalCycles)},
        {"ipc", serial.ipc, segmented.ipc},
        {"committedInsts", u(serial.committedInsts),
         u(segmented.committedInsts)},
        {"committedStores", u(serial.committedStores),
         u(segmented.committedStores)},
        {"avgRegionStores", serial.avgRegionStores,
         segmented.avgRegionStores},
        {"avgRegionOthers", serial.avgRegionOthers,
         segmented.avgRegionOthers},
        {"regionCount", u(serial.regionCount), u(segmented.regionCount)},
        {"boundaryStallCycles", u(serial.boundaryStallCycles),
         u(segmented.boundaryStallCycles)},
        {"renameStallNoRegCycles", u(serial.renameStallNoRegCycles),
         u(segmented.renameStallNoRegCycles)},
        {"nvmWrites", u(serial.nvmWrites), u(segmented.nvmWrites)},
        {"nvmReads", u(serial.nvmReads), u(segmented.nvmReads)},
        {"nvmBytesWritten", u(serial.nvmBytesWritten),
         u(segmented.nvmBytesWritten)},
        {"wpqStallCycles", u(serial.wpqStallCycles),
         u(segmented.wpqStallCycles)},
        {"l2MissRatio", serial.l2MissRatio, segmented.l2MissRatio},
        {"coalescedStores", u(serial.coalescedStores),
         u(segmented.coalescedStores)},
        {"persistOps", u(serial.persistOps), u(segmented.persistOps)},
    };
}

} // namespace ppa
