/**
 * @file
 * Experiment runner: builds a system variant, attaches workload
 * streams, runs for a fixed committed-instruction budget, and reports
 * the statistics the paper's figures plot.
 */

#ifndef PPA_SIM_EXPERIMENT_HH
#define PPA_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/system.hh"
#include "workload/profile.hh"

namespace ppa
{

/** The systems compared throughout the evaluation. */
enum class SystemVariant : std::uint8_t
{
    /** PMEM memory mode without persistence: the paper's baseline. */
    MemoryMode,
    /** The paper's design. */
    Ppa,
    /** Capri-style WSP (Figure 8). */
    Capri,
    /** ReplayCache-style WSP (Figure 1). */
    ReplayCache,
    /** Ideal PSP (eADR/BBB): app-direct, no DRAM cache (Figure 10). */
    EadrBbb,
    /** Volatile DRAM-only system (Figure 9 reference). */
    DramOnly,
};

/** Human-readable variant name. */
const char *variantName(SystemVariant variant);

/** Tweakable knobs for the sensitivity studies (Sections 7.6-7.11). */
struct ExperimentKnobs
{
    unsigned threads = 0;     ///< 0 = profile default
    unsigned wpqEntries = 16; ///< Figure 15
    unsigned intPrf = 180;    ///< Figure 16
    unsigned fpPrf = 168;     ///< Figure 16
    unsigned csqEntries = 40; ///< Figure 17
    double nvmWriteGbps = 2.3;///< Figure 18
    bool l3Cache = false;     ///< Figure 14
    /** WB write-combining window; 0 = no persist coalescing
     *  (ablation of the Section 4.3 design choice). */
    unsigned wbCoalesceWindow = 1024;
    std::uint64_t instsPerCore = 200'000;
    std::uint64_t seed = 42;
    /**
     * Fraction of the instruction budget used to warm the caches
     * before measurement starts (the paper fast-forwards 5B
     * instructions and then measures 1B in detail; the measured
     * window must not be cold-cache dominated).
     */
    double warmupFraction = 0.4;
};

/** Everything a figure could want from one run. */
struct RunStats
{
    std::string workload;
    SystemVariant variant = SystemVariant::MemoryMode;
    unsigned threads = 1;

    /** Measured-window cycles (post-warmup; use for slowdowns). */
    Cycle cycles = 0;
    /** Whole-run cycles including warmup (use for stall ratios). */
    Cycle totalCycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedStores = 0;
    double ipc = 0.0;

    // Region characteristics (PPA/Capri), aggregated over cores.
    double avgRegionStores = 0.0;
    double avgRegionOthers = 0.0;
    std::uint64_t regionCount = 0;
    std::uint64_t boundaryStallCycles = 0;
    std::uint64_t renameStallNoRegCycles = 0;

    // Memory-system behaviour.
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t wpqStallCycles = 0;
    double l2MissRatio = 0.0;
    std::uint64_t coalescedStores = 0;
    std::uint64_t persistOps = 0;

    // Free-register CDFs (merged across cores; Figure 5).
    stats::Histogram freeIntHist;
    stats::Histogram freeFpHist;

    /** Boundary-stall cycles as a fraction of all cycles (Fig. 11). */
    double
    boundaryStallRatio() const
    {
        return totalCycles
                   ? static_cast<double>(boundaryStallCycles) /
                         static_cast<double>(totalCycles)
                   : 0.0;
    }

    /** Rename no-free-reg stalls as a fraction of cycles (Fig. 12). */
    double
    renameStallRatio() const
    {
        return totalCycles
                   ? static_cast<double>(renameStallNoRegCycles) /
                         static_cast<double>(totalCycles)
                   : 0.0;
    }
};

/** Build the SystemConfig for a (variant, knobs, threads) triple. */
SystemConfig makeSystemConfig(SystemVariant variant,
                              const ExperimentKnobs &knobs,
                              unsigned threads);

/**
 * Run @p profile on @p variant and return its statistics.
 * Multithreaded profiles run one stream per thread/core.
 */
RunStats runWorkload(const WorkloadProfile &profile,
                     SystemVariant variant,
                     const ExperimentKnobs &knobs = {});

/** Cycle-count ratio of @p test to @p baseline ("slowdown"). */
double slowdown(const RunStats &test, const RunStats &baseline);

/** Geometric mean of a series of slowdowns. */
double geomean(const std::vector<double> &values);

} // namespace ppa

#endif // PPA_SIM_EXPERIMENT_HH
