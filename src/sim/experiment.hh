/**
 * @file
 * Experiment runner: builds a system variant, attaches workload
 * streams, runs for a fixed committed-instruction budget, and reports
 * the statistics the paper's figures plot.
 */

#ifndef PPA_SIM_EXPERIMENT_HH
#define PPA_SIM_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "obs/telemetry.hh"
#include "sim/system.hh"
#include "workload/profile.hh"

namespace ppa
{

/** The systems compared throughout the evaluation. */
enum class SystemVariant : std::uint8_t
{
    /** PMEM memory mode without persistence: the paper's baseline. */
    MemoryMode,
    /** The paper's design. */
    Ppa,
    /** Capri-style WSP (Figure 8). */
    Capri,
    /** ReplayCache-style WSP (Figure 1). */
    ReplayCache,
    /** Ideal PSP (eADR/BBB): app-direct, no DRAM cache (Figure 10). */
    EadrBbb,
    /** Volatile DRAM-only system (Figure 9 reference). */
    DramOnly,
};

/** Human-readable variant name. */
const char *variantName(SystemVariant variant);

/** CLI/serialization token for a variant ("memory-mode", "ppa", ...). */
const char *variantToken(SystemVariant variant);

/**
 * Parse a variant from its CLI/serialization token.
 * @return true and set @p out on success; false for unknown tokens.
 */
bool variantFromToken(const std::string &token, SystemVariant &out);

/**
 * Tweakable knobs for the sensitivity studies (Sections 7.6-7.11).
 *
 * These doc comments are the single source of truth for knob units
 * and semantics; docs/METRICS.md references them rather than
 * restating them.
 */
struct ExperimentKnobs
{
    unsigned threads = 0;     ///< Core/stream count; 0 = profile default
    unsigned wpqEntries = 16; ///< WPQ entries per NVM controller (Figure 15)
    unsigned intPrf = 180;    ///< Integer PRF entries (Figure 16)
    unsigned fpPrf = 168;     ///< FP PRF entries (Figure 16)
    unsigned csqEntries = 40; ///< Committed store queue entries (Figure 17)
    /**
     * Aggregate sustained NVM write bandwidth in GB/s (10^9 bytes per
     * second), shared evenly across the device's memory controllers
     * (Figure 18). The default is the paper's empirical Optane number.
     */
    double nvmWriteGbps = 2.3;
    bool l3Cache = false;     ///< Add a shared L3 above the DRAM cache (Figure 14)
    /** WB write-combining window in cycles; 0 = no persist coalescing
     *  (ablation of the Section 4.3 design choice). */
    unsigned wbCoalesceWindow = 1024;
    /** Committed-instruction budget per core for the whole run,
     *  warmup included. */
    std::uint64_t instsPerCore = 200'000;
    /** Root seed for the workload streams; stream t on core t draws
     *  from (seed, t), so runs are reproducible per (seed, config). */
    std::uint64_t seed = 42;
    /**
     * Warmup semantics (defined here, once): the first
     * warmupFraction * instsPerCore * threads committed instructions
     * warm the caches; measurement-window stats (RunStats::cycles)
     * start after that point, while RunStats::totalCycles spans the
     * whole run. This mirrors the paper's methodology of
     * fast-forwarding 5B instructions before its 1B-instruction
     * measured window, so the window is not cold-cache dominated.
     */
    double warmupFraction = 0.4;
    /**
     * Attach a ppa::check::Auditor to every core (PPA variant only;
     * ignored otherwise): every commit/persist event is validated
     * against the paper's crash-consistency invariants and violations
     * are reported in RunStats. Read-only instrumentation — cycle
     * counts are unchanged.
     */
    bool audit = false;
    /**
     * Inject a whole-system power failure at each of these absolute
     * cycles (PPA variant only): JIT-checkpoint every core, round-trip
     * the images through the checkpoint_io NVM serialization, recover,
     * and — when audit is on — diff the replayed NVM image against the
     * committed-store oracle (RunStats::replayMismatches).
     */
    std::vector<Cycle> failAtCycles;
    /**
     * When nonempty, drive every core from this recorded trace
     * directory (see docs/TRACING.md) instead of in-process
     * StreamGenerators. The run must agree with the trace manifest
     * about threads and instsPerCore — the stream is a pure function
     * of the trace, so a mismatch is a configuration error, not a
     * different experiment. RunStats then carries trace provenance.
     */
    std::string traceDir;

    // --- Time-parallel single-run simulation (docs/PERF.md) -------------
    /**
     * Split this one run into this many instruction segments and
     * simulate them concurrently (0 or 1 = the classic serial path).
     * Segmented runs use drain-boundary semantics: each segment starts
     * from a cold machine, re-converges microarchitectural state over
     * a discarded warmup prefix of tpWarmupInsts, and its measured
     * window is stitched into whole-run stats. The stitched result is
     * a pure function of (profile, variant, knobs) — host worker count
     * never changes it (tests/sim/test_time_parallel.cc) — and tracks
     * the unsegmented serial run up to a warmup-truncation error that
     * `ppa_cli --error-bound` quantifies.
     */
    unsigned timeParallel = 0;
    /** Per-segment re-convergence warmup prefix in instructions per
     *  core (stats discarded; clamped at stream start). */
    std::uint64_t tpWarmupInsts = 2'000;
    /** SimPoint-style sampling: simulate only segments 0, N, 2N, ...
     *  and extrapolate the rest (1 = simulate every segment). */
    unsigned tpSampleStride = 1;
    /** Host threads for segment execution; 0 = min(segments,
     *  hardware). Scheduling metadata only: results are identical for
     *  any value (the time-parallel determinism contract). */
    unsigned tpWorkers = 0;
    /**
     * Power failures for segmented runs: injected in segment
     * `segment` once the segment's measured window has run `cycle`
     * cycles (cycle 0 = exactly at the segment join). The classic
     * failAtCycles knob is a configuration error when timeParallel is
     * active, because absolute cycles of the stitched timeline are not
     * known until after the run.
     */
    struct SegmentFailure
    {
        unsigned segment = 0;
        Cycle cycle = 0;
    };
    std::vector<SegmentFailure> tpFailAt;

    // --- In-run telemetry (docs/TELEMETRY.md) ---------------------------
    /**
     * Attach the obs::Telemetry collector: sampled counter series,
     * region/power timelines, and per-cycle stall attribution land in
     * RunStats::telemetry (serialized as `stats.telemetry`). Off by
     * default; the off path costs one null-pointer test per hook site
     * (the bench throughput gate enforces < 1% regression). Read-only
     * instrumentation — simulated behaviour and every other stat are
     * bitwise unchanged.
     */
    bool telemetry = false;
    /** Counter-series sampling period in cycles (telemetry only). */
    std::uint64_t telemetrySampleCycles = 256;
    /** Bucket capacity per counter series; a full series merges
     *  adjacent buckets (stride doubles) so memory stays bounded on
     *  arbitrarily long runs (telemetry only; rounded down to even). */
    std::uint64_t telemetrySeriesCap = 1024;
};

/** Everything a figure could want from one run. */
struct RunStats
{
    std::string workload;
    SystemVariant variant = SystemVariant::MemoryMode;
    unsigned threads = 1;

    /** Measured-window cycles (post-warmup; use for slowdowns). */
    Cycle cycles = 0;
    /** Whole-run cycles including warmup (use for stall ratios). */
    Cycle totalCycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedStores = 0;
    double ipc = 0.0;

    // Region characteristics (PPA/Capri), aggregated over cores.
    double avgRegionStores = 0.0;
    double avgRegionOthers = 0.0;
    std::uint64_t regionCount = 0;
    std::uint64_t boundaryStallCycles = 0;
    std::uint64_t renameStallNoRegCycles = 0;

    // Memory-system behaviour.
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t wpqStallCycles = 0;
    double l2MissRatio = 0.0;
    std::uint64_t coalescedStores = 0;
    std::uint64_t persistOps = 0;

    // Free-register CDFs (merged across cores; Figure 5).
    stats::Histogram freeIntHist;
    stats::Histogram freeFpHist;

    // Invariant-audit results (populated when knobs.audit is set).
    std::uint64_t auditEvents = 0;       ///< Observed pipeline events
    std::uint64_t auditViolations = 0;   ///< Invariant violations
    std::uint64_t powerFailures = 0;     ///< Injected power failures
    std::uint64_t replayAudits = 0;      ///< Per-core replay diffs run
    std::uint64_t replayMismatches = 0;  ///< Replayed-NVM diff failures
    std::uint64_t replayAddrsChecked = 0;///< Addresses diffed in total
    /** Capped sample of violation reports (context + description). */
    std::vector<std::string> auditMessages;

    // Trace provenance (populated when knobs.traceDir is set): where
    // the committed stream came from and how to recognize it.
    std::string traceDir;            ///< Trace directory path
    unsigned traceShards = 0;        ///< Shard files in the trace
    std::uint64_t traceInsts = 0;    ///< Total recorded instructions
    std::uint32_t traceCrc = 0;      ///< Combined shard-CRC fingerprint

    // Time-parallel provenance (populated when knobs.timeParallel >= 2;
    // see docs/PERF.md for the accuracy contract).
    unsigned tpSegments = 0;          ///< Segments in the plan
    unsigned tpSimulatedSegments = 0; ///< Segments actually simulated
    std::uint64_t tpWarmupInsts = 0;  ///< Warmup prefix per segment
    unsigned tpSampleStride = 1;      ///< Sampling stride (1 = exact)
    /** Cycles spent in discarded per-segment warmup prefixes (overlap
     *  work; not part of cycles/totalCycles). */
    std::uint64_t tpWarmupCycles = 0;
    /** Sampled mode only: relative standard error of per-segment CPI
     *  across the simulated segments (0 when every segment ran). */
    double tpCpiRelStderr = 0.0;

    /** In-run telemetry (populated when knobs.telemetry is set;
     *  serialized additively as `stats.telemetry`). */
    obs::TelemetryResult telemetry;

    /** Boundary-stall cycles as a fraction of all cycles (Fig. 11). */
    double
    boundaryStallRatio() const
    {
        return totalCycles
                   ? static_cast<double>(boundaryStallCycles) /
                         static_cast<double>(totalCycles)
                   : 0.0;
    }

    /** Rename no-free-reg stalls as a fraction of cycles (Fig. 12). */
    double
    renameStallRatio() const
    {
        return totalCycles
                   ? static_cast<double>(renameStallNoRegCycles) /
                         static_cast<double>(totalCycles)
                   : 0.0;
    }
};

/** Build the SystemConfig for a (variant, knobs, threads) triple. */
SystemConfig makeSystemConfig(SystemVariant variant,
                              const ExperimentKnobs &knobs,
                              unsigned threads);

namespace check
{
class Auditor;
} // namespace check

namespace detail
{

/**
 * Shared by the classic and time-parallel runners: power-fail the
 * whole system, round-trip every core's checkpoint through the NVM
 * serialization, recover, and audit replay equivalence into @p rs.
 */
void injectPowerFailure(
    System &system,
    std::vector<std::unique_ptr<check::Auditor>> &auditors,
    RunStats &rs);

} // namespace detail

/**
 * Run @p profile on @p variant and return its statistics.
 * Multithreaded profiles run one stream per thread/core.
 */
RunStats runWorkload(const WorkloadProfile &profile,
                     SystemVariant variant,
                     const ExperimentKnobs &knobs = {});

/** Cycle-count ratio of @p test to @p baseline ("slowdown"). */
double slowdown(const RunStats &test, const RunStats &baseline);

/** Geometric mean of a series of slowdowns. */
double geomean(const std::vector<double> &values);

} // namespace ppa

#endif // PPA_SIM_EXPERIMENT_HH
