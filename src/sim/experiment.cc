#include "sim/experiment.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/replaycache.hh"
#include "check/auditor.hh"
#include "common/logging.hh"
#include "ppa/checkpoint_io.hh"
#include "sim/segment.hh"
#include "trace/reader.hh"
#include "workload/generator.hh"

namespace ppa
{

namespace detail
{

/**
 * Power-fail the whole system, push every core's checkpoint through
 * the NVM word serialization (what recovery would actually read from
 * media), recover, and audit replay equivalence.
 */
void
injectPowerFailure(System &system,
                   std::vector<std::unique_ptr<check::Auditor>> &auditors,
                   RunStats &rs)
{
    std::vector<CheckpointImage> images = system.powerFail();
    std::vector<CheckpointImage> restored;
    restored.reserve(images.size());
    for (const CheckpointImage &image : images)
        restored.push_back(deserializeCheckpoint(
            serializeCheckpoint(image)));
    system.recover(restored);
    ++rs.powerFailures;
    for (auto &auditor : auditors) {
        check::ReplayAuditResult replay = auditor->verifyReplay();
        ++rs.replayAudits;
        rs.replayMismatches += replay.mismatches;
        rs.replayAddrsChecked += replay.addrsChecked;
        if (!replay.ok() && rs.auditMessages.size() < 16) {
            rs.auditMessages.push_back(detail::composeMessage(
                auditor->context().describe(), ": replay diff found ",
                replay.mismatches, " mismatched addresses"));
        }
    }
}

} // namespace detail

const char *
variantName(SystemVariant variant)
{
    switch (variant) {
      case SystemVariant::MemoryMode:
        return "memory-mode";
      case SystemVariant::Ppa:
        return "PPA";
      case SystemVariant::Capri:
        return "Capri";
      case SystemVariant::ReplayCache:
        return "ReplayCache";
      case SystemVariant::EadrBbb:
        return "eADR/BBB";
      case SystemVariant::DramOnly:
        return "DRAM-only";
    }
    return "?";
}

const char *
variantToken(SystemVariant variant)
{
    switch (variant) {
      case SystemVariant::MemoryMode:
        return "memory-mode";
      case SystemVariant::Ppa:
        return "ppa";
      case SystemVariant::Capri:
        return "capri";
      case SystemVariant::ReplayCache:
        return "replaycache";
      case SystemVariant::EadrBbb:
        return "eadr-bbb";
      case SystemVariant::DramOnly:
        return "dram-only";
    }
    return "?";
}

bool
variantFromToken(const std::string &token, SystemVariant &out)
{
    for (SystemVariant v :
         {SystemVariant::MemoryMode, SystemVariant::Ppa,
          SystemVariant::Capri, SystemVariant::ReplayCache,
          SystemVariant::EadrBbb, SystemVariant::DramOnly}) {
        if (token == variantToken(v)) {
            out = v;
            return true;
        }
    }
    return false;
}

SystemConfig
makeSystemConfig(SystemVariant variant, const ExperimentKnobs &knobs,
                 unsigned threads)
{
    SystemConfig sc;
    sc.numCores = threads;

    sc.core.intPrfEntries = knobs.intPrf;
    sc.core.fpPrfEntries = knobs.fpPrf;
    sc.core.csqEntries = knobs.csqEntries;

    sc.mem.nvm.wpqEntries = knobs.wpqEntries;
    sc.mem.nvm.writeBwGBps = knobs.nvmWriteGbps;
    sc.mem.l3Enabled = knobs.l3Cache;
    sc.mem.wbCoalesceWindow = knobs.wbCoalesceWindow;
    if (knobs.l3Cache) {
        // Section 7.6: private 1 MB L2 at 14 cycles under a shared
        // L3 (16 MB scaled 16x -> 1 MB) at 44 cycles.
        sc.mem.l2 = CacheParams{256 * KiB, 16, 64, 14};
        sc.mem.l3 = CacheParams{1 * MiB, 16, 64, 44};
    }

    // Scale shared resources with thread count (Section 7.11: "scale
    // up the NVM WPQ/shared L2 size proportionally"): a larger socket
    // brings more PMEM channels, so controllers (and hence aggregate
    // write bandwidth) grow with the core count too.
    if (threads > 8) {
        unsigned scale = threads / 8;
        sc.mem.l2.sizeBytes *= scale;
        sc.mem.nvm.wpqEntries *= scale;
        sc.mem.nvm.numControllers *= scale; // power of 2 for 16/32/64
        sc.mem.nvm.writeBwGBps *= scale;
    }

    switch (variant) {
      case SystemVariant::MemoryMode:
        sc.core.mode = PersistMode::Volatile;
        break;
      case SystemVariant::Ppa:
        sc.core.mode = PersistMode::Ppa;
        break;
      case SystemVariant::Capri:
        sc.core.mode = PersistMode::Capri;
        break;
      case SystemVariant::ReplayCache:
        sc.core.mode = PersistMode::ReplayCache;
        break;
      case SystemVariant::EadrBbb:
        // Ideal PSP: app-direct mode, so no DRAM cache; persistence
        // itself is free (battery-backed buffers).
        sc.core.mode = PersistMode::Volatile;
        sc.mem.dramCache.enabled = false;
        break;
      case SystemVariant::DramOnly:
        sc.core.mode = PersistMode::Volatile;
        sc.mem.dramOnly = true;
        break;
    }
    return sc;
}

RunStats
runWorkload(const WorkloadProfile &profile, SystemVariant variant,
            const ExperimentKnobs &knobs)
{
    if (knobs.timeParallel >= 2)
        return runWorkloadTimeParallel(profile, variant, knobs);
    PPA_ASSERT(knobs.tpFailAt.empty(),
               "tpFailAt requires timeParallel >= 2 "
               "(use failAtCycles for serial runs)");
    unsigned threads = knobs.threads ? knobs.threads
                                     : profile.defaultThreads;
    SystemConfig sc = makeSystemConfig(variant, knobs, threads);
    System system(sc);

    // Opt-in invariant audit: one auditor per core, all sharing one
    // committed-store oracle. Only the PPA variant has the audited
    // structures; the knob is ignored elsewhere.
    std::vector<std::unique_ptr<check::Auditor>> auditors;
    if (knobs.audit && sc.core.mode == PersistMode::Ppa) {
        auto oracle = std::make_shared<check::StoreOracle>();
        for (unsigned t = 0; t < threads; ++t) {
            auditors.push_back(std::make_unique<check::Auditor>(
                system.core(t), system.memory(), oracle));
            auditors.back()->attach();
        }
    }
    PPA_ASSERT(knobs.failAtCycles.empty() ||
                   sc.core.mode == PersistMode::Ppa,
               "power-failure injection requires the PPA variant");

    // Opt-in telemetry: attach at cycle 0 so whole-run stall ratios
    // share RunStats::totalCycles as their denominator.
    std::unique_ptr<obs::Telemetry> telemetry;
    if (knobs.telemetry) {
        obs::TelemetryConfig tc;
        tc.sampleCycles = knobs.telemetrySampleCycles;
        tc.seriesCap =
            static_cast<std::size_t>(knobs.telemetrySeriesCap);
        telemetry = std::make_unique<obs::Telemetry>(tc, threads);
        for (unsigned t = 0; t < threads; ++t)
            telemetry->attach(system.core(t), system.memory());
    }

    // One deterministic stream per thread: either an in-process
    // generator or a recorded-trace replay — the core cannot tell
    // them apart, which is what the bitwise-identity oracle checks.
    // ReplayCache additionally wraps each stream in its compiler
    // transformation.
    RunStats rs;
    trace::TraceSet traceSet;
    std::vector<std::unique_ptr<DynInstSource>> streams;
    std::vector<std::unique_ptr<ReplayCacheTransform>> transforms;
    if (!knobs.traceDir.empty()) {
        traceSet = trace::TraceSet::openOrDie(knobs.traceDir);
        const trace::TraceMeta &meta = traceSet.metadata();
        if (meta.threads != threads) {
            fatal("trace '", knobs.traceDir, "' was recorded with ",
                  meta.threads, " thread(s) but the run wants ", threads);
        }
        if (meta.instsPerThread != knobs.instsPerCore) {
            fatal("trace '", knobs.traceDir, "' holds ",
                  meta.instsPerThread, " insts per thread but the run ",
                  "wants ", knobs.instsPerCore,
                  " (pass matching --insts or re-record)");
        }
        rs.traceDir = knobs.traceDir;
        rs.traceShards =
            static_cast<unsigned>(traceSet.allShards().size());
        for (unsigned t = 0; t < threads; ++t)
            rs.traceInsts += traceSet.threadInsts(t);
        rs.traceCrc = traceSet.combinedCrc();
    }
    for (unsigned t = 0; t < threads; ++t) {
        if (!knobs.traceDir.empty()) {
            streams.push_back(
                std::make_unique<trace::TraceReplaySource>(traceSet, t));
        } else {
            streams.push_back(std::make_unique<StreamGenerator>(
                profile, t, knobs.seed, knobs.instsPerCore));
        }
        if (variant == SystemVariant::ReplayCache) {
            transforms.push_back(std::make_unique<ReplayCacheTransform>(
                *streams.back(), ReplayCacheParams{}));
            system.bindSource(t, transforms.back().get());
        } else {
            system.bindSource(t, streams.back().get());
        }
    }

    // Warm the caches before measurement; see the warmupFraction doc
    // comment in experiment.hh for the semantics.
    Cycle cap = knobs.instsPerCore * 400;
    std::uint64_t warmup_insts = static_cast<std::uint64_t>(
        knobs.warmupFraction *
        static_cast<double>(knobs.instsPerCore) * threads);
    Cycle warm_cycle = 0;
    if (knobs.failAtCycles.empty()) {
        while (!system.allDone() && system.cycle() < cap &&
               system.totalCommitted() < warmup_insts) {
            for (int i = 0; i < 64 && !system.allDone(); ++i)
                system.tick();
        }
        warm_cycle = system.cycle();
        system.run(cap);
    } else {
        // Failure-injection schedule: run to each requested cycle
        // (warmup included), fail, recover through the serialized
        // checkpoints, continue to the next one.
        std::vector<Cycle> failures = knobs.failAtCycles;
        std::sort(failures.begin(), failures.end());
        std::size_t next_fail = 0;
        bool warmed = false;
        while (!system.allDone() && system.cycle() < cap) {
            if (!warmed && system.totalCommitted() >= warmup_insts) {
                warmed = true;
                warm_cycle = system.cycle();
            }
            if (next_fail < failures.size() &&
                system.cycle() >= failures[next_fail]) {
                ++next_fail;
                detail::injectPowerFailure(system, auditors, rs);
            }
            system.tick();
        }
        if (!warmed)
            warm_cycle = system.cycle();
        system.run(cap);
    }

    rs.workload = profile.name;
    rs.variant = variant;
    rs.threads = threads;
    rs.totalCycles = system.cycle();
    rs.cycles = system.cycle() - warm_cycle;
    rs.committedInsts = system.totalCommitted();
    rs.freeIntHist = stats::Histogram(sc.core.intPrfEntries);
    rs.freeFpHist = stats::Histogram(sc.core.fpPrfEntries);

    double region_stores = 0.0;
    double region_others = 0.0;
    unsigned cores_with_regions = 0;
    for (unsigned c = 0; c < system.numCores(); ++c) {
        const Core &core = system.core(c);
        rs.committedStores += core.committedStores();
        const RegionStats &reg = core.regionStats();
        rs.regionCount += reg.regionCount();
        rs.boundaryStallCycles += reg.stallCycles();
        rs.renameStallNoRegCycles += core.renameStallNoRegCycles();
        if (reg.regionCount() > 0) {
            region_stores += reg.avgStoresPerRegion();
            region_others += reg.avgOthersPerRegion();
            ++cores_with_regions;
        }
        rs.freeIntHist.merge(core.freeIntRegHistogram());
        rs.freeFpHist.merge(core.freeFpRegHistogram());
        rs.coalescedStores +=
            system.memory().writeBuffer(c).coalescedStores();
        rs.persistOps += system.memory().writeBuffer(c).persistOps();
    }
    if (cores_with_regions) {
        rs.avgRegionStores = region_stores / cores_with_regions;
        rs.avgRegionOthers = region_others / cores_with_regions;
    }
    // Stall counters accumulate per core but cycles count wall-clock:
    // normalize to per-core stalls.
    rs.boundaryStallCycles /= threads;
    rs.renameStallNoRegCycles /= threads;

    rs.ipc = rs.totalCycles
                 ? static_cast<double>(rs.committedInsts) /
                       static_cast<double>(rs.totalCycles)
                 : 0.0;

    rs.nvmWrites = system.memory().nvm().writeCount();
    rs.nvmReads = system.memory().nvm().readCount();
    rs.nvmBytesWritten = system.memory().nvm().bytesWritten();
    rs.wpqStallCycles = system.memory().nvm().wpqStallCycles();
    rs.l2MissRatio = system.memory().l2MissRatio();

    if (telemetry)
        rs.telemetry = telemetry->harvest();

    for (const auto &auditor : auditors) {
        rs.auditEvents += auditor->eventCount();
        rs.auditViolations += auditor->violationCount();
        for (const check::AuditViolation &v : auditor->violations()) {
            if (rs.auditMessages.size() >= 16)
                break;
            rs.auditMessages.push_back(
                v.where.describe() + ": " + v.what);
        }
    }
    return rs;
}

double
slowdown(const RunStats &test, const RunStats &baseline)
{
    PPA_ASSERT(baseline.cycles > 0, "baseline did not run");
    return static_cast<double>(test.cycles) /
           static_cast<double>(baseline.cycles);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace ppa
