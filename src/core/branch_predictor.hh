/**
 * @file
 * Branch prediction for the front end.
 *
 * A classic bimodal predictor: a table of 2-bit saturating counters
 * indexed by the branch PC. A BTB hit is assumed for predicted-taken
 * branches (trace-driven fetch knows the target), so correctly
 * predicted branches fetch without a bubble; mispredictions stall the
 * front end until the branch resolves, plus a refill penalty — the
 * dominant effect a Skylake-class tournament predictor leaves behind
 * at this level of abstraction.
 */

#ifndef PPA_CORE_BRANCH_PREDICTOR_HH
#define PPA_CORE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ppa
{

/**
 * Bimodal 2-bit-counter branch predictor.
 */
class BranchPredictor
{
  public:
    /** @param entries counter-table entries (power of two). */
    explicit BranchPredictor(std::size_t entries = 4096)
        : counters(entries, 2 /* weakly taken */), mask(entries - 1)
    {}

    /** Predict the direction of the branch at @p pc. */
    bool
    predict(Addr pc) const
    {
        return counters[index(pc)] >= 2;
    }

    /**
     * Update with the actual outcome; returns true when the
     * prediction was correct.
     */
    bool
    update(Addr pc, bool taken)
    {
        std::uint8_t &ctr = counters[index(pc)];
        bool correct = (ctr >= 2) == taken;
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
        if (correct)
            statCorrect.inc();
        else
            statWrong.inc();
        return correct;
    }

    std::uint64_t correctPredictions() const
    {
        return statCorrect.value();
    }
    std::uint64_t mispredictions() const { return statWrong.value(); }

    double
    accuracy() const
    {
        std::uint64_t total = statCorrect.value() + statWrong.value();
        return total ? static_cast<double>(statCorrect.value()) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask; }

    std::vector<std::uint8_t> counters;
    std::size_t mask;

    stats::Counter statCorrect;
    stats::Counter statWrong;
};

} // namespace ppa

#endif // PPA_CORE_BRANCH_PREDICTOR_HH
